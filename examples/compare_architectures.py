"""Figure-7 in miniature: one benchmark across all four architectures.

Runs a synthetic Mediabench program on the unified-L1 baseline, the
proposed L0-buffer architecture, MultiVLIW (snoop-coherent distributed
L1) and the word-interleaved distributed L1 (both scheduling
heuristics), and prints normalized execution times.

Run:  python examples/compare_architectures.py [benchmark]
"""

import sys

from repro.machine import (
    interleaved_config,
    l0_config,
    multivliw_config,
    unified_config,
)
from repro.sim import SimOptions, run_program
from repro.workloads import BENCHMARK_NAMES, build


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gsmenc"
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}; one of {BENCHMARK_NAMES}")
    options = SimOptions(sim_cap=800)

    runs = [
        ("unified L1 (baseline)", unified_config(), {}),
        ("8-entry L0 buffers", l0_config(8), {}),
        ("MultiVLIW", multivliw_config(), {}),
        ("word-interleaved (H1)", interleaved_config(), {"interleaved_heuristic": 1}),
        ("word-interleaved (H2)", interleaved_config(), {"interleaved_heuristic": 2}),
    ]

    bench = build(name)
    print(f"benchmark: {name} — {bench.description}\n")
    baseline_cycles = None
    for label, config, compile_kwargs in runs:
        opts = SimOptions(sim_cap=options.sim_cap, compile_kwargs=compile_kwargs)
        result = run_program(build(name), config, options=opts)
        if baseline_cycles is None:
            baseline_cycles = result.total_cycles
        ratio = result.total_cycles / baseline_cycles
        stall = result.stall_cycles / baseline_cycles
        print(f"{label:24s} {result.total_cycles:>10} cycles   "
              f"normalized {ratio:5.3f}  (stall {stall:5.3f})")


if __name__ == "__main__":
    main()
