"""Where L0 buffers shine: a loop-carried recurrence through memory.

ADPCM-style codecs (g721, gsm) update predictor state element by
element: ``y[i+1] = f(y[i], x[i])``.  The load of ``y[i]`` sits on the
loop's critical cycle, so its latency multiplies directly into the II.
With the L1 latency (6 cycles) the recurrence binds the II near 11;
with a 1-cycle L0 buffer it drops to 6 — the same ~45% the paper's
g721/gsm bars show before the scalar-code residue.

Run:  python examples/adpcm_recurrence.py
"""

from repro.ir import LoopBuilder, build_ddg
from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.scheduler import compile_loop, rec_mii
from repro.sim import make_memory, run_loop


def build_predictor():
    b = LoopBuilder("adpcm_pred", trip_count=2400)
    state = b.array("state", 1024, 2)
    samples = b.array("samples", 1024, 2)
    alpha = b.live_in("alpha")
    prev = b.load(state, stride=1, offset=0, tag="ld_prev")
    x = b.load(samples, stride=1, tag="ld_x")
    pred = b.imul(prev, alpha, tag="predict")
    err = b.iadd(pred, x, tag="err")
    clipped = b.imax(err, alpha, tag="clip")
    b.store(state, clipped, stride=1, offset=1, tag="st_next")
    return b.build()


def main() -> None:
    loop = build_predictor()
    ddg = build_ddg(loop, unified_config())
    print("recurrence bound (RecMII):")
    print(f"  with L1 latency (6): {rec_mii(ddg, lambda uid: 6)}")
    print(f"  with L0 latency (1): {rec_mii(ddg, lambda uid: 1)}")
    print()

    results = {}
    for config, label in ((unified_config(), "baseline"), (l0_config(8), "L0")):
        compiled = compile_loop(build_predictor(), config)
        memory = make_memory(config)
        result, _ = run_loop(
            compiled, memory, MemoryLayout(align=config.l1_block), invocations=3
        )
        results[label] = result.total_cycles
        print(f"{label:8s}: II={compiled.ii}  unroll={compiled.unroll_factor}  "
              f"total={result.total_cycles} cycles "
              f"(stall {result.stall_cycles})")
        if label == "L0":
            ld_prev = next(
                op
                for op in compiled.schedule.placed.values()
                if op.instr.tag.startswith("ld_prev")
            )
            st = next(
                op
                for op in compiled.schedule.placed.values()
                if op.instr.is_store
            )
            print(f"  coherence: ld_prev in cluster {ld_prev.cluster}, "
                  f"store in cluster {st.cluster} "
                  f"(the 1C scheme keeps the dependent set together)")
            print(f"  store hint: {st.hints.access.name} "
                  f"(updates the local L0 copy in parallel with L1)")
            assert memory.stats.coherence_violations == 0

    speedup = results["baseline"] / results["L0"]
    print(f"\nspeedup from L0 buffers: {speedup:.2f}x")


if __name__ == "__main__":
    main()
