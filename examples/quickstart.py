"""Quickstart: compile one loop for the baseline and the L0 architecture.

Builds a small media-style kernel, schedules it for a clustered VLIW
with and without flexible compiler-managed L0 buffers, prints both
kernels (II, cluster assignment, latencies, hints), and simulates them.

Run:  python examples/quickstart.py
"""

from repro.ir import LoopBuilder
from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.scheduler import compile_loop
from repro.sim import make_memory, run_loop


def build_kernel():
    """IIR smoother: y[i+1] = clip((y[i] * gain + x[i]) >> shift).

    The load of y[i] sits on the loop-carried critical cycle, so the
    1-cycle L0 latency shrinks the II directly — the class of loop where
    the paper's proposal wins big (section 5.2).
    """
    b = LoopBuilder("smooth", trip_count=2000)
    x = b.array("x", 2048, 2)
    y = b.array("y", 2048, 2)
    gain = b.live_in("gain")
    shift = b.live_in("shift")
    prev = b.load(y, stride=1, offset=0, tag="ld_y")
    vx = b.load(x, stride=1, tag="ld_x")
    g = b.imul(prev, gain, tag="gain")
    s = b.iadd(g, vx, tag="sum")
    sh = b.ishr(s, shift, tag="shift")
    cl = b.imax(sh, gain, tag="clip")
    b.store(y, cl, stride=1, offset=1, tag="st_y")
    return b.build()


def main() -> None:
    for config, label in ((unified_config(), "unified L1, no L0 buffers"),
                          (l0_config(8), "unified L1 + 8-entry L0 buffers")):
        loop = build_kernel()
        compiled = compile_loop(loop, config)
        memory = make_memory(config)
        layout = MemoryLayout(align=config.l1_block)
        result, _ = run_loop(compiled, memory, layout, invocations=2)

        print(f"=== {label}")
        print(compiled.schedule.format_kernel())
        print(f"unroll factor: {compiled.unroll_factor}")
        print(
            f"cycles: {result.total_cycles} "
            f"(compute {result.compute_cycles}, stall {result.stall_cycles})"
        )
        if config.arch.value == "l0":
            for op in compiled.schedule.placed.values():
                if op.instr.is_memory:
                    print(f"  {op.instr.tag:8s} cluster {op.cluster}  "
                          f"latency {op.latency}  {op.hints}")
            stats = memory.stats.l0
            print(f"L0 hit rate: {stats.hit_rate:.3f}  "
                  f"(linear fills {stats.linear_fills}, "
                  f"interleaved fills {stats.interleaved_fills})")
        print()


if __name__ == "__main__":
    main()
