"""The three intra-loop coherence schemes: NL0, 1C and PSR (paper §4.1).

A loop whose loads and stores may touch the same addresses forms a
memory-dependent set.  Stores only update their local L0 buffer and L1 —
never remote L0 buffers — so the compiler must pick one of:

* NL0 — the whole set bypasses L0 (schedule freedom, L1 latency);
* 1C  — stores and L0-latency loads share one cluster;
* PSR — stores are replicated into every cluster (the extra instances
  only invalidate their local buffer), loads go anywhere.

This example compiles the same loop under each scheme and shows the
schedule shape and the simulated coherence audit (always zero stale
reads — that's the point).

Run:  python examples/coherence_schemes.py
"""

from repro.ir import LoopBuilder
from repro.isa import MemoryLayout
from repro.machine import l0_config
from repro.scheduler import compile_loop
from repro.scheduler.l0policy import L0Policy
from repro.sim import make_memory, run_loop


def build_history_filter():
    """y[i+2] = f(y[i], y[i+1]) — loads and stores on the same array."""
    b = LoopBuilder("history", trip_count=1200)
    y = b.array("y", 2048, 2)
    k = b.live_in("k")
    a = b.load(y, stride=1, offset=0, tag="ld_y0")
    c = b.load(y, stride=1, offset=1, tag="ld_y1")
    s = b.iadd(a, c, tag="sum")
    t = b.imul(s, k, tag="scale")
    b.store(y, t, stride=1, offset=2, tag="st_y2")
    return b.build()


def run_scheme(label: str, **compile_kwargs) -> None:
    config = l0_config(8)
    compiled = compile_loop(build_history_filter(), config, **compile_kwargs)
    memory = make_memory(config)
    result, _ = run_loop(
        compiled, memory, MemoryLayout(align=config.l1_block), invocations=2
    )
    mem_ops = [
        op for op in compiled.schedule.placed.values() if op.instr.is_memory
    ]
    clusters = {op.instr.tag: op.cluster for op in mem_ops}
    lats = {op.instr.tag: op.latency for op in mem_ops if op.instr.is_load}
    print(f"--- {label}")
    print(f"  II={compiled.ii}  unroll={compiled.unroll_factor}")
    print(f"  load latencies: {lats}")
    print(f"  clusters: {clusters}")
    if compiled.schedule.replicas:
        replica_clusters = sorted(op.cluster for op in compiled.schedule.replicas)
        print(f"  PSR store replicas in clusters: {replica_clusters}")
    print(f"  cycles: {result.total_cycles} (stall {result.stall_cycles})")
    print(f"  stale L0 reads: {memory.stats.coherence_violations}")
    assert memory.stats.coherence_violations == 0
    print()


def main() -> None:
    # The production scheduler picks between 1C and NL0 itself (the
    # paper drops PSR after code specialisation); force each here.
    run_scheme("automatic (1C when entries allow, else NL0)")
    run_scheme("partial store replication (PSR)", allow_psr=True)

    # NL0 can be observed by removing every buffer entry's worth of
    # benefit: with all candidates demoted the set runs at L1 latency.
    print("--- NL0 (forced by a 1-entry buffer: no room for the set)")
    config = l0_config(1)
    compiled = compile_loop(build_history_filter(), config)
    loads = [
        op
        for op in compiled.schedule.placed.values()
        if op.instr.is_load
    ]
    print(f"  II={compiled.ii}; load latencies: "
          f"{sorted(op.latency for op in loads)}")


if __name__ == "__main__":
    main()
