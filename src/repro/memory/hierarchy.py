"""The unified memory hierarchy: centralized L1 (+L2) with optional
per-cluster L0 buffers — the paper's baseline and proposed architectures.

All memory systems in this package expose the same five-method interface
the executor drives:

* ``load(cluster, addr, width, hints, cycle) -> ready_cycle``
* ``store(cluster, addr, width, hints, cycle, is_primary=True)``
* ``prefetch(cluster, addr, width, cycle)`` (explicit software prefetch)
* ``invalidate_l0(cycle)`` (inter-loop flush)
* ``reset()``

Coherence auditing: every store records a per-byte timestamp; a load
served from an L0 entry older than the newest store to those bytes
increments ``coherence_violations``.  The compiler's coherence schemes
(NL0/1C/PSR + inter-loop invalidation) must keep this at zero — tests
assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.hints import AccessHint, BYPASS_HINTS, HintBundle, MapHint, PrefetchHint
from ..machine.config import MachineConfig
from .bus import BusStats, ClusterBus
from .l0buffer import L0Buffer, L0Entry, L0Stats, MapKind
from .l1cache import CacheStats, SetAssocCache


@dataclass
class MemoryStats:
    """Aggregated statistics across one simulation."""

    l0: L0Stats = field(default_factory=L0Stats)
    l1: CacheStats = field(default_factory=CacheStats)
    bus: BusStats = field(default_factory=BusStats)
    coherence_violations: int = 0
    seq_bus_conflicts: int = 0
    prefetch_requests: int = 0
    explicit_prefetches: int = 0
    dropped_prefetches: int = 0


class UnifiedMemory:
    """Unified L1 data cache with optional flexible L0 buffers."""

    def __init__(self, config: MachineConfig, *, with_l0: bool | None = None) -> None:
        self.config = config
        self.stats = MemoryStats()
        self.l1 = SetAssocCache(
            size=config.l1_size,
            assoc=config.l1_assoc,
            block=config.l1_block,
            stats=self.stats.l1,
        )
        if with_l0 is None:
            with_l0 = config.arch.value == "l0"
        self.l0: list[L0Buffer] | None = None
        if with_l0:
            self.l0 = [
                L0Buffer(
                    entries=config.l0_entries,
                    block_bytes=config.l1_block,
                    n_clusters=config.n_clusters,
                    stats=self.stats.l0,
                )
                for _ in range(config.n_clusters)
            ]
        self.buses = [
            ClusterBus(stats=self.stats.bus) for _ in range(config.n_clusters)
        ]
        self._last_store: dict[int, int] = {}
        # Bound copies of the hot-path latencies (config attribute reads
        # add up over hundreds of thousands of accesses).
        self._l0_latency = config.l0_latency
        self._l1_latency = config.l1_latency
        self._l2_latency = config.l2_latency

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _l1_load_latency(self, addr: int) -> int:
        hit = self.l1.load(addr)
        latency = self.config.l1_latency
        if not hit:
            latency += self.config.l2_latency
        return latency

    def _record_store(self, addr: int, width: int, cycle: int) -> None:
        for byte in range(addr, addr + width):
            self._last_store[byte] = cycle

    def _check_stale(self, entry: L0Entry, addr: int, width: int) -> None:
        last_store = self._last_store
        if not last_store:
            return
        newest = -1
        get = last_store.get
        for b in range(addr, addr + width):
            t = get(b, -1)
            if t > newest:
                newest = t
        if newest > entry.update_time:
            self.stats.coherence_violations += 1

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def load(
        self, cluster: int, addr: int, width: int, hints: HintBundle, cycle: int
    ) -> int:
        if self.l0 is None or hints.access is AccessHint.NO_ACCESS:
            grant = self.buses[cluster].grant(cycle)
            if self.l1.load(addr):
                return grant + self._l1_latency
            return grant + self._l1_latency + self._l2_latency

        buffer = self.l0[cluster]
        entry = buffer.access(addr, width, cycle)
        if entry is not None:
            self._check_stale(entry, addr, width)
            ready = entry.ready
            issue = cycle + self._l0_latency
            if issue > ready:
                ready = issue
            if hints.access is AccessHint.PAR_ACCESS:
                # Parallel L1 probe: real traffic, reply discarded.
                grant = self.buses[cluster].grant(cycle)
                if self.l1.probe(addr):
                    self.l1.load(addr)
            self._hint_prefetch(cluster, entry, addr, width, hints, cycle)
            return ready

        # L0 miss: forward to L1 — next cycle for SEQ (the compiler
        # guaranteed that slot free), same cycle for PAR.
        request = cycle + 1 if hints.access is AccessHint.SEQ_ACCESS else cycle
        bus = self.buses[cluster]
        if hints.access is AccessHint.SEQ_ACCESS and not bus.is_free(request):
            self.stats.seq_bus_conflicts += 1
        grant = bus.grant(request)
        latency = self._l1_latency
        if not self.l1.load(addr):
            latency += self._l2_latency
        if hints.mapping is MapHint.INTERLEAVED:
            arrival = grant + latency + self.config.interleave_penalty
            filled = self._distribute_block(cluster, addr, width, arrival, False)
        else:
            arrival = grant + latency
            filled = buffer.fill_linear(addr, arrival)
            filled.touched = True
        self._hint_prefetch(cluster, filled, addr, width, hints, cycle)
        return arrival

    def _distribute_block(
        self, cluster: int, addr: int, width: int, arrival: int, from_prefetch: bool
    ) -> L0Entry:
        """Interleaved fill: split the whole L1 block across all clusters.

        The subblock holding the accessed element lands in the accessing
        cluster; consecutive residues go to consecutive clusters.
        Returns the local entry.
        """
        assert self.l0 is not None
        n = self.config.n_clusters
        block = addr - (addr % self.config.l1_block)
        element = (addr - block) // width
        local_residue = element % n
        local_entry: L0Entry | None = None
        for target in range(n):
            residue = (local_residue + (target - cluster)) % n
            entry = self.l0[target].fill_interleaved(
                block, residue, width, arrival, from_prefetch=from_prefetch
            )
            if target == cluster:
                local_entry = entry
                if not from_prefetch:
                    entry.touched = True
        assert local_entry is not None
        return local_entry

    # ------------------------------------------------------------------
    # Prefetch (hint-triggered and explicit)
    # ------------------------------------------------------------------

    def _hint_prefetch(
        self,
        cluster: int,
        entry: L0Entry,
        addr: int,
        width: int,
        hints: HintBundle,
        cycle: int,
    ) -> None:
        if hints.prefetch is PrefetchHint.NONE or self.l0 is None:
            return
        forward = hints.prefetch is PrefetchHint.POSITIVE
        if not self.l0[cluster].is_edge_element(entry, addr, width, last=forward):
            return
        distance = hints.prefetch_distance
        step = distance if forward else -distance
        buffer = self.l0[cluster]
        if entry.kind is MapKind.LINEAR:
            sub = buffer.subblock_bytes
            target = entry.block_addr + entry.position * sub + step * sub
            if target < 0 or buffer.find(target, 1) is not None:
                return
            # Prefetches are opportunistic: if the bus slot after the
            # access is taken by demand traffic, the prefetch is dropped
            # (no queueing hardware between the L0 and the bus).
            if not self.buses[cluster].is_free(cycle + 1):
                self.stats.dropped_prefetches += 1
                return
            self.stats.prefetch_requests += 1
            grant = self.buses[cluster].grant(cycle + 1)
            arrival = grant + self._l1_load_latency(target)
            buffer.fill_linear(target, arrival, from_prefetch=True)
            return
        target_block = entry.block_addr + step * self.config.l1_block
        if target_block < 0:
            return
        if (
            buffer._find_exact(
                MapKind.INTERLEAVED, target_block, entry.position, entry.granularity
            )
            is not None
        ):
            return
        if not self.buses[cluster].is_free(cycle + 1):
            self.stats.dropped_prefetches += 1
            return
        self.stats.prefetch_requests += 1
        grant = self.buses[cluster].grant(cycle + 1)
        arrival = (
            grant + self._l1_load_latency(target_block) + self.config.interleave_penalty
        )
        n = self.config.n_clusters
        for target in range(n):
            residue = (entry.position + (target - cluster)) % n
            self.l0[target].fill_interleaved(
                target_block,
                residue,
                entry.granularity,
                arrival,
                from_prefetch=True,
            )

    def prefetch(self, cluster: int, addr: int, width: int, cycle: int) -> None:
        """Explicit software prefetch: linear mapping into the local L0."""
        if self.l0 is None:
            return
        buffer = self.l0[cluster]
        if buffer.find(addr, width) is not None:
            return
        if not self.buses[cluster].is_free(cycle):
            self.stats.dropped_prefetches += 1
            return
        self.stats.explicit_prefetches += 1
        grant = self.buses[cluster].grant(cycle)
        arrival = grant + self._l1_load_latency(addr)
        buffer.fill_linear(addr, arrival, from_prefetch=True)

    # ------------------------------------------------------------------
    # Stores & invalidation
    # ------------------------------------------------------------------

    def store(
        self,
        cluster: int,
        addr: int,
        width: int,
        hints: HintBundle,
        cycle: int,
        is_primary: bool = True,
    ) -> None:
        if self.l0 is not None and not is_primary:
            # PSR replica: invalidate local copies only; no L1 traffic.
            self.l0[cluster].invalidate_matching(addr, width)
            return
        self._record_store(addr, width, cycle)
        if self.l0 is not None and hints.access is AccessHint.PAR_ACCESS:
            self.l0[cluster].store_update(addr, width, cycle)
        self.buses[cluster].grant(cycle)
        self.l1.store(addr)

    def invalidate_l0(self, cycle: int) -> None:
        if self.l0 is None:
            return
        for buffer in self.l0:
            buffer.invalidate_all()

    def reset(self) -> None:
        self.__init__(self.config, with_l0=self.l0 is not None)

    # ------------------------------------------------------------------
    # Fast-path hooks: batch entry points + convergence certificate
    # ------------------------------------------------------------------

    def load_run(self, clusters, addrs, widths, hints_list, cycles) -> list[int]:
        """Issue a run of loads that cannot interlock with each other.

        Semantically identical to calling :meth:`load` element-wise in
        order; the trace executor uses it for statically stall-free
        stretches of a kernel window so one Python call covers the run.
        The no-L0 case (every load is a plain bus+L1 round trip) is
        unrolled here with bound locals — it is the unified baseline's
        entire load path.
        """
        if self.l0 is None:
            buses = self.buses
            l1_load = self.l1.load
            l1_latency = self._l1_latency
            miss_latency = l1_latency + self._l2_latency
            return [
                buses[clusters[k]].grant(cycles[k])
                + (l1_latency if l1_load(addrs[k]) else miss_latency)
                for k in range(len(addrs))
            ]
        load = self.load
        return [
            load(clusters[k], addrs[k], widths[k], hints_list[k], cycles[k])
            for k in range(len(addrs))
        ]

    def store_run(self, clusters, addrs, widths, hints_list, cycles, primaries) -> None:
        """Issue a run of stores, element-wise in order (see load_run)."""
        store = self.store
        for k in range(len(addrs)):
            store(
                clusters[k],
                addrs[k],
                widths[k],
                hints_list[k],
                cycles[k],
                is_primary=primaries[k],
            )

    def shift_time(self, delta: int) -> None:
        """Advance every internal timestamp by ``delta`` cycles.

        After the convergence early-exit fast-forwards ``m`` whole
        steady periods, the simulation clock jumps while the memory
        state was only evolved up to the skip point; shifting realigns
        fills-in-flight, store stamps, and bus occupancy with the clock
        so post-skip behaviour is byte-identical to the reference.
        """
        if self.l0 is not None:
            for buffer in self.l0:
                buffer.shift_time(delta)
        for bus in self.buses:
            bus.shift_time(delta)
        self._last_store = {b: t + delta for b, t in self._last_store.items()}

    def state_fingerprint(self, time_base: int, horizon: int = 4096) -> tuple:
        """Canonical decision-relevant state, times relative to ``time_base``.

        Equal fingerprints at two cycles with identical upcoming access
        streams certify that the simulation evolves identically from
        both points — the convergence early-exit's state-recurrence
        check.  Store stamps older than ``horizon`` are bucketed (they
        can only order against equally ancient L0 update stamps; see
        the architecture doc's soundness conditions).
        """
        ancient = time_base - horizon
        recent = tuple(
            (b, t - time_base)
            for b, t in sorted(self._last_store.items())
            if t >= ancient
        )
        old = tuple(b for b, t in sorted(self._last_store.items()) if t < ancient)
        return (
            self.l1.fingerprint(),
            tuple(
                buffer.fingerprint(time_base, horizon) for buffer in self.l0 or ()
            ),
            tuple(bus.fingerprint(time_base) for bus in self.buses),
            recent,
            old,
        )
