"""The unified memory hierarchy: centralized L1 (+L2) with optional
per-cluster L0 buffers — the paper's baseline and proposed architectures.

All memory systems in this package expose the same five-method interface
the executor drives:

* ``load(cluster, addr, width, hints, cycle) -> ready_cycle``
* ``store(cluster, addr, width, hints, cycle, is_primary=True)``
* ``prefetch(cluster, addr, width, cycle)`` (explicit software prefetch)
* ``invalidate_l0(cycle)`` (inter-loop flush)
* ``reset()``

Coherence auditing: every store records a per-byte timestamp; a load
served from an L0 entry older than the newest store to those bytes
increments ``coherence_violations``.  The compiler's coherence schemes
(NL0/1C/PSR + inter-loop invalidation) must keep this at zero — tests
assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.hints import AccessHint, BYPASS_HINTS, HintBundle, MapHint, PrefetchHint
from ..machine.config import MachineConfig
from .bus import BusStats, ClusterBus
from .l0buffer import L0Buffer, L0Entry, L0Stats, MapKind
from .l1cache import CacheStats, SetAssocCache


@dataclass
class MemoryStats:
    """Aggregated statistics across one simulation."""

    l0: L0Stats = field(default_factory=L0Stats)
    l1: CacheStats = field(default_factory=CacheStats)
    bus: BusStats = field(default_factory=BusStats)
    coherence_violations: int = 0
    seq_bus_conflicts: int = 0
    prefetch_requests: int = 0
    explicit_prefetches: int = 0
    dropped_prefetches: int = 0


class UnifiedMemory:
    """Unified L1 data cache with optional flexible L0 buffers."""

    def __init__(self, config: MachineConfig, *, with_l0: bool | None = None) -> None:
        self.config = config
        self.stats = MemoryStats()
        self.l1 = SetAssocCache(
            size=config.l1_size,
            assoc=config.l1_assoc,
            block=config.l1_block,
            stats=self.stats.l1,
        )
        if with_l0 is None:
            with_l0 = config.arch.value == "l0"
        self.l0: list[L0Buffer] | None = None
        if with_l0:
            self.l0 = [
                L0Buffer(
                    entries=config.l0_entries,
                    block_bytes=config.l1_block,
                    n_clusters=config.n_clusters,
                    stats=self.stats.l0,
                )
                for _ in range(config.n_clusters)
            ]
        self.buses = [
            ClusterBus(stats=self.stats.bus) for _ in range(config.n_clusters)
        ]
        self._last_store: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _l1_load_latency(self, addr: int) -> int:
        hit = self.l1.load(addr)
        latency = self.config.l1_latency
        if not hit:
            latency += self.config.l2_latency
        return latency

    def _record_store(self, addr: int, width: int, cycle: int) -> None:
        for byte in range(addr, addr + width):
            self._last_store[byte] = cycle

    def _check_stale(self, entry: L0Entry, addr: int, width: int) -> None:
        newest = max(
            (self._last_store.get(b, -1) for b in range(addr, addr + width)),
            default=-1,
        )
        if newest > entry.update_time:
            self.stats.coherence_violations += 1

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def load(
        self, cluster: int, addr: int, width: int, hints: HintBundle, cycle: int
    ) -> int:
        if self.l0 is None or not hints.uses_l0:
            grant = self.buses[cluster].grant(cycle)
            return grant + self._l1_load_latency(addr)

        buffer = self.l0[cluster]
        entry = buffer.access(addr, width, cycle)
        if entry is not None:
            self._check_stale(entry, addr, width)
            ready = max(cycle + self.config.l0_latency, entry.ready)
            if hints.access is AccessHint.PAR_ACCESS:
                # Parallel L1 probe: real traffic, reply discarded.
                grant = self.buses[cluster].grant(cycle)
                if self.l1.probe(addr):
                    self.l1.load(addr)
            self._hint_prefetch(cluster, entry, addr, width, hints, cycle)
            return ready

        # L0 miss: forward to L1 — next cycle for SEQ (the compiler
        # guaranteed that slot free), same cycle for PAR.
        request = cycle + 1 if hints.access is AccessHint.SEQ_ACCESS else cycle
        bus = self.buses[cluster]
        if hints.access is AccessHint.SEQ_ACCESS and not bus.is_free(request):
            self.stats.seq_bus_conflicts += 1
        grant = bus.grant(request)
        latency = self._l1_load_latency(addr)
        if hints.mapping is MapHint.INTERLEAVED:
            arrival = grant + latency + self.config.interleave_penalty
            filled = self._distribute_block(cluster, addr, width, arrival, False)
        else:
            arrival = grant + latency
            filled = buffer.fill_linear(addr, arrival)
            filled.touched = True
        self._hint_prefetch(cluster, filled, addr, width, hints, cycle)
        return arrival

    def _distribute_block(
        self, cluster: int, addr: int, width: int, arrival: int, from_prefetch: bool
    ) -> L0Entry:
        """Interleaved fill: split the whole L1 block across all clusters.

        The subblock holding the accessed element lands in the accessing
        cluster; consecutive residues go to consecutive clusters.
        Returns the local entry.
        """
        assert self.l0 is not None
        n = self.config.n_clusters
        block = addr - (addr % self.config.l1_block)
        element = (addr - block) // width
        local_residue = element % n
        local_entry: L0Entry | None = None
        for target in range(n):
            residue = (local_residue + (target - cluster)) % n
            entry = self.l0[target].fill_interleaved(
                block, residue, width, arrival, from_prefetch=from_prefetch
            )
            if target == cluster:
                local_entry = entry
                if not from_prefetch:
                    entry.touched = True
        assert local_entry is not None
        return local_entry

    # ------------------------------------------------------------------
    # Prefetch (hint-triggered and explicit)
    # ------------------------------------------------------------------

    def _hint_prefetch(
        self,
        cluster: int,
        entry: L0Entry,
        addr: int,
        width: int,
        hints: HintBundle,
        cycle: int,
    ) -> None:
        if hints.prefetch is PrefetchHint.NONE or self.l0 is None:
            return
        forward = hints.prefetch is PrefetchHint.POSITIVE
        if not self.l0[cluster].is_edge_element(entry, addr, width, last=forward):
            return
        distance = hints.prefetch_distance
        step = distance if forward else -distance
        buffer = self.l0[cluster]
        if entry.kind is MapKind.LINEAR:
            sub = buffer.subblock_bytes
            target = entry.block_addr + entry.position * sub + step * sub
            if target < 0 or buffer.find(target, 1) is not None:
                return
            # Prefetches are opportunistic: if the bus slot after the
            # access is taken by demand traffic, the prefetch is dropped
            # (no queueing hardware between the L0 and the bus).
            if not self.buses[cluster].is_free(cycle + 1):
                self.stats.dropped_prefetches += 1
                return
            self.stats.prefetch_requests += 1
            grant = self.buses[cluster].grant(cycle + 1)
            arrival = grant + self._l1_load_latency(target)
            buffer.fill_linear(target, arrival, from_prefetch=True)
            return
        target_block = entry.block_addr + step * self.config.l1_block
        if target_block < 0:
            return
        if (
            buffer._find_exact(
                MapKind.INTERLEAVED, target_block, entry.position, entry.granularity
            )
            is not None
        ):
            return
        if not self.buses[cluster].is_free(cycle + 1):
            self.stats.dropped_prefetches += 1
            return
        self.stats.prefetch_requests += 1
        grant = self.buses[cluster].grant(cycle + 1)
        arrival = (
            grant + self._l1_load_latency(target_block) + self.config.interleave_penalty
        )
        n = self.config.n_clusters
        for target in range(n):
            residue = (entry.position + (target - cluster)) % n
            self.l0[target].fill_interleaved(
                target_block,
                residue,
                entry.granularity,
                arrival,
                from_prefetch=True,
            )

    def prefetch(self, cluster: int, addr: int, width: int, cycle: int) -> None:
        """Explicit software prefetch: linear mapping into the local L0."""
        if self.l0 is None:
            return
        buffer = self.l0[cluster]
        if buffer.find(addr, width) is not None:
            return
        if not self.buses[cluster].is_free(cycle):
            self.stats.dropped_prefetches += 1
            return
        self.stats.explicit_prefetches += 1
        grant = self.buses[cluster].grant(cycle)
        arrival = grant + self._l1_load_latency(addr)
        buffer.fill_linear(addr, arrival, from_prefetch=True)

    # ------------------------------------------------------------------
    # Stores & invalidation
    # ------------------------------------------------------------------

    def store(
        self,
        cluster: int,
        addr: int,
        width: int,
        hints: HintBundle,
        cycle: int,
        is_primary: bool = True,
    ) -> None:
        if self.l0 is not None and not is_primary:
            # PSR replica: invalidate local copies only; no L1 traffic.
            self.l0[cluster].invalidate_matching(addr, width)
            return
        self._record_store(addr, width, cycle)
        if self.l0 is not None and hints.access is AccessHint.PAR_ACCESS:
            self.l0[cluster].store_update(addr, width, cycle)
        self.buses[cluster].grant(cycle)
        self.l1.store(addr)

    def invalidate_l0(self, cycle: int) -> None:
        if self.l0 is None:
            return
        for buffer in self.l0:
            buffer.invalidate_all()

    def reset(self) -> None:
        self.__init__(self.config, with_l0=self.l0 is not None)
