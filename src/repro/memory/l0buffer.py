"""The flexible compiler-managed L0 buffer (paper section 3).

Each cluster owns one buffer of a few *subblock* entries (an L1 block
split by the number of clusters: 32/4 = 8 bytes).  Entries are fully
associative with LRU replacement and can hold either

* a **linear** subblock — 8 consecutive bytes of an L1 block, or
* an **interleaved** subblock — the elements ``j`` of an L1 block with
  ``j mod N == residue`` at granularity ``g`` (the access width of the
  load that triggered the fill).

The buffer is write-through and inclusive: replacements and
invalidations simply drop entries.  A store that hits several replicated
copies (same data cached under different mapping functions) updates one
and invalidates the rest, matching the paper's single-write-port design.

Timing: entries carry a ``ready`` cycle so fills in flight are visible —
a load that touches an entry before its data arrives counts as a hit but
completes only at ``ready`` (the processor stalls on use).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MapKind(enum.Enum):
    LINEAR = "linear"
    INTERLEAVED = "interleaved"


@dataclass(eq=False)
class L0Entry:
    """One resident subblock.  Identity equality (``eq=False``): entries
    are mutable runtime objects tracked by the buffer's LRU list, and
    ``list.remove`` must drop *this* entry, not a value-equal twin."""

    kind: MapKind
    block_addr: int  # base address of the owning L1 block
    #: linear: subblock index within the block; interleaved: element residue.
    position: int
    granularity: int  # interleaved element size (bytes); block bytes for linear
    ready: int  # cycle the data arrives from L1
    #: Last cycle the entry's data was made consistent with L1 (fill or
    #: local store update) — used by the staleness checker.
    update_time: int = 0
    from_prefetch: bool = False
    touched: bool = False  # has any demand access hit this entry?

    def __post_init__(self) -> None:
        if self.update_time == 0:
            self.update_time = self.ready


@dataclass
class L0Stats:
    hits: int = 0
    misses: int = 0
    late_hits: int = 0  # hit on an in-flight fill (stall on use)
    linear_fills: int = 0
    interleaved_fills: int = 0
    evictions: int = 0
    evicted_untouched_prefetches: int = 0
    store_updates: int = 0
    store_invalidations: int = 0
    invalidate_alls: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0

    def merge(self, other: "L0Stats") -> None:
        for name in (
            "hits",
            "misses",
            "late_hits",
            "linear_fills",
            "interleaved_fills",
            "evictions",
            "evicted_untouched_prefetches",
            "store_updates",
            "store_invalidations",
            "invalidate_alls",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))


class L0Buffer:
    """One cluster's L0 buffer."""

    def __init__(
        self,
        entries: int | None,
        block_bytes: int,
        n_clusters: int,
        stats: L0Stats | None = None,
    ) -> None:
        self.capacity = entries  # None = unbounded
        self.block_bytes = block_bytes
        self.n_clusters = n_clusters
        self.subblock_bytes = block_bytes // n_clusters
        self.stats = stats if stats is not None else L0Stats()
        self._entries: list[L0Entry] = []  # LRU order: index 0 = oldest

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------

    def _block_of(self, addr: int) -> int:
        return addr - (addr % self.block_bytes)

    def _covers(self, entry: L0Entry, addr: int, width: int) -> bool:
        block = self._block_of(addr)
        if block != entry.block_addr:
            return False
        offset = addr - block
        if entry.kind is MapKind.LINEAR:
            sub = self.subblock_bytes
            lo = entry.position * sub
            return lo <= offset and offset + width <= lo + sub
        # Interleaved: the entry holds elements with index % N == residue
        # at granularity g.  Wider accesses spill into other clusters and
        # must miss (paper section 3.3, fourth bullet).
        g = entry.granularity
        if width > g or offset % g:
            return False
        element = offset // g
        return element % self.n_clusters == entry.position

    # ------------------------------------------------------------------
    # Lookup / fill / replacement
    # ------------------------------------------------------------------

    def find(self, addr: int, width: int) -> L0Entry | None:
        """Most-recently-used entry covering [addr, addr+width), no side effects."""
        for entry in reversed(self._entries):
            if self._covers(entry, addr, width):
                return entry
        return None

    def access(self, addr: int, width: int, cycle: int) -> L0Entry | None:
        """Demand access: updates LRU and hit/miss statistics.

        Inlined MRU-first cover scan (this is the simulator's hottest
        memory loop); semantically identical to ``find`` + LRU bump.
        """
        entries = self._entries
        block = addr - (addr % self.block_bytes)
        offset = addr - block
        sub = self.subblock_bytes
        n = self.n_clusters
        stats = self.stats
        for idx in range(len(entries) - 1, -1, -1):
            entry = entries[idx]
            if entry.block_addr != block:
                continue
            if entry.kind is MapKind.LINEAR:
                lo = entry.position * sub
                if lo <= offset and offset + width <= lo + sub:
                    break
            else:
                g = entry.granularity
                if (
                    width <= g
                    and not offset % g
                    and (offset // g) % n == entry.position
                ):
                    break
        else:
            stats.misses += 1
            return None
        stats.hits += 1
        if entry.ready > cycle:
            stats.late_hits += 1
        entry.touched = True
        if idx != len(entries) - 1:
            del entries[idx]
            entries.append(entry)
        return entry

    def _make_room(self) -> None:
        if self.capacity is None:
            return
        while len(self._entries) >= self.capacity:
            victim = self._entries.pop(0)
            self.stats.evictions += 1
            if victim.from_prefetch and not victim.touched:
                self.stats.evicted_untouched_prefetches += 1

    def fill_linear(
        self, addr: int, ready: int, *, from_prefetch: bool = False
    ) -> L0Entry:
        """Insert the linear subblock containing ``addr`` (idempotent)."""
        block = self._block_of(addr)
        position = (addr - block) // self.subblock_bytes
        existing = self._find_exact(
            MapKind.LINEAR, block, position, self.subblock_bytes
        )
        if existing is not None:
            existing.ready = min(existing.ready, ready)
            return existing
        self._make_room()
        entry = L0Entry(
            kind=MapKind.LINEAR,
            block_addr=block,
            position=position,
            granularity=self.subblock_bytes,
            ready=ready,
            from_prefetch=from_prefetch,
        )
        self._entries.append(entry)
        self.stats.linear_fills += 1
        return entry

    def fill_interleaved(
        self,
        block_addr: int,
        residue: int,
        granularity: int,
        ready: int,
        *,
        from_prefetch: bool = False,
    ) -> L0Entry:
        existing = self._find_exact(
            MapKind.INTERLEAVED, block_addr, residue, granularity
        )
        if existing is not None:
            existing.ready = min(existing.ready, ready)
            return existing
        self._make_room()
        entry = L0Entry(
            kind=MapKind.INTERLEAVED,
            block_addr=block_addr,
            position=residue,
            granularity=granularity,
            ready=ready,
            from_prefetch=from_prefetch,
        )
        self._entries.append(entry)
        self.stats.interleaved_fills += 1
        return entry

    def _find_exact(
        self, kind: MapKind, block: int, position: int, granularity: int
    ) -> L0Entry | None:
        for entry in self._entries:
            if (
                entry.kind is kind
                and entry.block_addr == block
                and entry.position == position
                and entry.granularity == granularity
            ):
                return entry
        return None

    # ------------------------------------------------------------------
    # Stores & invalidation
    # ------------------------------------------------------------------

    def store_update(self, addr: int, width: int, cycle: int) -> None:
        """Local store with PAR_ACCESS: refresh one copy, drop the others.

        The paper keeps a single write port per buffer, so when the same
        data is replicated under different mapping functions only one
        entry is written; the rest are invalidated (section 4.1).
        """
        matches = [e for e in self._entries if self._covers(e, addr, width)]
        if not matches:
            return
        keep = matches[-1]  # most recently used copy
        keep.update_time = max(keep.update_time, cycle)
        self.stats.store_updates += 1
        for entry in matches[:-1]:
            self._entries.remove(entry)
            self.stats.store_invalidations += 1

    def invalidate_matching(self, addr: int, width: int) -> int:
        """Drop every entry covering the address (PSR replica behaviour)."""
        matches = [e for e in self._entries if self._covers(e, addr, width)]
        for entry in matches:
            self._entries.remove(entry)
            self.stats.store_invalidations += 1
        return len(matches)

    def invalidate_all(self) -> None:
        self._entries.clear()
        self.stats.invalidate_alls += 1

    # ------------------------------------------------------------------
    # Prefetch-trigger geometry
    # ------------------------------------------------------------------

    def is_edge_element(
        self, entry: L0Entry, addr: int, width: int, last: bool
    ) -> bool:
        """Is ``addr`` the last (or first) element of ``entry``'s subblock?"""
        offset = addr - entry.block_addr
        if entry.kind is MapKind.LINEAR:
            sub = self.subblock_bytes
            within = offset - entry.position * sub
            return within + width == sub if last else within == 0
        g = entry.granularity
        element = offset // g
        elements_per_block = self.block_bytes // g
        owned = [
            j
            for j in range(elements_per_block)
            if j % self.n_clusters == entry.position
        ]
        return element == (owned[-1] if last else owned[0])

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[L0Entry]:
        return list(self._entries)

    # ------------------------------------------------------------------
    # Fast-path hooks (convergence early-exit)
    # ------------------------------------------------------------------

    def shift_time(self, delta: int) -> None:
        """Advance every entry's fill/update stamp by ``delta`` cycles."""
        for entry in self._entries:
            entry.ready += delta
            entry.update_time += delta

    def fingerprint(self, time_base: int, horizon: int) -> tuple:
        """Canonical content + LRU order, times relative to ``time_base``.

        Stamps older than ``horizon`` cycles are bucketed as "ancient":
        their exact value can no longer change a stall (fills completed
        long ago) and only orders against equally ancient store stamps —
        the documented soundness condition of the early-exit.
        """

        def rel(t: int) -> int:
            d = t - time_base
            return d if d >= -horizon else -horizon - 1

        return tuple(
            (
                e.kind.value,
                e.block_addr,
                e.position,
                e.granularity,
                rel(e.ready),
                rel(e.update_time),
                e.from_prefetch,
                e.touched,
            )
            for e in self._entries
        )
