"""Memory hierarchy models for all four evaluated architectures."""

from .bus import BusStats, ClusterBus
from .hierarchy import MemoryStats, UnifiedMemory
from .interleaved import (
    WORD,
    AttractionBuffer,
    InterleavedStats,
    WordInterleavedMemory,
)
from .l0buffer import L0Buffer, L0Entry, L0Stats, MapKind
from .l1cache import CacheStats, SetAssocCache
from .multivliw import MSIStats, MultiVLIWMemory

__all__ = [
    "AttractionBuffer",
    "BusStats",
    "CacheStats",
    "ClusterBus",
    "InterleavedStats",
    "L0Buffer",
    "L0Entry",
    "L0Stats",
    "MSIStats",
    "MapKind",
    "MemoryStats",
    "MultiVLIWMemory",
    "SetAssocCache",
    "UnifiedMemory",
    "WORD",
    "WordInterleavedMemory",
]
