"""Per-cluster buses between the clusters and the centralized L1.

Each cluster owns one request path to L1 that accepts one transaction
per cycle (demand loads, stores, L0 miss requests, prefetches).  The
paper's SEQ_ACCESS rule exists precisely so an L0 miss can use the
cycle-after slot without arbitration hardware; the simulator keeps a
real occupancy set so any over-subscription (e.g. the jpegdec loop where
every memory slot is busy and prefetches pile up) turns into delayed
grants and, eventually, processor stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BusStats:
    grants: int = 0
    delayed_grants: int = 0
    total_delay: int = 0

    def merge(self, other: "BusStats") -> None:
        self.grants += other.grants
        self.delayed_grants += other.delayed_grants
        self.total_delay += other.total_delay


class ClusterBus:
    """One cluster's L1 bus; one transaction per cycle."""

    #: Cycles of history kept before pruning (must exceed any latency).
    PRUNE_WINDOW = 256

    def __init__(self, stats: BusStats | None = None) -> None:
        self._busy: set[int] = set()
        self._prune_mark = 0
        self.stats = stats if stats is not None else BusStats()

    def is_free(self, cycle: int) -> bool:
        return cycle not in self._busy

    def grant(self, cycle: int) -> int:
        """Reserve the first free cycle at or after ``cycle``."""
        busy = self._busy
        if cycle not in busy:  # uncontended fast path
            busy.add(cycle)
            self.stats.grants += 1
            if cycle - self._prune_mark >= 2 * self.PRUNE_WINDOW:
                self._maybe_prune(cycle)
            return cycle
        grant = cycle + 1
        while grant in busy:
            grant += 1
        busy.add(grant)
        stats = self.stats
        stats.grants += 1
        stats.delayed_grants += 1
        stats.total_delay += grant - cycle
        if cycle - self._prune_mark >= 2 * self.PRUNE_WINDOW:
            self._maybe_prune(cycle)
        return grant

    def _maybe_prune(self, cycle: int) -> None:
        if cycle - self._prune_mark < 2 * self.PRUNE_WINDOW:
            return
        horizon = cycle - self.PRUNE_WINDOW
        self._busy = {c for c in self._busy if c >= horizon}
        self._prune_mark = cycle

    def shift_time(self, delta: int) -> None:
        """Advance every reserved slot by ``delta`` cycles.

        Used by the fast path's convergence early-exit to realign the
        bus with the simulation clock after fast-forwarding whole steady
        periods, so post-skip arbitration sees exactly the occupancy the
        reference interpreter would have.
        """
        self._busy = {c + delta for c in self._busy}
        self._prune_mark += delta

    def fingerprint(self, time_base: int) -> tuple:
        """Occupancy relative to ``time_base``, for state-recurrence checks.

        Slots further than :data:`PRUNE_WINDOW` in the past can never
        influence a future grant (requests only arrive at or after the
        current cycle) and may or may not have been pruned, so they are
        excluded rather than hashed.
        """
        horizon = time_base - self.PRUNE_WINDOW
        return tuple(sorted(c - time_base for c in self._busy if c >= horizon))

    def reset(self) -> None:
        self._busy.clear()
        self._prune_mark = 0
