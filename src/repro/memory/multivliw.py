"""MultiVLIW: distributed L1 kept coherent by a snoop-based MSI protocol
(Sánchez & González, MICRO-33) — the complex comparison point of Fig. 7.

Each cluster owns an L1 module; blocks migrate/replicate on demand:

* load hit in the local module → local latency;
* load miss served by a remote module (shared or modified) → remote
  transfer (+ write-back penalty when the remote copy was modified);
* load miss everywhere → next level (L2);
* store needs ownership: invalidating remote sharers or fetching a
  remote modified copy costs the coherence penalty.

Modules are modelled as per-cluster fully-associative LRU block sets
(capacity = unified size / N) with MSI state tracked per block; the
fidelity target is Figure 7's ranking, not a full MultiVLIW reproduction
(see DESIGN.md).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..isa.hints import HintBundle
from ..machine.config import MachineConfig


@dataclass
class MSIStats:
    local_hits: int = 0
    remote_clean: int = 0
    remote_dirty: int = 0
    misses_to_l2: int = 0
    store_invalidations: int = 0
    store_ownership_misses: int = 0

    @property
    def loads(self) -> int:
        return (
            self.local_hits + self.remote_clean + self.remote_dirty + self.misses_to_l2
        )

    @property
    def local_rate(self) -> float:
        return self.local_hits / self.loads if self.loads else 1.0


class MultiVLIWMemory:
    """Snoop-coherent distributed L1."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.stats = MSIStats()
        n = config.n_clusters
        self.blocks_per_module = max(4, config.l1_size // n // config.l1_block)
        # Per-cluster LRU of resident blocks.
        self._modules: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(n)
        ]
        # block -> set of sharers (S) — or single owner with dirty flag.
        self._sharers: dict[int, set[int]] = {}
        self._owner: dict[int, int] = {}  # block -> cluster holding M

    # ------------------------------------------------------------------
    # Module bookkeeping
    # ------------------------------------------------------------------

    def _touch(self, cluster: int, block: int) -> None:
        module = self._modules[cluster]
        if block in module:
            module.move_to_end(block)
            return
        while len(module) >= self.blocks_per_module:
            victim, _ = module.popitem(last=False)
            self._drop(cluster, victim)
        module[block] = None

    def _drop(self, cluster: int, block: int) -> None:
        sharers = self._sharers.get(block)
        if sharers is not None:
            sharers.discard(cluster)
            if not sharers:
                self._sharers.pop(block, None)
        if self._owner.get(block) == cluster:
            del self._owner[block]  # implicit write-back to L2

    def _present(self, cluster: int, block: int) -> bool:
        return block in self._modules[cluster] and (
            cluster in self._sharers.get(block, ()) or self._owner.get(block) == cluster
        )

    # ------------------------------------------------------------------

    def load(
        self, cluster: int, addr: int, width: int, hints: HintBundle, cycle: int
    ) -> int:
        block = addr // self.config.l1_block
        cfg = self.config
        if self._present(cluster, block):
            self.stats.local_hits += 1
            self._touch(cluster, block)
            return cycle + cfg.distributed_local_latency

        owner = self._owner.get(block)
        if owner is not None and owner != cluster:
            # Remote modified copy: write back, both end up sharers.
            self.stats.remote_dirty += 1
            del self._owner[block]
            self._sharers[block] = {owner, cluster}
            self._touch(cluster, block)
            return cycle + cfg.distributed_remote_latency + cfg.coherence_penalty

        sharers = self._sharers.get(block, set())
        remote_sharers = sharers - {cluster}
        if remote_sharers:
            self.stats.remote_clean += 1
            sharers.add(cluster)
            self._sharers[block] = sharers
            self._touch(cluster, block)
            return cycle + cfg.distributed_remote_latency

        self.stats.misses_to_l2 += 1
        self._sharers.setdefault(block, set()).add(cluster)
        self._touch(cluster, block)
        return cycle + cfg.distributed_local_latency + cfg.l2_latency

    def store(
        self,
        cluster: int,
        addr: int,
        width: int,
        hints: HintBundle,
        cycle: int,
        is_primary: bool = True,
    ) -> None:
        block = addr // self.config.l1_block
        if self._owner.get(block) == cluster:
            self._touch(cluster, block)
            return
        sharers = self._sharers.pop(block, set())
        old_owner = self._owner.pop(block, None)
        owners = {old_owner} if old_owner is not None else set()
        remote = (sharers | owners) - {cluster}
        if remote:
            self.stats.store_invalidations += len(remote)
            for other in remote:
                self._modules[other].pop(block, None)
        if cluster not in sharers and old_owner != cluster:
            self.stats.store_ownership_misses += 1
        self._owner[block] = cluster
        self._touch(cluster, block)

    def prefetch(self, cluster: int, addr: int, width: int, cycle: int) -> None:
        return None

    def invalidate_l0(self, cycle: int) -> None:
        return None

    def reset(self) -> None:
        self.__init__(self.config)

    # ------------------------------------------------------------------
    # Fast-path hooks (see UnifiedMemory for the contract)
    # ------------------------------------------------------------------

    def load_run(self, clusters, addrs, widths, hints_list, cycles) -> list[int]:
        load = self.load
        return [
            load(clusters[k], addrs[k], widths[k], hints_list[k], cycles[k])
            for k in range(len(addrs))
        ]

    def store_run(self, clusters, addrs, widths, hints_list, cycles, primaries) -> None:
        store = self.store
        for k in range(len(addrs)):
            store(
                clusters[k],
                addrs[k],
                widths[k],
                hints_list[k],
                cycles[k],
                is_primary=primaries[k],
            )

    def shift_time(self, delta: int) -> None:
        return None  # the MSI model keeps no timestamps

    def state_fingerprint(self, time_base: int, horizon: int = 4096) -> tuple:
        return (
            tuple(tuple(module) for module in self._modules),
            tuple(sorted((b, tuple(sorted(s))) for b, s in self._sharers.items())),
            tuple(sorted(self._owner.items())),
        )
