"""Set-associative cache model (the unified L1, and the per-cluster
modules of the distributed designs).

Write policy follows the paper: write-through, no write-allocate.
The model tracks tags and LRU order only — data values are never
simulated; timing and hit/miss behaviour are what the experiments need.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    load_hits: int = 0
    load_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0

    @property
    def loads(self) -> int:
        return self.load_hits + self.load_misses

    @property
    def load_hit_rate(self) -> float:
        return self.load_hits / self.loads if self.loads else 1.0

    def merge(self, other: "CacheStats") -> None:
        self.load_hits += other.load_hits
        self.load_misses += other.load_misses
        self.store_hits += other.store_hits
        self.store_misses += other.store_misses


@dataclass
class SetAssocCache:
    """Tag array with true-LRU replacement."""

    size: int
    assoc: int
    block: int
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.size % (self.assoc * self.block):
            raise ValueError("cache size must be a multiple of assoc * block")
        self.n_sets = self.size // (self.assoc * self.block)
        # set index -> OrderedDict[tag, None]; last item = most recent
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]

    def _locate(self, addr: int) -> tuple[int, int]:
        block_addr = addr // self.block
        return block_addr % self.n_sets, block_addr // self.n_sets

    def probe(self, addr: int) -> bool:
        """Tag check without side effects."""
        block_addr = addr // self.block
        return block_addr // self.n_sets in self._sets[block_addr % self.n_sets]

    def load(self, addr: int) -> bool:
        """Look up; allocate on miss (LRU eviction).  Returns hit?"""
        block_addr = addr // self.block
        n_sets = self.n_sets
        entries = self._sets[block_addr % n_sets]
        tag = block_addr // n_sets
        if tag in entries:
            entries.move_to_end(tag)
            self.stats.load_hits += 1
            return True
        self.stats.load_misses += 1
        if len(entries) >= self.assoc:
            entries.popitem(last=False)
        entries[tag] = None
        return False

    def store(self, addr: int) -> bool:
        """Write-through, no write-allocate.  Returns hit?"""
        block_addr = addr // self.block
        n_sets = self.n_sets
        entries = self._sets[block_addr % n_sets]
        tag = block_addr // n_sets
        if tag in entries:
            entries.move_to_end(tag)
            self.stats.store_hits += 1
            return True
        self.stats.store_misses += 1
        return False

    def invalidate(self, addr: int) -> bool:
        index, tag = self._locate(addr)
        return self._sets[index].pop(tag, _MISSING) is not _MISSING

    def invalidate_all(self) -> None:
        for entries in self._sets:
            entries.clear()

    def resident_blocks(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def fingerprint(self) -> tuple:
        """Canonical tag content + per-set LRU order (no timestamps).

        Used by the fast path's state-recurrence certificate: two equal
        fingerprints mean every future lookup/eviction decision evolves
        identically from here.
        """
        return tuple(tuple(entries) for entries in self._sets)


_MISSING = object()
