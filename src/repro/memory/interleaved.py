"""Word-interleaved distributed L1 with Attraction Buffers.

The comparison architecture from Gibert et al. (MICRO-35): the L1 is
split into one module per cluster and words are statically interleaved
(word ``w`` homes at cluster ``w mod N``).  A memory access from the
home cluster is *local*; anything else is *remote* and pays the
inter-cluster transit.  Each cluster also has a small hardware-managed
Attraction Buffer caching remotely-homed words at 1-cycle latency —
not compiler-controlled, plain LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..isa.hints import HintBundle
from ..machine.config import MachineConfig
from .l1cache import CacheStats, SetAssocCache

WORD = 4  # interleaving granularity in bytes


@dataclass
class InterleavedStats:
    local_accesses: int = 0
    remote_accesses: int = 0
    attraction_hits: int = 0
    modules: CacheStats = field(default_factory=CacheStats)

    @property
    def accesses(self) -> int:
        return self.local_accesses + self.remote_accesses + self.attraction_hits

    @property
    def local_rate(self) -> float:
        total = self.accesses
        served_near = self.local_accesses + self.attraction_hits
        return served_near / total if total else 1.0


class AttractionBuffer:
    """Small per-cluster LRU buffer of remotely-homed words."""

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._words: OrderedDict[int, None] = OrderedDict()

    def hit(self, word: int) -> bool:
        if word in self._words:
            self._words.move_to_end(word)
            return True
        return False

    def fill(self, word: int) -> None:
        if word in self._words:
            self._words.move_to_end(word)
            return
        while len(self._words) >= self.capacity:
            self._words.popitem(last=False)
        self._words[word] = None

    def invalidate(self, word: int) -> None:
        self._words.pop(word, None)

    def __len__(self) -> int:
        return len(self._words)


class WordInterleavedMemory:
    """Distributed word-interleaved L1 + attraction buffers."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.stats = InterleavedStats()
        n = config.n_clusters
        module_size = max(config.l1_block * config.l1_assoc, config.l1_size // n)
        self.modules = [
            SetAssocCache(
                size=module_size,
                assoc=config.l1_assoc,
                block=config.l1_block,
                stats=self.stats.modules,
            )
            for _ in range(n)
        ]
        self.attraction = [
            AttractionBuffer(config.attraction_entries) for _ in range(n)
        ]

    def home_of(self, addr: int) -> int:
        return (addr // WORD) % self.config.n_clusters

    # ------------------------------------------------------------------

    def load(
        self, cluster: int, addr: int, width: int, hints: HintBundle, cycle: int
    ) -> int:
        home = self.home_of(addr)
        if home == cluster:
            self.stats.local_accesses += 1
            hit = self.modules[home].load(addr)
            latency = self.config.distributed_local_latency
            if not hit:
                latency += self.config.l2_latency
            return cycle + latency
        word = addr // WORD
        if self.attraction[cluster].hit(word):
            self.stats.attraction_hits += 1
            return cycle + self.config.attraction_latency
        self.stats.remote_accesses += 1
        hit = self.modules[home].load(addr)
        latency = self.config.distributed_remote_latency
        if not hit:
            latency += self.config.l2_latency
        self.attraction[cluster].fill(word)
        return cycle + latency

    def store(
        self,
        cluster: int,
        addr: int,
        width: int,
        hints: HintBundle,
        cycle: int,
        is_primary: bool = True,
    ) -> None:
        home = self.home_of(addr)
        self.modules[home].store(addr)
        # Hardware keeps attraction buffers coherent: a store kills every
        # remotely-cached copy of the words it writes.
        first = addr // WORD
        last = (addr + width - 1) // WORD
        for word in range(first, last + 1):
            for other, buffer in enumerate(self.attraction):
                if other != self.home_of(word * WORD):
                    buffer.invalidate(word)

    def prefetch(self, cluster: int, addr: int, width: int, cycle: int) -> None:
        return None  # no software prefetch in this design

    def invalidate_l0(self, cycle: int) -> None:
        return None  # nothing compiler-managed to flush

    def reset(self) -> None:
        self.__init__(self.config)

    # ------------------------------------------------------------------
    # Fast-path hooks (see UnifiedMemory for the contract)
    # ------------------------------------------------------------------

    def load_run(self, clusters, addrs, widths, hints_list, cycles) -> list[int]:
        load = self.load
        return [
            load(clusters[k], addrs[k], widths[k], hints_list[k], cycles[k])
            for k in range(len(addrs))
        ]

    def store_run(self, clusters, addrs, widths, hints_list, cycles, primaries) -> None:
        store = self.store
        for k in range(len(addrs)):
            store(
                clusters[k],
                addrs[k],
                widths[k],
                hints_list[k],
                cycles[k],
                is_primary=primaries[k],
            )

    def shift_time(self, delta: int) -> None:
        return None  # latencies are fixed offsets; no timestamps kept

    def state_fingerprint(self, time_base: int, horizon: int = 4096) -> tuple:
        return (
            tuple(m.fingerprint() for m in self.modules),
            tuple(tuple(b._words) for b in self.attraction),
        )
