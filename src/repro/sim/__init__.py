"""Cycle-level simulation: lock-step executor and program runners."""

from .executor import LoopExecutor
from .interloop import flush_needed, flush_needed_since, loops_may_conflict
from .runner import INVALIDATE_OVERHEAD, SimOptions, make_memory, run_loop, run_program
from .stats import LoopResult, LoopRunResult, ProgramResult

__all__ = [
    "INVALIDATE_OVERHEAD",
    "LoopExecutor",
    "LoopResult",
    "LoopRunResult",
    "ProgramResult",
    "SimOptions",
    "flush_needed",
    "flush_needed_since",
    "loops_may_conflict",
    "make_memory",
    "run_loop",
    "run_program",
]
