"""Cycle-level simulation: lock-step executor and program runners."""

from .executor import LoopExecutor
from .interloop import (
    flush_needed,
    flush_needed_since,
    invocation_flush_needed,
    loops_may_conflict,
)
from .runner import (
    INVALIDATE_OVERHEAD,
    LoopPlan,
    SimOptions,
    SimulatedLoop,
    make_executor,
    make_memory,
    plan_program,
    run_loop,
    run_program,
    simulate_plan,
)
from .stats import LoopResult, LoopRunResult, ProgramResult, merge_stats
from .trace import StaticTrace, TraceExecutor, static_trace

__all__ = [
    "INVALIDATE_OVERHEAD",
    "LoopExecutor",
    "LoopPlan",
    "LoopResult",
    "LoopRunResult",
    "ProgramResult",
    "SimOptions",
    "SimulatedLoop",
    "StaticTrace",
    "TraceExecutor",
    "flush_needed",
    "flush_needed_since",
    "invocation_flush_needed",
    "loops_may_conflict",
    "make_executor",
    "make_memory",
    "merge_stats",
    "plan_program",
    "run_loop",
    "run_program",
    "simulate_plan",
    "static_trace",
]
