"""Selective inter-loop flushing (paper section 4.1, final paragraph).

The default inter-loop coherence policy invalidates every L0 buffer
when a loop exits.  The paper notes the flush can be skipped when
either (i) there are no memory dependences between the loop and the
code that follows (up to the next flush point), or (ii) the dependent
instructions that follow bypass L0 or share the loop's clusters.  This
module implements the *analysis* for case (i) at loop granularity —
consecutive loops with provably disjoint address footprints keep their
buffers warm — and the runner exposes it behind
``SimOptions(selective_flush=True)``.
"""

from __future__ import annotations

from ..ir.loop import Loop
from ..ir.memdep import patterns_may_alias


def loops_may_conflict(prev: Loop, nxt: Loop) -> bool:
    """Whether data written by ``prev`` may be read/written stale by ``nxt``.

    A flush between the two loops is unnecessary when nothing ``nxt``
    reads through L0 can have been modified by ``prev``: the only
    hazard of a stale buffer is a *load* hitting an entry that a store
    outside its cluster updated.  Conservatively, any store in ``prev``
    aliasing any memory access in ``nxt`` forces a flush, as does any
    store in ``nxt`` aliasing a ``prev`` load (the entry cached by
    ``prev``'s iteration could mask the new store's value for loads
    later in ``nxt``).
    """
    prev_stores = [i for i in prev.body if i.is_store]
    prev_loads = [i for i in prev.body if i.is_load]
    for nxt_instr in nxt.body:
        if not (nxt_instr.is_load or nxt_instr.is_store):
            continue
        np = nxt_instr.pattern
        assert np is not None
        counterparts = prev_stores if nxt_instr.is_load else prev_stores + prev_loads
        for prev_instr in counterparts:
            pp = prev_instr.pattern
            assert pp is not None
            same = pp.array.name == np.array.name
            if not same and not (
                prev.may_alias_arrays(pp.array.name, np.array.name)
                or nxt.may_alias_arrays(pp.array.name, np.array.name)
            ):
                continue
            if patterns_may_alias(pp, np, same_array=same) or not same:
                return True
    return False


def invocation_flush_needed(loop: Loop) -> bool:
    """Whether the L0 must be flushed *between invocations* of one loop.

    Between two invocations of the same loop, the only stale-read hazard
    is a load hitting an entry that a store — possibly issued from a
    different cluster — wrote under in the previous invocation.  That
    requires the loop to re-read data it stores: a load pattern aliasing
    a store pattern.  Loops that only stream (loads and stores over
    provably disjoint arrays) keep their buffers warm across
    invocations; stores to data the loop never loads cannot be read
    stale by the loop itself.

    Note this is deliberately *not* ``loops_may_conflict(loop, loop)``:
    that predicate also flags store-vs-store and store-vs-load pairs,
    which matter between *different* loops (a stale entry masking a
    later store's value) but within one loop are already handled by the
    compiler's coherence schemes (1C/NL0/PSR) that the tests hold to
    zero violations.
    """
    stores = loop.stores
    for ld in loop.loads:
        lp = ld.pattern
        assert lp is not None
        for st in stores:
            sp = st.pattern
            assert sp is not None
            same = sp.array.name == lp.array.name
            if not same and not loop.may_alias_arrays(sp.array.name, lp.array.name):
                continue
            if patterns_may_alias(sp, lp, same_array=same) or not same:
                return True
    return False


def flush_needed(prev: Loop | None, nxt: Loop | None) -> bool:
    """Flush policy between two consecutive loops (None = program edge).

    Program entry/exit always flush (the conservative contract with the
    surrounding scalar code, which this model does not analyse).
    """
    if prev is None or nxt is None:
        return True
    return loops_may_conflict(prev, nxt)


def flush_needed_since(unflushed: list[Loop], nxt: Loop | None) -> bool:
    """Flush decision against *everything* cached since the last flush.

    Skipping a flush lets entries from older loops survive, so the next
    loop must be checked against the whole unflushed set — pairwise
    adjacency alone would let a loop-1 entry go stale across a
    conflict-free loop 2 and be read by loop 3.
    """
    if nxt is None:
        return bool(unflushed)
    return any(loops_may_conflict(prev, nxt) for prev in unflushed)
