"""Precompiled-trace fast path for the lock-step loop simulator.

The reference interpreter (:class:`repro.sim.executor.LoopExecutor`)
re-merges the kernel's instruction instances with a heap on every run:
each of the ``iterations x items`` events costs a heap pop/push, a dict
lookup keyed on ``(uid, iteration)`` and a polymorphic
``pattern.address()`` call.  But a modulo-scheduled kernel is *static*:
instance ``i`` of item ``k`` fires at ``start_k + i*II``, so the event
order inside any kernel window of ``II`` cycles is a fixed permutation.
This module exploits that three ways, producing byte-identical results:

1. **Precompiled event traces** — :func:`static_trace` flattens the
   schedule once per compiled loop into per-window event tuples (kind,
   stage, row, pruned dependence table, access-pattern closed form).
   Events that can have no observable effect are dropped outright: a
   register dependence on a non-load producer can never stall (the
   producer's readiness is ``scheduled + latency`` under the *same or
   older* stall offset, and schedule validation proved the static slack
   non-positive), so ALU chains vanish from the trace and only loads,
   stores, prefetches and load-consuming interlock checks remain.
   Readiness records live in a ring buffer indexed by
   ``slot x (iteration mod history_window)`` instead of a pruned dict.

2. **Affine address streams** — strided patterns export
   ``(base, offset, stride, n_elems, elem_size)``
   (:meth:`AccessPattern.affine`), so per-access addresses are one
   inline expression; statically stall-free runs of same-kind memory
   events are issued through the memory models' ``load_run`` /
   ``store_run`` batch entry points.

3. **Convergence early-exit** — the executor digests every steady
   window (stall deltas with their stage attribution, load-completion
   offsets, memory-counter deltas).  All access streams repeat exactly
   every ``L = lcm(pattern input periods)`` iterations, so when the
   digests have matched period-``L`` for a full period *and* the
   memory's state fingerprint recurs across one aligned period, the
   remaining whole periods provably replay the recorded one: the
   executor adds ``m x`` the per-period stall/stat deltas, replays the
   per-iteration stall history, relabels the readiness ring and shifts
   the memory's timestamps by the skipped cycles.  This is an *exact*
   fast-forward — every counter, stall and the final memory state match
   the reference interpreter bit for bit (soundness conditions in
   docs/architecture.md).

Set ``REPRO_FAST_SIM=0`` (or ``SimOptions.fast_sim=False``) to fall
back to the reference interpreter; ``REPRO_FAST_SIM=interp`` keeps the
fast interpreter but disables the early-exit.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, fields, is_dataclass
from typing import Any

from ..ir.ddg import DepKind
from ..isa.memory_access import MemoryLayout, _splitmix64
from ..scheduler.driver import CompiledLoop
from ..scheduler.schedule import PlacedComm
from .stats import LoopRunResult

#: Event kinds in trace tuples.
EV_LOAD, EV_STORE, EV_PREFETCH, EV_CHECK = 0, 1, 2, 3

#: Largest input period (iterations) the convergence detector tracks.
CONV_PERIOD_CAP = 1024

#: Minimum steady windows (in multiples of the period) that make the
#: digest bookkeeping worthwhile: two aligned periods to detect plus at
#: least one to skip.
CONV_MIN_PERIODS = 3

#: Cycles after which timestamps are bucketed as "ancient" in state
#: fingerprints (see the soundness conditions in docs/architecture.md).
CONV_TIME_HORIZON = 4096


@dataclass
class _StaticEvent:
    """Build-time representation of one kernel-window event."""

    kind: int
    stage: int
    row: int
    cluster: int
    uid: int
    deps: tuple  # ((src_uid, distance, comm_start | None), ...)
    pattern: Any  # AccessPattern | None
    hints: Any
    latency: int
    is_primary: bool
    pf_distance: int


@dataclass
class StaticTrace:
    """The layout-independent fast-path trace of one compiled loop.

    Cached alongside the compiled artifact (``CompiledLoop.static_trace``)
    so persisted compile-cache entries carry it and warm runs skip the
    flattening entirely.
    """

    ii: int
    span: int
    events: list  # _StaticEvent, in canonical window order
    stage_min: int  # over kept events (0 when no events)
    stage_max: int
    history_window: int
    ring_slots: dict  # producer-load uid -> ring slot
    #: lcm of the access streams' input periods; None when any stream is
    #: non-affine (random) — the early-exit is then ineligible.
    input_period: int | None


def _load_dep_table(compiled: CompiledLoop) -> dict[int, tuple]:
    """uid -> ((src_uid, distance, comm_start | None), ...) — REG deps
    whose producer is a *load* (the only producers that can be late).

    Mirrors the reference executor's dependence table with the
    provably-inert entries removed: a non-load producer's readiness is
    its effective issue time plus a fixed latency, computed under a
    stall offset no newer than the consumer's, and schedule validation
    already guarantees the static slack is non-positive — such an entry
    can never raise ``r > t_eff``, with or without a communication hop.
    """
    schedule = compiled.schedule
    comm_of: dict[tuple[int, int], PlacedComm] = {}
    for comm in schedule.comms:
        key = (comm.producer_uid, comm.dst_cluster)
        best = comm_of.get(key)
        if best is None or comm.start + comm.latency < best.start + best.latency:
            comm_of[key] = comm
    deps: dict[int, tuple] = {}
    for uid, op in schedule.placed.items():
        entries = []
        for edge in compiled.ddg.preds[uid]:
            if edge.kind is not DepKind.REG:
                continue
            src_op = schedule.placed.get(edge.src)
            if src_op is None or not src_op.instr.is_load:
                continue
            comm = None
            if src_op.cluster != op.cluster:
                comm = comm_of.get((edge.src, op.cluster))
            entries.append(
                (edge.src, edge.distance, comm.start if comm is not None else None)
            )
        if entries:
            deps[uid] = tuple(entries)
    return deps


def static_trace(compiled: CompiledLoop) -> StaticTrace:
    """Build (or fetch the cached) static trace of a compiled loop."""
    cached = getattr(compiled, "static_trace", None)
    if isinstance(cached, StaticTrace):
        return cached
    trace = _build_static_trace(compiled)
    compiled.static_trace = trace
    return trace


def _build_static_trace(compiled: CompiledLoop) -> StaticTrace:
    schedule = compiled.schedule
    ii = schedule.ii
    deps = _load_dep_table(compiled)

    max_distance = max((e.distance for e in compiled.ddg.edges), default=0)
    history_window = schedule.stage_count + max_distance + 8  # = reference

    # Ring slots for every load that some kept dependence reads.
    needed = {src for entries in deps.values() for (src, _, _) in entries}
    ring_slots = {uid: slot for slot, uid in enumerate(sorted(needed))}

    events: list[_StaticEvent] = []
    for start, kind, payload in schedule.kernel_items():
        stage, row = start // ii, start % ii
        if kind == "prefetch":
            events.append(
                _StaticEvent(
                    kind=EV_PREFETCH,
                    stage=stage,
                    row=row,
                    cluster=payload.cluster,
                    uid=payload.covers_uid,
                    deps=(),
                    pattern=payload.instr.pattern,
                    hints=None,
                    latency=0,
                    is_primary=True,
                    pf_distance=payload.distance,
                )
            )
            continue
        op = payload
        instr = op.instr
        ev_deps = deps.get(instr.uid, ()) if kind == "op" else ()
        if instr.is_load and kind == "op":
            ev_kind = EV_LOAD
        elif instr.is_store:
            ev_kind = EV_STORE
        elif ev_deps:
            ev_kind = EV_CHECK  # interlock check only (ALU consuming a load)
        else:
            # No memory access, no possible stall, and its readiness —
            # deterministic by schedule validity — is never read back:
            # the event cannot influence anything observable.
            continue
        events.append(
            _StaticEvent(
                kind=ev_kind,
                stage=stage,
                row=row,
                cluster=op.cluster,
                uid=instr.uid,
                deps=ev_deps,
                pattern=instr.pattern,
                hints=op.hints,
                latency=op.latency,
                is_primary=op.is_primary,
                pf_distance=0,
            )
        )

    # Canonical window order: events fire at q*II + row; ties resolve by
    # position in the start-sorted item list, which the stable sort by
    # row preserves — exactly the reference heap's pop order.
    order = sorted(range(len(events)), key=lambda k: events[k].row)
    events = [events[k] for k in order]

    stages = [e.stage for e in events]
    period: int | None = 1
    for e in events:
        if e.pattern is None:
            continue
        p = e.pattern.input_period
        if p is None:
            period = None
            break
        period = period * p // math.gcd(period, p)

    return StaticTrace(
        ii=ii,
        span=schedule.span,
        events=events,
        stage_min=min(stages) if stages else 0,
        stage_max=max(stages) if stages else 0,
        history_window=history_window,
        ring_slots=ring_slots,
        input_period=period,
    )


def _batch_addrs(params, q: int) -> list:
    """Addresses of one batch run in window ``q`` (closed form)."""
    return [
        base
        + (
            ((off0 + (q - stage) * strd) % nelems)
            if strd is not None
            else _splitmix64(seedk + q - stage) % nelems
        )
        * esize
        for (stage, base, off0, strd, nelems, esize, seedk) in params
    ]


def _stat_leaves(stats) -> list:
    """Flat (object, field) list over a nested stats dataclass."""
    leaves = []
    for f in fields(stats):
        value = getattr(stats, f.name)
        if is_dataclass(value) and not isinstance(value, type):
            leaves.extend(_stat_leaves(value))
        elif isinstance(value, (int, float)):
            leaves.append((stats, f.name))
    return leaves


class TraceExecutor:
    """Fast-path executor: byte-identical to the reference interpreter.

    Binds a :class:`StaticTrace` to one (memory, layout) pair; the
    per-run inner loop walks precompiled window plans instead of a heap.
    """

    def __init__(
        self,
        compiled: CompiledLoop,
        memory,
        layout: MemoryLayout,
        *,
        convergence: bool = True,
    ) -> None:
        self.compiled = compiled
        self.schedule = compiled.schedule
        self.config = compiled.schedule.config
        self.memory = memory
        self.layout = layout
        for array in compiled.loop.arrays:
            layout.ensure(array)

        self.static = static_trace(compiled)
        self._bind(convergence)

    # ------------------------------------------------------------------
    # Binding: resolve addresses against the layout, plan the windows
    # ------------------------------------------------------------------

    def _bind(self, convergence: bool) -> None:
        st = self.static
        self.ii = st.ii
        self._window = st.history_window
        self._n_slots = len(st.ring_slots)
        events = []
        for e in st.events:
            if e.pattern is not None:
                affine = e.pattern.affine(self.layout)
                if affine is not None:
                    base, off0, strd, nelems, esize = affine
                    seedk = 0
                else:
                    base = self.layout.base_of(e.pattern.array)
                    off0, strd = 0, None
                    nelems = e.pattern.array.n_elems
                    esize = e.pattern.elem_size
                    seedk = e.pattern.seed * 0x10001
            else:
                base = off0 = nelems = esize = seedk = 0
                strd = None
            deps = tuple(
                (st.ring_slots[src], dist, comm_start)
                for (src, dist, comm_start) in e.deps
            )
            slot = st.ring_slots.get(e.uid, -1) if e.kind == EV_LOAD else -1
            extra = e.pf_distance if e.kind == EV_PREFETCH else e.is_primary
            events.append(
                (
                    e.kind,
                    e.stage,
                    e.row,
                    deps,
                    e.cluster,
                    e.hints,
                    e.latency,
                    slot,
                    base,
                    off0,
                    strd,
                    nelems,
                    esize,
                    seedk,
                    extra,
                )
            )
        self._events = events
        cache_period = (
            st.input_period
            if st.input_period is not None and st.input_period <= 2 * CONV_PERIOD_CAP
            else None
        )
        self._segments = self._plan_segments(events, cache_period)

        mem = self.memory
        self._convergence = (
            convergence
            and st.input_period is not None
            and st.input_period <= CONV_PERIOD_CAP
            and hasattr(mem, "state_fingerprint")
            and hasattr(mem, "shift_time")
        )
        self._stat_leaves = _stat_leaves(mem.stats) if self._convergence else []

    @staticmethod
    def _batch_meta(evs, cache_period) -> tuple:
        """Precomputed per-segment statics: everything about a batch run
        that does not depend on the window or the stall offset.

        Addresses are a pure function of the window with period equal to
        the streams' input period, so each segment carries a per-phase
        address cache when that period is small enough to memoise.
        """
        rows = tuple(ev[2] for ev in evs)
        clusters = [ev[4] for ev in evs]
        widths = [ev[12] for ev in evs]
        hints_list = [ev[5] for ev in evs]
        slots = tuple(ev[7] for ev in evs)
        lats = tuple(ev[6] for ev in evs)
        extras = [ev[14] for ev in evs]
        # Prefetch lookahead folds into the stage: iteration (q - stage)
        # + distance == q - (stage - distance).
        params = tuple(
            (
                ev[1] - (ev[14] if ev[0] == EV_PREFETCH else 0),
                ev[8],
                ev[9],
                ev[10],
                ev[11],
                ev[12],
                ev[13],
            )
            for ev in evs
        )
        cache = [None] * cache_period if cache_period is not None else None
        return (
            rows,
            clusters,
            widths,
            hints_list,
            slots,
            lats,
            extras,
            params,
            cache,
            cache_period,
        )

    @classmethod
    def _plan_segments(cls, events, cache_period) -> list:
        """Split the steady window into scalar stretches and batch runs.

        A *run* is a maximal stretch of consecutive, dependence-free,
        same-kind memory events: no event in it can change the stall
        offset, so every address and issue cycle is known up front and
        the whole run goes through one ``load_run``/``store_run`` call.
        """
        segments: list = []
        scalar: list = []
        k = 0
        n = len(events)
        while k < n:
            ev = events[k]
            kind = ev[0]
            if kind == EV_CHECK or ev[3]:
                scalar.append(ev)
                k += 1
                continue
            j = k
            while j < n and events[j][0] == kind and not events[j][3]:
                j += 1
            if j - k < 3:
                scalar.extend(events[k:j])
                k = j
                continue
            if scalar:
                segments.append((0, tuple(scalar), None))
                scalar = []
            run = tuple(events[k:j])
            segments.append((kind + 1, run, cls._batch_meta(run, cache_period)))
            k = j
        if scalar:
            segments.append((0, tuple(scalar), None))
        return segments

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, iterations: int, *, start_cycle: int = 0) -> LoopRunResult:
        """Execute ``iterations`` kernel iterations; returns cycle counts.

        Byte-identical to ``LoopExecutor.run`` — same stall totals and
        per-iteration history, same memory-system calls in the same
        order at the same cycles — while interpreting only the windows
        the convergence certificate cannot fast-forward.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        n = iterations
        ii = self.ii
        events = self._events
        stall = 0
        late = 0
        history = [0] * n
        skipped = 0
        W = self._window
        ring_iter = [[-1] * W for _ in range(self._n_slots)]
        ring_val = [[0] * W for _ in range(self._n_slots)]
        bus_latency = self.config.bus_latency
        mem = self.memory
        mem_load = mem.load
        mem_store = mem.store
        mem_prefetch = mem.prefetch

        if events:
            stage_min, stage_max = self.static.stage_min, self.static.stage_max
            q_last = n - 1 + stage_max
            steady_lo, steady_hi = stage_max, n - 1 + stage_min
        else:
            q_last = -1
            steady_lo, steady_hi = 0, -1

        # Convergence machinery (armed only when it can pay off).
        L = self.static.input_period if self._convergence else None
        conv_on = (
            L is not None
            and steady_hi - steady_lo + 1 >= CONV_MIN_PERIODS * L + 2
        )
        dig_hist: deque = deque(maxlen=L) if conv_on else deque()
        period_records: deque = deque(maxlen=L) if conv_on else deque()
        streak = 0
        fp_prev = None
        leaves = self._stat_leaves

        q = 0
        while q <= q_last:
            in_steady = steady_lo <= q <= steady_hi
            digesting = conv_on and in_steady
            if digesting:
                stall0, late0 = stall, late
                stats_before = [getattr(o, f) for o, f in leaves]
                win_stalls: list = []
                win_dones: list = []

            if in_steady:
                plan = self._segments
            else:
                plan = (
                    (0, tuple(e for e in events if 0 <= q - e[1] < n), None),
                )

            qii = q * ii + start_cycle
            for mode, evs, meta in plan:
                if mode == 0:
                    for ev in evs:
                        (
                            kind,
                            stage,
                            row,
                            deps,
                            cluster,
                            hints,
                            lat,
                            slot,
                            base,
                            off0,
                            strd,
                            nelems,
                            esize,
                            seedk,
                            extra,
                        ) = ev
                        i = q - stage
                        t_eff = qii + row + stall
                        for src_slot, dist, comm_start in deps:
                            j = i - dist
                            if j < 0:
                                continue
                            rs = j % W
                            if ring_iter[src_slot][rs] != j:
                                continue
                            r = ring_val[src_slot][rs]
                            if comm_start is not None:
                                ce = comm_start + j * ii + stall + start_cycle
                                if ce > r:
                                    r = ce
                                r += bus_latency
                            if r > t_eff:
                                delta = r - t_eff
                                stall += delta
                                history[i] += delta
                                if digesting:
                                    win_stalls.append((stage, delta))
                                t_eff = r
                        if kind == EV_LOAD:
                            if strd is not None:
                                addr = base + ((off0 + i * strd) % nelems) * esize
                            else:
                                addr = base + (_splitmix64(seedk + i) % nelems) * esize
                            done = mem_load(cluster, addr, esize, hints, t_eff)
                            if slot >= 0:
                                rs = i % W
                                ring_iter[slot][rs] = i
                                ring_val[slot][rs] = done
                            if done > t_eff + lat:
                                late += 1
                            if digesting:
                                win_dones.append(done - t_eff)
                        elif kind == EV_STORE:
                            if strd is not None:
                                addr = base + ((off0 + i * strd) % nelems) * esize
                            else:
                                addr = base + (_splitmix64(seedk + i) % nelems) * esize
                            mem_store(
                                cluster, addr, esize, hints, t_eff, is_primary=extra
                            )
                        elif kind == EV_PREFETCH:
                            ip = i + extra
                            if strd is not None:
                                addr = base + ((off0 + ip * strd) % nelems) * esize
                            else:
                                addr = base + (_splitmix64(seedk + ip) % nelems) * esize
                            mem_prefetch(cluster, addr, esize, t_eff)
                        # EV_CHECK: dependence check was the whole effect.
                    continue

                # Batch run: dependence-free, so the stall offset is
                # frozen for the whole run and addresses/cycles are
                # closed-form (and periodic — served from the per-phase
                # address cache once every phase has been seen).
                (
                    rows,
                    clusters,
                    widths,
                    hints_list,
                    slots,
                    lats,
                    extras,
                    params,
                    cache,
                    cache_period,
                ) = meta
                if cache is not None:
                    ph = q % cache_period
                    addrs = cache[ph]
                    if addrs is None:
                        addrs = _batch_addrs(params, q)
                        cache[ph] = addrs
                else:
                    addrs = _batch_addrs(params, q)
                t0 = qii + stall
                cycles = [t0 + r for r in rows]
                if mode == 1:  # loads
                    dones = mem.load_run(clusters, addrs, widths, hints_list, cycles)
                    for k, done in enumerate(dones):
                        slot = slots[k]
                        if slot >= 0:
                            i = q - evs[k][1]
                            rs = i % W
                            ring_iter[slot][rs] = i
                            ring_val[slot][rs] = done
                        if done > cycles[k] + lats[k]:
                            late += 1
                        if digesting:
                            win_dones.append(done - cycles[k])
                elif mode == 2:  # stores
                    mem.store_run(
                        clusters, addrs, widths, hints_list, cycles, extras
                    )
                else:  # mode == 3, prefetches
                    for k, addr in enumerate(addrs):
                        mem_prefetch(clusters[k], addr, widths[k], cycles[k])

            if digesting:
                stats_delta = tuple(
                    getattr(o, f) - b for (o, f), b in zip(leaves, stats_before)
                )
                digest = (
                    stall - stall0,
                    tuple(win_stalls),
                    tuple(win_dones),
                    stats_delta,
                    late - late0,
                )
                if len(dig_hist) == L and dig_hist[0] == digest:
                    streak += 1
                else:
                    streak = 0
                dig_hist.append(digest)
                period_records.append(
                    (tuple(win_stalls), stats_delta, late - late0, stall - stall0)
                )

                if (q - steady_lo) % L == L - 1:
                    if streak >= L:
                        fp = self._fingerprint(
                            q, ii, stall, start_cycle, ring_iter, ring_val, W
                        )
                        if fp_prev == fp and fp_prev is not None:
                            m = (steady_hi - q) // L
                            if m >= 1:
                                skipped += m * L
                                stall, late = self._fast_forward(
                                    q,
                                    m,
                                    L,
                                    period_records,
                                    history,
                                    leaves,
                                    stall,
                                    late,
                                    ring_iter,
                                    ring_val,
                                    W,
                                )
                                q += m * L
                                conv_on = False  # nothing left worth skipping
                        fp_prev = fp
                    else:
                        fp_prev = None
            q += 1

        compute = (n - 1) * ii + self.static.span
        self._last_stall_by_iteration = history
        self._last_converged = skipped > 0
        return LoopRunResult(
            iterations=n,
            compute_cycles=compute,
            stall_cycles=stall,
            late_loads=late,
            simulated_iterations=n - skipped,
        )

    # ------------------------------------------------------------------
    # Convergence helpers
    # ------------------------------------------------------------------

    def _fingerprint(self, q, ii, stall, start_cycle, ring_iter, ring_val, W):
        """State certificate after window ``q``: memory + readiness ring,
        timestamps and iteration labels relative to the next window."""
        time_base = (q + 1) * ii + stall + start_cycle
        ring = []
        for slot in range(self._n_slots):
            iters = ring_iter[slot]
            vals = ring_val[slot]
            live = tuple(
                sorted(
                    (iters[p] - q, vals[p] - time_base)
                    for p in range(W)
                    if iters[p] >= 0 and q - iters[p] < W
                )
            )
            ring.append(live)
        return (
            self.memory.state_fingerprint(time_base, CONV_TIME_HORIZON),
            tuple(ring),
        )

    def _fast_forward(
        self,
        q,
        m,
        L,
        period_records,
        history,
        leaves,
        stall,
        late,
        ring_iter,
        ring_val,
        W,
    ):
        """Apply ``m`` whole periods' worth of evolution exactly.

        ``period_records[u]`` describes window ``q - L + 1 + u``; window
        ``q + 1 + j`` of the skipped range replays record ``j % L``.
        """
        sigma = sum(rec[3] for rec in period_records)
        lam = sum(rec[2] for rec in period_records)
        records = list(period_records)
        for j in range(m * L):
            w = q + 1 + j
            for stage, amount in records[j % L][0]:
                history[w - stage] += amount
        for idx, (obj, name) in enumerate(leaves):
            total = sum(rec[1][idx] for rec in records)
            if total:
                setattr(obj, name, getattr(obj, name) + m * total)
        delta_t = m * L * self.ii + m * sigma
        self.memory.shift_time(delta_t)
        shift = m * L
        for slot in range(self._n_slots):
            iters = ring_iter[slot]
            vals = ring_val[slot]
            new_i = [-1] * W
            new_v = [0] * W
            for p in range(W):
                it = iters[p]
                if it >= 0:
                    ni = it + shift
                    new_i[ni % W] = ni
                    new_v[ni % W] = vals[p] + delta_t
            ring_iter[slot] = new_i
            ring_val[slot] = new_v
        return stall + m * sigma, late + m * lam

    # ------------------------------------------------------------------
    # Introspection (mirrors the reference executor)
    # ------------------------------------------------------------------

    @property
    def last_stall_by_iteration(self) -> list[int]:
        """Per-iteration stall contributions of the most recent run()."""
        return getattr(self, "_last_stall_by_iteration", [])

    @property
    def last_converged(self) -> bool:
        """Did the most recent run() fast-forward any steady periods?"""
        return getattr(self, "_last_converged", False)
