"""Loop- and program-level simulation drivers.

``run_loop`` handles one loop's full life: compile, simulate a capped
number of iterations, extrapolate the steady state to the declared trip
count, and account for repeated invocations (cold first run, warm
re-runs with the L0 buffers invalidated between them — the paper's
inter-loop coherence flush).

``run_program`` runs a whole benchmark in three phases:

1. **Plan** (sequential, analysis only): lay out the shared address
   space and decide every loop's flush policy — between-invocation
   flushes from the loop's own reuse pattern, after-loop flushes from
   the selective-flush analysis against everything left unflushed.
2. **Simulate** (pure, parallelisable): each loop compiles (through the
   compile-artifact cache) and simulates against a *private* memory
   instance at clock zero.  Loops are independent jobs, so they fan out
   across worker processes (``SimOptions.loop_workers``) and produce
   byte-identical results to the serial path by construction.
3. **Stitch** (sequential): advance the program's memory clock loop by
   loop and merge the per-loop statistics into one program record.

The private-memory split means program-order L1 warm-up across loop
boundaries is not modelled (each loop's own invocations still warm its
caches); the paper's inter-loop coherence costs are carried entirely by
the planned flushes and their cycle overheads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..isa.memory_access import MemoryLayout
from ..machine.config import ArchKind, MachineConfig
from ..memory.hierarchy import UnifiedMemory
from ..memory.interleaved import WordInterleavedMemory
from ..memory.multivliw import MultiVLIWMemory
from ..scheduler.driver import CompiledLoop
from .executor import LoopExecutor
from .stats import LoopResult, LoopRunResult, ProgramResult, merge_stats

#: Cycles charged per L0 flush for the invalidate_buffer instructions
#: (one VLIW cycle: the invalidate issues in all clusters).
INVALIDATE_OVERHEAD = 1


def make_memory(config: MachineConfig):
    if config.arch in (ArchKind.UNIFIED, ArchKind.L0):
        return UnifiedMemory(config)
    if config.arch is ArchKind.MULTIVLIW:
        return MultiVLIWMemory(config)
    if config.arch is ArchKind.INTERLEAVED:
        return WordInterleavedMemory(config)
    raise ValueError(f"unknown architecture {config.arch}")


@dataclass
class SimOptions:
    """Knobs shared by all experiments.

    ``loop_workers`` and ``compile_cache_dir`` tune *how* a simulation
    executes, never what it computes (loop fan-out is byte-identical to
    serial; the compile cache is content-addressed), so they are
    excluded from result-cache keys via ``no_cache_key``.
    """

    sim_cap: int = 1500  # max kernel iterations simulated per invocation
    warm_invocations: int = 1  # warm invocations simulated before scaling
    compile_kwargs: dict = field(default_factory=dict)
    #: Scheduler backend every loop compiles with ("sms" or "exact").
    scheduler: str = "sms"
    #: Skip the end-of-loop L0 flush when the next loop provably touches
    #: disjoint data (paper section 4.1's selective-flushing remark).
    selective_flush: bool = False
    #: Worker processes for the per-loop simulate phase of one program
    #: (None/0/1 serial, N processes, negative = all cores).
    loop_workers: int | None = field(default=None, metadata={"no_cache_key": True})
    #: Persist compile artifacts under this directory (None = in-memory
    #: process-wide cache only).
    compile_cache_dir: str | None = field(default=None, metadata={"no_cache_key": True})
    #: Use the precompiled-trace fast-path executor (byte-identical to
    #: the reference interpreter; the ``REPRO_FAST_SIM`` environment
    #: variable overrides — "0" forces the reference, "interp" the fast
    #: interpreter without the early-exit).  Excluded from cache keys:
    #: the measured cycles and stats are identical either way (only the
    #: diagnostic ``simulated_iterations`` fields can differ).
    fast_sim: bool = field(default=True, metadata={"no_cache_key": True})
    #: Allow the fast path's convergence early-exit (exact fast-forward
    #: of proven-periodic steady state).
    fast_convergence: bool = field(default=True, metadata={"no_cache_key": True})

    def __post_init__(self) -> None:
        # Normalise the two spellings of the scheduler knob: a
        # ``scheduler`` entry in ``compile_kwargs`` is hoisted into the
        # field (winning over it), so equivalent runs share one
        # content-addressed result-cache key however they were built.
        if "scheduler" in self.compile_kwargs:
            self.compile_kwargs = dict(self.compile_kwargs)
            self.scheduler = self.compile_kwargs.pop("scheduler")


def _compile(loop, config: MachineConfig, options: SimOptions) -> CompiledLoop:
    """Compile one loop through the compile-artifact cache."""
    from ..pipeline.artifact import CompileOptions
    from ..pipeline.compilecache import compile_cached, get_compile_cache

    return compile_cached(
        loop,
        config,
        CompileOptions(scheduler=options.scheduler, **options.compile_kwargs),
        cache=get_compile_cache(options.compile_cache_dir),
    )


def _fast_mode(options: SimOptions) -> tuple[bool, bool]:
    """Resolve the (fast executor?, convergence?) pair.

    The ``REPRO_FAST_SIM`` environment variable is the debugging
    override: ``0``/``off``/``false`` force the reference interpreter,
    ``interp`` forces the fast interpreter without the early-exit, and
    anything else defers to the options.
    """
    env = os.environ.get("REPRO_FAST_SIM", "").strip().lower()
    if env in ("0", "off", "false"):
        return False, False
    if env == "interp":
        return True, False
    return options.fast_sim, options.fast_convergence


def make_executor(
    compiled: CompiledLoop,
    memory,
    layout: MemoryLayout,
    options: SimOptions | None = None,
):
    """The executor ``run_loop`` drives: fast path unless opted out."""
    options = options or SimOptions()
    fast, converge = _fast_mode(options)
    if not fast:
        return LoopExecutor(compiled, memory, layout)
    from .trace import TraceExecutor

    return TraceExecutor(compiled, memory, layout, convergence=converge)


def _extrapolated(
    executor, iterations: int, cap: int, clock: int
) -> tuple[LoopRunResult, int, str]:
    """Run up to ``cap`` iterations and extrapolate the steady state.

    Returns the (possibly scaled) run result, the advanced clock, and
    how the unsimulated remainder was covered: ``"none"`` (everything
    interpreted), ``"exact"`` (the fast path's convergence early-exit —
    cycle counts still exact), ``"statistical"`` (sim-cap extrapolation)
    or ``"exact+statistical"``.  ``result.simulated_iterations`` is the
    honest count of iterations actually interpreted.
    """
    simulated = min(iterations, cap)
    result = executor.run(simulated, start_cycle=clock)
    clock += result.total_cycles
    exact = getattr(executor, "last_converged", False)
    if simulated == iterations:
        return result, clock, ("exact" if exact else "none")
    # Steady-state stall rate from the second half of the simulated run
    # (the first half absorbs cold misses).
    history = executor.last_stall_by_iteration
    half = simulated // 2
    tail = history[half:]
    rate = sum(tail) / len(tail) if tail else 0.0
    remaining = iterations - simulated
    total = LoopRunResult(
        iterations=iterations,
        compute_cycles=(iterations - 1) * executor.schedule.ii
        + executor.schedule.span,
        stall_cycles=result.stall_cycles + int(round(rate * remaining)),
        late_loads=result.late_loads,
        simulated_iterations=result.simulated_iterations,
    )
    clock += (total.compute_cycles - result.compute_cycles) + int(
        round(rate * remaining)
    )
    return total, clock, ("exact+statistical" if exact else "statistical")


def run_loop(
    compiled: CompiledLoop,
    memory,
    layout: MemoryLayout,
    *,
    invocations: int = 1,
    options: SimOptions | None = None,
    clock: int = 0,
    flush_between: bool = True,
    flush_after: bool = True,
) -> tuple[LoopResult, int]:
    """Simulate all invocations of one compiled loop.

    ``flush_between``/``flush_after`` control the inter-loop L0
    invalidation (both True under the paper's default conservative
    policy; the selective-flush analysis may clear them).  ``N``
    invocations perform ``N - 1`` between-flushes plus one after-flush,
    and each performed flush costs :data:`INVALIDATE_OVERHEAD` cycles on
    the L0 architecture.  Returns the aggregated result and the advanced
    memory clock.
    """
    options = options or SimOptions()
    executor = make_executor(compiled, memory, layout, options)
    trip = compiled.loop.trip_count
    l0_arch = compiled.schedule.config.arch is ArchKind.L0

    cold, clock, kind = _extrapolated(executor, trip, options.sim_cap, clock)
    compute = cold.compute_cycles
    stall = cold.stall_cycles
    simulated_iters = cold.simulated_iterations
    kinds = {kind}
    if invocations > 1:
        if flush_between:
            memory.invalidate_l0(clock)
        warm_runs = min(invocations - 1, options.warm_invocations)
        warm_compute = warm_stall = 0
        warm: LoopRunResult | None = None
        for _ in range(warm_runs):
            warm, clock, kind = _extrapolated(executor, trip, options.sim_cap, clock)
            kinds.add(kind)
            simulated_iters += warm.simulated_iterations
            if flush_between:
                memory.invalidate_l0(clock)
            warm_compute += warm.compute_cycles
            warm_stall += warm.stall_cycles
        assert warm is not None
        remaining = invocations - 1 - warm_runs
        if remaining:
            # Unsimulated invocations replicate the last warm run — a
            # statistical extrapolation like the sim-cap scaling, and
            # reported as such.
            kinds.add("statistical")
        compute += warm_compute + remaining * warm.compute_cycles
        stall += warm_stall + remaining * warm.stall_cycles
    if flush_after and (invocations == 1 or not flush_between):
        # flush_between already invalidated after the last simulated
        # warm run; only the remaining cases need the final invalidate.
        memory.invalidate_l0(clock)
    if l0_arch:
        flushes = (invocations - 1 if flush_between else 0) + (1 if flush_after else 0)
        overhead = flushes * INVALIDATE_OVERHEAD
        compute += overhead
        clock += overhead

    # Commutative reductions: set order cannot affect the result.
    exact = any(k.startswith("exact") for k in kinds)  # analysis: allow(A103)
    statistical = any(k.endswith("statistical") for k in kinds)  # analysis: allow(A103)
    extrapolated = (
        "exact+statistical"
        if exact and statistical
        else "exact"
        if exact
        else "statistical"
        if statistical
        else "none"
    )
    result = LoopResult(
        name=compiled.loop.name,
        ii=compiled.schedule.ii,
        unroll_factor=compiled.unroll_factor,
        trip_count=trip,
        invocations=invocations,
        compute_cycles=compute,
        stall_cycles=stall,
        simulated_iterations=simulated_iters,
        extrapolated=extrapolated,
    )
    return result, clock


# ----------------------------------------------------------------------
# The three-phase program runner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoopPlan:
    """Phase-1 output: one loop's simulation job, flush policy decided.

    Everything a worker process needs crosses the boundary here: the
    loop IR, the shared program-wide memory layout (so addresses match
    the serial path exactly) and the pre-decided flush flags.
    """

    loop: object  # repro.ir.Loop
    invocations: int
    config: MachineConfig
    options: SimOptions
    layout: MemoryLayout
    flush_between: bool
    flush_after: bool


@dataclass
class SimulatedLoop:
    """Phase-2 output: one loop simulated against a private memory."""

    result: LoopResult
    #: The loop's own advanced memory clock (simulation started at zero).
    #: Diagnostic only: program stitching does not thread a shared clock.
    clock_advance: int
    memory_stats: object


def plan_program(
    benchmark, config: MachineConfig, options: SimOptions | None = None
) -> list[LoopPlan]:
    """Phase 1: shared layout + sequential flush-policy analysis.

    Pure analysis — no compilation or simulation — so the sequential
    walk is cheap.  The ``unflushed`` set tracks loops whose L0 entries
    may still be resident; a loop flushes it only when a flush is
    actually performed (a between-invocation policy on a *single*
    invocation performs none — the bookkeeping bug this replaces
    dropped older resident loops in that case).
    """
    options = options or SimOptions()
    layout = MemoryLayout(align=config.l1_block)
    for spec in benchmark.loops:
        for array in spec.loop.arrays:
            layout.add(array)

    specs = list(benchmark.loops)
    plans: list[LoopPlan] = []
    unflushed: list = []  # loops whose L0 entries may still be resident
    for index, spec in enumerate(specs):
        if options.selective_flush:
            from .interloop import flush_needed_since, invocation_flush_needed

            flush_between = invocation_flush_needed(spec.loop)
            nxt = specs[index + 1].loop if index + 1 < len(specs) else None
            flush_after = flush_needed_since(unflushed + [spec.loop], nxt)
        else:
            flush_between = flush_after = True
        plans.append(
            LoopPlan(
                loop=spec.loop,
                invocations=spec.invocations,
                config=config,
                options=options,
                layout=layout,
                flush_between=flush_between,
                flush_after=flush_after,
            )
        )
        if flush_after:
            unflushed = []
        elif flush_between and spec.invocations > 1:
            # The between-invocation flushes wiped older residents; only
            # the final invocation's entries survive.
            unflushed = [spec.loop]
        else:
            unflushed.append(spec.loop)
    return plans


def simulate_plan(plan: LoopPlan) -> SimulatedLoop:
    """Phase 2: compile + simulate one planned loop (pure, picklable).

    Runs against a private memory instance at clock zero; the cycle
    counts are invariant to the absolute clock (all timestamps shift
    uniformly), which is what lets the stitching phase re-base each
    loop onto the program clock without re-simulating.
    """
    memory = make_memory(plan.config)
    compiled = _compile(plan.loop, plan.config, plan.options)
    result, clock = run_loop(
        compiled,
        memory,
        plan.layout,
        invocations=plan.invocations,
        options=plan.options,
        clock=0,
        flush_between=plan.flush_between,
        flush_after=plan.flush_after,
    )
    return SimulatedLoop(result=result, clock_advance=clock, memory_stats=memory.stats)


def run_program(
    benchmark,
    config: MachineConfig,
    *,
    options: SimOptions | None = None,
) -> ProgramResult:
    """Compile and simulate a whole benchmark on one architecture.

    ``benchmark`` is a ``repro.workloads.Benchmark``: named, weighted
    loop specs sharing one address space.  With
    ``options.loop_workers`` set, the per-loop simulate phase fans out
    across processes; results are byte-identical to the serial path.
    """
    options = options or SimOptions()
    plans = plan_program(benchmark, config, options)

    import multiprocessing

    from ..pipeline.executor import shared_executor

    loop_workers = options.loop_workers
    if loop_workers and multiprocessing.parent_process() is not None:
        # Already inside a worker (program-level fan-out): a nested pool
        # would oversubscribe — or deadlock fork-based pools — and buys
        # nothing, since parallel results are byte-identical to serial.
        loop_workers = None
    simulated = shared_executor(loop_workers).map(plans, fn=simulate_plan)

    # Phase 3: sequential stats stitching in program order.  No shared
    # clock is threaded between loops any more — each loop simulated at
    # clock zero against private memory (see the module docstring);
    # ``SimulatedLoop.clock_advance`` records each loop's own span for
    # diagnostics.
    result = ProgramResult(
        benchmark=benchmark.name,
        arch=config.arch.value,
        memory_stats=make_memory(config).stats,
    )
    for sim in simulated:
        result.loops.append(sim.result)
        merge_stats(result.memory_stats, sim.memory_stats)
    return result
