"""Loop- and program-level simulation drivers.

``run_loop`` handles one loop's full life: compile, simulate a capped
number of iterations, extrapolate the steady state to the declared trip
count, and account for repeated invocations (cold first run, warm
re-runs with the L0 buffers invalidated between them — the paper's
inter-loop coherence flush).

``run_program`` lays out a benchmark's arrays, runs each loop, and
aggregates into a :class:`ProgramResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.memory_access import MemoryLayout
from ..machine.config import ArchKind, MachineConfig
from ..memory.hierarchy import UnifiedMemory
from ..memory.interleaved import WordInterleavedMemory
from ..memory.multivliw import MultiVLIWMemory
from ..scheduler.driver import CompiledLoop, compile_loop
from .executor import LoopExecutor
from .stats import LoopResult, LoopRunResult, ProgramResult

#: Cycles charged per invocation for the end-of-loop invalidate_buffer
#: instructions (one VLIW cycle: the invalidate issues in all clusters).
INVALIDATE_OVERHEAD = 1


def make_memory(config: MachineConfig):
    if config.arch in (ArchKind.UNIFIED, ArchKind.L0):
        return UnifiedMemory(config)
    if config.arch is ArchKind.MULTIVLIW:
        return MultiVLIWMemory(config)
    if config.arch is ArchKind.INTERLEAVED:
        return WordInterleavedMemory(config)
    raise ValueError(f"unknown architecture {config.arch}")


@dataclass
class SimOptions:
    """Knobs shared by all experiments."""

    sim_cap: int = 1500  # max kernel iterations simulated per invocation
    warm_invocations: int = 1  # warm invocations simulated before scaling
    compile_kwargs: dict = field(default_factory=dict)
    #: Skip the end-of-loop L0 flush when the next loop provably touches
    #: disjoint data (paper section 4.1's selective-flushing remark).
    selective_flush: bool = False


def _extrapolated(
    executor: LoopExecutor, iterations: int, cap: int, clock: int
) -> tuple[LoopRunResult, int]:
    """Run up to ``cap`` iterations and extrapolate the steady state."""
    simulated = min(iterations, cap)
    result = executor.run(simulated, start_cycle=clock)
    clock += result.total_cycles
    if simulated == iterations:
        return result, clock
    # Steady-state stall rate from the second half of the simulated run
    # (the first half absorbs cold misses).
    history = executor.last_stall_by_iteration
    half = simulated // 2
    tail = history[half:]
    rate = sum(tail) / len(tail) if tail else 0.0
    remaining = iterations - simulated
    total = LoopRunResult(
        iterations=iterations,
        compute_cycles=(iterations - 1) * executor.schedule.ii
        + executor.schedule.span,
        stall_cycles=result.stall_cycles + int(round(rate * remaining)),
        late_loads=result.late_loads,
    )
    clock += (total.compute_cycles - result.compute_cycles) + int(
        round(rate * remaining)
    )
    return total, clock


def run_loop(
    compiled: CompiledLoop,
    memory,
    layout: MemoryLayout,
    *,
    invocations: int = 1,
    options: SimOptions | None = None,
    clock: int = 0,
    flush_between: bool = True,
    flush_after: bool = True,
) -> tuple[LoopResult, int]:
    """Simulate all invocations of one compiled loop.

    ``flush_between``/``flush_after`` control the inter-loop L0
    invalidation (both True under the paper's default conservative
    policy; the selective-flush analysis may clear them).
    Returns the aggregated result and the advanced memory clock.
    """
    options = options or SimOptions()
    executor = LoopExecutor(compiled, memory, layout)
    trip = compiled.loop.trip_count
    l0_arch = compiled.schedule.config.arch is ArchKind.L0
    overhead = INVALIDATE_OVERHEAD if (l0_arch and flush_between) else 0

    cold, clock = _extrapolated(executor, trip, options.sim_cap, clock)
    compute = cold.compute_cycles + overhead
    stall = cold.stall_cycles
    if invocations > 1:
        if flush_between:
            memory.invalidate_l0(clock)
        warm_runs = min(invocations - 1, options.warm_invocations)
        warm_compute = warm_stall = 0
        warm: LoopRunResult | None = None
        for _ in range(warm_runs):
            warm, clock = _extrapolated(executor, trip, options.sim_cap, clock)
            if flush_between:
                memory.invalidate_l0(clock)
            warm_compute += warm.compute_cycles + overhead
            warm_stall += warm.stall_cycles
        assert warm is not None
        remaining = invocations - 1 - warm_runs
        compute += warm_compute + remaining * (warm.compute_cycles + overhead)
        stall += warm_stall + remaining * warm.stall_cycles
    if flush_after and not flush_between:
        memory.invalidate_l0(clock)
    elif flush_after and invocations == 1:
        memory.invalidate_l0(clock)

    result = LoopResult(
        name=compiled.loop.name,
        ii=compiled.schedule.ii,
        unroll_factor=compiled.unroll_factor,
        trip_count=trip,
        invocations=invocations,
        compute_cycles=compute,
        stall_cycles=stall,
    )
    return result, clock


def run_program(
    benchmark,
    config: MachineConfig,
    *,
    options: SimOptions | None = None,
) -> ProgramResult:
    """Compile and simulate a whole benchmark on one architecture.

    ``benchmark`` is a ``repro.workloads.Benchmark``: named, weighted
    loop specs sharing one address space.
    """
    options = options or SimOptions()
    layout = MemoryLayout(align=config.l1_block)
    for spec in benchmark.loops:
        for array in spec.loop.arrays:
            layout.add(array)
    memory = make_memory(config)
    label = config.arch.value
    result = ProgramResult(benchmark=benchmark.name, arch=label, memory_stats=memory.stats)
    clock = 0
    specs = list(benchmark.loops)
    unflushed: list = []  # loops whose L0 entries may still be resident
    for index, spec in enumerate(specs):
        compiled = compile_loop(spec.loop, config, **options.compile_kwargs)
        if options.selective_flush:
            from .interloop import flush_needed_since, loops_may_conflict

            flush_between = loops_may_conflict(spec.loop, spec.loop)
            nxt = specs[index + 1].loop if index + 1 < len(specs) else None
            flush_after = flush_needed_since(unflushed + [spec.loop], nxt)
        else:
            flush_between = flush_after = True
        loop_result, clock = run_loop(
            compiled,
            memory,
            layout,
            invocations=spec.invocations,
            options=options,
            clock=clock,
            flush_between=flush_between,
            flush_after=flush_after,
        )
        if flush_after or flush_between:
            unflushed = [] if flush_after else [spec.loop]
        else:
            unflushed.append(spec.loop)
        result.loops.append(loop_result)
    return result
