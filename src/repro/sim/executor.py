"""Cycle-level execution of one modulo-scheduled loop.

The clusters run in lock-step, so a stall anywhere stalls everything:
the simulator keeps a single accumulated ``stall`` offset.  Instruction
instances are processed in scheduled order (iteration ``i`` of op ``n``
at ``start(n) + i * II``); when an instance's register sources are not
ready at its effective issue time (scheduled + stall so far), the
machine stalls for the difference — the stall-on-use interlock the
paper's "stall time" measures.  Only memory can be late: every other
producer's latency is deterministic and honoured by the schedule.

Inter-cluster values travel through the schedule's comm operations; an
arrival is ``max(comm's effective start, producer ready) + bus latency``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..ir.ddg import DepKind
from ..isa.memory_access import MemoryLayout
from ..isa.operations import Opcode
from ..scheduler.driver import CompiledLoop
from ..scheduler.schedule import PlacedComm, PlacedOp, PlacedPrefetch
from .stats import LoopRunResult


@dataclass
class _Item:
    """One schedulable unit in the kernel (op, replica or prefetch)."""

    start: int
    kind: str  # "op" | "replica" | "prefetch"
    op: PlacedOp | None = None
    prefetch: PlacedPrefetch | None = None


class LoopExecutor:
    """Executes a compiled loop against a memory system."""

    #: Iterations of producer history kept for readiness checks.
    HISTORY_SLACK = 8

    def __init__(
        self,
        compiled: CompiledLoop,
        memory,
        layout: MemoryLayout,
    ) -> None:
        self.compiled = compiled
        self.schedule = compiled.schedule
        self.config = compiled.schedule.config
        self.memory = memory
        self.layout = layout
        for array in compiled.loop.arrays:
            layout.ensure(array)

        self._items = self._build_items()
        self._deps = self._build_deps()
        max_distance = max(
            (e.distance for e in compiled.ddg.edges), default=0
        )
        self._history_window = (
            self.schedule.stage_count + max_distance + self.HISTORY_SLACK
        )

    # ------------------------------------------------------------------
    # Static preparation
    # ------------------------------------------------------------------

    def _build_items(self) -> list[_Item]:
        items: list[_Item] = []
        for start, kind, payload in self.schedule.kernel_items():
            if kind == "prefetch":
                items.append(_Item(start=start, kind=kind, prefetch=payload))
            else:
                items.append(_Item(start=start, kind=kind, op=payload))
        return items

    def _build_deps(self) -> dict[int, list[tuple[int, int, PlacedComm | None]]]:
        """uid -> [(producer uid, distance, comm or None)] for REG edges."""
        comm_of: dict[tuple[int, int], PlacedComm] = {}
        for comm in self.schedule.comms:
            key = (comm.producer_uid, comm.dst_cluster)
            best = comm_of.get(key)
            if best is None or comm.start + comm.latency < best.start + best.latency:
                comm_of[key] = comm
        deps: dict[int, list[tuple[int, int, PlacedComm | None]]] = {}
        for uid, op in self.schedule.placed.items():
            entries: list[tuple[int, int, PlacedComm | None]] = []
            for edge in self.compiled.ddg.preds[uid]:
                if edge.kind is not DepKind.REG:
                    continue
                src_op = self.schedule.placed.get(edge.src)
                if src_op is None:
                    continue
                comm = None
                if src_op.cluster != op.cluster:
                    comm = comm_of.get((edge.src, op.cluster))
                entries.append((edge.src, edge.distance, comm))
            if entries:
                deps[uid] = entries
        return deps

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, iterations: int, *, start_cycle: int = 0) -> LoopRunResult:
        """Execute ``iterations`` kernel iterations; returns cycle counts.

        ``start_cycle`` offsets all memory-system timestamps so repeated
        invocations see a monotonically advancing clock.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        ii = self.schedule.ii
        stall = 0
        late_loads = 0
        ready: dict[tuple[int, int], int] = {}
        stall_by_iteration: list[int] = [0] * iterations
        items = self._items
        n_items = len(items)
        remaining_per_iter = [n_items] * iterations
        bus_latency = self.config.bus_latency

        # K-way merge over iterations: (abs scheduled time, item index, iter).
        heap: list[tuple[int, int, int]] = [
            (items[idx].start, idx, 0) for idx in range(n_items)
        ]
        heapq.heapify(heap)

        prune_mark = 0
        while heap:
            sched_abs, idx, iteration = heapq.heappop(heap)
            if iteration + 1 < iterations:
                heapq.heappush(heap, (sched_abs + ii, idx, iteration + 1))
            item = items[idx]
            t_eff = sched_abs + stall + start_cycle

            if item.kind == "prefetch":
                prefetch = item.prefetch
                assert prefetch is not None
                pattern = prefetch.instr.pattern
                assert pattern is not None
                addr = pattern.address(iteration + prefetch.distance, self.layout)
                self.memory.prefetch(
                    prefetch.cluster, addr, pattern.elem_size, t_eff
                )
            else:
                op = item.op
                assert op is not None
                uid = op.instr.uid
                # Interlock: wait for late register sources.
                if item.kind == "op":
                    for src, distance, comm in self._deps.get(uid, ()):
                        j = iteration - distance
                        if j < 0:
                            continue
                        r = ready.get((src, j))
                        if r is None:
                            continue
                        if comm is not None:
                            comm_eff = comm.start + j * ii + stall + start_cycle
                            r = max(r, comm_eff) + bus_latency
                        if r > t_eff:
                            delta = r - t_eff
                            stall += delta
                            stall_by_iteration[iteration] += delta
                            t_eff = r
                instr = op.instr
                if instr.is_load and item.kind == "op":
                    pattern = instr.pattern
                    assert pattern is not None
                    addr = pattern.address(iteration, self.layout)
                    done = self.memory.load(
                        op.cluster, addr, pattern.elem_size, op.hints, t_eff
                    )
                    ready[(uid, iteration)] = done
                    if done > t_eff + op.latency:
                        late_loads += 1
                elif instr.is_store:
                    pattern = instr.pattern
                    assert pattern is not None
                    addr = pattern.address(iteration, self.layout)
                    self.memory.store(
                        op.cluster,
                        addr,
                        pattern.elem_size,
                        op.hints,
                        t_eff,
                        is_primary=op.is_primary,
                    )
                elif instr.opcode is not Opcode.NOP and instr.dest is not None:
                    ready[(uid, iteration)] = t_eff + self.config.latency_of(
                        instr.opcode
                    )
                remaining_per_iter[iteration] -= 1

            # Bounded history: drop producer records too old to matter.
            if iteration - prune_mark > 4 * self._history_window:
                horizon = iteration - self._history_window
                ready = {k: v for k, v in ready.items() if k[1] >= horizon}
                prune_mark = iteration

        compute = (iterations - 1) * ii + self.schedule.span
        self._last_stall_by_iteration = stall_by_iteration
        return LoopRunResult(
            iterations=iterations,
            compute_cycles=compute,
            stall_cycles=stall,
            late_loads=late_loads,
            simulated_iterations=iterations,
        )

    @property
    def last_stall_by_iteration(self) -> list[int]:
        """Per-iteration stall contributions of the most recent run()."""
        return getattr(self, "_last_stall_by_iteration", [])

    @property
    def last_converged(self) -> bool:
        """The reference interpreter never early-exits."""
        return False
