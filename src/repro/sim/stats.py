"""Result records produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass


def merge_stats(into, other):
    """Sum ``other``'s counters into ``into`` (recursively, in place).

    The memory subsystems' statistics records are nested dataclasses of
    numeric counters (derived quantities like hit rates are properties).
    The two-phase program runner simulates each loop against a private
    memory instance and stitches the per-loop statistics into one
    program-level record with this.
    """
    if type(into) is not type(other):
        raise TypeError(
            f"cannot merge {type(other).__name__} into {type(into).__name__}"
        )
    for f in fields(into):
        a = getattr(into, f.name)
        b = getattr(other, f.name)
        if is_dataclass(a) and not isinstance(a, type):
            merge_stats(a, b)
        elif isinstance(a, (int, float)):
            setattr(into, f.name, a + b)
        else:
            raise TypeError(
                f"stats field {f.name!r} is not mergeable ({type(a).__name__})"
            )
    return into


@dataclass
class LoopRunResult:
    """One execution of a modulo-scheduled loop (one invocation)."""

    iterations: int
    compute_cycles: int
    stall_cycles: int
    late_loads: int = 0
    #: Kernel iterations the executor actually interpreted cycle by
    #: cycle.  Equal to ``iterations`` unless the fast path's
    #: convergence early-exit proved a periodic steady state and
    #: fast-forwarded the rest exactly (the cycle counts are still exact
    #: either way; 0 on records predating the field).
    simulated_iterations: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    def scaled(self, factor: float) -> "LoopRunResult":
        return LoopRunResult(
            iterations=int(self.iterations * factor),
            compute_cycles=int(round(self.compute_cycles * factor)),
            stall_cycles=int(round(self.stall_cycles * factor)),
            late_loads=int(round(self.late_loads * factor)),
            simulated_iterations=int(self.simulated_iterations * factor),
        )


@dataclass
class LoopResult:
    """A loop's full contribution to a program (all invocations)."""

    name: str
    ii: int
    unroll_factor: int
    trip_count: int
    invocations: int
    compute_cycles: int
    stall_cycles: int
    #: Kernel iterations interpreted cycle by cycle across the simulated
    #: invocations (honest measurement count — the rest of the bar was
    #: scaled or fast-forwarded).
    simulated_iterations: int = 0
    #: How the unsimulated remainder was covered: "none" (everything
    #: interpreted), "exact" (convergence early-exit, cycle counts still
    #: exact), "statistical" (sim-cap extrapolation from the steady-state
    #: stall rate and/or unsimulated invocations replicating the last
    #: warm run), or "exact+statistical" (both applied).
    extrapolated: str = "none"

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def total_iterations(self) -> int:
        """Kernel iterations the loop's cycle totals stand for."""
        return self.trip_count * self.invocations

    @property
    def measured_fraction(self) -> float:
        """Share of the loop's iterations that were actually interpreted."""
        total = self.total_iterations
        if not total:
            return 1.0
        return min(1.0, self.simulated_iterations / total)


@dataclass
class ProgramResult:
    """One benchmark simulated on one architecture."""

    benchmark: str
    arch: str
    loops: list[LoopResult] = field(default_factory=list)
    #: architecture-specific memory statistics object (MemoryStats /
    #: InterleavedStats / MSIStats)
    memory_stats: object | None = None
    #: Provenance annotations stamped by execution layers (plain JSON
    #: scalars only).  The sweep service records graceful degradation
    #: here — e.g. ``{"degraded": "exact->sms", "degraded_after":
    #: "timeout"}`` when a budget-starved exact compile was retried with
    #: the SMS backend — so a served result is always honest about how
    #: it was produced.  Empty for a run that executed as requested.
    meta: dict = field(default_factory=dict)

    @property
    def compute_cycles(self) -> int:
        return sum(l.compute_cycles for l in self.loops)

    @property
    def stall_cycles(self) -> int:
        return sum(l.stall_cycles for l in self.loops)

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def measured_fraction(self) -> float:
        """Cycle-weighted share of the bar that was actually interpreted
        (the rest was exact fast-forward or statistical scaling)."""
        total = sum(l.total_cycles for l in self.loops)
        if not total:
            return 1.0
        return (
            sum(l.measured_fraction * l.total_cycles for l in self.loops) / total
        )

    @property
    def average_unroll_factor(self) -> float:
        """Dynamic-cycle-weighted average unroll factor (Figure 6 header)."""
        total = sum(l.total_cycles for l in self.loops)
        if not total:
            return 1.0
        return (
            sum(l.unroll_factor * l.total_cycles for l in self.loops) / total
        )
