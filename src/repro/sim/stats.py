"""Result records produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass


def merge_stats(into, other):
    """Sum ``other``'s counters into ``into`` (recursively, in place).

    The memory subsystems' statistics records are nested dataclasses of
    numeric counters (derived quantities like hit rates are properties).
    The two-phase program runner simulates each loop against a private
    memory instance and stitches the per-loop statistics into one
    program-level record with this.
    """
    if type(into) is not type(other):
        raise TypeError(
            f"cannot merge {type(other).__name__} into {type(into).__name__}"
        )
    for f in fields(into):
        a = getattr(into, f.name)
        b = getattr(other, f.name)
        if is_dataclass(a) and not isinstance(a, type):
            merge_stats(a, b)
        elif isinstance(a, (int, float)):
            setattr(into, f.name, a + b)
        else:
            raise TypeError(
                f"stats field {f.name!r} is not mergeable ({type(a).__name__})"
            )
    return into


@dataclass
class LoopRunResult:
    """One execution of a modulo-scheduled loop (one invocation)."""

    iterations: int
    compute_cycles: int
    stall_cycles: int
    late_loads: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    def scaled(self, factor: float) -> "LoopRunResult":
        return LoopRunResult(
            iterations=int(self.iterations * factor),
            compute_cycles=int(round(self.compute_cycles * factor)),
            stall_cycles=int(round(self.stall_cycles * factor)),
            late_loads=int(round(self.late_loads * factor)),
        )


@dataclass
class LoopResult:
    """A loop's full contribution to a program (all invocations)."""

    name: str
    ii: int
    unroll_factor: int
    trip_count: int
    invocations: int
    compute_cycles: int
    stall_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles


@dataclass
class ProgramResult:
    """One benchmark simulated on one architecture."""

    benchmark: str
    arch: str
    loops: list[LoopResult] = field(default_factory=list)
    #: architecture-specific memory statistics object (MemoryStats /
    #: InterleavedStats / MSIStats)
    memory_stats: object | None = None

    @property
    def compute_cycles(self) -> int:
        return sum(l.compute_cycles for l in self.loops)

    @property
    def stall_cycles(self) -> int:
        return sum(l.stall_cycles for l in self.loops)

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def average_unroll_factor(self) -> float:
        """Dynamic-cycle-weighted average unroll factor (Figure 6 header)."""
        total = sum(l.total_cycles for l in self.loops)
        if not total:
            return 1.0
        return (
            sum(l.unroll_factor * l.total_cycles for l in self.loops) / total
        )
