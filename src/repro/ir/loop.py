"""The loop-level IR: an innermost loop body as a list of instructions.

The paper's techniques target modulo-scheduled inner loops (~80% of the
dynamic instruction stream in its benchmarks).  A :class:`Loop` is the
unit the compiler consumes: a body of instructions in program order, a
trip count, and alias assertions describing which distinct arrays the
compiler must conservatively assume may overlap.

Register semantics: each virtual register has at most one def per
iteration.  A use reads the def from the same iteration when the def
appears earlier in body order, and the previous iteration's def
otherwise (a loop-carried flow dependence of distance 1).  Anti and
output register dependences are ignored: like the paper's IMPACT-based
framework we assume modulo variable expansion / rotating-register
renaming removes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Instruction
from ..isa.memory_access import ArrayRef
from ..isa.registers import VReg


@dataclass
class Loop:
    """An innermost loop in scheduling form."""

    name: str
    body: list[Instruction]
    trip_count: int
    #: Groups of array names the compiler cannot disambiguate from one
    #: another (beyond same-array accesses, which are always analysed).
    alias_groups: tuple[frozenset[str], ...] = ()
    #: Unroll factor already applied to this body (1 = original).
    unroll_factor: int = 1

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise ValueError(f"loop {self.name!r}: trip_count must be >= 1")
        seen: set[int] = set()
        for instr in self.body:
            if instr.uid in seen:
                raise ValueError(f"loop {self.name!r}: duplicate uid {instr.uid}")
            seen.add(instr.uid)
        defs: set[VReg] = set()
        for instr in self.body:
            if instr.dest is not None:
                if instr.dest in defs:
                    raise ValueError(
                        f"loop {self.name!r}: register {instr.dest} defined twice"
                    )
                defs.add(instr.dest)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def instruction(self, uid: int) -> Instruction:
        for instr in self.body:
            if instr.uid == uid:
                return instr
        raise KeyError(f"no instruction with uid {uid} in loop {self.name!r}")

    @property
    def defs(self) -> dict[VReg, Instruction]:
        """Map from virtual register to its (unique) defining instruction."""
        return {i.dest: i for i in self.body if i.dest is not None}

    @property
    def live_ins(self) -> set[VReg]:
        """Registers read in the body but never defined there (invariants)."""
        defined = set(self.defs)
        used: set[VReg] = set()
        for instr in self.body:
            used.update(instr.srcs)
        return used - defined

    @property
    def memory_ops(self) -> list[Instruction]:
        return [i for i in self.body if i.is_memory]

    @property
    def loads(self) -> list[Instruction]:
        return [i for i in self.body if i.is_load]

    @property
    def stores(self) -> list[Instruction]:
        return [i for i in self.body if i.is_store]

    @property
    def arrays(self) -> list[ArrayRef]:
        """All arrays referenced by the body, in first-reference order."""
        seen: dict[str, ArrayRef] = {}
        for instr in self.body:
            if instr.pattern is not None:
                seen.setdefault(instr.pattern.array.name, instr.pattern.array)
        return list(seen.values())

    def position(self, uid: int) -> int:
        """Body-order index of an instruction (program order within one iteration)."""
        for idx, instr in enumerate(self.body):
            if instr.uid == uid:
                return idx
        raise KeyError(f"no instruction with uid {uid}")

    def may_alias_arrays(self, a: str, b: str) -> bool:
        """True when accesses to arrays ``a`` and ``b`` must be assumed to overlap."""
        if a == b:
            return True
        return any(a in group and b in group for group in self.alias_groups)

    def __len__(self) -> int:
        return len(self.body)

    def __repr__(self) -> str:
        return (
            f"<Loop {self.name!r}: {len(self.body)} ops, trip={self.trip_count}, "
            f"unroll={self.unroll_factor}>"
        )


@dataclass
class LoopNest:
    """A program region: weighted inner loops plus their execution counts.

    ``invocations`` scales a loop's contribution to whole-program cycles:
    the loop body runs ``trip_count`` iterations, ``invocations`` times.
    L0 buffers are invalidated between invocations (inter-loop coherence,
    paper section 4.1).
    """

    name: str
    loops: list[Loop]
    invocations: dict[str, int] = field(default_factory=dict)

    def invocation_count(self, loop: Loop) -> int:
        return self.invocations.get(loop.name, 1)
