"""A small DSL for constructing loop bodies.

Workloads and tests build loops through this builder rather than writing
:class:`Instruction` lists by hand.  Example::

    b = LoopBuilder("saxpy", trip_count=1024)
    x = b.array("x", n_elems=4096, elem_size=4)
    y = b.array("y", n_elems=4096, elem_size=4)
    a = b.live_in("a")
    vx = b.load(x, stride=1, tag="ld_x")
    vy = b.load(y, stride=1, tag="ld_y")
    prod = b.fmul(a, vx)
    s = b.fadd(prod, vy)
    b.store(y, s, stride=1, tag="st_y")
    loop = b.build()
"""

from __future__ import annotations

from itertools import count

from ..isa.instruction import Instruction
from ..isa.memory_access import AccessPattern, ArrayRef, PatternKind
from ..isa.operations import Opcode
from ..isa.registers import RegisterFactory, VReg
from .loop import Loop


class LoopBuilder:
    """Accumulates instructions for one innermost loop."""

    def __init__(self, name: str, trip_count: int) -> None:
        self.name = name
        self.trip_count = trip_count
        self._regs = RegisterFactory()
        self._uids = count()
        self._body: list[Instruction] = []
        self._arrays: dict[str, ArrayRef] = {}
        self._alias_groups: list[frozenset[str]] = []

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def array(self, name: str, n_elems: int, elem_size: int = 4) -> ArrayRef:
        """Declare (or fetch) an array referenced by this loop."""
        if name in self._arrays:
            existing = self._arrays[name]
            if (existing.n_elems, existing.elem_size) != (n_elems, elem_size):
                raise ValueError(f"array {name!r} redeclared with different shape")
            return existing
        ref = ArrayRef(name, n_elems, elem_size)
        self._arrays[name] = ref
        return ref

    def live_in(self, name: str = "") -> VReg:
        """A register defined outside the loop (a loop invariant)."""
        return self._regs.new(name or "inv")

    def alias(self, *arrays: ArrayRef) -> None:
        """Assert that the compiler cannot disambiguate these arrays."""
        if len(arrays) < 2:
            raise ValueError("alias groups need at least two arrays")
        self._alias_groups.append(frozenset(a.name for a in arrays))

    # ------------------------------------------------------------------
    # Generic emission
    # ------------------------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        *srcs: VReg,
        pattern: AccessPattern | None = None,
        tag: str = "",
        produces: bool = True,
    ) -> VReg | None:
        dest = self._regs.new(tag or opcode.mnemonic) if produces else None
        instr = Instruction(
            uid=next(self._uids),
            opcode=opcode,
            dest=dest,
            srcs=tuple(srcs),
            pattern=pattern,
            tag=tag,
        )
        self._body.append(instr)
        return dest

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def load(
        self,
        array: ArrayRef,
        stride: int = 1,
        offset: int = 0,
        *,
        random: bool = False,
        seed: int = 0,
        addr_src: VReg | None = None,
        tag: str = "",
    ) -> VReg:
        """Emit a load described by a strided or random access pattern.

        ``addr_src`` optionally names a register the address computation
        depends on (creates a flow dependence into the load).
        """
        pattern = AccessPattern(
            array=array,
            kind=PatternKind.RANDOM if random else PatternKind.STRIDED,
            stride=stride,
            offset=offset,
            seed=seed,
        )
        srcs = (addr_src,) if addr_src is not None else ()
        result = self.emit(Opcode.LOAD, *srcs, pattern=pattern, tag=tag or "ld")
        assert result is not None
        return result

    def store(
        self,
        array: ArrayRef,
        value: VReg,
        stride: int = 1,
        offset: int = 0,
        *,
        random: bool = False,
        seed: int = 0,
        addr_src: VReg | None = None,
        tag: str = "",
    ) -> None:
        pattern = AccessPattern(
            array=array,
            kind=PatternKind.RANDOM if random else PatternKind.STRIDED,
            stride=stride,
            offset=offset,
            seed=seed,
        )
        srcs = (value,) if addr_src is None else (value, addr_src)
        self.emit(Opcode.STORE, *srcs, pattern=pattern, tag=tag or "st", produces=False)

    # ------------------------------------------------------------------
    # Arithmetic helpers (one per opcode, all returning the dest register)
    # ------------------------------------------------------------------

    def _binary(self, opcode: Opcode, a: VReg, b: VReg, tag: str) -> VReg:
        result = self.emit(opcode, a, b, tag=tag)
        assert result is not None
        return result

    def iadd(self, a: VReg, b: VReg, tag: str = "iadd") -> VReg:
        return self._binary(Opcode.IADD, a, b, tag)

    def isub(self, a: VReg, b: VReg, tag: str = "isub") -> VReg:
        return self._binary(Opcode.ISUB, a, b, tag)

    def imul(self, a: VReg, b: VReg, tag: str = "imul") -> VReg:
        return self._binary(Opcode.IMUL, a, b, tag)

    def idiv(self, a: VReg, b: VReg, tag: str = "idiv") -> VReg:
        return self._binary(Opcode.IDIV, a, b, tag)

    def iand(self, a: VReg, b: VReg, tag: str = "iand") -> VReg:
        return self._binary(Opcode.IAND, a, b, tag)

    def ior(self, a: VReg, b: VReg, tag: str = "ior") -> VReg:
        return self._binary(Opcode.IOR, a, b, tag)

    def ixor(self, a: VReg, b: VReg, tag: str = "ixor") -> VReg:
        return self._binary(Opcode.IXOR, a, b, tag)

    def ishl(self, a: VReg, b: VReg, tag: str = "ishl") -> VReg:
        return self._binary(Opcode.ISHL, a, b, tag)

    def ishr(self, a: VReg, b: VReg, tag: str = "ishr") -> VReg:
        return self._binary(Opcode.ISHR, a, b, tag)

    def icmp(self, a: VReg, b: VReg, tag: str = "icmp") -> VReg:
        return self._binary(Opcode.ICMP, a, b, tag)

    def imin(self, a: VReg, b: VReg, tag: str = "imin") -> VReg:
        return self._binary(Opcode.IMIN, a, b, tag)

    def imax(self, a: VReg, b: VReg, tag: str = "imax") -> VReg:
        return self._binary(Opcode.IMAX, a, b, tag)

    def isat(self, a: VReg, b: VReg, tag: str = "isat") -> VReg:
        return self._binary(Opcode.ISAT, a, b, tag)

    def imov(self, a: VReg, tag: str = "imov") -> VReg:
        result = self.emit(Opcode.IMOV, a, tag=tag)
        assert result is not None
        return result

    def iabs(self, a: VReg, tag: str = "iabs") -> VReg:
        result = self.emit(Opcode.IABS, a, tag=tag)
        assert result is not None
        return result

    def iselect(self, cond: VReg, a: VReg, b: VReg, tag: str = "isel") -> VReg:
        result = self.emit(Opcode.ISELECT, cond, a, b, tag=tag)
        assert result is not None
        return result

    def fadd(self, a: VReg, b: VReg, tag: str = "fadd") -> VReg:
        return self._binary(Opcode.FADD, a, b, tag)

    def fsub(self, a: VReg, b: VReg, tag: str = "fsub") -> VReg:
        return self._binary(Opcode.FSUB, a, b, tag)

    def fmul(self, a: VReg, b: VReg, tag: str = "fmul") -> VReg:
        return self._binary(Opcode.FMUL, a, b, tag)

    def fdiv(self, a: VReg, b: VReg, tag: str = "fdiv") -> VReg:
        return self._binary(Opcode.FDIV, a, b, tag)

    def fmac(self, acc: VReg, a: VReg, b: VReg, tag: str = "fmac") -> VReg:
        result = self.emit(Opcode.FMAC, acc, a, b, tag=tag)
        assert result is not None
        return result

    def fcmp(self, a: VReg, b: VReg, tag: str = "fcmp") -> VReg:
        return self._binary(Opcode.FCMP, a, b, tag)

    # ------------------------------------------------------------------
    # Accumulators (loop-carried flow dependences)
    # ------------------------------------------------------------------

    def accumulate(self, opcode: Opcode, value: VReg, tag: str = "acc") -> VReg:
        """Emit ``acc = op(acc, value)`` with a distance-1 self dependence.

        The returned register is both defined and used by the emitted
        instruction, which the DDG turns into a recurrence.
        """
        dest = self._regs.new(tag)
        instr = Instruction(
            uid=next(self._uids),
            opcode=opcode,
            dest=dest,
            srcs=(dest, value),
            tag=tag,
        )
        self._body.append(instr)
        return dest

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self) -> Loop:
        if not self._body:
            raise ValueError(f"loop {self.name!r} has an empty body")
        return Loop(
            name=self.name,
            body=list(self._body),
            trip_count=self.trip_count,
            alias_groups=tuple(self._alias_groups),
        )
