"""Loop-level IR: loops, builder DSL, dependence graphs, stride analysis."""

from .builder import LoopBuilder
from .ddg import DDG, DepKind, Edge, build_ddg
from .loop import Loop, LoopNest
from .memdep import MemDepInfo, OrderEdge, analyze, order_edges, patterns_may_alias
from .stride import (
    StrideClass,
    classify,
    dynamic_stride_stats,
    is_candidate,
    loop_candidates,
    total_memory_ops,
)
from .unroll import stride_group, unroll

__all__ = [
    "DDG",
    "DepKind",
    "Edge",
    "Loop",
    "LoopBuilder",
    "LoopNest",
    "MemDepInfo",
    "OrderEdge",
    "StrideClass",
    "analyze",
    "build_ddg",
    "classify",
    "dynamic_stride_stats",
    "is_candidate",
    "loop_candidates",
    "order_edges",
    "patterns_may_alias",
    "stride_group",
    "total_memory_ops",
    "unroll",
]
