"""The Data Dependence Graph used by the modulo scheduler.

Nodes are instruction uids; edges carry a dependence distance (in
iterations) and a latency.  Load latencies are *symbolic*: the L0-aware
scheduler decides per load whether it is scheduled with the L0 or the L1
latency (paper section 4.3), so edges sourced at a load defer to a
latency map supplied at query time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..isa.instruction import Instruction
from ..machine.config import MachineConfig
from . import memdep
from .loop import Loop


class DepKind(enum.Enum):
    REG = "reg"  # register flow dependence
    MEM = "mem"  # memory ordering dependence


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    distance: int
    kind: DepKind
    #: Fixed latency, or ``None`` when the source is a load whose latency
    #: (L0 vs L1) is assigned by the scheduler.
    fixed_latency: int | None

    def latency(self, load_latency: Mapping[int, int] | Callable[[int], int]) -> int:
        if self.fixed_latency is not None:
            return self.fixed_latency
        if callable(load_latency):
            return load_latency(self.src)
        return load_latency[self.src]


class DDG:
    """Dependence graph over one loop body."""

    def __init__(self, loop: Loop, edges: Iterable[Edge]) -> None:
        self.loop = loop
        self.nodes: list[int] = [i.uid for i in loop.body]
        self._instr = {i.uid: i for i in loop.body}
        self.edges: list[Edge] = list(edges)
        self.succs: dict[int, list[Edge]] = {uid: [] for uid in self.nodes}
        self.preds: dict[int, list[Edge]] = {uid: [] for uid in self.nodes}
        for edge in self.edges:
            self.succs[edge.src].append(edge)
            self.preds[edge.dst].append(edge)

    def instruction(self, uid: int) -> Instruction:
        return self._instr[uid]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def reg_edges(self) -> list[Edge]:
        return [e for e in self.edges if e.kind is DepKind.REG]

    def mem_edges(self) -> list[Edge]:
        return [e for e in self.edges if e.kind is DepKind.MEM]

    # ------------------------------------------------------------------
    # Longest-path machinery (shared by MII, SMS and the scheduler)
    # ------------------------------------------------------------------

    def earliest_times(
        self, ii: int, load_latency: Mapping[int, int] | Callable[[int], int]
    ) -> dict[int, int] | None:
        """Longest-path earliest start times under initiation interval ``ii``.

        Edge constraint: ``t(dst) >= t(src) + latency - ii * distance``.
        Returns ``None`` when the constraints contain a positive cycle
        (``ii`` below RecMII).  Times are normalised to ``min == 0``.
        """
        times = {uid: 0 for uid in self.nodes}
        for _round in range(self.n_nodes + 1):
            changed = False
            for edge in self.edges:
                bound = (
                    times[edge.src] + edge.latency(load_latency) - ii * edge.distance
                )
                if bound > times[edge.dst]:
                    times[edge.dst] = bound
                    changed = True
            if not changed:
                break
        else:  # no fixed point after n+1 rounds => positive cycle
            return None
        low = min(times.values())
        return {uid: t - low for uid, t in times.items()}

    def latest_times(
        self,
        ii: int,
        load_latency: Mapping[int, int] | Callable[[int], int],
        horizon: int,
    ) -> dict[int, int] | None:
        """Latest start times such that every node finishes by ``horizon``."""
        times = {uid: horizon for uid in self.nodes}
        for _round in range(self.n_nodes + 1):
            changed = False
            for edge in self.edges:
                bound = (
                    times[edge.dst] - edge.latency(load_latency) + ii * edge.distance
                )
                if bound < times[edge.src]:
                    times[edge.src] = bound
                    changed = True
            if not changed:
                break
        else:
            return None
        return times

    def slack(
        self, ii: int, load_latency: Mapping[int, int] | Callable[[int], int]
    ) -> dict[int, int] | None:
        """Per-node slack = ALAP - ASAP (criticality: smaller = more critical)."""
        asap = self.earliest_times(ii, load_latency)
        if asap is None:
            return None
        horizon = max(asap.values())
        alap = self.latest_times(ii, load_latency, horizon)
        if alap is None:
            return None
        return {uid: alap[uid] - asap[uid] for uid in self.nodes}


def build_ddg(
    loop: Loop,
    config: MachineConfig,
    dep_info: memdep.MemDepInfo | None = None,
) -> DDG:
    """Construct the DDG for ``loop``: register flow + memory order edges."""
    if dep_info is None:
        dep_info = memdep.analyze(loop)

    defs = loop.defs
    position = {instr.uid: idx for idx, instr in enumerate(loop.body)}
    edges: list[Edge] = []

    for instr in loop.body:
        for src_reg in instr.srcs:
            producer = defs.get(src_reg)
            if producer is None:
                continue  # live-in: always available
            distance = 0 if position[producer.uid] < position[instr.uid] else 1
            fixed = None if producer.is_load else config.latency_of(producer.opcode)
            edges.append(
                Edge(producer.uid, instr.uid, distance, DepKind.REG, fixed)
            )

    for order in memdep.order_edges(loop, dep_info):
        edges.append(
            Edge(
                order.src.uid, order.dst.uid, order.distance, DepKind.MEM, order.latency
            )
        )

    return DDG(loop, edges)
