"""Static stride analysis and candidate classification (paper Table 1, §4.3).

The paper classifies dynamic memory accesses as:

* **S**  — strided (the compiler found a compile-time stride);
* **SG** — "good" strides: 0, +1 or -1 *elements* in the original
  (pre-unroll) loop; these map well to L0 via the mapping and prefetch
  hints (strides of ±N after unrolling by N behave the same thanks to
  interleaved mapping);
* **SO** — other strides (e.g. column walks), which still qualify as L0
  candidates but need explicit software prefetch (step 5).

*Candidate* instructions — those eligible for L0 buffers — are all
strided memory instructions.
"""

from __future__ import annotations

import enum

from ..isa.instruction import Instruction
from .loop import Loop


class StrideClass(enum.Enum):
    GOOD = "good"  # stride in {0, +1, -1} elements (pre-unroll)
    OTHER = "other"  # any other compile-time stride
    NONSTRIDED = "nonstrided"  # no compile-time stride (random/indirect)


def classify(instr: Instruction, unroll_factor: int = 1) -> StrideClass:
    """Stride class of a memory instruction.

    ``unroll_factor`` is the factor already applied to the loop the
    instruction lives in; a stride of ±factor in the unrolled body
    corresponds to a "good" ±1 stride in the original loop.
    """
    pattern = instr.pattern
    if pattern is None:
        raise ValueError(f"{instr} is not a memory access")
    if not pattern.is_strided:
        return StrideClass.NONSTRIDED
    stride = pattern.stride
    if stride == 0 or abs(stride) == unroll_factor:
        return StrideClass.GOOD
    if abs(stride) == 1:
        return StrideClass.GOOD
    return StrideClass.OTHER


def is_candidate(instr: Instruction) -> bool:
    """L0 candidates are memory instructions with a compile-time stride."""
    if not (instr.is_load or instr.is_store):
        return False
    assert instr.pattern is not None
    return instr.pattern.is_strided


def loop_candidates(loop: Loop) -> list[Instruction]:
    return [i for i in loop.memory_ops if (i.is_load or i.is_store) and is_candidate(i)]


def dynamic_stride_stats(loop: Loop) -> tuple[int, int, int]:
    """(strided, good, other) memory-op counts for one loop iteration.

    Counts are per iteration of the *original* loop; callers weight by
    trip counts and invocations to get program-level Table-1 numbers.
    """
    strided = good = other = 0
    factor = loop.unroll_factor
    for instr in loop.body:
        if not (instr.is_load or instr.is_store):
            continue
        cls = classify(instr, factor)
        if cls is StrideClass.NONSTRIDED:
            continue
        strided += 1
        if cls is StrideClass.GOOD:
            good += 1
        else:
            other += 1
    return strided, good, other


def total_memory_ops(loop: Loop) -> int:
    return sum(1 for i in loop.body if i.is_load or i.is_store)
