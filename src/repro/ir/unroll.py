"""Loop unrolling (paper section 4.3, step 1).

The compiler chooses between no unrolling and unrolling by N (the number
of clusters).  Unrolling by N lets consecutive copies of a strided load
be assigned to consecutive clusters and their data mapped to L0 buffers
with the *interleaved* mapping.

Unrolling renames every per-copy def; a use that is loop-carried in the
original body (its def appears at the same or a later body position)
reads the previous copy's def — and, in copy 0, the last copy's def from
the previous unrolled iteration.
"""

from __future__ import annotations

from ..isa.instruction import Instruction
from ..isa.registers import VReg
from .loop import Loop


def unroll(loop: Loop, factor: int) -> Loop:
    """Return ``loop`` unrolled ``factor`` times (1 returns the loop itself)."""
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    if factor == 1:
        return loop
    if loop.unroll_factor != 1:
        raise ValueError(f"loop {loop.name!r} is already unrolled")

    position = {instr.uid: idx for idx, instr in enumerate(loop.body)}
    defs = loop.defs

    # Fresh names for every (copy, original def) pair.
    next_rid = (
        max(
            [r.rid for i in loop.body for r in (i.dest, *i.srcs) if r is not None],
            default=-1,
        )
        + 1
    )
    renamed: dict[tuple[int, VReg], VReg] = {}
    for k in range(factor):
        for reg in defs:
            renamed[(k, reg)] = VReg(next_rid, f"{reg.name or reg.rid}.{k}")
            next_rid += 1

    def remap_src(src: VReg, copy: int, use_pos: int) -> VReg:
        producer = defs.get(src)
        if producer is None:
            return src  # live-in
        if position[producer.uid] < use_pos:
            return renamed[(copy, src)]  # defined earlier in this copy
        # Loop-carried: read the previous copy; copy 0 reads the last
        # copy of the previous unrolled iteration.
        return renamed[((copy - 1) % factor, src)]

    new_body: list[Instruction] = []
    uid = 0
    for k in range(factor):
        for pos, instr in enumerate(loop.body):
            new_srcs = tuple(remap_src(s, k, pos) for s in instr.srcs)
            new_dest = renamed[(k, instr.dest)] if instr.dest is not None else None
            new_pattern = (
                instr.pattern.unrolled_copy(k, factor)
                if instr.pattern is not None
                else None
            )
            new_body.append(
                Instruction(
                    uid=uid,
                    opcode=instr.opcode,
                    dest=new_dest,
                    srcs=new_srcs,
                    pattern=new_pattern,
                    tag=f"{instr.tag}.{k}" if instr.tag else "",
                    origin=instr.uid,
                    copy_index=k,
                )
            )
            uid += 1

    new_trip = max(1, loop.trip_count // factor)
    return Loop(
        name=loop.name,
        body=new_body,
        trip_count=new_trip,
        alias_groups=loop.alias_groups,
        unroll_factor=factor,
    )


def stride_group(loop: Loop, instr: Instruction) -> list[Instruction]:
    """All unrolled copies of ``instr``'s original instruction, by copy index.

    The L0-aware scheduler uses these groups to propagate recommended
    clusters (copy k of an unrolled strided load should land in cluster
    ``(cluster(copy 0) + k) mod N`` so interleaved mapping lines up).
    """
    group = [i for i in loop.body if i.origin == instr.origin and i.is_memory]
    group.sort(key=lambda i: i.copy_index)
    return group
