"""Compile-time memory disambiguation.

Mirrors the role of the disambiguation the paper relies on (section 4.1):
partition a loop's memory instructions into *memory-dependent sets* S_i —
instructions that may touch the same address.  Sets with a single member,
or with only stores, impose no coherence constraints; sets mixing loads
and stores must be handled by one of the coherence policies (NL0 / 1C /
PSR).

Two accesses may alias when:

* they reference the same array and their strided index sequences can
  collide (equal strides whose offset difference is a stride multiple,
  stride-0 accesses to the same element, or differing strides —
  conservatively assumed to collide), or either is non-strided;
* they reference different arrays the loop declares as potentially
  overlapping (``Loop.alias_groups`` — the "conservative dependences"
  the paper removes with code specialisation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Instruction
from ..isa.memory_access import AccessPattern
from ..isa.operations import Opcode
from .loop import Loop


def patterns_may_alias(p1: AccessPattern, p2: AccessPattern, same_array: bool) -> bool:
    """Whether two access patterns can ever touch the same address."""
    if not same_array:
        # Different arrays never overlap unless an alias group said so
        # (handled by the caller); layout gives every array its own range.
        return False
    if not (p1.is_strided and p2.is_strided):
        return True
    if p1.stride != p2.stride:
        # Different strides over the same array: e.g. row walk vs column
        # walk.  Their index sets generally intersect; stay conservative.
        return True
    stride = p1.stride
    if stride == 0:
        return p1.offset == p2.offset
    return (p1.offset - p2.offset) % abs(stride) == 0


def _may_alias(loop: Loop, a: Instruction, b: Instruction) -> bool:
    pa, pb = a.pattern, b.pattern
    assert pa is not None and pb is not None
    if pa.array.name == pb.array.name:
        return patterns_may_alias(pa, pb, same_array=True)
    return loop.may_alias_arrays(pa.array.name, pb.array.name)


class _UnionFind:
    def __init__(self, items: list[int]) -> None:
        self._parent = {x: x for x in items}

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


@dataclass(frozen=True)
class MemDepInfo:
    """Memory-dependent sets for one loop."""

    sets: tuple[frozenset[int], ...]
    _set_of: dict[int, frozenset[int]]
    _loads: frozenset[int]
    _stores: frozenset[int]

    def set_of(self, uid: int) -> frozenset[int]:
        return self._set_of[uid]

    def needs_coherence(self, dep_set: frozenset[int]) -> bool:
        """True for sets mixing loads and stores (paper section 4.1)."""
        if len(dep_set) < 2:
            return False
        has_load = any(uid in self._loads for uid in dep_set)
        has_store = any(uid in self._stores for uid in dep_set)
        return has_load and has_store

    def constrained_sets(self) -> list[frozenset[int]]:
        return [s for s in self.sets if self.needs_coherence(s)]

    def in_coherence_set(self, uid: int) -> bool:
        return self.needs_coherence(self._set_of[uid])


def analyze(loop: Loop) -> MemDepInfo:
    """Partition the loop's memory instructions into dependent sets."""
    mem_ops = [
        i for i in loop.body if i.is_memory and i.opcode in (Opcode.LOAD, Opcode.STORE)
    ]
    uids = [i.uid for i in mem_ops]
    uf = _UnionFind(uids)
    for idx, a in enumerate(mem_ops):
        for b in mem_ops[idx + 1 :]:
            if _may_alias(loop, a, b):
                uf.union(a.uid, b.uid)
    groups: dict[int, set[int]] = {}
    for uid in uids:
        groups.setdefault(uf.find(uid), set()).add(uid)
    sets = tuple(frozenset(g) for g in groups.values())
    set_of = {uid: s for s in sets for uid in s}
    loads = frozenset(i.uid for i in mem_ops if i.is_load)
    stores = frozenset(i.uid for i in mem_ops if i.is_store)
    return MemDepInfo(sets=sets, _set_of=set_of, _loads=loads, _stores=stores)


@dataclass(frozen=True)
class OrderEdge:
    """A memory-ordering constraint: dst issues >= latency after src + distance iterations."""

    src: Instruction
    dst: Instruction
    distance: int
    latency: int


def _edge_latency(src: Instruction, dst: Instruction) -> int:
    """RAW (store->access) and WAW need a cycle; WAR (load->store) may co-issue."""
    return 1 if src.is_store else 0


def _pair_edges(a: Instruction, b: Instruction) -> list[OrderEdge]:
    """Ordering edges between an aliasing pair, ``a`` earlier in body order.

    When both accesses share a compile-time stride the dependence
    distance is exact: ``a`` (iteration i) and ``b`` (iteration i+d)
    touch the same element iff ``off_a + i*s == off_b + (i+d)*s``, i.e.
    ``d = (off_a - off_b) / s``.  Otherwise the compiler falls back to
    the conservative discipline (same-iteration order plus a distance-1
    loop-carried edge).
    """
    pa, pb = a.pattern, b.pattern
    assert pa is not None and pb is not None
    edges: list[OrderEdge] = []
    same_stride = (
        pa.is_strided
        and pb.is_strided
        and pa.array.name == pb.array.name
        and pa.stride == pb.stride
    )
    if same_stride and pa.stride != 0:
        stride = pa.stride
        delta = pa.offset - pb.offset
        if delta % stride:
            return []  # disjoint element sets; no dependence at all
        if delta == 0:
            edges.append(OrderEdge(a, b, 0, _edge_latency(a, b)))
        d_ab = delta // stride  # a @ iter i conflicts with b @ iter i+d_ab
        if d_ab >= 1:
            edges.append(OrderEdge(a, b, d_ab, _edge_latency(a, b)))
        d_ba = -delta // stride  # b @ iter i conflicts with a @ iter i+d_ba
        if d_ba >= 1:
            edges.append(OrderEdge(b, a, d_ba, _edge_latency(b, a)))
        return edges
    if same_stride and pa.stride == 0:
        if pa.offset != pb.offset:
            return []
        edges.append(OrderEdge(a, b, 0, _edge_latency(a, b)))
        edges.append(OrderEdge(b, a, 1, _edge_latency(b, a)))
        return edges
    # No exact distance information: conservative ordering.
    edges.append(OrderEdge(a, b, 0, _edge_latency(a, b)))
    edges.append(OrderEdge(b, a, 1, _edge_latency(b, a)))
    return edges


def order_edges(loop: Loop, info: MemDepInfo) -> list[OrderEdge]:
    """All memory-ordering edges the DDG must honour (pairs with >= one store)."""
    edges: list[OrderEdge] = []
    mem_ops = [
        i for i in loop.body if i.is_memory and i.opcode in (Opcode.LOAD, Opcode.STORE)
    ]
    for idx, a in enumerate(mem_ops):
        for b in mem_ops[idx + 1 :]:
            if a.is_load and b.is_load:
                continue
            if info.set_of(a.uid) is info.set_of(b.uid) and _may_alias(loop, a, b):
                edges.extend(_pair_edges(a, b))
    return edges
