"""Checker 2: register lifetimes under modulo variable expansion.

The paper's clustered register files cap the values simultaneously live
in a cluster (``MachineConfig.max_live_per_cluster``); the scheduler
estimates pressure through ``repro.scheduler.regpressure`` — which
lives beside the engine and shares its conventions.  This checker
re-derives per-cluster MaxLive from first principles:

A value produced at cycle ``p`` and last consumed at cycle ``e``
occupies one register during every cycle of ``[p, e]``.  In steady
state the kernel repeats every II cycles, so at kernel row ``r`` the
value contributes one live instance per lifetime cycle congruent to
``r`` (mod II) — counted here *directly*, cycle by cycle, rather than
through the ``ceil(L / II)`` shortcut the scheduler-side estimator
uses.  Residency rules:

* the producing cluster holds the value from production until its last
  local consumer's issue, and at least until every bus transfer of the
  value has read it;
* a consuming cluster reached over a bus holds the comm'ed copy from
  the comm's arrival until its own last consumer's issue.

Per-cluster MaxLive beyond the configured cap is an A008 error.
"""

from __future__ import annotations

from ..ir.ddg import DDG, DepKind
from ..scheduler.schedule import ModuloSchedule
from .diagnostics import Diagnostic


def live_intervals(
    schedule: ModuloSchedule, ddg: DDG
) -> list[tuple[int, int, int, int]]:
    """``(producer_uid, cluster, first_cycle, last_cycle)`` per residency."""
    ii = schedule.ii
    arrivals: dict[tuple[int, int], int] = {}
    for comm in schedule.comms:
        key = (comm.producer_uid, comm.dst_cluster)
        arrival = comm.start + comm.latency
        if key not in arrivals or arrival < arrivals[key]:
            arrivals[key] = arrival

    intervals: list[tuple[int, int, int, int]] = []
    for uid, op in schedule.placed.items():
        if op.instr.dest is None:
            continue
        produce = op.start + (
            op.latency
            if op.instr.is_load
            else schedule.config.latency_of(op.instr.opcode)
        )
        # Last cycle the value must survive, per resident cluster.
        holds: dict[int, int] = {}
        for edge in ddg.succs[uid]:
            if edge.kind is not DepKind.REG:
                continue
            consumer = schedule.placed.get(edge.dst)
            if consumer is None:
                continue  # the dependence checker reports unplaced nodes
            due = consumer.start + edge.distance * ii
            if consumer.cluster == op.cluster:
                cluster = op.cluster
            else:
                if (uid, consumer.cluster) not in arrivals:
                    continue  # missing comm: reported as A003, not here
                cluster = consumer.cluster
            holds[cluster] = max(due, holds.get(cluster, due))
            # Any consumer at all keeps the value in its home register
            # until it is produced (zero-length floor).
            holds.setdefault(op.cluster, produce)
        for comm in schedule.comms:
            if comm.producer_uid == uid:
                holds[op.cluster] = max(holds.get(op.cluster, produce), comm.start)
        for cluster, end in holds.items():
            first = produce if cluster == op.cluster else arrivals[(uid, cluster)]
            if end >= first:
                intervals.append((uid, cluster, first, end))
    return intervals


def max_live_per_cluster(schedule: ModuloSchedule, ddg: DDG) -> dict[int, int]:
    """Steady-state MaxLive, by direct cycle counting over kernel rows."""
    ii = schedule.ii
    n = schedule.config.n_clusters
    per_row = [[0] * ii for _ in range(n)]
    for _uid, cluster, first, last in live_intervals(schedule, ddg):
        for cycle in range(first, last + 1):
            per_row[cluster][cycle % ii] += 1
    return {cluster: max(per_row[cluster]) for cluster in range(n)}


def check_register_pressure(schedule: ModuloSchedule, ddg: DDG) -> list[Diagnostic]:
    """A008: every cluster's MaxLive fits the configured register file."""
    cap = schedule.config.max_live_per_cluster
    out: list[Diagnostic] = []
    for cluster, live in sorted(max_live_per_cluster(schedule, ddg).items()):
        if live > cap:
            out.append(
                Diagnostic.new(
                    "A008",
                    f"cluster {cluster} needs {live} simultaneously live "
                    f"registers but the register file holds {cap}",
                )
            )
    return out
