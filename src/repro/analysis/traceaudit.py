"""Checker 4: audit the fast-path trace's event prunings.

``repro.sim.trace._build_static_trace`` drops events and dependence
entries it argues can never be observed — ALU chains whose readiness is
deterministic, register dependences on non-load producers whose static
slack is provably non-positive.  Those arguments live in comments; this
module turns them into per-artifact machine checks:

* **A012** — a pruning whose justification does not hold against the
  schedule the trace is paired with: an interlock-check event missing
  for an instruction that consumes load results, a load dependence
  missing from a kept event's table, or a pruned non-load dependence
  whose static slack is actually positive (the producer can be late).
* **A013** — the trace simply disagrees with the schedule: an event
  at the wrong position, a memory event missing or invented, a
  readiness ring slot absent, a history window too small to hold the
  deepest loop-carried lookback, or a wrong convergence period.

The expected trace content is recomputed here from the schedule and
DDG alone; only the trace *format* (event kinds, field layout) is
shared with the builder.
"""

from __future__ import annotations

from ..ir.ddg import DepKind
from ..scheduler.driver import CompiledLoop
from ..sim.trace import EV_CHECK, EV_LOAD, EV_PREFETCH, EV_STORE, StaticTrace
from .diagnostics import Diagnostic

_KIND_NAMES = {
    EV_LOAD: "load",
    EV_STORE: "store",
    EV_PREFETCH: "prefetch",
    EV_CHECK: "check",
}


def _expected_dep_tables(
    compiled: CompiledLoop,
) -> tuple[dict[int, list[tuple[int, int]]], dict[tuple[int, int], set[int]]]:
    """Per consumer, the load dependences the trace must keep.

    Returns ``deps[uid] = [(src_uid, distance), ...]`` over REG edges
    whose producer is a placed load, plus the comm starts an entry may
    legally record: for each cross-cluster pair, the starts of the
    comms achieving the earliest arrival in the consumer's cluster.
    """
    schedule = compiled.schedule
    best_arrival: dict[tuple[int, int], int] = {}
    for comm in schedule.comms:
        key = (comm.producer_uid, comm.dst_cluster)
        arrival = comm.start + comm.latency
        if key not in best_arrival or arrival < best_arrival[key]:
            best_arrival[key] = arrival
    allowed_starts: dict[tuple[int, int], set[int]] = {}
    for comm in schedule.comms:
        key = (comm.producer_uid, comm.dst_cluster)
        if comm.start + comm.latency == best_arrival[key]:
            allowed_starts.setdefault(key, set()).add(comm.start)

    deps: dict[int, list[tuple[int, int]]] = {}
    for uid, op in schedule.placed.items():
        entries = []
        for edge in compiled.ddg.preds[uid]:
            if edge.kind is not DepKind.REG:
                continue
            src = schedule.placed.get(edge.src)
            if src is None or not src.instr.is_load:
                continue
            entries.append((edge.src, edge.distance))
        if entries:
            deps[uid] = entries
    return deps, allowed_starts


def _event_shapes(compiled: CompiledLoop, load_deps) -> list[tuple]:
    """The event multiset a faithful trace of this schedule contains."""
    schedule = compiled.schedule
    ii = schedule.ii
    shapes: list[tuple] = []
    for uid, op in schedule.placed.items():
        if op.instr.is_load:
            kind = EV_LOAD
        elif op.instr.is_store:
            kind = EV_STORE
        elif load_deps.get(uid):
            kind = EV_CHECK
        else:
            continue  # prunable; the drop proof is checked separately
        shapes.append(
            (
                kind,
                uid,
                op.cluster,
                op.start // ii,
                op.start % ii,
                op.latency,
                bool(op.is_primary),
                0,
            )
        )
    for op in schedule.replicas:
        shapes.append(
            (
                EV_STORE,
                op.instr.uid,
                op.cluster,
                op.start // ii,
                op.start % ii,
                op.latency,
                bool(op.is_primary),
                0,
            )
        )
    for pf in schedule.prefetches:
        shapes.append(
            (
                EV_PREFETCH,
                pf.covers_uid,
                pf.cluster,
                pf.start // ii,
                pf.start % ii,
                0,
                True,
                pf.distance,
            )
        )
    return shapes


def _describe(shape: tuple) -> str:
    kind, uid, cluster, stage, row, _lat, _prim, _pfd = shape
    return (
        f"{_KIND_NAMES.get(kind, kind)} event for uid {uid} "
        f"(cluster {cluster}, stage {stage}, row {row})"
    )


def _pruned_slack_proofs(compiled: CompiledLoop) -> list[Diagnostic]:
    """A012 for every dependence entry the trace builder prunes.

    The builder keeps only load-producer REG dependences; everything
    else is dropped on the comment-proof that its static slack is
    non-positive.  Re-derive that slack from the schedule: ready time
    (through the best comm for cross-cluster edges) versus the
    consumer's issue deadline.
    """
    schedule = compiled.schedule
    ii = schedule.ii
    out: list[Diagnostic] = []
    best_arrival: dict[tuple[int, int], int] = {}
    for comm in schedule.comms:
        key = (comm.producer_uid, comm.dst_cluster)
        arrival = comm.start + comm.latency
        if key not in best_arrival or arrival < best_arrival[key]:
            best_arrival[key] = arrival
    for edge in compiled.ddg.edges:
        if edge.kind is not DepKind.REG:
            continue
        src = schedule.placed.get(edge.src)
        dst = schedule.placed.get(edge.dst)
        if src is None or dst is None or src.instr.is_load:
            continue  # load-producer entries are kept, not pruned
        latency = edge.fixed_latency if edge.fixed_latency is not None else src.latency
        ready = src.start + latency
        if src.cluster != dst.cluster:
            arrival = best_arrival.get((edge.src, dst.cluster))
            if arrival is None:
                continue  # missing comm: the dependence checker's A003
            ready = arrival
        due = dst.start + ii * edge.distance
        if ready > due:
            out.append(
                Diagnostic.new(
                    "A012",
                    f"trace prunes dependence {edge.src}->{edge.dst} "
                    f"(distance {edge.distance}) but its static slack is "
                    f"positive: ready at {ready}, due at {due}",
                )
            )
    return out


def audit_trace(compiled: CompiledLoop) -> list[Diagnostic]:
    """A012/A013: the cached trace faithfully represents the schedule."""
    trace = getattr(compiled, "static_trace", None)
    if not isinstance(trace, StaticTrace):
        return []  # nothing claimed, nothing to audit
    schedule = compiled.schedule
    out: list[Diagnostic] = []

    if trace.ii != schedule.ii or trace.span != schedule.span:
        out.append(
            Diagnostic.new(
                "A013",
                f"trace geometry (II={trace.ii}, span={trace.span}) does "
                f"not match the schedule (II={schedule.ii}, "
                f"span={schedule.span})",
            )
        )
        return out  # every downstream recomputation would be noise

    load_deps, allowed_starts = _expected_dep_tables(compiled)
    out.extend(_pruned_slack_proofs(compiled))

    # Event multiset ----------------------------------------------------
    expected: dict[tuple, int] = {}
    for shape in _event_shapes(compiled, load_deps):
        expected[shape] = expected.get(shape, 0) + 1
    actual_events: dict[tuple, list] = {}
    for ev in trace.events:
        shape = (
            ev.kind,
            ev.uid,
            ev.cluster,
            ev.stage,
            ev.row,
            ev.latency,
            bool(ev.is_primary),
            ev.pf_distance,
        )
        actual_events.setdefault(shape, []).append(ev)
    for shape in sorted(set(expected) | set(actual_events)):
        have = len(actual_events.get(shape, ()))
        want = expected.get(shape, 0)
        if have < want:
            code = "A012" if shape[0] == EV_CHECK else "A013"
            verb = (
                "prunes the interlock"
                if shape[0] == EV_CHECK
                else "is missing the"
            )
            out.append(
                Diagnostic.new(
                    code,
                    f"trace {verb} {_describe(shape)} although the "
                    f"instruction "
                    + (
                        "consumes load results"
                        if shape[0] == EV_CHECK
                        else "is in the schedule"
                    ),
                )
            )
        elif have > want:
            out.append(
                Diagnostic.new(
                    "A013",
                    f"trace contains an unexpected {_describe(shape)}",
                )
            )

    # Dependence tables of kept primary events --------------------------
    for shape, evs in sorted(actual_events.items()):
        kind, uid, cluster, *_ = shape
        op = schedule.placed.get(uid)
        if (
            kind == EV_PREFETCH
            or op is None
            or op.cluster != cluster
            or bool(op.is_primary) != shape[6]
        ):
            continue  # replicas and foreign events carry no dep table
        want_entries = list(load_deps.get(uid, []))
        for ev in evs:
            got = list(ev.deps)
            for src, dist in want_entries:
                match = next(
                    (e for e in got if e[0] == src and e[1] == dist), None
                )
                if match is None:
                    out.append(
                        Diagnostic.new(
                            "A012",
                            f"trace prunes the load dependence "
                            f"{src}->{uid} (distance {dist}) from a kept "
                            f"event's table",
                        )
                    )
                    continue
                got.remove(match)
                src_op = schedule.placed[src]
                if src_op.cluster == op.cluster:
                    ok = match[2] is None
                else:
                    ok = match[2] in allowed_starts.get((src, op.cluster), ())
                if not ok:
                    out.append(
                        Diagnostic.new(
                            "A013",
                            f"dependence {src}->{uid} in the trace records "
                            f"comm start {match[2]}, which matches no best "
                            f"comm of the schedule",
                        )
                    )
            for extra in got:
                out.append(
                    Diagnostic.new(
                        "A013",
                        f"trace invents a dependence {extra[0]}->{uid} "
                        f"(distance {extra[1]}) absent from the DDG",
                    )
                )

    # Readiness ring and history window ---------------------------------
    needed_slots = {src for entries in load_deps.values() for (src, _d) in entries}
    for src in sorted(needed_slots):
        if src not in trace.ring_slots:
            out.append(
                Diagnostic.new(
                    "A013",
                    f"load {src} feeds kept dependences but has no "
                    f"readiness ring slot",
                )
            )
    slots = list(trace.ring_slots.values())
    if len(slots) != len(set(slots)):
        out.append(
            Diagnostic.new("A013", "readiness ring slots are not distinct")
        )
    max_distance = max((e.distance for e in compiled.ddg.edges), default=0)
    needed_window = schedule.stage_count + max_distance + 1
    if trace.history_window < needed_window:
        out.append(
            Diagnostic.new(
                "A013",
                f"history window {trace.history_window} cannot hold the "
                f"deepest lookback (needs >= {needed_window})",
            )
        )

    # Convergence period ------------------------------------------------
    period: int | None = 1
    patterns = [
        op.instr.pattern
        for op in list(schedule.placed.values()) + list(schedule.replicas)
        if op.instr.is_memory
    ] + [pf.instr.pattern for pf in schedule.prefetches]
    import math

    for pattern in patterns:
        if pattern is None:
            continue
        p = pattern.input_period
        if p is None:
            period = None
            break
        period = period * p // math.gcd(period, p)
    if trace.input_period is not None and (
        period is None or trace.input_period % period != 0
    ):
        out.append(
            Diagnostic.new(
                "A013",
                f"trace claims convergence period {trace.input_period} but "
                f"the access streams repeat every "
                f"{'∞' if period is None else period} iterations",
            )
        )
    return out
