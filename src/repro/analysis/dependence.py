"""Checker 1: dependence, communication and reservation-table legality.

A clean-room re-derivation of everything ``ModuloSchedule.validate()``
asserts, written against the *raw* schedule records (``placed``,
``comms``, ``prefetches``, ``replicas``) rather than the scheduler's
helper methods, so a bug shared between the scheduling engine and its
own validator cannot hide here.  The rules re-derived:

* every DDG edge's value is ready no later than its consumer issues
  (``src.start + latency <= dst.start + II * distance``), with load
  producers charged the latency they were *scheduled* with;
* a REG value crossing clusters rides a bus comm whose arrival meets
  the consumer's deadline, starts no earlier than the value is
  produced, and departs from the producer's actual cluster;
* the modulo reservation table is re-counted from scratch: per
  ``(FU class, cluster, row)`` occupancy against the configured unit
  counts (prefetches occupy MEM slots; PSR replicas occupy MEM slots in
  their own clusters), and per-row bus occupancy against ``n_buses``.

PSR broadcast comms (``dst_cluster == -1``) carry the store *address*,
which must arrive by the replicas' issue cycle — a different legality
rule than value comms, checked as such.
"""

from __future__ import annotations

from ..ir.ddg import DDG, DepKind
from ..isa.operations import FUClass
from ..scheduler.schedule import ModuloSchedule
from .diagnostics import Diagnostic


def _produce_time(schedule: ModuloSchedule, uid: int) -> int:
    """Cycle the value of ``uid`` becomes available in its own cluster."""
    op = schedule.placed[uid]
    if op.instr.is_load:
        return op.start + op.latency  # the latency it was scheduled with
    return op.start + schedule.config.latency_of(op.instr.opcode)


def _best_arrivals(schedule: ModuloSchedule) -> dict[tuple[int, int], int]:
    """Earliest comm arrival per (producer uid, destination cluster)."""
    best: dict[tuple[int, int], int] = {}
    for comm in schedule.comms:
        key = (comm.producer_uid, comm.dst_cluster)
        arrival = comm.start + comm.latency
        if key not in best or arrival < best[key]:
            best[key] = arrival
    return best


def check_dependences(schedule: ModuloSchedule, ddg: DDG) -> list[Diagnostic]:
    """A001/A002/A003: every edge's value arrives before it is consumed."""
    out: list[Diagnostic] = []
    ii = schedule.ii
    arrivals = _best_arrivals(schedule)
    for edge in ddg.edges:
        src = schedule.placed.get(edge.src)
        dst = schedule.placed.get(edge.dst)
        if src is None or dst is None:
            missing = edge.src if src is None else edge.dst
            out.append(
                Diagnostic.new(
                    "A001",
                    f"edge {edge.src}->{edge.dst} ({edge.kind.value}, "
                    f"distance {edge.distance}) references unplaced "
                    f"instruction {missing}",
                )
            )
            continue
        latency = (
            edge.fixed_latency if edge.fixed_latency is not None else src.latency
        )
        ready = src.start + latency
        due = dst.start + ii * edge.distance
        if edge.kind is DepKind.REG and src.cluster != dst.cluster:
            arrival = arrivals.get((edge.src, dst.cluster))
            if arrival is None:
                out.append(
                    Diagnostic.new(
                        "A003",
                        f"edge {edge.src}->{edge.dst}: value crosses from "
                        f"cluster {src.cluster} to {dst.cluster} with no comm",
                    )
                )
                continue
            ready = arrival
        if ready > due:
            out.append(
                Diagnostic.new(
                    "A002",
                    f"edge {edge.src}->{edge.dst} ({edge.kind.value}, "
                    f"distance {edge.distance}): value ready at {ready} but "
                    f"consumer issues at {due}",
                )
            )
    return out


def check_comms(schedule: ModuloSchedule) -> list[Diagnostic]:
    """A001/A004/A005: every placed comm is individually well-formed."""
    out: list[Diagnostic] = []
    for comm in schedule.comms:
        producer = schedule.placed.get(comm.producer_uid)
        if producer is None:
            out.append(
                Diagnostic.new(
                    "A001",
                    f"comm at cycle {comm.start} references unplaced "
                    f"producer {comm.producer_uid}",
                )
            )
            continue
        if comm.dst_cluster == -1:
            # PSR address broadcast: must reach every cluster by the
            # replicas' issue cycle (they fire at the primary's start).
            if comm.start + comm.latency > producer.start:
                out.append(
                    Diagnostic.new(
                        "A004",
                        f"broadcast comm for store {comm.producer_uid} "
                        f"arrives at {comm.start + comm.latency}, after the "
                        f"replicas issue at {producer.start}",
                    )
                )
        elif comm.start < _produce_time(schedule, comm.producer_uid):
            out.append(
                Diagnostic.new(
                    "A004",
                    f"comm for value {comm.producer_uid} to cluster "
                    f"{comm.dst_cluster} starts at {comm.start}, before the "
                    f"value is produced at "
                    f"{_produce_time(schedule, comm.producer_uid)}",
                )
            )
        if producer.cluster != comm.src_cluster:
            out.append(
                Diagnostic.new(
                    "A005",
                    f"comm for value {comm.producer_uid} departs cluster "
                    f"{comm.src_cluster} but its producer sits in cluster "
                    f"{producer.cluster}",
                )
            )
    return out


def check_reservations(schedule: ModuloSchedule) -> list[Diagnostic]:
    """A006/A007: re-count the MRT from the schedule's raw records."""
    out: list[Diagnostic] = []
    ii = schedule.ii
    config = schedule.config
    fu_use: dict[tuple[FUClass, int, int], int] = {}

    def occupy(fu: FUClass, cluster: int, start: int) -> None:
        key = (fu, cluster, start % ii)
        fu_use[key] = fu_use.get(key, 0) + 1

    for op in schedule.placed.values():
        if op.instr.fu_class is not FUClass.NONE:
            occupy(op.instr.fu_class, op.cluster, op.start)
    for op in schedule.replicas:
        if op.instr.fu_class is not FUClass.NONE:
            occupy(op.instr.fu_class, op.cluster, op.start)
    for pf in schedule.prefetches:
        occupy(FUClass.MEM, pf.cluster, pf.start)

    caps = {
        FUClass.INT: config.int_units_per_cluster,
        FUClass.MEM: config.mem_units_per_cluster,
        FUClass.FP: config.fp_units_per_cluster,
    }
    for (fu, cluster, row), used in sorted(
        fu_use.items(), key=lambda kv: (kv[0][0].value, kv[0][1], kv[0][2])
    ):
        if used > caps[fu]:
            out.append(
                Diagnostic.new(
                    "A006",
                    f"{fu.value} units oversubscribed in cluster {cluster} "
                    f"row {row}: {used} placed, {caps[fu]} available",
                )
            )

    for row, used in sorted(_bus_rows(schedule).items()):
        if used > config.n_buses:
            out.append(
                Diagnostic.new(
                    "A007",
                    f"buses oversubscribed in row {row}: {used} comms, "
                    f"{config.n_buses} buses",
                )
            )
    return out


def _bus_rows(schedule: ModuloSchedule) -> dict[int, int]:
    rows: dict[int, int] = {}
    for comm in schedule.comms:
        row = comm.start % schedule.ii
        rows[row] = rows.get(row, 0) + 1
    return rows


def bus_binding_rows(schedule: ModuloSchedule) -> list[int]:
    """Kernel rows whose bus slots are fully occupied.

    The exact scheduler refutes candidate IIs through the same
    greedy-earliest bus placement the heuristic engine uses; that
    refutation is complete only while buses are never binding.  A row
    at full occupancy therefore voids search-based optimality proofs
    (``ii <= MII`` proofs survive: MII is bus-blind but still a valid
    lower bound).
    """
    return sorted(
        row
        for row, used in _bus_rows(schedule).items()
        if used >= schedule.config.n_buses
    )


def check_schedule(schedule: ModuloSchedule, ddg: DDG) -> list[Diagnostic]:
    """All schedule-legality checks (A001-A007)."""
    out = check_dependences(schedule, ddg)
    out.extend(check_comms(schedule))
    out.extend(check_reservations(schedule))
    return out
