"""``python -m repro.analysis`` — audit on-disk artifacts, run the lint.

* ``audit`` (the default): open the compile-artifact store, certify
  every artifact the manifest lists through the full checker stack, and
  report findings by stable code.  Exits 1 when any *blocking* finding
  (severity above NOTE) survives, or when ``--min`` artifacts were not
  audited — so a CI lane cannot silently pass against an empty cache.
* ``lint``: run the project's AST lint (A101-A104) over source trees;
  exits 1 on any finding.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def audit_compile_store(
    compile_cache_dir,
    *,
    min_artifacts: int = 0,
    echo=print,
) -> int:
    """Certify every artifact in a compile store; return an exit code."""
    from ..pipeline.compilecache import CompiledLoopCache
    from .certify import certify_compiled

    path = Path(compile_cache_dir)
    if not path.is_dir():
        echo(f"no compile-cache directory at {path}", file=sys.stderr)
        return 1 if min_artifacts else 0
    cache = CompiledLoopCache(path)
    entries = cache.store.entries()
    audited = flagged = notes = 0
    for key in sorted(entries):
        compiled = cache.get(key)
        if compiled is None:
            continue  # torn/corrupt entry: `repro.cache verify` territory
        diagnostics = certify_compiled(compiled, artifact_key=key)
        audited += 1
        blockers = [d for d in diagnostics if d.blocking]
        advisories = [d for d in diagnostics if not d.blocking]
        notes += len(advisories)
        if blockers or advisories:
            desc = entries[key].description or {}
            verdict = "FLAGGED" if blockers else "certified"
            echo(
                f"{verdict} {key[:12]} loop={desc.get('loop', '?')} "
                f"scheduler={desc.get('scheduler', '?')}"
            )
            for d in blockers + advisories:
                echo("  " + d.render())
        if blockers:
            flagged += 1
    cache.flush()
    echo(
        f"{audited} artifacts audited: {audited - flagged} certified, "
        f"{flagged} flagged, {notes} notes"
    )
    if audited < min_artifacts:
        echo(
            f"expected at least {min_artifacts} artifacts but audited "
            f"{audited}",
            file=sys.stderr,
        )
        return 1
    return 1 if flagged else 0


def _cmd_audit(args) -> int:
    return audit_compile_store(
        args.compile_cache_dir,
        min_artifacts=args.min,
        echo=lambda msg, file=sys.stdout: print(msg, file=file),
    )


def _cmd_lint(args) -> int:
    from .lint import lint_paths

    paths = args.paths or [Path(__file__).resolve().parents[1]]
    findings = lint_paths(paths)
    for d in findings:
        print(d.render())
    print(f"{len(findings)} lint findings")
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ("audit", "lint"):
        argv = ["audit", *argv]

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static certifier for compile artifacts + project lint.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    audit = sub.add_parser(
        "audit", help="certify every artifact in the compile store (default)"
    )
    audit.add_argument(
        "--compile-cache-dir",
        default=".compile-cache",
        help="compile-artifact store directory",
    )
    audit.add_argument(
        "--min",
        type=int,
        default=0,
        help="fail unless at least this many artifacts were audited",
    )

    lint = sub.add_parser("lint", help="run the custom AST lint (A101-A104)")
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )

    args = parser.parse_args(argv)
    return {"audit": _cmd_audit, "lint": _cmd_lint}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
