"""Independent static certifier and artifact sanitizer.

``repro.analysis`` re-derives, from first principles and sharing no
code with the schedulers, everything the compile pipeline claims about
an artifact: schedule legality (dependences, comms, reservation
tables), register lifetimes under modulo variable expansion, L0 buffer
occupancy and flush coverage, and the fast-path trace's event
prunings.  It also hosts the project's AST lint.  All findings are
typed :class:`Diagnostic` records with stable codes.

Only the diagnostics leaf is imported eagerly: the scheduler package
imports :class:`Diagnostic` for its own ``validate()``, and the
checkers import the scheduler's data types — loading them here would
close an import cycle.  The heavier entry points resolve lazily.
"""

from .diagnostics import CODES, Diagnostic, Severity, blocking

__all__ = [
    "CODES",
    "Diagnostic",
    "Severity",
    "blocking",
    "certify_compiled",
    "check_schedule",
    "lint_paths",
]

_LAZY = {
    "certify_compiled": ("repro.analysis.certify", "certify_compiled"),
    "check_schedule": ("repro.analysis.dependence", "check_schedule"),
    "lint_paths": ("repro.analysis.lint", "lint_paths"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
