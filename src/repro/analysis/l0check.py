"""Checker 3: L0 buffer occupancy, hint consistency, flush coverage.

Three static facts the compiled artifacts claim about the paper's
compiler-managed L0 buffers, re-proved here from the raw schedule and
loop IR:

* **Occupancy (A009)** — a load stream resident in an L0 buffer holds
  its current subblock plus the prefetched next one, so a cluster
  hosting ``k`` L0 load streams needs ``2k`` entries.  The scheduler
  budgets entries attempt-by-attempt; this check re-counts the *final*
  placement against the declared capacity.
* **Hint consistency (A010)** — on the L0 architecture a load was
  scheduled with exactly one of two latencies, and the hint bundle the
  schedule carries must agree: ``uses_l0`` hints with the L0 latency,
  bypass hints with the L1 latency.  A mismatch means the simulator
  and the scheduler disagree about where the load's data lives.
* **Flush coverage (A011)** — replay the program's flush plan and
  prove every stale-read hazard the memory-dependence analysis reports
  is covered by a flush: no loop may start while a conflicting loop's
  entries can still be resident, and a loop that re-reads data it
  stores may not skip its between-invocation flush.
"""

from __future__ import annotations

from ..ir.loop import Loop
from ..ir.memdep import patterns_may_alias
from ..machine.config import ArchKind
from ..scheduler.schedule import ModuloSchedule
from .diagnostics import Diagnostic

#: Steady-state entries one resident load stream occupies: the subblock
#: it is reading plus the one the automatic prefetch brought in.
#: (Restated from the paper's section 4.3 capacity argument, on purpose
#: not imported from the scheduler being checked.)
ENTRIES_PER_STREAM = 2


def check_l0_occupancy(schedule: ModuloSchedule) -> list[Diagnostic]:
    """A009: per-cluster resident streams fit the declared L0 capacity."""
    config = schedule.config
    if config.arch is not ArchKind.L0 or config.l0_entries is None:
        return []
    streams: dict[int, int] = {}
    for op in schedule.placed.values():
        if op.instr.is_load and op.hints.uses_l0:
            streams[op.cluster] = streams.get(op.cluster, 0) + 1
    out: list[Diagnostic] = []
    for cluster, count in sorted(streams.items()):
        need = count * ENTRIES_PER_STREAM
        if need > config.l0_entries:
            out.append(
                Diagnostic.new(
                    "A009",
                    f"cluster {cluster} hosts {count} L0 load streams "
                    f"needing {need} entries but the buffer holds "
                    f"{config.l0_entries}",
                )
            )
    return out


def check_hint_consistency(schedule: ModuloSchedule) -> list[Diagnostic]:
    """A010: every load's scheduled latency matches its access hints."""
    config = schedule.config
    if config.arch is not ArchKind.L0:
        return []  # other architectures bypass L0; latencies vary by policy
    out: list[Diagnostic] = []
    for uid, op in sorted(schedule.placed.items()):
        if not op.instr.is_load:
            continue
        expected = config.l0_latency if op.hints.uses_l0 else config.l1_latency
        if op.latency != expected:
            where = "L0" if op.hints.uses_l0 else "L1"
            out.append(
                Diagnostic.new(
                    "A010",
                    f"load {uid} was scheduled with latency {op.latency} "
                    f"but its hints say it reads through {where} "
                    f"(latency {expected})",
                )
            )
    return out


def check_l0(schedule: ModuloSchedule) -> list[Diagnostic]:
    """All single-schedule L0 checks (A009/A010)."""
    return check_l0_occupancy(schedule) + check_hint_consistency(schedule)


# ----------------------------------------------------------------------
# Program-level flush audit
# ----------------------------------------------------------------------


def _stale_read_hazard(prev: Loop, nxt: Loop) -> bool:
    """May ``nxt`` observe stale L0 state left behind by ``prev``?

    Re-derived from the memory-dependence primitives: a load in ``nxt``
    may hit an entry a ``prev`` store updated underneath, and a store in
    ``nxt`` may be masked by an entry ``prev`` left resident — so any
    ``nxt`` access aliasing a ``prev`` store is a hazard, as is a
    ``nxt`` store aliasing a ``prev`` load.
    """
    prev_stores = [i for i in prev.body if i.is_store]
    prev_loads = [i for i in prev.body if i.is_load]
    for access in nxt.body:
        if not (access.is_load or access.is_store):
            continue
        against = prev_stores if access.is_load else prev_stores + prev_loads
        ap = access.pattern
        assert ap is not None
        for other in against:
            op_ = other.pattern
            assert op_ is not None
            same = op_.array.name == ap.array.name
            if not same:
                if prev.may_alias_arrays(
                    op_.array.name, ap.array.name
                ) or nxt.may_alias_arrays(op_.array.name, ap.array.name):
                    return True  # declared overlap: no pattern proof possible
                continue
            if patterns_may_alias(op_, ap, same_array=True):
                return True
    return False


def _invocation_hazard(loop: Loop) -> bool:
    """May one invocation of ``loop`` read data an earlier one stored?"""
    for load in loop.loads:
        lp = load.pattern
        assert lp is not None
        for store in loop.stores:
            sp = store.pattern
            assert sp is not None
            same = sp.array.name == lp.array.name
            if not same:
                if loop.may_alias_arrays(sp.array.name, lp.array.name):
                    return True
                continue
            if patterns_may_alias(sp, lp, same_array=True):
                return True
    return False


def audit_flush_plan(plans) -> list[Diagnostic]:
    """A011: the planned flush points cover every cross-loop conflict.

    ``plans`` is the runner's phase-1 output (``repro.sim.runner``'s
    ``LoopPlan`` records, in program order).  The audit replays the
    residency the flush flags actually produce — a skipped after-flush
    leaves the loop's entries resident, a between-invocation flush on a
    multi-invocation loop wipes everything older but leaves the final
    invocation's own entries — and demands a flush between every
    hazarding pair the dependence analysis reports.
    """
    out: list[Diagnostic] = []
    resident: list[tuple[int, Loop]] = []
    for index, plan in enumerate(plans):
        if plan.config.arch is ArchKind.L0:
            for prev_index, prev in resident:
                if _stale_read_hazard(prev, plan.loop):
                    out.append(
                        Diagnostic.new(
                            "A011",
                            f"loop {plan.loop.name!r} (position {index}) "
                            f"conflicts with entries loop {prev.name!r} "
                            f"(position {prev_index}) left resident; no "
                            f"flush separates them",
                            loop=plan.loop.name,
                        )
                    )
            if (
                plan.invocations > 1
                and not plan.flush_between
                and _invocation_hazard(plan.loop)
            ):
                out.append(
                    Diagnostic.new(
                        "A011",
                        f"loop {plan.loop.name!r} re-reads data it stores "
                        f"but skips its between-invocation flush",
                        loop=plan.loop.name,
                    )
                )
        if plan.flush_after:
            resident = []
        elif plan.flush_between and plan.invocations > 1:
            resident = [(index, plan.loop)]
        else:
            resident.append((index, plan.loop))
    return out
