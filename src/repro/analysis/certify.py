"""The certifier: run every checker over an artifact, record a verdict.

``certify_compiled`` is the single entry point the pipeline, the CLI
and the tests share.  It runs the independent checkers (dependences,
register lifetimes, L0 occupancy, trace audit), reviews the schedule's
optimality claim, stamps the verdict into ``schedule.meta`` and returns
the findings with provenance attached.

Optimality review: the exact scheduler proves ``proved_optimal`` two
ways.  A schedule at the MII lower bound stays proven — the bound is
bus-blind but valid.  A search proof (``ii > mii``) rests on refuting
every smaller II with the same greedy-earliest bus placement the
heuristic engine uses, which is only a complete refutation while bus
slots are never binding; when the certifier finds fully occupied bus
rows it downgrades the claim to ``"unverified"`` and notes A014.
"""

from __future__ import annotations

from ..ir.ddg import DDG
from ..scheduler.schedule import ModuloSchedule
from .dependence import bus_binding_rows, check_schedule
from .diagnostics import Diagnostic, blocking
from .l0check import check_l0
from .lifetimes import check_register_pressure


def _optimality_review(schedule: ModuloSchedule) -> list[Diagnostic]:
    """A014 + the ``proved_optimal`` downgrade (see module docstring)."""
    meta = schedule.meta
    claimed = meta.get("proved_optimal")
    if claimed is not True and claimed != "unverified":
        return []
    mii = meta.get("mii")
    if mii is None or schedule.ii <= mii:
        return []  # lower-bound proof: survives bus saturation
    rows = bus_binding_rows(schedule)
    if not rows:
        return []
    meta["proved_optimal"] = "unverified"
    return [
        Diagnostic.new(
            "A014",
            f"II={schedule.ii} > MII={mii}: the optimality proof refutes "
            f"smaller IIs under greedy bus placement, but kernel rows "
            f"{rows} are bus-binding; claim downgraded to 'unverified'",
        )
    ]


def _finish(
    schedule: ModuloSchedule,
    diagnostics: list[Diagnostic],
    artifact_key: str | None,
) -> list[Diagnostic]:
    """Stamp provenance and the meta verdict; return the findings."""
    diagnostics = [
        d.with_provenance(loop=schedule.loop_name, origin=artifact_key)
        for d in diagnostics
    ]
    schedule.meta["analysis"] = {
        "verdict": "flagged" if blocking(diagnostics) else "certified",
        "codes": sorted({d.code for d in diagnostics}),
        "bus_binding_rows": bus_binding_rows(schedule),
    }
    return diagnostics


def certify_schedule(
    schedule: ModuloSchedule,
    ddg: DDG,
    *,
    artifact_key: str | None = None,
) -> list[Diagnostic]:
    """Certify a bare schedule (no trace): checkers 1-3 + A014 review."""
    diagnostics = check_schedule(schedule, ddg)
    diagnostics += check_register_pressure(schedule, ddg)
    diagnostics += check_l0(schedule)
    diagnostics += _optimality_review(schedule)
    return _finish(schedule, diagnostics, artifact_key)


def certify_compiled(compiled, *, artifact_key: str | None = None) -> list[Diagnostic]:
    """Certify a full compiled artifact, including its cached trace."""
    from .traceaudit import audit_trace

    schedule = compiled.schedule
    diagnostics = check_schedule(schedule, compiled.ddg)
    diagnostics += check_register_pressure(schedule, compiled.ddg)
    diagnostics += check_l0(schedule)
    diagnostics += audit_trace(compiled)
    diagnostics += _optimality_review(schedule)
    return _finish(schedule, diagnostics, artifact_key)
