"""Typed diagnostics shared by the certifier, the linter and ``validate()``.

Every finding any ``repro.analysis`` checker (or the legacy
``ModuloSchedule.validate``) produces is a :class:`Diagnostic`: a stable
machine-readable code, a severity, a human message and provenance
(which loop / artifact / source line).  Codes are append-only — tests
and CI gates key on them, so a code is never renumbered or reused.

This module is a *leaf*: it imports nothing from the rest of the
package, so the scheduler can emit typed diagnostics without creating
an import cycle with the checkers (which import the scheduler's data
types).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class Severity(enum.Enum):
    """How a diagnostic gates an artifact.

    ``ERROR`` and ``WARNING`` are *blocking*: the artifact fails
    certification (CLI exit 1, ``verdict: "flagged"``).  ``NOTE`` is
    advisory — a sound schedule about which the certifier still has
    something to say (e.g. an optimality claim it cannot re-prove).
    """

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"


#: The stable diagnostic registry: code -> (default severity, title).
#: Append-only; never renumber.  A001-A0xx are certifier codes, A1xx
#: are lint codes.  docs/architecture.md renders this table.
CODES: dict[str, tuple[Severity, str]] = {
    # -- schedule legality (independent re-derivation of validate()) ----
    "A001": (Severity.ERROR, "edge or comm references an unplaced instruction"),
    "A002": (Severity.ERROR, "dependence violated: value ready after consumer issue"),
    "A003": (Severity.ERROR, "cross-cluster value has no communication"),
    "A004": (Severity.ERROR, "comm starts before its value is produced"),
    "A005": (Severity.ERROR, "comm source cluster mismatch"),
    "A006": (Severity.ERROR, "functional unit oversubscribed in a kernel row"),
    "A007": (Severity.ERROR, "bus slots oversubscribed in a kernel row"),
    # -- register lifetimes ---------------------------------------------
    "A008": (Severity.ERROR, "register pressure exceeds the cluster register file"),
    # -- L0 buffer occupancy / consistency ------------------------------
    "A009": (Severity.ERROR, "resident L0 streams exceed the cluster's L0 capacity"),
    "A010": (Severity.ERROR, "load latency inconsistent with its L0 access hints"),
    "A011": (Severity.ERROR, "missing L0 flush before a conflicting loop"),
    # -- trace-pruning audit --------------------------------------------
    "A012": (Severity.ERROR, "trace pruned an event whose static slack is positive"),
    "A013": (Severity.ERROR, "trace disagrees with the schedule it was built from"),
    # -- advisory -------------------------------------------------------
    "A014": (
        Severity.NOTE,
        "bus-binding kernel rows: greedy bus placement cannot support the "
        "schedule's optimality proof",
    ),
    # -- custom lint ----------------------------------------------------
    "A101": (Severity.ERROR, "unseeded random number generation in a hot path"),
    "A102": (Severity.ERROR, "wall-clock read in a hot path"),
    "A103": (
        Severity.ERROR,
        "iteration over an unordered set feeding schedules or cache keys",
    ),
    "A104": (
        Severity.ERROR,
        "undeclared MachineConfig field read in a declared pass body",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, with a stable code and artifact provenance.

    ``str(diagnostic)`` returns the bare message — the shim that keeps
    pre-migration consumers of ``ModuloSchedule.validate()`` (which
    matched on message substrings) working unchanged.
    """

    code: str
    message: str
    severity: Severity = field(default=Severity.ERROR)
    #: Loop the finding is about (schedule/artifact checkers).
    loop: str | None = None
    #: Where the finding came from: a compile-cache key, or a
    #: ``path:line`` location for lint findings.
    origin: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @classmethod
    def new(cls, code: str, message: str, **kwargs) -> "Diagnostic":
        """Build a diagnostic with the code's registered default severity."""
        if code not in CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        severity, _title = CODES[code]
        kwargs.setdefault("severity", severity)
        return cls(code=code, message=message, **kwargs)

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    @property
    def blocking(self) -> bool:
        """Whether this finding fails certification (NOTE does not)."""
        return self.severity is not Severity.NOTE

    def with_provenance(
        self, *, loop: str | None = None, origin: str | None = None
    ) -> "Diagnostic":
        """A copy with provenance filled in where it was missing."""
        return replace(
            self, loop=self.loop or loop, origin=self.origin or origin
        )

    def __str__(self) -> str:
        return self.message

    def render(self) -> str:
        """Full one-line rendering: code, severity, provenance, message."""
        where = []
        if self.loop:
            where.append(f"loop={self.loop}")
        if self.origin:
            where.append(self.origin)
        prefix = f"{self.code} [{self.severity.value}]"
        if where:
            prefix += " (" + ", ".join(where) + ")"
        return f"{prefix}: {self.message}"


def blocking(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """The subset of findings that fail certification."""
    return [d for d in diagnostics if d.blocking]
