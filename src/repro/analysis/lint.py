"""Custom AST lint: project invariants ruff has no rules for.

Three invariants keep this repository's results reproducible, and all
three live in *how* code is written rather than in any artifact a
checker could audit after the fact:

* **A101 / A102** — simulator and scheduler hot paths must be
  deterministic: no unseeded ``random`` calls, no wall-clock reads
  (``time.time``/``monotonic``/``perf_counter``, ``datetime.now``).
  Measured cycle counts are cached content-addressed; a hidden clock or
  RNG read silently breaks "a run is fully determined by its inputs".
  Applied to files under ``sim/`` and ``scheduler/``.
* **A103** — iterating a ``set``/``frozenset`` feeds hash order into
  whatever consumes the loop; in scheduling and cache-key code that
  turns into run-to-run schedule or key differences.  Applied to files
  under ``sim/``, ``scheduler/`` and ``pipeline/``; iterate
  ``sorted(...)`` instead.
* **A104** — a pass registered with a declared ``config_fields``
  contract must not read undeclared :class:`MachineConfig` fields in
  its body: the compile cache keys the pass's products on exactly the
  declared set, so an undeclared read makes cache hits unsound.
  Applied everywhere.

Waive a finding with a same-line ``# analysis: allow(A103)`` comment
(comma-separate several codes); every waiver is deliberate and greps.
"""

from __future__ import annotations

import ast
import re
from dataclasses import fields as dataclass_fields
from pathlib import Path

from ..machine.config import MachineConfig
from .diagnostics import Diagnostic

CONFIG_FIELD_NAMES = frozenset(f.name for f in dataclass_fields(MachineConfig))

_ALLOW_RE = re.compile(r"#\s*analysis:\s*allow\(([A-Z0-9,\s]+)\)")

#: ``time`` module attributes that read the wall clock.
_CLOCK_CALLS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Directories whose files are timing/ordering sensitive.
_TIMING_DIRS = frozenset({"sim", "scheduler"})
_ORDER_DIRS = frozenset({"sim", "scheduler", "pipeline"})


def _suppressions(source: str) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            out[lineno] = {c.strip() for c in match.group(1).split(",") if c.strip()}
    return out


def _is_set_expr(node: ast.AST) -> bool:
    """Literally a set: display, comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _annotation_is_set(node: ast.AST | None) -> bool:
    """Does an annotation expression name ``set``/``frozenset``?"""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_is_set(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


def _collect_set_bindings(tree: ast.AST) -> tuple[set[str], set[str]]:
    """Names and ``self.<attr>`` attributes bound to sets in this module."""
    names: set[str] = set()
    attrs: set[str] = set()

    def bind(target: ast.AST, is_set: bool) -> None:
        if not is_set:
            return
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            attrs.add(target.attr)

    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            bind(node.target, _annotation_is_set(node.annotation))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target, _is_set_expr(node.value))
        elif isinstance(node, ast.arg):
            bind(ast.Name(id=node.arg), _annotation_is_set(node.annotation))
    return names, attrs


def _iterates_set(iter_node: ast.AST, names: set[str], attrs: set[str]) -> bool:
    if _is_set_expr(iter_node):
        return True
    if isinstance(iter_node, ast.Name) and iter_node.id in names:
        return True
    if (
        isinstance(iter_node, ast.Attribute)
        and isinstance(iter_node.value, ast.Name)
        and iter_node.value.id == "self"
        and iter_node.attr in attrs
    ):
        return True
    return False


def _declared_config_fields(decorator: ast.Call):
    """The literal ``config_fields`` tuple of a ``register_pass`` call.

    Returns the declared names, or ``None`` when absent / not a literal
    (an undeclared pass may read the whole config).
    """
    for kw in decorator.keywords:
        if kw.arg != "config_fields":
            continue
        value = kw.value
        if isinstance(value, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return {e.value for e in value.elts}
        return None
    return None


def _is_register_pass(decorator: ast.AST) -> ast.Call | None:
    if not isinstance(decorator, ast.Call):
        return None
    func = decorator.func
    name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr
        if isinstance(func, ast.Attribute)
        else None
    )
    return decorator if name == "register_pass" else None


def lint_source(
    source: str,
    path: str,
    *,
    timing_sensitive: bool | None = None,
    order_sensitive: bool | None = None,
) -> list[Diagnostic]:
    """Lint one file's source text.  ``None`` sensitivity = infer from path."""
    parts = set(Path(path).parts)
    if timing_sensitive is None:
        timing_sensitive = bool(parts & _TIMING_DIRS)
    if order_sensitive is None:
        order_sensitive = bool(parts & _ORDER_DIRS)

    tree = ast.parse(source, filename=path)
    allow = _suppressions(source)
    set_names, set_attrs = _collect_set_bindings(tree)
    out: list[Diagnostic] = []

    def emit(code: str, lineno: int, message: str) -> None:
        if code in allow.get(lineno, ()):
            return
        out.append(Diagnostic.new(code, message, origin=f"{path}:{lineno}"))

    for node in ast.walk(tree):
        # A101/A102: nondeterminism sources in hot paths -----------------
        if timing_sensitive and isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                module, attr = func.value.id, func.attr
                if module == "random":
                    seeded = attr in ("Random", "seed") and node.args
                    if not seeded:
                        emit(
                            "A101",
                            node.lineno,
                            f"random.{attr}() draws from the unseeded global "
                            f"RNG in a hot path",
                        )
                if module == "time" and attr in _CLOCK_CALLS:
                    emit(
                        "A102",
                        node.lineno,
                        f"time.{attr}() reads the wall clock in a hot path",
                    )
                if attr in ("now", "utcnow", "today") and (
                    module in ("datetime", "date")
                    or (
                        isinstance(func.value, ast.Attribute)
                        and func.value.attr in ("datetime", "date")
                    )
                ):
                    emit(
                        "A102",
                        node.lineno,
                        f"{module}.{attr}() reads the wall clock in a hot path",
                    )

        # A103: hash-ordered iteration -----------------------------------
        if order_sensitive:
            iters: list[tuple[ast.AST, int]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append((node.iter, node.iter.lineno))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    iters.append((gen.iter, gen.iter.lineno))
            for iter_node, lineno in iters:
                if _iterates_set(iter_node, set_names, set_attrs):
                    emit(
                        "A103",
                        lineno,
                        "iteration over an unordered set; wrap the iterable "
                        "in sorted() to fix the order",
                    )

        # A104: undeclared config reads in declared pass bodies ----------
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            declared = None
            for decorator in node.decorator_list:
                call = _is_register_pass(decorator)
                if call is not None:
                    declared = _declared_config_fields(call)
            if declared is None:
                continue
            aliases = {"config"}
            for inner in ast.walk(node):
                if isinstance(inner, ast.Assign) and isinstance(
                    inner.value, ast.Attribute
                ):
                    if inner.value.attr == "config":
                        for target in inner.targets:
                            if isinstance(target, ast.Name):
                                aliases.add(target.id)
            for inner in ast.walk(node):
                if not (
                    isinstance(inner, ast.Attribute)
                    and inner.attr in CONFIG_FIELD_NAMES
                ):
                    continue
                base = inner.value
                reads_config = (
                    isinstance(base, ast.Attribute) and base.attr == "config"
                ) or (isinstance(base, ast.Name) and base.id in aliases)
                if reads_config and inner.attr not in declared:
                    emit(
                        "A104",
                        inner.lineno,
                        f"pass body reads MachineConfig.{inner.attr} but its "
                        f"config_fields declaration omits it",
                    )
    return out


def lint_paths(paths) -> list[Diagnostic]:
    """Lint files and directories (directories are walked recursively)."""
    files: list[Path] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    out: list[Diagnostic] = []
    for file in files:
        out.extend(lint_source(file.read_text(), str(file)))
    return out
