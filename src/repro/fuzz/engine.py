"""Job generation and differential execution for the fuzzing engine.

A :class:`FuzzJob` is one (kernel id, config name, check set) triple.
:func:`run_jobs` deduplicates jobs against the content-addressed
:class:`~repro.fuzz.store.FuzzStore` (clean *and* mismatching results
are both recorded — a second identical run re-simulates nothing), fans
the misses out through the pipeline's serial/process executors, and
folds everything into a :class:`FuzzReport` whose JSON rendering is
what CI gates on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..machine.config import MachineConfig
from ..machine import (
    interleaved_config,
    l0_config,
    multivliw_config,
    unified_config,
)
from ..pipeline.executor import make_executor
from .checks import CheckSkipped, FuzzOptions, run_check
from .corpus import resolve_kernel
from .store import FuzzStore, job_store_key

#: Named machine configurations jobs draw from.  The defaults are
#: 4-cluster machines (cross-cluster traffic included); the ``*_2cl``
#: entries vary the cluster count, the rest sweep the paper's memory
#: architectures and L0 sizes.
FUZZ_CONFIGS: dict[str, MachineConfig] = {
    "unified": unified_config(),
    "unified_2cl": unified_config(n_clusters=2),
    "l0_4": l0_config(4),
    "l0_8": l0_config(8),
    "l0_8_2cl": l0_config(8, n_clusters=2),
    "l0_unbounded": l0_config(None),
    "multivliw": multivliw_config(),
    "interleaved": interleaved_config(),
}


@dataclass(frozen=True)
class FuzzJob:
    """One unit of fuzzing work."""

    kernel_id: str
    config_name: str
    checks: tuple[str, ...]

    def resolve(self) -> tuple:
        genotype = resolve_kernel(self.kernel_id)
        try:
            config = FUZZ_CONFIGS[self.config_name]
        except KeyError:
            raise ValueError(
                f"unknown config {self.config_name!r} (known: "
                f"{sorted(FUZZ_CONFIGS)})"
            ) from None
        return genotype, config

    def key(self, options: FuzzOptions) -> str:
        genotype, config = self.resolve()
        return job_store_key(genotype.fingerprint(), config, self.checks, options)


def make_jobs(
    kernel_ids: list[str],
    config_names: list[str],
    checks: tuple[str, ...],
    *,
    spread: bool = True,
) -> list[FuzzJob]:
    """Cross kernels with configs.

    With ``spread`` (the random-corpus default), each kernel runs on
    *one* config — rotated deterministically over the requested set, so
    a seed range covers every config without multiplying the job count.
    Without it (edge kernels), every kernel runs on every config.
    """
    jobs: list[FuzzJob] = []
    for index, kernel_id in enumerate(kernel_ids):
        if spread:
            jobs.append(
                FuzzJob(kernel_id, config_names[index % len(config_names)], checks)
            )
        else:
            jobs.extend(
                FuzzJob(kernel_id, name, checks) for name in config_names
            )
    return jobs


def execute_job(item: tuple[FuzzJob, FuzzOptions]) -> dict:
    """Run one job's checks; module-level so it pickles to workers."""
    job, options = item
    genotype, config = job.resolve()
    mismatches: list[dict] = []
    skipped: list[dict] = []
    for check in job.checks:
        try:
            loop = genotype.build()
            mismatches.extend(run_check(check, loop, config, options))
        except CheckSkipped as exc:
            skipped.append({"check": check, "reason": str(exc)})
        except Exception as exc:  # a crash is a finding, not an abort
            mismatches.append(
                {
                    "check": check,
                    "kind": "error",
                    "detail": f"{type(exc).__name__}: {exc}",
                }
            )
    return {
        "job": {
            "kernel_id": job.kernel_id,
            "config_name": job.config_name,
            "checks": sorted(job.checks),
        },
        "mismatches": mismatches,
        "skipped": skipped,
    }


@dataclass
class FuzzReport:
    """What one ``repro.fuzz run`` did, JSON-able for CI gating."""

    total: int = 0
    executed: int = 0
    store_hits: int = 0
    not_run: int = 0
    skipped_checks: int = 0
    wall_s: float = 0.0
    #: Store entries (hit or fresh) whose mismatch list is non-empty.
    mismatched: list[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.mismatched and self.not_run == 0

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "executed": self.executed,
            "store_hits": self.store_hits,
            "not_run": self.not_run,
            "skipped_checks": self.skipped_checks,
            "wall_s": round(self.wall_s, 3),
            "mismatches": self.mismatched,
            "clean": self.clean,
        }


def run_jobs(
    jobs: list[FuzzJob],
    *,
    options: FuzzOptions | None = None,
    store: FuzzStore | None = None,
    workers: int | None = None,
    time_budget_s: float | None = None,
    max_jobs: int | None = None,
) -> FuzzReport:
    """Run a job list through the store and the executor layer.

    Store hits (clean or not) are never re-executed; misses fan out
    through :func:`~repro.pipeline.executor.make_executor` in chunks so
    a ``time_budget_s`` deadline is honoured between chunks (jobs past
    the deadline are counted as ``not_run``, which fails ``clean``).
    """
    options = options or FuzzOptions()
    if max_jobs is not None:
        jobs = jobs[:max_jobs]
    started = time.monotonic()
    report = FuzzReport(total=len(jobs))

    pending: list[tuple[str, FuzzJob]] = []
    seen: set[str] = set()
    for job in jobs:
        key = job.key(options)
        if key in seen:
            continue
        seen.add(key)
        entry = store.get(key) if store is not None else None
        if entry is not None:
            report.store_hits += 1
            report.skipped_checks += len(entry.get("skipped", []))
            if entry.get("mismatches"):
                report.mismatched.append(entry)
        else:
            pending.append((key, job))

    executor = make_executor(workers)
    chunk_size = max(getattr(executor, "workers", 1) * 4, 16)
    deadline = None if time_budget_s is None else started + time_budget_s
    cursor = 0
    while cursor < len(pending):
        if deadline is not None and time.monotonic() > deadline:
            break
        chunk = pending[cursor : cursor + chunk_size]
        cursor += len(chunk)
        entries = executor.map([(job, options) for _, job in chunk], execute_job)
        for (key, job), entry in zip(chunk, entries):
            report.executed += 1
            report.skipped_checks += len(entry.get("skipped", []))
            if store is not None:
                store.put(
                    key,
                    entry,
                    description={
                        "kernel": job.kernel_id,
                        "config": job.config_name,
                        "checks": ",".join(sorted(job.checks)),
                    },
                )
            if entry.get("mismatches"):
                report.mismatched.append(entry)
    report.not_run = len(pending) - cursor
    if store is not None:
        store.flush()
    report.wall_s = time.monotonic() - started
    return report
