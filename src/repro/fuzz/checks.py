"""The pluggable check registry: what "correct" means per fuzz job.

Each check is a function ``(loop, config, options) -> list[mismatch]``
over one (kernel, config) pair; an empty list means the pair is clean
under that oracle.  A check may raise :class:`CheckSkipped` to record
that the job is out of its scope.  Mismatch records are plain dicts
(``{"check", "kind", "detail"}``) so they serialise straight into the
schema-1 fuzz-store entry and the CI summary.

Checks:

* ``fast_vs_ref`` — the PR-5 differential oracle: the precompiled-trace
  :class:`~repro.sim.trace.TraceExecutor` must match the reference
  interpreter byte for byte (cycles, stall history, every memory-stats
  counter).
* ``exact_vs_sms`` — the PR-3 scheduler oracle:
  ``MII <= II(exact) <= II(SMS)``, both schedules validate, and the
  exact backend's meta claims are internally consistent.
* ``certify`` — the PR-6 independent static certifier reports zero
  blocking diagnostics on the compiled artifact.

Fault injection (``FuzzOptions.fault``) deterministically corrupts the
compiled artifact's static trace *on a private copy* before the fast
path runs — the shrinker's tests and CI's acceptance drill use it to
prove a real fast-path divergence would be caught and shrunk.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from ..analysis.certify import certify_compiled
from ..analysis.diagnostics import blocking
from ..ir.loop import Loop
from ..isa.memory_access import MemoryLayout
from ..machine.config import MachineConfig
from ..pipeline.artifact import CompileOptions
from ..pipeline.compilecache import compile_cached
from ..sim.executor import LoopExecutor
from ..sim.runner import make_memory
from ..sim.trace import EV_CHECK, EV_LOAD, TraceExecutor, static_trace


class CheckSkipped(Exception):
    """A check declaring the job out of scope (recorded, not failed)."""


@dataclass(frozen=True)
class FuzzOptions:
    """Knobs shared by every check of one fuzz run.

    They participate in the store key: a run with a different budget or
    an injected fault must never be served a clean entry recorded under
    other settings.
    """

    exact_node_budget: int = 20_000
    #: Named deterministic corruption of the fast path's static trace
    #: (``None`` fuzzes the real code).  See :data:`FAULTS`.
    fault: str | None = None

    def to_json(self) -> dict:
        return {"exact_node_budget": self.exact_node_budget, "fault": self.fault}


def _mismatch(check: str, kind: str, detail: str, **extra) -> dict:
    record = {"check": check, "kind": kind, "detail": detail}
    record.update(extra)
    return record


def _compile(loop: Loop, config: MachineConfig, scheduler: str, options: FuzzOptions):
    """Compile through the artifact cache with one canonical option set,
    so the checks of one job share compile work."""
    return compile_cached(
        copy.deepcopy(loop),
        config,
        CompileOptions(
            scheduler=scheduler, exact_node_budget=options.exact_node_budget
        ),
    )


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


def _fault_drop_check_deps(trace) -> int:
    """Erase the interlock dependences: the fast path stops seeing the
    stalls late loads impose on their consumers."""
    touched = 0
    for event in trace.events:
        if event.kind == EV_CHECK and event.deps:
            event.deps = ()
            touched += 1
    return touched


def _fault_late_load(trace) -> int:
    """Overstate the first load's producer latency by one cycle: its
    consumers appear to stall when the reference says they do not."""
    for event in trace.events:
        if event.kind == EV_LOAD:
            event.latency += 1
            return 1
    return 0


#: Registry of named deterministic trace corruptions.
FAULTS = {
    "drop-check-deps": _fault_drop_check_deps,
    "late-load": _fault_late_load,
}


def _faulted_copy(compiled, fault: str):
    """A private copy of the artifact with ``fault`` applied to its
    trace.  The shared compile cache keeps the pristine original."""
    mutator = FAULTS.get(fault)
    if mutator is None:
        raise ValueError(f"unknown fault {fault!r} (known: {sorted(FAULTS)})")
    static_trace(compiled)  # ensure the trace exists before copying
    faulted = copy.deepcopy(compiled)
    mutator(faulted.static_trace)
    return faulted


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------


def check_fast_vs_ref(
    loop: Loop, config: MachineConfig, options: FuzzOptions
) -> list[dict]:
    """TraceExecutor vs reference interpreter: byte-identical results."""
    compiled = _compile(loop, config, "sms", options)
    if options.fault is not None:
        compiled = _faulted_copy(compiled, options.fault)
    n = compiled.loop.trip_count
    ref_mem, fast_mem = make_memory(config), make_memory(config)
    ref = LoopExecutor(compiled, ref_mem, MemoryLayout(align=config.l1_block))
    fast = TraceExecutor(
        compiled, fast_mem, MemoryLayout(align=config.l1_block), convergence=True
    )
    ref_result = ref.run(n)
    fast_result = fast.run(n)

    mismatches: list[dict] = []
    for field in ("iterations", "compute_cycles", "stall_cycles", "late_loads"):
        got, want = getattr(fast_result, field), getattr(ref_result, field)
        if got != want:
            mismatches.append(
                _mismatch(
                    "fast_vs_ref",
                    field,
                    f"fast {field}={got}, reference {field}={want}",
                )
            )
    if ref.last_stall_by_iteration != fast.last_stall_by_iteration:
        mismatches.append(
            _mismatch(
                "fast_vs_ref",
                "stall_history",
                "per-iteration stall histories differ",
            )
        )
    if ref_mem.stats != fast_mem.stats:
        mismatches.append(
            _mismatch(
                "fast_vs_ref",
                "memory_stats",
                f"memory statistics differ: fast {fast_mem.stats} "
                f"!= reference {ref_mem.stats}",
            )
        )
    return mismatches


def check_exact_vs_sms(
    loop: Loop, config: MachineConfig, options: FuzzOptions
) -> list[dict]:
    """The scheduler oracle: II chain, validity and meta consistency."""
    sms = _compile(loop, config, "sms", options)
    exact = _compile(loop, config, "exact", options)
    meta = exact.schedule.meta
    mismatches: list[dict] = []

    if meta.get("ii_sms") != sms.ii:
        mismatches.append(
            _mismatch(
                "exact_vs_sms",
                "sms_baseline",
                f"exact backend's SMS baseline II={meta.get('ii_sms')} "
                f"!= SMS backend II={sms.ii}",
            )
        )
    if not (meta.get("mii", 0) <= exact.ii <= sms.ii):
        mismatches.append(
            _mismatch(
                "exact_vs_sms",
                "ii_chain",
                f"violated MII={meta.get('mii')} <= II(exact)={exact.ii} "
                f"<= II(SMS)={sms.ii}",
            )
        )
    if exact.ii < sms.ii and not (meta.get("improved") and not meta.get("fallback")):
        mismatches.append(
            _mismatch(
                "exact_vs_sms",
                "meta_improved",
                f"II {sms.ii}->{exact.ii} but meta says improved="
                f"{meta.get('improved')} fallback={meta.get('fallback')}",
            )
        )
    if meta.get("fallback") and meta.get("proved_optimal") is True:
        mismatches.append(
            _mismatch(
                "exact_vs_sms",
                "meta_fallback",
                "budget-exhausted fallback schedule claims proved_optimal",
            )
        )
    for label, compiled in (("sms", sms), ("exact", exact)):
        problems = compiled.schedule.validate(compiled.ddg)
        if problems:
            mismatches.append(
                _mismatch(
                    "exact_vs_sms",
                    "validate",
                    f"{label} schedule fails validation: "
                    f"{[str(p) for p in problems[:3]]}",
                )
            )
    return mismatches


def check_certify(
    loop: Loop, config: MachineConfig, options: FuzzOptions
) -> list[dict]:
    """The independent certifier finds zero blocking diagnostics."""
    compiled = _compile(loop, config, "sms", options)
    diagnostics = blocking(certify_compiled(compiled))
    return [
        _mismatch("certify", d.code, d.render()) for d in diagnostics
    ]


#: The pluggable registry: check name -> callable.
CHECKS = {
    "fast_vs_ref": check_fast_vs_ref,
    "exact_vs_sms": check_exact_vs_sms,
    "certify": check_certify,
}


def run_check(
    name: str, loop: Loop, config: MachineConfig, options: FuzzOptions
) -> list[dict]:
    try:
        check = CHECKS[name]
    except KeyError:
        raise ValueError(f"unknown check {name!r} (known: {sorted(CHECKS)})") from None
    return check(loop, config, options)
