"""Self-contained repro files: shrunk findings as permanent tests.

When a fuzz run mismatches, the shrunk genotype is written as one JSON
file under ``tests/corpus/regressions/`` carrying everything replay
needs — the genotype itself (not a seed: the generator may drift), the
config name, the originally failing check, the recorded mismatches and
shrink statistics, and a human note.  The tier-1 suite
(``tests/test_corpus_regressions.py``) and ``python -m repro.fuzz
replay`` rebuild every committed repro kernel and re-assert *all*
checks, so a finding fixed once can never silently return.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..workloads.generator import KernelGenotype
from .checks import CHECKS, CheckSkipped, FuzzOptions, run_check

REPRO_SCHEMA_VERSION = 1

#: Repository-relative home of the committed regression corpus.
DEFAULT_REGRESSIONS_DIR = Path("tests") / "corpus" / "regressions"


@dataclass
class ReproCase:
    """One committed (or about-to-be-committed) regression kernel."""

    repro_id: str
    genotype: KernelGenotype
    config_name: str
    check: str
    kernel_id: str | None = None
    mismatches: list = field(default_factory=list)
    shrink: dict | None = None
    note: str | None = None
    path: Path | None = None

    def to_json(self) -> dict:
        return {
            "schema": REPRO_SCHEMA_VERSION,
            "id": self.repro_id,
            "kernel_id": self.kernel_id,
            "config_name": self.config_name,
            "check": self.check,
            "genotype": self.genotype.to_json(),
            "mismatches": self.mismatches,
            "shrink": self.shrink,
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: dict, *, path: Path | None = None) -> "ReproCase":
        schema = data.get("schema", REPRO_SCHEMA_VERSION)
        if schema != REPRO_SCHEMA_VERSION:
            raise ValueError(
                f"repro file has schema {schema!r}, "
                f"this code reads {REPRO_SCHEMA_VERSION}"
            )
        return cls(
            repro_id=data["id"],
            genotype=KernelGenotype.from_json(data["genotype"]),
            config_name=data["config_name"],
            check=data["check"],
            kernel_id=data.get("kernel_id"),
            mismatches=list(data.get("mismatches", [])),
            shrink=data.get("shrink"),
            note=data.get("note"),
            path=path,
        )


def repro_id(check: str, config_name: str, genotype: KernelGenotype) -> str:
    return f"{check}-{config_name}-{genotype.fingerprint()[:8]}"


def write_repro(case: ReproCase, directory: str | Path) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.repro_id}.json"
    path.write_text(json.dumps(case.to_json(), indent=2, sort_keys=True) + "\n")
    return path


def load_repros(directory: str | Path) -> list[ReproCase]:
    """Every committed repro, sorted by file name; a malformed file is
    an error (the corpus is hand-curated, not a cache)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.json")):
        cases.append(ReproCase.from_json(json.loads(path.read_text()), path=path))
    return cases


def replay_case(
    case: ReproCase,
    *,
    checks: tuple[str, ...] = (),
    options: FuzzOptions | None = None,
) -> list[dict]:
    """Re-run checks over one repro kernel; returns any mismatches.

    Defaults to *all* registered checks, not just the one that
    originally failed — a regression kernel is a permanent citizen of
    the corpus and must stay clean under every oracle.
    """
    from .engine import FUZZ_CONFIGS

    options = options or FuzzOptions()
    config = FUZZ_CONFIGS[case.config_name]
    mismatches: list[dict] = []
    for check in checks or tuple(sorted(CHECKS)):
        try:
            loop = case.genotype.build()
            mismatches.extend(run_check(check, loop, config, options))
        except CheckSkipped:
            continue
        except Exception as exc:
            mismatches.append(
                {
                    "check": check,
                    "kind": "error",
                    "detail": f"{type(exc).__name__}: {exc}",
                }
            )
    return mismatches
