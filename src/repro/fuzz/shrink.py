"""Deterministic shrinking of a mismatching kernel to a minimal one.

Given a genotype whose (config, check) job mismatches, the shrinker
greedily applies reductions — always in the same order, with no
randomness — keeping each candidate only if the mismatch still
reproduces, and loops until a full round changes nothing:

1. **Drop ops** — delta-debugging style: contiguous chunks of half the
   body, then quarters, down to single ops.  Genotype operand indices
   resolve modulo the live population, so every subset builds.
2. **Shrink the trip count** — the smallest value from a doubling
   ladder that still reproduces.
3. **Drop arrays** (down to one) and **shrink array sizes** down a
   ladder.
4. **Simplify scalars** — strides to 1, offsets to 0, random patterns
   to strided, accumulate/ALU opcodes to plain adds.
5. **Drop alias groups.**

Termination: every accepted step strictly shrinks a well-founded
measure (op count, trip, array count/sizes, non-canonical scalar
count), so the fixpoint loop is finite.  The result is 1-minimal by
construction — no single op can be dropped, nothing simplifies — and a
re-run from the same inputs retraces the identical path, which the
shrinker tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.config import MachineConfig
from ..workloads.generator import KernelGenotype
from .checks import CheckSkipped, FuzzOptions, run_check

#: Trip/array-size ladders tried smallest-first during shrinking.
TRIP_LADDER = (1, 2, 4, 8, 16, 32, 64, 128)
ARRAY_LADDER = (16, 32, 64, 128, 256, 512, 1024, 2048)


@dataclass
class ShrinkResult:
    genotype: KernelGenotype
    reproduced: bool  # the *original* genotype reproduced at all
    rounds: int = 0
    attempts: int = 0  # candidate rebuild+check executions
    removed_ops: int = 0

    def to_json(self) -> dict:
        return {
            "reproduced": self.reproduced,
            "rounds": self.rounds,
            "attempts": self.attempts,
            "removed_ops": self.removed_ops,
        }


@dataclass
class _Shrinker:
    config: MachineConfig
    check: str
    options: FuzzOptions
    attempts: int = field(default=0)

    def reproduces(self, genotype: KernelGenotype) -> bool:
        self.attempts += 1
        try:
            loop = genotype.build()
            return bool(run_check(self.check, loop, self.config, self.options))
        except CheckSkipped:
            return False
        except Exception:
            # A candidate that crashes outright is a *different* finding;
            # keep the shrink aimed at the original mismatch.
            return False

    # -- reduction passes (each returns the reduced genotype or None) ----

    def drop_ops(self, g: KernelGenotype) -> KernelGenotype | None:
        n = len(g.ops)
        size = max(n // 2, 1)
        while size >= 1:
            start = 0
            while start < len(g.ops):
                candidate = _with(g, ops=g.ops[:start] + g.ops[start + size :])
                if candidate.ops and self.reproduces(candidate):
                    return candidate
                start += size
            if size == 1:
                break
            size //= 2
        return None

    def shrink_trip(self, g: KernelGenotype) -> KernelGenotype | None:
        for trip in TRIP_LADDER:
            if trip >= g.trip:
                break
            candidate = _with(g, trip=trip)
            if self.reproduces(candidate):
                return candidate
        return None

    def drop_arrays(self, g: KernelGenotype) -> KernelGenotype | None:
        if len(g.arrays) <= 1:
            return None
        for index in range(len(g.arrays)):
            arrays = g.arrays[:index] + g.arrays[index + 1 :]
            alias = _remap_alias(g.alias, index, len(arrays))
            candidate = _with(g, arrays=arrays, alias=alias)
            if self.reproduces(candidate):
                return candidate
        return None

    def shrink_arrays(self, g: KernelGenotype) -> KernelGenotype | None:
        for index, spec in enumerate(g.arrays):
            for n in ARRAY_LADDER:
                if n >= int(spec["n"]):
                    break
                arrays = [dict(a) for a in g.arrays]
                arrays[index]["n"] = n
                candidate = _with(g, arrays=arrays)
                if self.reproduces(candidate):
                    return candidate
        return None

    def simplify_scalars(self, g: KernelGenotype) -> KernelGenotype | None:
        for index, op in enumerate(g.ops):
            for simplified in _scalar_candidates(op):
                ops = [dict(o) for o in g.ops]
                ops[index] = simplified
                candidate = _with(g, ops=ops)
                if self.reproduces(candidate):
                    return candidate
        return None

    def drop_alias(self, g: KernelGenotype) -> KernelGenotype | None:
        for index in range(len(g.alias)):
            alias = g.alias[:index] + g.alias[index + 1 :]
            candidate = _with(g, alias=alias)
            if self.reproduces(candidate):
                return candidate
        return None


def _with(g: KernelGenotype, **changes) -> KernelGenotype:
    data = g.to_json()
    data.update(changes)
    return KernelGenotype.from_json(data)


def _remap_alias(
    alias: list[list[int]], dropped: int, n_arrays: int
) -> list[list[int]]:
    groups = []
    for group in alias:
        survivors = (i for i in group if i != dropped)
        remapped = sorted(
            {(i if i < dropped else i - 1) % max(n_arrays, 1) for i in survivors}
        )
        if len(remapped) >= 2:
            groups.append(remapped)
    return groups


def _canonicalise(g: KernelGenotype) -> KernelGenotype:
    """Rewrite operand indices to their resolved (modulo-population)
    values so shrunk repro files read literally and fingerprint
    canonically.  Build-equivalent by construction."""
    n_arrays = max(len(g.arrays), 1)
    value_count = 2  # the live-ins
    ops = []
    for op in g.ops:
        op = dict(op)
        kind = op.get("k")
        if "a" in op:
            op["a"] %= n_arrays
        if kind == "store":
            op["v"] %= value_count
        elif kind == "acc":
            op["v"] %= value_count
            value_count += 1
        elif kind == "alu":
            op["x"] %= value_count
            op["y"] %= value_count
            value_count += 1
        elif kind == "load":
            value_count += 1
        ops.append(op)
    return _with(g, ops=ops)


def _scalar_candidates(op: dict) -> list[dict]:
    """Simpler variants of one op, most aggressive first."""
    candidates: list[dict] = []

    def variant(**changes) -> None:
        new = dict(op)
        new.update(changes)
        for key, value in changes.items():
            if value is None:
                new.pop(key, None)
        if new != op:
            candidates.append(new)

    kind = op.get("k")
    if kind == "load" and op.get("random"):
        variant(random=None, seed=None, stride=1, offset=0)
        if op.get("seed", 0) != 0:
            variant(seed=0)
    if kind in ("load", "store") and not op.get("random"):
        if op.get("stride", 1) != 1:
            variant(stride=1)
        if op.get("offset", 0) != 0:
            variant(offset=0)
    if kind == "acc" and op.get("op", "IADD") != "IADD":
        variant(op="IADD")
    if kind == "alu":
        helper = op.get("op", "iadd")
        if helper.startswith("f") and helper != "fadd":
            variant(op="fadd")
        elif not helper.startswith("f") and helper != "iadd":
            variant(op="iadd")
    return candidates


def shrink(
    genotype: KernelGenotype,
    config: MachineConfig,
    check: str,
    options: FuzzOptions | None = None,
) -> ShrinkResult:
    """Shrink ``genotype`` to a 1-minimal reproducer of ``check``'s
    mismatch under ``config``.  Pure function of its arguments."""
    options = options or FuzzOptions()
    shrinker = _Shrinker(config=config, check=check, options=options)
    if not shrinker.reproduces(genotype):
        return ShrinkResult(
            genotype=genotype, reproduced=False, attempts=shrinker.attempts
        )

    current = _with(genotype, name=genotype.name)
    original_ops = len(current.ops)
    rounds = 0
    passes = (
        shrinker.drop_ops,
        shrinker.shrink_trip,
        shrinker.drop_arrays,
        shrinker.shrink_arrays,
        shrinker.simplify_scalars,
        shrinker.drop_alias,
    )
    changed = True
    while changed:
        changed = False
        rounds += 1
        for reduction in passes:
            while True:
                reduced = reduction(current)
                if reduced is None:
                    break
                current = reduced
                changed = True
    current = _canonicalise(_with(current, name=f"{genotype.name}_min"))
    return ShrinkResult(
        genotype=current,
        reproduced=True,
        rounds=rounds,
        attempts=shrinker.attempts,
        removed_ops=original_ops - len(current.ops),
    )
