"""Differential kernel-corpus fuzzing over the repository's oracles.

The repo's correctness story rests on three independent referees: the
reference interpreter (vs the trace fast path), the exact scheduler (vs
the SMS heuristic) and the static certifier.  This package turns them
from fixed test suites into a continuously-running engine:

* a **corpus** (``corpus``) of hand-picked edge kernels plus seeded
  random kernels drawn from the parametric generator's structure
  profiles;
* pluggable **checks** (``checks``) run per (kernel, config) job;
* a content-addressed **store** (``store``, ``.fuzz-cache``) that
  dedupes jobs across runs and nights;
* a deterministic **shrinker** (``shrink``) that reduces any mismatch
  to a 1-minimal kernel;
* **repro files** (``regressions``) that make shrunk findings permanent
  regression tests under ``tests/corpus/regressions/``;
* a CLI (``python -m repro.fuzz run|replay|shrink|stats``) with seed
  ranges, job/time budgets and a JSON summary CI gates on.
"""

from .checks import CHECKS, FAULTS, CheckSkipped, FuzzOptions, run_check
from .corpus import (
    EDGE_CORPUS,
    edge_kernel_ids,
    resolve_kernel,
    seed_kernel_ids,
)
from .engine import FUZZ_CONFIGS, FuzzJob, FuzzReport, execute_job, make_jobs, run_jobs
from .regressions import (
    DEFAULT_REGRESSIONS_DIR,
    ReproCase,
    load_repros,
    replay_case,
    repro_id,
    write_repro,
)
from .shrink import ShrinkResult, shrink
from .store import FUZZ_SCHEMA_VERSION, FuzzStore, job_store_key

__all__ = [
    "CHECKS",
    "DEFAULT_REGRESSIONS_DIR",
    "EDGE_CORPUS",
    "FAULTS",
    "FUZZ_CONFIGS",
    "FUZZ_SCHEMA_VERSION",
    "CheckSkipped",
    "FuzzJob",
    "FuzzOptions",
    "FuzzReport",
    "FuzzStore",
    "ReproCase",
    "ShrinkResult",
    "edge_kernel_ids",
    "execute_job",
    "job_store_key",
    "load_repros",
    "make_jobs",
    "replay_case",
    "repro_id",
    "resolve_kernel",
    "run_check",
    "run_jobs",
    "seed_kernel_ids",
    "shrink",
    "write_repro",
]
