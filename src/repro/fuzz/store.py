"""The fuzz store: content-addressed, deduplicating job results.

One ``<key>.json`` per (kernel, config, checks, options, code
fingerprint) job, holding the schema-1 entry
``{"job": ..., "mismatches": [...], "skipped": [...], "schema": 1}``.
Keys mix the code fingerprint, so a store persisted across commits
(CI's nightly ``actions/cache``) serves hits only while the tree is
unchanged — repeat nights skip already-clean jobs, and any source edit
transparently invalidates everything it could have affected.

Built on the same :class:`~repro.pipeline.cache.KeyedFileStore` as the
result and compile stores, so the manifest/GC/verify machinery (and the
``python -m repro.cache`` maintenance CLI) covers all three.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..pipeline.cache import KeyedFileStore, _canonical, code_fingerprint
from ..pipeline.manifest import GCReport, VerifyReport

#: On-disk fuzz-entry layout version.
FUZZ_SCHEMA_VERSION = 1


def _encode_entry(entry: dict) -> bytes:
    payload = dict(entry)
    payload["schema"] = FUZZ_SCHEMA_VERSION
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _decode_entry(data: bytes) -> dict:
    payload = json.loads(data.decode())
    if not isinstance(payload, dict) or "job" not in payload:
        raise ValueError("not a fuzz-store entry")
    if payload.get("schema") != FUZZ_SCHEMA_VERSION:
        raise ValueError(
            f"fuzz entry has schema {payload.get('schema')!r}, "
            f"this code reads {FUZZ_SCHEMA_VERSION}"
        )
    return payload


def job_store_key(
    kernel_fingerprint: str, config, checks: tuple[str, ...], options
) -> str:
    """Content key of one fuzz job.

    Mixes the kernel's genotype fingerprint (not its id: a seed kernel
    and an identical committed repro share one entry), the canonical
    config, the check set, the check options and the code fingerprint.
    """
    payload = {
        "checks": sorted(checks),
        "code": code_fingerprint(),
        "config": _canonical(config),
        "kernel": kernel_fingerprint,
        "options": options.to_json(),
        "schema": FUZZ_SCHEMA_VERSION,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class FuzzStore:
    """Facade over the keyed file store, shaped like the other caches
    so ``repro.cache``'s stats/ls/gc/verify drive it unchanged."""

    def __init__(self, path: str | Path) -> None:
        self._store = KeyedFileStore(path, ".json", _encode_entry, _decode_entry)

    @property
    def store(self) -> KeyedFileStore:
        return self._store

    def get(self, key: str) -> dict | None:
        return self._store.load(key)

    def put(self, key: str, entry: dict, *, description: dict | None = None) -> None:
        self._store.save(key, entry, description=description)

    def flush(self) -> None:
        self._store.manifest.flush()

    def gc(self, **kwargs) -> GCReport:
        return self._store.gc(**kwargs)

    def verify(self) -> VerifyReport:
        return self._store.verify()
