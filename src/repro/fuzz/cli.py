"""``python -m repro.fuzz`` — the fuzzing engine's front door.

Subcommands:

* ``run``    — fan a seed range (plus the edge corpus) through the
  differential checks, deduplicated against the fuzz store; on any
  mismatch, shrink to a minimal kernel and emit a self-contained repro
  file.  ``--json`` writes the CI-gating summary; exit 1 unless clean.
* ``replay`` — rebuild every committed repro kernel and re-assert all
  checks (the regression corpus as an executable suite).
* ``shrink`` — shrink one (kernel, config, check) job by hand.
* ``stats``  — aggregate the fuzz store.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..workloads.generator import PROFILES
from .checks import CHECKS, FAULTS, FuzzOptions
from .corpus import edge_kernel_ids, resolve_kernel, seed_kernel_ids
from .engine import FUZZ_CONFIGS, FuzzReport, make_jobs, run_jobs
from .regressions import (
    DEFAULT_REGRESSIONS_DIR,
    ReproCase,
    load_repros,
    replay_case,
    repro_id,
    write_repro,
)
from .shrink import shrink
from .store import FUZZ_SCHEMA_VERSION, FuzzStore


def _parse_seed_range(text: str) -> tuple[int, int]:
    """``"A:B"`` -> (A, B) half-open; a bare ``N`` means ``0:N``."""
    head, sep, tail = text.partition(":")
    try:
        if not sep:
            return 0, int(head)
        return int(head), int(tail)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a seed range: {text!r}") from None


def _csv(choices: list[str], what: str):
    def parse(text: str) -> list[str]:
        names = [name.strip() for name in text.split(",") if name.strip()]
        for name in names:
            if name not in choices:
                raise argparse.ArgumentTypeError(
                    f"unknown {what} {name!r} (known: {', '.join(sorted(choices))})"
                )
        return names

    return parse


def _options(args) -> FuzzOptions:
    return FuzzOptions(
        exact_node_budget=args.exact_budget,
        fault=getattr(args, "inject_fault", None),
    )


def _emit_repro(
    kernel_id: str,
    config_name: str,
    check: str,
    mismatches: list[dict],
    options: FuzzOptions,
    directory: Path,
) -> Path:
    genotype = resolve_kernel(kernel_id)
    result = shrink(genotype, FUZZ_CONFIGS[config_name], check, options)
    note = None
    if options.fault is not None:
        note = (
            f"found under injected fault {options.fault!r} "
            "(fault-injection drill, not a live bug)"
        )
    case = ReproCase(
        repro_id=repro_id(check, config_name, result.genotype),
        genotype=result.genotype,
        config_name=config_name,
        check=check,
        kernel_id=kernel_id,
        mismatches=mismatches,
        shrink=result.to_json(),
        note=note,
    )
    return write_repro(case, directory)


def cmd_run(args) -> int:
    options = _options(args)
    checks = tuple(sorted(args.checks))
    kernel_ids: list[str] = []
    jobs = []
    if args.edge:
        jobs.extend(make_jobs(edge_kernel_ids(), args.configs, checks, spread=False))
    start, stop = args.seeds
    kernel_ids = seed_kernel_ids(start, stop, args.profiles)
    jobs.extend(make_jobs(kernel_ids, args.configs, checks, spread=args.spread))

    store = None if args.no_store else FuzzStore(args.store)
    report = run_jobs(
        jobs,
        options=options,
        store=store,
        workers=args.workers,
        time_budget_s=args.time_budget,
        max_jobs=args.max_jobs,
    )

    repros: list[str] = []
    if args.shrink:
        for entry in report.mismatched:
            job = entry["job"]
            failing = sorted({m["check"] for m in entry["mismatches"]})
            for check in failing[:1]:  # one repro per job: the first oracle
                path = _emit_repro(
                    job["kernel_id"],
                    job["config_name"],
                    check,
                    entry["mismatches"],
                    options,
                    Path(args.regressions_dir),
                )
                repros.append(str(path))

    summary = report.to_json()
    summary["repros"] = repros
    if args.json:
        Path(args.json).write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(
        f"fuzz: {report.total} jobs, {report.executed} executed, "
        f"{report.store_hits} store hits, {report.not_run} not run "
        f"(budget), {report.skipped_checks} checks skipped, "
        f"{len(report.mismatched)} mismatching jobs in {report.wall_s:.1f}s"
    )
    for entry in report.mismatched:
        job = entry["job"]
        first = entry["mismatches"][0]
        print(
            f"  MISMATCH {job['kernel_id']} on {job['config_name']}: "
            f"[{first['check']}/{first['kind']}] {first['detail']}"
        )
    for path in repros:
        print(f"  repro written: {path}")
    if report.not_run:
        print(f"  time budget exhausted with {report.not_run} jobs pending")
    return 0 if report.clean else 1


def cmd_replay(args) -> int:
    options = _options(args)
    checks = tuple(sorted(args.checks)) if args.checks else ()
    cases = load_repros(args.dir)
    if not cases and args.min > 0:
        print(f"no repro files under {args.dir} (expected >= {args.min})")
        return 1
    failures = 0
    for case in cases:
        mismatches = replay_case(case, checks=checks, options=options)
        status = "FAIL" if mismatches else "ok"
        print(f"  {status:>4}  {case.repro_id}  ({case.config_name})")
        for m in mismatches:
            print(f"        [{m['check']}/{m['kind']}] {m['detail']}")
        failures += bool(mismatches)
    print(f"replay: {len(cases)} repro kernels, {failures} failing")
    return 1 if failures else 0


def cmd_shrink(args) -> int:
    options = _options(args)
    genotype = resolve_kernel(args.kernel)
    result = shrink(genotype, FUZZ_CONFIGS[args.config], args.check, options)
    if not result.reproduced:
        print(
            f"{args.kernel} on {args.config} does not mismatch under "
            f"{args.check}; nothing to shrink"
        )
        return 1
    print(
        f"shrunk {args.kernel} ({len(genotype.ops)} ops, trip {genotype.trip}) "
        f"-> {len(result.genotype.ops)} ops, trip {result.genotype.trip} "
        f"in {result.attempts} attempts / {result.rounds} rounds"
    )
    print(json.dumps(result.genotype.to_json(), indent=2, sort_keys=True))
    if args.emit:
        case = ReproCase(
            repro_id=repro_id(args.check, args.config, result.genotype),
            genotype=result.genotype,
            config_name=args.config,
            check=args.check,
            kernel_id=args.kernel,
            shrink=result.to_json(),
            note=(
                f"found under injected fault {options.fault!r}"
                if options.fault
                else None
            ),
        )
        path = write_repro(case, Path(args.regressions_dir))
        print(f"repro written: {path}")
    return 0


def cmd_stats(args) -> int:
    path = Path(args.store)
    if not path.is_dir():
        print(f"no fuzz store at {path}", file=sys.stderr)
        return 1
    total = clean = mismatched = skipped = foreign = 0
    by_config: dict[str, int] = {}
    for file in sorted(path.glob("*.json")):
        if file.name == "manifest.json":
            continue
        try:
            entry = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError):
            foreign += 1
            continue
        if not isinstance(entry, dict) or entry.get("schema") != FUZZ_SCHEMA_VERSION:
            foreign += 1
            continue
        total += 1
        if entry.get("mismatches"):
            mismatched += 1
        else:
            clean += 1
        skipped += len(entry.get("skipped", []))
        config = entry.get("job", {}).get("config_name", "?")
        by_config[config] = by_config.get(config, 0) + 1
    print(f"fuzz store: {path}")
    print(
        f"  entries: {total} ({clean} clean, {mismatched} mismatched, "
        f"{skipped} skipped checks, {foreign} foreign/corrupt)"
    )
    for config, count in sorted(by_config.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"  {config}: {count}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential kernel-corpus fuzzing over the "
        "simulator/scheduler oracles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--exact-budget",
            type=int,
            default=20_000,
            help="node budget for the exact scheduler (default 20000)",
        )
        p.add_argument(
            "--inject-fault",
            choices=sorted(FAULTS),
            default=None,
            help="deterministically corrupt the fast-path trace "
            "(fault-injection drills)",
        )

    run = sub.add_parser("run", help="run a fuzz sweep")
    run.add_argument(
        "--seeds",
        type=_parse_seed_range,
        default=(0, 200),
        metavar="A:B",
        help="half-open random-kernel seed range (default 0:200)",
    )
    run.add_argument(
        "--profiles",
        type=_csv(list(PROFILES), "profile"),
        default=list(PROFILES),
        help=f"generator profiles to cycle (default {','.join(PROFILES)})",
    )
    run.add_argument(
        "--configs",
        type=_csv(list(FUZZ_CONFIGS), "config"),
        default=list(FUZZ_CONFIGS),
        help="machine configs to rotate over (default: all)",
    )
    run.add_argument(
        "--checks",
        type=_csv(list(CHECKS), "check"),
        default=list(CHECKS),
        help=f"checks to run (default {','.join(sorted(CHECKS))})",
    )
    run.add_argument(
        "--no-edge",
        dest="edge",
        action="store_false",
        help="skip the committed edge corpus",
    )
    run.add_argument(
        "--no-spread",
        dest="spread",
        action="store_false",
        help="run every seeded kernel on every config (default: rotate "
        "one config per kernel, so a seed range covers the matrix "
        "without multiplying the job count)",
    )
    run.add_argument("--workers", type=int, default=None, help="worker processes")
    run.add_argument(
        "--store",
        default=".fuzz-cache",
        help="fuzz store directory (default .fuzz-cache)",
    )
    run.add_argument(
        "--no-store", action="store_true", help="run without the dedup store"
    )
    run.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="S",
        help="stop launching jobs after S seconds (pending jobs fail clean)",
    )
    run.add_argument(
        "--max-jobs", type=int, default=None, help="hard cap on the job list"
    )
    run.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="report mismatches without shrinking/emitting repros",
    )
    run.add_argument(
        "--regressions-dir",
        default=str(DEFAULT_REGRESSIONS_DIR),
        help="where shrunk repro files land",
    )
    run.add_argument("--json", default=None, help="write the JSON summary here")
    common(run)
    run.set_defaults(handler=cmd_run)

    replay = sub.add_parser("replay", help="re-assert the regression corpus")
    replay.add_argument(
        "--dir",
        default=str(DEFAULT_REGRESSIONS_DIR),
        help="regression corpus directory",
    )
    replay.add_argument(
        "--checks",
        type=_csv(list(CHECKS), "check"),
        default=None,
        help="checks to replay (default: all)",
    )
    replay.add_argument(
        "--min",
        type=int,
        default=0,
        help="fail unless at least this many repro files exist",
    )
    common(replay)
    replay.set_defaults(handler=cmd_replay)

    shrink_p = sub.add_parser("shrink", help="shrink one job by hand")
    shrink_p.add_argument("--kernel", required=True, help="kernel id (seed:…/edge:…)")
    shrink_p.add_argument(
        "--config", required=True, choices=sorted(FUZZ_CONFIGS), help="config name"
    )
    shrink_p.add_argument(
        "--check", required=True, choices=sorted(CHECKS), help="check to reproduce"
    )
    shrink_p.add_argument(
        "--emit", action="store_true", help="write the shrunk repro file"
    )
    shrink_p.add_argument(
        "--regressions-dir",
        default=str(DEFAULT_REGRESSIONS_DIR),
        help="where the repro file lands",
    )
    common(shrink_p)
    shrink_p.set_defaults(handler=cmd_shrink)

    stats = sub.add_parser("stats", help="aggregate the fuzz store")
    stats.add_argument(
        "--store",
        default=".fuzz-cache",
        help="fuzz store directory (default .fuzz-cache)",
    )
    stats.set_defaults(handler=cmd_stats)

    args = parser.parse_args(argv)
    return args.handler(args)
