"""Entry point: ``python -m repro.fuzz <run|replay|shrink|stats>``."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `| head`); silence the
        # shutdown flush too, and exit cleanly per POSIX convention.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
