"""The kernel corpus: hand-picked edge cases plus seeded random cases.

PSB2-style split (SNIPPETS.md snippet 3): a small committed **edge**
corpus of hand-written kernels with stable ids, each aimed at one known
cliff of the scheduler/simulator stack, and an unbounded population of
**seeded random** kernels drawn from the parametric generator's
structure profiles (``repro.workloads.generator.PROFILES``).

Every corpus member — edge or random — is a
:class:`~repro.workloads.generator.KernelGenotype`, so one shrinker,
one serialisation and one replay path cover the whole corpus.

Kernel ids are stable strings:

* ``edge:<name>``           — a committed edge kernel;
* ``seed:<n>``              — random kernel ``n`` of the default profile;
* ``seed:<profile>:<n>``    — random kernel ``n`` of a named profile.
"""

from __future__ import annotations

from ..workloads.generator import PROFILES, KernelGenotype, random_genotype


def _edge(name: str, trip: int, arrays, ops, alias=()) -> KernelGenotype:
    return KernelGenotype(
        name=f"edge_{name}",
        trip=trip,
        arrays=[dict(a) for a in arrays],
        ops=[dict(op) for op in ops],
        alias=[list(g) for g in alias],
    )


def _build_edge_corpus() -> dict[str, KernelGenotype]:
    corpus: dict[str, KernelGenotype] = {}

    def add(genotype: KernelGenotype) -> None:
        name = genotype.name.removeprefix("edge_")
        corpus[name] = genotype

    # The boundary kernel: one load, trip 1.  Exercises every layer's
    # degenerate path (prologue==epilogue, single window).
    add(
        _edge(
            "tiny",
            trip=1,
            arrays=[{"n": 64, "elem": 4}],
            ops=[{"k": "load", "a": 0, "stride": 1, "offset": 0}],
        )
    )

    # Max-recurrence ladder: a deep accumulate chain on top of one
    # stream — rec_mii dominates, the exact scheduler's anchoring and
    # the fast path's ALU-pruning proof both get a workout.
    add(
        _edge(
            "recurrence_ladder",
            trip=48,
            arrays=[{"n": 512, "elem": 4}],
            ops=[
                {"k": "load", "a": 0, "stride": 1, "offset": 0},
                {"k": "acc", "op": "IADD", "v": 2},
                {"k": "acc", "op": "IMAX", "v": 3},
                {"k": "acc", "op": "IADD", "v": 4},
                {"k": "acc", "op": "IXOR", "v": 5},
                {"k": "acc", "op": "IADD", "v": 6},
                {"k": "store", "a": 0, "v": 7, "stride": 1, "offset": 0},
            ],
        )
    )

    # Floating-point feedback: FADD accumulation (latency 2) forces a
    # recurrence the FP unit bounds.
    add(
        _edge(
            "fp_feedback",
            trip=40,
            arrays=[{"n": 512, "elem": 4}],
            ops=[
                {"k": "load", "a": 0, "stride": 1, "offset": 0},
                {"k": "alu", "op": "fmul", "x": 2, "y": 0},
                {"k": "acc", "op": "FADD", "v": 3},
                {"k": "acc", "op": "FADD", "v": 4},
                {"k": "store", "a": 0, "v": 5, "stride": 1, "offset": 1},
            ],
        )
    )

    # Bus storm: four streams in, two out, with integer glue — on
    # multi-cluster configs the cross-cluster register buses and the
    # greedy bus-row placement (the A014 frontier) become binding.
    add(
        _edge(
            "bus_storm",
            trip=32,
            arrays=[
                {"n": 1024, "elem": 4},
                {"n": 1024, "elem": 4},
                {"n": 1024, "elem": 4},
                {"n": 1024, "elem": 4},
            ],
            ops=[
                {"k": "load", "a": 0, "stride": 1, "offset": 0},
                {"k": "load", "a": 1, "stride": 1, "offset": 0},
                {"k": "load", "a": 2, "stride": 1, "offset": 0},
                {"k": "load", "a": 3, "stride": 1, "offset": 0},
                {"k": "alu", "op": "iadd", "x": 2, "y": 3},
                {"k": "alu", "op": "ixor", "x": 4, "y": 5},
                {"k": "alu", "op": "imax", "x": 6, "y": 7},
                {"k": "alu", "op": "iadd", "x": 6, "y": 7},
                {"k": "store", "a": 0, "v": 8, "stride": 1, "offset": 0},
                {"k": "store", "a": 1, "v": 9, "stride": 1, "offset": 0},
            ],
        )
    )

    # Register-pressure cliff: eight loads all consumed by a reduction
    # tree whose leaves stay live together.
    add(
        _edge(
            "regpressure_cliff",
            trip=24,
            arrays=[{"n": 4096, "elem": 4}, {"n": 4096, "elem": 4}],
            ops=[
                {"k": "load", "a": 0, "stride": 2, "offset": 0},
                {"k": "load", "a": 0, "stride": 2, "offset": 1},
                {"k": "load", "a": 1, "stride": 2, "offset": 0},
                {"k": "load", "a": 1, "stride": 2, "offset": 1},
                {"k": "load", "a": 0, "stride": 4, "offset": 2},
                {"k": "load", "a": 0, "stride": 4, "offset": 3},
                {"k": "load", "a": 1, "stride": 4, "offset": 2},
                {"k": "load", "a": 1, "stride": 4, "offset": 3},
                {"k": "alu", "op": "iadd", "x": 2, "y": 3},
                {"k": "alu", "op": "iadd", "x": 4, "y": 5},
                {"k": "alu", "op": "iadd", "x": 6, "y": 7},
                {"k": "alu", "op": "iadd", "x": 8, "y": 9},
                {"k": "alu", "op": "iadd", "x": 10, "y": 11},
                {"k": "alu", "op": "iadd", "x": 12, "y": 13},
                {"k": "alu", "op": "iadd", "x": 14, "y": 15},
                {"k": "store", "a": 0, "v": 16, "stride": 1, "offset": 0},
            ],
        )
    )

    # Store-heavy aliasing: two arrays the compiler must assume may
    # overlap, written and read at colliding offsets with a degenerate
    # stride-0 broadcast in the mix.
    add(
        _edge(
            "alias_storm",
            trip=32,
            arrays=[{"n": 128, "elem": 4}, {"n": 128, "elem": 4}],
            alias=[[0, 1]],
            ops=[
                {"k": "load", "a": 0, "stride": 1, "offset": 0},
                {"k": "load", "a": 1, "stride": 1, "offset": 1},
                {"k": "load", "a": 0, "stride": 0, "offset": 2},
                {"k": "alu", "op": "iadd", "x": 2, "y": 3},
                {"k": "store", "a": 1, "v": 5, "stride": 1, "offset": 0},
                {"k": "alu", "op": "isub", "x": 4, "y": 5},
                {"k": "store", "a": 0, "v": 6, "stride": -1, "offset": 3},
            ],
        )
    )

    # Random table lookups: non-affine streams make the convergence
    # early-exit ineligible and stress the late-load interlocks.
    add(
        _edge(
            "random_table",
            trip=64,
            arrays=[{"n": 2048, "elem": 4}, {"n": 64, "elem": 4}],
            ops=[
                {"k": "load", "a": 0, "stride": 1, "offset": 0},
                {"k": "load", "a": 1, "random": True, "seed": 7},
                {"k": "load", "a": 1, "random": True, "seed": 11},
                {"k": "alu", "op": "ixor", "x": 3, "y": 4},
                {"k": "alu", "op": "iadd", "x": 2, "y": 5},
                {"k": "store", "a": 0, "v": 6, "stride": 1, "offset": 0},
            ],
        )
    )

    # Degenerate strides: stride-0 loads (scalar rebroadcast every
    # iteration) and a negative-stride store walk.
    add(
        _edge(
            "stride_zero_walk",
            trip=40,
            arrays=[{"n": 256, "elem": 2}, {"n": 256, "elem": 2}],
            ops=[
                {"k": "load", "a": 0, "stride": 0, "offset": 0},
                {"k": "load", "a": 1, "stride": -1, "offset": 0},
                {"k": "alu", "op": "imul", "x": 2, "y": 3},
                {"k": "alu", "op": "isat", "x": 4, "y": 2},
                {"k": "store", "a": 1, "v": 5, "stride": -1, "offset": 0},
            ],
        )
    )

    # Carry chain: bignum-style dependent integer adds between a load
    # and a store — long intra-iteration chains with span >> II.
    add(
        _edge(
            "carry_chain",
            trip=32,
            arrays=[{"n": 1024, "elem": 4}],
            ops=[
                {"k": "load", "a": 0, "stride": 1, "offset": 0},
                {"k": "alu", "op": "iadd", "x": 2, "y": 0},
                {"k": "alu", "op": "ishr", "x": 3, "y": 1},
                {"k": "alu", "op": "iadd", "x": 4, "y": 3},
                {"k": "alu", "op": "ishr", "x": 5, "y": 1},
                {"k": "alu", "op": "iadd", "x": 6, "y": 5},
                {"k": "store", "a": 0, "v": 7, "stride": 1, "offset": 0},
            ],
        )
    )

    # Wide FP pipeline: independent FP chains that saturate the FP unit
    # and leave the integer side idle (FU-demand pruning paths).
    add(
        _edge(
            "wide_fp",
            trip=32,
            arrays=[{"n": 1024, "elem": 4}, {"n": 1024, "elem": 4}],
            ops=[
                {"k": "load", "a": 0, "stride": 1, "offset": 0},
                {"k": "load", "a": 1, "stride": 1, "offset": 0},
                {"k": "alu", "op": "fmul", "x": 2, "y": 3},
                {"k": "alu", "op": "fadd", "x": 4, "y": 2},
                {"k": "alu", "op": "fmul", "x": 3, "y": 5},
                {"k": "alu", "op": "fsub", "x": 6, "y": 4},
                {"k": "store", "a": 0, "v": 7, "stride": 1, "offset": 0},
            ],
        )
    )

    return corpus


#: The committed edge corpus: stable name -> genotype.
EDGE_CORPUS: dict[str, KernelGenotype] = _build_edge_corpus()


def resolve_kernel(kernel_id: str) -> KernelGenotype:
    """Resolve a stable kernel id to its genotype."""
    head, _, rest = kernel_id.partition(":")
    if head == "edge":
        try:
            return EDGE_CORPUS[rest]
        except KeyError:
            raise ValueError(f"unknown edge kernel {kernel_id!r}") from None
    if head == "seed":
        profile, _, seed_text = rest.rpartition(":")
        profile = profile or "default"
        if profile not in PROFILES:
            raise ValueError(f"unknown profile in kernel id {kernel_id!r}")
        try:
            seed = int(seed_text)
        except ValueError:
            raise ValueError(f"malformed kernel id {kernel_id!r}") from None
        return random_genotype(seed, profile)
    raise ValueError(f"malformed kernel id {kernel_id!r}")


def edge_kernel_ids() -> list[str]:
    return [f"edge:{name}" for name in sorted(EDGE_CORPUS)]


def seed_kernel_ids(start: int, stop: int, profiles: list[str]) -> list[str]:
    """Kernel ids for a seed range, cycling profiles deterministically."""
    if not profiles:
        profiles = ["default"]
    for profile in profiles:
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}")
    return [
        f"seed:{profiles[seed % len(profiles)]}:{seed}" for seed in range(start, stop)
    ]
