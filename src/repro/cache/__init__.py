"""Maintenance CLI over the on-disk artifact stores.

``python -m repro.cache <command>`` operates on the three cache
directories the pipeline persists — the result store (``ResultCache``,
``<key>.json``), the compile-artifact store (``CompiledLoopCache``,
``<key>.pkl``) and the fuzz-job store (``repro.fuzz.FuzzStore``,
``<key>.json``) — through their shared manifest/GC machinery:

* ``stats``  — entry counts, bytes, fingerprint breakdown per store;
* ``ls``     — per-entry listing (size, age, last hit, description);
* ``gc``     — bound the directories (``--max-bytes``, LRU by last
  hit) and orphan-sweep entries from other code fingerprints;
* ``verify`` — decode-check every entry, drop the corrupt, migrate
  legacy result entries to the current schema (exit 1 if anything was
  corrupt, so CI can assert a restored cache is sound).

The directories default to the names CI persists (``.result-cache``,
``.compile-cache``, ``.fuzz-cache``); a missing directory is skipped,
never created.  Result stores written sharded by the sweep service
(``repro.service``) are auto-detected from their hex-prefix shard
subdirectories and operated on shard by shard — missing shard
directories are likewise skipped, never created.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..pipeline.cache import ResultCache, ShardedKeyedFileStore, code_fingerprint
from ..pipeline.compilecache import CompiledLoopCache

_SIZE_UNITS = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3}


def parse_size(text: str) -> int:
    """``"200M"`` -> bytes (K/M/G binary suffixes; bare number = bytes)."""
    raw = str(text).strip().upper().removesuffix("B")
    unit = raw[-1:] if raw[-1:] in ("K", "M", "G") else ""
    try:
        value = float(raw.removesuffix(unit)) if unit else float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a size: {text!r}") from None
    return int(value * _SIZE_UNITS[unit])


def format_size(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # unreachable; keeps type-checkers calm


def _age(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.0f}h"
    return f"{seconds / 86400:.1f}d"


def open_stores(args) -> list[tuple[str, object]]:
    """The caches named by the CLI flags whose directories exist.

    Never creates a directory: a maintenance tool that mkdirs the thing
    it is asked to clean up would mask typos.
    """
    from ..fuzz.store import FuzzStore

    stores: list[tuple[str, object]] = []
    result_dir = Path(args.cache_dir)
    compile_dir = Path(args.compile_cache_dir)
    fuzz_dir = Path(args.fuzz_cache_dir)
    if result_dir.is_dir():
        stores.append(("results", ResultCache(result_dir)))
    if compile_dir.is_dir():
        stores.append(("compile", CompiledLoopCache(compile_dir)))
    if fuzz_dir.is_dir():
        stores.append(("fuzz", FuzzStore(fuzz_dir)))
    if not stores:
        print(
            f"no cache directories found "
            f"({result_dir} / {compile_dir} / {fuzz_dir})",
            file=sys.stderr,
        )
    return stores


def cmd_stats(args) -> int:
    current = code_fingerprint()
    for label, cache in open_stores(args):
        entries = cache.store.entries()
        total = sum(e.size for e in entries.values())
        by_fp: dict[str, int] = {}
        for e in entries.values():
            name = e.fingerprint or "unknown"
            by_fp[name] = by_fp.get(name, 0) + 1
        print(f"{label}: {cache.store.path}")
        if isinstance(cache.store, ShardedKeyedFileStore):
            shards = len(cache.store.shard_stores())
            print(f"  sharded: {shards} shards (prefix width {cache.store.width})")
        print(f"  entries: {len(entries)}  bytes: {total} ({format_size(total)})")
        for fp, count in sorted(by_fp.items(), key=lambda kv: -kv[1]):
            tag = " (current)" if fp == current else ""
            print(f"  fingerprint {fp}{tag}: {count} entries")
        if entries:
            now = time.time()
            newest = max(e.last_hit for e in entries.values())
            oldest = min(e.last_hit for e in entries.values())
            print(
                f"  last hit: newest {_age(now - newest)} ago, "
                f"oldest {_age(now - oldest)} ago"
            )
    return 0


def cmd_ls(args) -> int:
    current = code_fingerprint()
    now = time.time()
    for label, cache in open_stores(args):
        entries = sorted(cache.store.entries().values(), key=lambda e: -e.last_hit)
        print(f"{label}: {cache.store.path} ({len(entries)} entries)")
        for e in entries:
            fp = "current" if e.fingerprint == current else (e.fingerprint or "unknown")
            desc = ""
            if e.description is not None:
                desc = " " + json.dumps(
                    e.description, sort_keys=True, separators=(",", ":")
                )
            print(
                f"  {e.key[:12]}  {format_size(e.size):>10}  "
                f"hit {_age(now - e.last_hit):>5} ago  [{fp}]{desc}"
            )
    return 0


def cmd_gc(args) -> int:
    keep = None if args.all_fingerprints else {code_fingerprint()}
    for label, cache in open_stores(args):
        report = cache.gc(
            max_bytes=args.max_bytes,
            keep_fingerprints=keep,
            min_age_s=args.min_age,
        )
        print(
            f"{label}: {report.entries_before} entries "
            f"({format_size(report.bytes_before)}) -> {report.entries_after} "
            f"({format_size(report.bytes_after)}); evicted {len(report.evicted)}, "
            f"orphans {len(report.orphans)}"
        )
    return 0


def cmd_verify(args) -> int:
    corrupt = 0
    analysis_rc = 0
    for label, cache in open_stores(args):
        report = cache.verify()
        corrupt += len(report.corrupt)
        migrated = f", migrated {len(report.migrated)}" if report.migrated else ""
        print(
            f"{label}: {report.ok} entries ok, "
            f"{len(report.corrupt)} corrupt removed{migrated}"
        )
        if getattr(args, "analyze", False) and label == "compile":
            # Beyond decode soundness: run the static certifier over
            # every artifact that survived verification.
            from ..analysis.__main__ import audit_compile_store

            analysis_rc = audit_compile_store(cache.store.path) or analysis_rc
    return 1 if corrupt or analysis_rc else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect, bound and verify the on-disk artifact stores.",
    )
    parser.add_argument(
        "--cache-dir",
        default=".result-cache",
        help="result store directory (skipped if missing)",
    )
    parser.add_argument(
        "--compile-cache-dir",
        default=".compile-cache",
        help="compile-artifact store directory (skipped if missing)",
    )
    parser.add_argument(
        "--fuzz-cache-dir",
        default=".fuzz-cache",
        help="fuzz-job store directory (skipped if missing)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="entry counts, bytes, fingerprints")
    sub.add_parser("ls", help="list entries with manifest descriptions")

    gc = sub.add_parser("gc", help="bound the stores (LRU + orphan sweep)")
    gc.add_argument(
        "--max-bytes",
        type=parse_size,
        default=None,
        help="evict least-recently-hit entries until each store fits "
        "(accepts K/M/G suffixes, e.g. 200M)",
    )
    gc.add_argument(
        "--all-fingerprints",
        action="store_true",
        help="keep entries from other code fingerprints (default: "
        "orphan-sweep them — their keys can never hit again)",
    )
    gc.add_argument(
        "--min-age",
        type=float,
        default=60.0,
        help="never evict entries younger than this many seconds "
        "(grace period for concurrent writers)",
    )

    verify = sub.add_parser(
        "verify",
        help="decode-check every entry; drop corrupt, migrate legacy "
        "(exit 1 if anything was corrupt)",
    )
    verify.add_argument(
        "--analyze",
        action="store_true",
        help="additionally run the repro.analysis certifier over every "
        "compile artifact (exit 1 on any blocking finding)",
    )

    args = parser.parse_args(argv)
    handler = {
        "stats": cmd_stats,
        "ls": cmd_ls,
        "gc": cmd_gc,
        "verify": cmd_verify,
    }[args.command]
    return handler(args)
