"""Sweep service: coalescing, degradation ladder, and the sync facade.

:class:`SweepService` is the client-facing layer over the
:class:`~repro.service.supervisor.Supervisor`:

* **Request coalescing** — concurrent clients asking for the same
  content key share one simulation: the first ``fetch`` creates the
  job task, later ones await it.  Together with the result cache
  (checked first), N clients sweeping overlapping grids perform each
  simulation exactly once — the drill asserts
  ``duplicate_simulations == 0``.
* **Worker-side persistence** — jobs carry a ``(dir, shard_width)``
  store spec; each worker writes its result into the sharded store
  itself (per-shard manifests keep the writers from contending), and
  the server caches the returned value memory-only so the entry is
  never written twice.
* **Degradation ladder** — when a job exhausts its retries the service
  may swap in a cheaper configuration instead of dead-lettering:
  ``exact``-scheduled jobs that blew their deadline retry under SMS
  (``exact->sms``); fast-sim jobs that *errored* retry on the reference
  interpreter (``fast->reference``).  The degraded result is stored
  under the **original** key with the substitution recorded in
  ``ProgramResult.meta`` — honest provenance, never a silent swap.
* **Crash-safe resume** — an optional
  :class:`~repro.service.checkpoint.SweepCheckpoint` journals the sweep
  spec and done/dead keys; a restarted server rebuilds its request list
  from the spec and the cache-first lookup makes completed jobs instant
  hits (and quietly re-runs any whose store entry a fault corrupted).

:class:`SupervisedExecutor` adapts the supervisor to the synchronous
``executor.map`` protocol, so ``Session``/``ExperimentContext`` (and
the ``repro.eval`` CLI) can run under supervision with no other change.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..machine.config import l0_config, unified_config
from ..pipeline.cache import ResultCache, result_fingerprint
from ..pipeline.executor import RunRequest, describe_request, execute_request
from ..sim.runner import SimOptions
from .checkpoint import SweepCheckpoint
from .faults import FaultPlan, truncate_entry
from .retry import JobFailure, JobFailureError, RetryPolicy
from .supervisor import Supervisor

# ----------------------------------------------------------------------
# Worker-side runners (module level: importable under any start method)
# ----------------------------------------------------------------------

#: Per-worker-process cache of opened result stores, keyed by store
#: spec — one store (and one manifest buffer) per worker, not per job.
_WORKER_STORES: dict[tuple, ResultCache] = {}


def _worker_store(spec: tuple) -> ResultCache:
    cache = _WORKER_STORES.get(spec)
    if cache is None:
        path, width = spec
        cache = ResultCache(path, shard_width=width)
        _WORKER_STORES[spec] = cache
    return cache


def _service_runner(payload, fault):
    """Execute one sweep job inside a worker: simulate, persist, return.

    ``payload`` is ``(store_key, request, store_spec, meta)``.  The
    result is stored under ``store_key`` — the *original* content key,
    which differs from ``request.key`` after a degradation rewrote the
    request.  A ``truncate`` fault tears the store write after the
    install (the returned in-memory value stays good; only later
    readers see the corruption, which is the point).
    """
    store_key, request, store_spec, meta = payload
    result = execute_request(request)
    if meta:
        result.meta.update(meta)
    if store_spec is not None:
        cache = _worker_store(store_spec)
        store = cache.store
        store.save(store_key, result, description=describe_request(request))
        store.flush()
        if fault is not None and fault.kind == "truncate":
            shard = (
                store._shard(store_key, create=True)
                if hasattr(store, "_shard")
                else store
            )
            blob = shard._file(store_key).read_bytes()
            truncate_entry(store, store_key, blob)
    return result


def _plain_runner(payload, fault):
    """Generic runner for :class:`SupervisedExecutor`: ``(fn, item)``."""
    fn, item = payload
    return fn(item)


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------


def degrade_request(payload, failure: JobFailure, applied: tuple[str, ...]):
    """Ladder hook: propose a cheaper payload for a dead job, or None.

    Rungs, each at most once per job:

    * deadline blown (``timeout``/``hung``) under the exact scheduler ->
      retry under SMS (the paper's fast heuristic): ``exact->sms``;
    * job *errored* on the fast-path executor -> retry on the reference
      interpreter (isolates fast-path bugs): ``fast->reference``.
    """
    store_key, request, store_spec, meta = payload
    options = request.options

    def rewrite(new_options: SimOptions, label: str):
        new_meta = dict(meta)
        new_meta["degraded"] = label
        new_meta["degraded_after"] = failure.kind
        new_request = replace(request, options=new_options)
        return (store_key, new_request, store_spec, new_meta), label

    if (
        failure.kind in ("timeout", "hung")
        and options.scheduler == "exact"
        and "exact->sms" not in applied
    ):
        return rewrite(replace(options, scheduler="sms"), "exact->sms")
    if (
        failure.kind == "error"
        and options.fast_sim
        and "fast->reference" not in applied
    ):
        return rewrite(replace(options, fast_sim=False), "fast->reference")
    return None


# ----------------------------------------------------------------------
# Sweep specs (checkpoint-journalable request grids)
# ----------------------------------------------------------------------

#: Named config grids a sweep spec may reference.  Each entry maps a
#: label to a config factory; labels keep the checkpoint JSON-able.
GRIDS = {
    # Figure 5's sweep: L0 buffers of 4/8/16/unbounded entries plus the
    # unified-L1 baseline they are normalised against.
    "fig5": (
        ("unified", lambda: unified_config()),
        ("l0-4", lambda: l0_config(4)),
        ("l0-8", lambda: l0_config(8)),
        ("l0-16", lambda: l0_config(16)),
        ("l0-unbounded", lambda: l0_config(None)),
    ),
    # Minimal smoke grid for drills and CI.
    "smoke": (
        ("unified", lambda: unified_config()),
        ("l0-8", lambda: l0_config(8)),
    ),
}


def sweep_spec(benchmarks, grid: str = "fig5", **option_knobs) -> dict:
    """JSON-able description of a sweep, journaled in the checkpoint."""
    if grid not in GRIDS:
        raise ValueError(f"unknown grid {grid!r}; have {sorted(GRIDS)}")
    return {
        "benchmarks": list(benchmarks),
        "grid": grid,
        "options": dict(option_knobs),
    }


def requests_from_spec(spec: dict) -> list[RunRequest]:
    """Rebuild the request list a spec describes (resume path)."""
    options = SimOptions(**spec.get("options", {}))
    return [
        RunRequest(benchmark=name, config=factory(), options=options)
        for name in spec["benchmarks"]
        for _, factory in GRIDS[spec["grid"]]
    ]


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------


@dataclass
class SweepReport:
    """What one ``sweep`` call did (results ride alongside, not in JSON)."""

    total: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    executed: int = 0
    duplicate_simulations: int = 0
    dead: list[JobFailure] = field(default_factory=list)
    supervisor: dict = field(default_factory=dict)
    results: dict[str, object] = field(default_factory=dict, repr=False)

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "duplicate_simulations": self.duplicate_simulations,
            "dead": [f.to_json() for f in self.dead],
            "supervisor": self.supervisor,
        }

    def fingerprints(self) -> dict[str, str]:
        """Canonical byte strings per key (byte-identity assertions)."""
        return {
            key: result_fingerprint(result)
            for key, result in sorted(self.results.items())
        }


class SweepService:
    """Async sweep server: cache-first, coalescing, supervised workers.

    ``store_dir``/``shard_width`` configure the worker-written sharded
    result store (None = memory-only).  ``checkpoint_path`` enables the
    resume journal.  ``degrade=False`` disables the ladder (the chaos
    drill runs with it off so fault recovery stays byte-identical).
    ``exit_after`` hard-kills the *server process* (``os._exit``) after
    that many completions — the drill's mid-sweep crash lever.
    """

    def __init__(
        self,
        *,
        store_dir: str | Path | None = None,
        shard_width: int = 1,
        workers: int = 2,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        degrade: bool = True,
        checkpoint_path: str | Path | None = None,
        exit_after: int | None = None,
        poll_interval_s: float = 0.01,
    ) -> None:
        self._store_spec = (
            None if store_dir is None else (str(store_dir), shard_width)
        )
        self.cache = ResultCache(
            store_dir, shard_width=shard_width if store_dir is not None else None
        )
        self.checkpoint: SweepCheckpoint | None = None
        if checkpoint_path is not None:
            self.checkpoint = SweepCheckpoint.load(checkpoint_path) or SweepCheckpoint(
                path=Path(checkpoint_path)
            )
        self._exit_after = exit_after
        self.cache_hits = 0
        self.coalesced = 0
        self._inflight: dict[str, asyncio.Task] = {}
        self.supervisor = Supervisor(
            _service_runner,
            workers=workers,
            policy=policy,
            faults=faults,
            degrade=degrade_request if degrade else None,
            poll_interval_s=poll_interval_s,
            completion_hook=self._on_complete,
        )

    # -- lifecycle ------------------------------------------------------

    async def __aenter__(self) -> "SweepService":
        await self.supervisor.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.supervisor.stop()
        if self.checkpoint is not None:
            self.checkpoint.flush()
        self.cache.flush()

    # -- internals ------------------------------------------------------

    def _on_complete(self, key: str, result) -> None:
        # Runs in the supervisor loop the moment a job completes — i.e.
        # *before* any awaiting client resumes — so the checkpoint and
        # cache always lead the clients, and an ``exit_after`` kill
        # leaves a journal covering everything the workers finished.
        self.cache.put(key, result, persist=False)
        if self.checkpoint is not None:
            self.checkpoint.mark_done(key)
        if self._exit_after is not None:
            self._exit_after -= 1
            if self._exit_after <= 0:
                if self.checkpoint is not None:
                    self.checkpoint.flush()
                os._exit(42)  # simulated server crash (drill only)

    async def _run_job(self, request: RunRequest) -> object:
        key = request.key
        payload = (key, request, self._store_spec, {})
        future = self.supervisor.submit(key, payload, describe_request(request))
        try:
            return await future
        except JobFailureError as exc:
            if self.checkpoint is not None:
                self.checkpoint.mark_dead(exc.failure)
            raise

    # -- client surface -------------------------------------------------

    async def fetch(self, request: RunRequest):
        """One result: cache hit, join of an in-flight job, or new job."""
        key = request.key
        cached = self.cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        task = self._inflight.get(key)
        if task is None:
            task = asyncio.get_running_loop().create_task(self._run_job(request))
            self._inflight[key] = task
            task.add_done_callback(lambda t, k=key: self._inflight.pop(k, None))
        else:
            self.coalesced += 1
        return await task

    async def sweep(self, requests) -> SweepReport:
        """Fetch every request; dead letters are reported, not raised."""
        requests = list(requests)
        outcomes = await asyncio.gather(
            *(self.fetch(r) for r in requests), return_exceptions=True
        )
        report = SweepReport(total=len(requests))
        for request, outcome in zip(requests, outcomes):
            if isinstance(outcome, JobFailureError):
                report.dead.append(outcome.failure)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                report.results[request.key] = outcome
        stats = self.supervisor.stats
        report.cache_hits = self.cache_hits
        report.coalesced = self.coalesced
        report.executed = stats.completed
        report.duplicate_simulations = stats.duplicate_simulations
        report.supervisor = stats.to_json()
        if self.checkpoint is not None:
            self.checkpoint.flush()
        self.cache.flush()
        return report


async def run_sweep(
    spec: dict,
    *,
    store_dir: str | Path | None,
    checkpoint_path: str | Path | None = None,
    **service_kwargs,
) -> SweepReport:
    """Run (or resume) the sweep a spec describes, start to finish."""
    requests = requests_from_spec(spec)
    async with SweepService(
        store_dir=store_dir, checkpoint_path=checkpoint_path, **service_kwargs
    ) as service:
        if service.checkpoint is not None:
            service.checkpoint.spec = spec
        return await service.sweep(requests)


# ----------------------------------------------------------------------
# Synchronous executor facade
# ----------------------------------------------------------------------


class SupervisedExecutor:
    """Drop-in ``executor.map`` backed by the supervisor.

    Same contract as :class:`~repro.pipeline.executor.ParallelExecutor`
    — results in request order, first failure raises — but a SIGKILL'd
    or wedged worker is restarted and its job retried instead of
    poisoning the pool (``BrokenProcessPool``).  Plug into
    ``Session(executor=...)`` or ``repro.eval --supervised``.
    """

    def __init__(
        self, workers: int | None = None, *, policy: RetryPolicy | None = None
    ) -> None:
        self.workers = workers or os.cpu_count() or 1
        self.policy = policy or RetryPolicy()

    def map(self, requests, fn=execute_request) -> list:
        requests = list(requests)
        if not requests:
            return []
        return asyncio.run(self._amap(requests, fn))

    async def _amap(self, requests, fn) -> list:
        async with Supervisor(
            _plain_runner, workers=self.workers, policy=self.policy
        ) as supervisor:
            futures = []
            seen: set[str] = set()
            for i, request in enumerate(requests):
                key = getattr(request, "key", None) or f"item-{i}"
                if key in seen:
                    key = f"{key}#{i}"
                seen.add(key)
                description = (
                    describe_request(request)
                    if isinstance(request, RunRequest)
                    else None
                )
                futures.append(
                    supervisor.submit(key, (fn, request), description)
                )
            outcomes = await asyncio.gather(*futures, return_exceptions=True)
        results = []
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
            results.append(outcome)
        return results
