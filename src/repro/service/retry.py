"""Retry policy: per-job timeouts, bounded backoff, typed failures.

Everything here is pure data + pure functions of ``(policy, key,
attempt)`` — no clocks, no sleeps — so the supervisor can schedule
retries against ``time.monotonic`` while tests drive the exact same
code under a fake clock.  Jitter is *deterministic*: derived from a
sha256 of the job key and attempt number, so two runs of the same sweep
back off identically (the project-wide "a run is fully determined by
its inputs" discipline extends to failure handling), while distinct
jobs still de-synchronise instead of thundering back in lock-step.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Failure classification, in escalation order.
#:
#: * ``error``   — the job itself raised (deterministic; retrying is
#:   usually futile, so errors are terminal unless ``retry_errors``);
#: * ``timeout`` — the job exceeded its per-attempt deadline and the
#:   worker was killed;
#: * ``hung``    — the worker stopped heartbeating mid-job and was
#:   killed (a wedged process, not merely a slow one);
#: * ``crash``   — the worker process died under the job (SIGKILL, OOM,
#:   segfault).
FAILURE_KINDS = ("error", "timeout", "hung", "crash")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before a job is declared dead."""

    #: Total attempts a job may consume (first run included).
    max_attempts: int = 3
    #: Per-attempt wall-clock deadline; ``None`` disables (the
    #: heartbeat watchdog still catches wedged workers).
    timeout_s: float | None = 120.0
    #: A busy worker silent for longer than this is declared hung and
    #: killed.  Heartbeats tick every ``heartbeat_interval_s``.
    heartbeat_timeout_s: float = 10.0
    heartbeat_interval_s: float = 0.5
    #: Exponential backoff: ``base * multiplier**(attempt-1)``, capped.
    base_delay_s: float = 0.1
    max_delay_s: float = 5.0
    multiplier: float = 2.0
    #: Fraction of the delay added as deterministic jitter in [0, jitter).
    jitter: float = 0.5
    #: Retry ``error``-kind failures too (default: an exception is
    #: deterministic, so the job goes straight to the dead letters).
    retry_errors: bool = False

    def retryable(self, kind: str) -> bool:
        if kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")
        return kind != "error" or self.retry_errors


def jitter_fraction(key: str, attempt: int) -> float:
    """Deterministic stand-in for ``random.random()`` in [0, 1)."""
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def backoff_delay(policy: RetryPolicy, key: str, attempt: int) -> float:
    """Seconds to wait before re-queuing ``key``'s ``attempt``-th retry.

    ``attempt`` is the number of attempts already consumed (>= 1).  The
    exponential raw delay is capped at ``max_delay_s`` *before* jitter,
    so the cap stays meaningful: the worst case is
    ``max_delay_s * (1 + jitter)``.
    """
    if attempt < 1:
        raise ValueError("backoff is only defined after a failed attempt")
    raw = min(
        policy.base_delay_s * policy.multiplier ** (attempt - 1),
        policy.max_delay_s,
    )
    return raw * (1.0 + policy.jitter * jitter_fraction(key, attempt))


@dataclass(frozen=True)
class JobFailure:
    """Terminal record of a job the service gave up on (dead letter).

    Carries everything an operator needs to act on it without grepping
    worker logs: the content key, the human description (benchmark,
    scheduler, non-default config/options — see
    :func:`~repro.pipeline.executor.describe_request`), the
    classification of the *last* failure, and how many attempts were
    burned.
    """

    key: str
    kind: str
    attempts: int
    detail: str = ""
    description: dict | None = None

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "attempts": self.attempts,
            "detail": self.detail,
            "description": self.description,
        }

    @classmethod
    def from_json(cls, data: dict) -> "JobFailure":
        return cls(
            key=str(data["key"]),
            kind=str(data["kind"]),
            attempts=int(data["attempts"]),
            detail=str(data.get("detail", "")),
            description=data.get("description"),
        )


class JobFailureError(RuntimeError):
    """Raised to awaiters when a job dead-letters."""

    def __init__(self, failure: JobFailure) -> None:
        super().__init__(failure)
        self.failure = failure

    def __str__(self) -> str:
        f = self.failure
        return (
            f"job {f.key[:12]} dead after {f.attempts} attempts "
            f"({f.kind}): {f.detail} [{f.description}]"
        )


@dataclass(frozen=True)
class Retry:
    """Decision: run the job again after ``delay_s``."""

    delay_s: float
    attempt: int  # attempts consumed so far


@dataclass(frozen=True)
class Dead:
    """Decision: give up; ``failure`` goes to the dead-letter list."""

    failure: JobFailure


@dataclass
class JobAttempts:
    """Per-job attempt ledger (clock-free, supervisor-owned).

    ``decide`` classifies one failed attempt into :class:`Retry` (with a
    deterministic backoff delay) or :class:`Dead` (a typed terminal
    record).  The ledger never sleeps — callers schedule the delay.
    """

    key: str
    description: dict | None = None
    attempts: int = 0
    failures: list[tuple[str, str]] = field(default_factory=list)

    def decide(self, policy: RetryPolicy, kind: str, detail: str = "") -> Retry | Dead:
        self.attempts += 1
        self.failures.append((kind, detail))
        if policy.retryable(kind) and self.attempts < policy.max_attempts:
            return Retry(
                delay_s=backoff_delay(policy, self.key, self.attempts),
                attempt=self.attempts,
            )
        return Dead(
            JobFailure(
                key=self.key,
                kind=kind,
                attempts=self.attempts,
                detail=detail,
                description=self.description,
            )
        )
