"""Entry point: ``python -m repro.service <sweep|resume|drill>``.

* ``sweep``  — run a named config grid over benchmarks through the
  fault-tolerant service: supervised workers, retries, a sharded result
  store and a journaled checkpoint.
* ``resume`` — pick a dead sweep back up from its checkpoint: the
  request list is rebuilt from the journaled spec and only jobs missing
  from the store execute.
* ``drill``  — the chaos drill (kill/hang/truncate faults, concurrent
  clients, mid-sweep server crash + resume); exit 1 unless every check
  is green.  This is the CI ``chaos-smoke`` lane.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from .checkpoint import SweepCheckpoint
from .drill import run_drill
from .retry import RetryPolicy
from .server import GRIDS, run_sweep, sweep_spec


def _policy(args) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=args.job_retries,
        timeout_s=args.job_timeout,
    )


def _print_report(report: dict, json_path: str | None) -> None:
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if json_path is not None:
        Path(json_path).write_text(text + "\n")


def cmd_sweep(args) -> int:
    spec = sweep_spec(args.benchmarks, args.grid, sim_cap=args.sim_cap)
    report = asyncio.run(
        run_sweep(
            spec,
            store_dir=args.store_dir,
            checkpoint_path=args.checkpoint,
            workers=args.workers,
            policy=_policy(args),
            degrade=not args.no_degrade,
        )
    )
    _print_report(report.to_json(), args.json)
    return 1 if report.dead else 0


def cmd_resume(args) -> int:
    checkpoint = SweepCheckpoint.load(args.checkpoint)
    if checkpoint is None or not checkpoint.spec:
        print(f"no resumable checkpoint at {args.checkpoint}", file=sys.stderr)
        return 1
    report = asyncio.run(
        run_sweep(
            checkpoint.spec,
            store_dir=args.store_dir,
            checkpoint_path=args.checkpoint,
            workers=args.workers,
            policy=_policy(args),
            degrade=not args.no_degrade,
        )
    )
    _print_report(report.to_json(), args.json)
    return 1 if report.dead else 0


def cmd_drill(args) -> int:
    report = run_drill(
        seed=args.seed,
        workers=args.workers,
        clients=args.clients,
        benchmarks=args.benchmarks,
        grid=args.grid,
        sim_cap=args.sim_cap,
        kills=args.kills,
        hangs=args.hangs,
        truncates=args.truncates,
        phases=tuple(args.phases.split(",")),
    )
    _print_report(report, args.json)
    if not report["ok"]:
        for failure in report["failures"]:
            print(f"DRILL FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Fault-tolerant sweep service and its chaos drill.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=2, help="worker processes")
        p.add_argument(
            "--job-timeout",
            type=float,
            default=600.0,
            help="per-attempt deadline in seconds",
        )
        p.add_argument(
            "--job-retries",
            type=int,
            default=3,
            help="attempts per job before it dead-letters",
        )
        p.add_argument(
            "--no-degrade",
            action="store_true",
            help="disable the degradation ladder (exact->sms, "
            "fast->reference); dead-letter instead",
        )
        p.add_argument("--json", default=None, help="also write the report here")

    sweep = sub.add_parser("sweep", help="run a grid through the service")
    common(sweep)
    sweep.add_argument("--benchmarks", nargs="+", default=["g721dec", "gsmdec"])
    sweep.add_argument("--grid", choices=sorted(GRIDS), default="fig5")
    sweep.add_argument("--sim-cap", type=int, default=1500)
    sweep.add_argument("--store-dir", default=".result-cache")
    sweep.add_argument("--checkpoint", default=".sweep-checkpoint.json")

    resume = sub.add_parser("resume", help="resume a sweep from its checkpoint")
    common(resume)
    resume.add_argument("--store-dir", default=".result-cache")
    resume.add_argument("--checkpoint", default=".sweep-checkpoint.json")

    drill = sub.add_parser("drill", help="run the chaos drill (CI lane)")
    drill.add_argument("--seed", type=int, default=0)
    drill.add_argument("--workers", type=int, default=3)
    drill.add_argument("--clients", type=int, default=4)
    drill.add_argument("--benchmarks", nargs="+", default=["g721dec", "gsmdec"])
    drill.add_argument("--grid", choices=sorted(GRIDS), default="fig5")
    drill.add_argument("--sim-cap", type=int, default=60)
    drill.add_argument("--kills", type=int, default=1)
    drill.add_argument("--hangs", type=int, default=1)
    drill.add_argument("--truncates", type=int, default=1)
    drill.add_argument(
        "--phases",
        default="chaos,resume",
        help="comma-separated subset of chaos,resume",
    )
    drill.add_argument("--json", default=None)

    args = parser.parse_args(argv)
    handler = {"sweep": cmd_sweep, "resume": cmd_resume, "drill": cmd_drill}[
        args.command
    ]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
