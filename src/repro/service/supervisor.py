"""Supervised process-pool job queue: the service's execution core.

``concurrent.futures.ProcessPoolExecutor`` is the wrong substrate for a
fault-*tolerant* service: one SIGKILL'd worker poisons the whole pool
(``BrokenProcessPool``) and takes every in-flight job with it.  The
:class:`Supervisor` owns its workers directly — one
``multiprocessing.Process`` + duplex pipe each — and an asyncio loop
that dispatches queued jobs, drains results, and *watches*:

* a worker process that died (SIGKILL, OOM, segfault) is detected via
  ``Process.is_alive``/pipe EOF, restarted, and its job re-queued as a
  ``crash``;
* a busy worker whose heartbeat thread has gone silent past the
  policy's ``heartbeat_timeout_s`` is declared ``hung``, SIGKILLed and
  replaced (its job re-queued);
* a job past its per-attempt ``timeout_s`` is classified ``timeout``
  the same way (slow is distinct from wedged: heartbeats keep flowing
  during a long simulation, so only the deadline catches it).

Failed attempts go through :class:`~repro.service.retry.JobAttempts`:
bounded retries with exponential backoff and deterministic jitter,
then — optionally — one pass through a *degradation ladder* (a hook
that may rewrite the payload, e.g. exact→SMS scheduling), and finally a
typed :class:`JobFailure` dead letter.  A poisoned job can therefore
never wedge the queue: it burns its attempts and lands in
``stats.dead`` while every other job keeps flowing.

Chaos faults (:mod:`repro.service.faults`) are injected at dispatch:
the plan names a dispatch ordinal, the fault rides the job message, and
the worker (or its store write) misbehaves accordingly — deterministic
enough to drill recovery in CI.
"""

from __future__ import annotations

import asyncio
import heapq
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field

from .faults import FaultPlan
from .retry import (
    Dead,
    JobAttempts,
    JobFailure,
    JobFailureError,
    Retry,
    RetryPolicy,
)


def _worker_main(conn, runner, heartbeat_interval_s: float) -> None:
    """Worker process: serve jobs from ``conn`` until told to stop.

    Protocol (parent -> worker): ``("job", key, payload, fault)`` or
    ``("stop",)``.  Worker -> parent: ``("hb", key)`` heartbeats from a
    background thread while a job runs, then ``("done", key, result)``
    or ``("fail", key, detail_dict)``.  A ``kill`` fault SIGKILLs this
    process at job start (a crash, from the supervisor's view); a
    ``hang`` fault sleeps *without heartbeating* first, so the watchdog
    sees a wedged worker.
    """
    import signal

    supervisor_pid = os.getppid()
    send_lock = threading.Lock()

    def _send(msg) -> bool:
        with send_lock:
            try:
                conn.send(msg)
                return True
            except (OSError, ValueError, BrokenPipeError):
                return False  # parent went away; nothing left to do

    while True:
        try:
            # Poll rather than block in recv(): sibling workers forked
            # after us inherit dup'd ends of our pipe, so a dead
            # supervisor never EOFs it.  Watching for re-parenting is
            # the only reliable orphan signal (e.g. after the chaos
            # drill's simulated server crash).
            while not conn.poll(1.0):
                if os.getppid() != supervisor_pid:
                    return
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, key, payload, fault = msg
        if fault is not None and fault.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault is not None and fault.kind == "hang":
            # Silent wedge: no heartbeats while we sleep.  The
            # supervisor must kill us; if it somehow doesn't, we wake
            # up and run the job normally (the drill still converges).
            time.sleep(fault.seconds)
        stop_beating = threading.Event()

        def _beat(job_key=key) -> None:
            while not stop_beating.wait(heartbeat_interval_s):
                if not _send(("hb", job_key)):
                    return

        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
        try:
            result = runner(payload, fault)
            out = ("done", key, result)
        except Exception as exc:
            out = (
                "fail",
                key,
                {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "description": getattr(exc, "description", None),
                },
            )
        finally:
            stop_beating.set()
        if not _send(out):
            break
    try:
        conn.close()
    except OSError:
        pass


@dataclass
class _QueuedJob:
    key: str
    payload: object
    ledger: JobAttempts
    future: asyncio.Future
    #: degradation labels already applied (each ladder rung fires once)
    degradations: tuple[str, ...] = ()


class _WorkerHandle:
    def __init__(self, index: int, proc, conn) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn
        self.job: _QueuedJob | None = None
        self.dispatched_at = 0.0
        self.last_heartbeat = 0.0


@dataclass
class SupervisorStats:
    """Observable record of what the fleet did (the drill asserts on it)."""

    submitted: int = 0
    completed: int = 0
    dispatches: int = 0
    retries: int = 0
    crashes: int = 0
    hung: int = 0
    timeouts: int = 0
    errors: int = 0
    restarts: int = 0
    faults_injected: int = 0
    #: successful completions per key — any value > 1 is a duplicate
    #: simulation (the coalescing/dedup layer failed)
    completions_by_key: dict[str, int] = field(default_factory=dict)
    #: terminal failures, in dead-letter order
    dead: list[JobFailure] = field(default_factory=list)
    #: key -> degradation labels applied before it completed
    degraded: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def duplicate_simulations(self) -> int:
        return sum(c - 1 for c in self.completions_by_key.values() if c > 1)

    def to_json(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "dispatches": self.dispatches,
            "retries": self.retries,
            "crashes": self.crashes,
            "hung": self.hung,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "restarts": self.restarts,
            "faults_injected": self.faults_injected,
            "duplicate_simulations": self.duplicate_simulations,
            "dead": [f.to_json() for f in self.dead],
            "degraded": {k: list(v) for k, v in sorted(self.degraded.items())},
        }


class Supervisor:
    """Async job queue over a supervised worker fleet.

    ``runner`` is a module-level callable ``(payload, fault) -> result``
    executed inside worker processes.  ``degrade`` is an optional
    ladder hook ``(payload, failure, applied_labels) -> (payload, label)
    | None`` consulted when a job exhausts its retries; a non-None
    return re-queues the rewritten payload with a fresh attempt budget
    (each label at most once per job).
    """

    def __init__(
        self,
        runner,
        *,
        workers: int = 2,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        degrade=None,
        poll_interval_s: float = 0.01,
        completion_hook=None,
        mp_context: str | None = None,
    ) -> None:
        self.runner = runner
        self.n_workers = max(1, workers)
        self.policy = policy or RetryPolicy()
        self.faults = faults
        self.degrade = degrade
        self.poll_interval_s = poll_interval_s
        self.completion_hook = completion_hook
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            mp_context or ("fork" if "fork" in methods else None)
        )
        self.stats = SupervisorStats()
        self._queue: list[_QueuedJob] = []
        self._delayed: list[tuple[float, int, _QueuedJob]] = []  # heap
        self._delay_seq = 0
        self._active: dict[str, _QueuedJob] = {}
        self._workers: list[_WorkerHandle] = []
        self._loop_task: asyncio.Task | None = None
        self._running = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._workers = [self._spawn(i) for i in range(self.n_workers)]
        self._loop_task = asyncio.get_running_loop().create_task(self._loop())

    async def stop(self) -> None:
        """Tear the fleet down; unresolved jobs dead-letter as crashes."""
        self._running = False
        if self._loop_task is not None:
            self._loop_task.cancel()
            try:
                await self._loop_task
            except (asyncio.CancelledError, Exception):
                pass
            self._loop_task = None
        for job in list(self._active.values()):
            if not job.future.done():
                job.future.set_exception(
                    JobFailureError(
                        JobFailure(
                            key=job.key,
                            kind="crash",
                            attempts=job.ledger.attempts,
                            detail="service stopped with the job pending",
                            description=job.ledger.description,
                        )
                    )
                )
        self._active.clear()
        self._queue.clear()
        self._delayed.clear()
        for handle in self._workers:
            if handle.proc.is_alive() and handle.job is None:
                try:
                    handle.conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        for handle in self._workers:
            handle.proc.join(timeout=0.5)
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=0.5)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._workers = []

    async def __aenter__(self) -> "Supervisor":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- client surface -------------------------------------------------

    def submit(self, key: str, payload, description: dict | None = None):
        """Queue one job; returns a future resolving to the result (or
        raising :class:`JobFailureError`).  Keys must be unique among
        *active* jobs — coalescing identical requests onto one future
        is the server layer's job, not the queue's."""
        if not self._running:
            raise RuntimeError("supervisor is not running (use start()/async with)")
        if key in self._active:
            raise ValueError(f"job {key[:12]} is already active")
        future = asyncio.get_running_loop().create_future()
        job = _QueuedJob(
            key=key,
            payload=payload,
            ledger=JobAttempts(key=key, description=description),
            future=future,
        )
        self._active[key] = job
        self._queue.append(job)
        self.stats.submitted += 1
        return future

    def pending(self) -> int:
        busy = sum(1 for w in self._workers if w.job is not None)
        return len(self._queue) + len(self._delayed) + busy

    async def join(self) -> None:
        """Wait until every submitted job has resolved."""
        while self.pending():
            if self._loop_task is not None and self._loop_task.done():
                self._loop_task.result()  # surface a crashed loop
                raise RuntimeError("supervisor loop exited with jobs pending")
            await asyncio.sleep(self.poll_interval_s)

    # -- fleet ----------------------------------------------------------

    def _spawn(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.runner, self.policy.heartbeat_interval_s),
            daemon=True,
            name=f"sweep-worker-{index}",
        )
        proc.start()
        child_conn.close()
        return _WorkerHandle(index, proc, parent_conn)

    def _replace(self, handle: _WorkerHandle) -> None:
        try:
            if handle.proc.is_alive():
                handle.proc.kill()
            handle.proc.join(timeout=0.5)
        except (OSError, ValueError):
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        fresh = self._spawn(handle.index)
        self._workers[self._workers.index(handle)] = fresh
        self.stats.restarts += 1

    # -- event loop -----------------------------------------------------

    async def _loop(self) -> None:
        while True:
            now = time.monotonic()
            self._promote_delayed(now)
            self._dispatch(now)
            self._drain(now)
            self._watchdog(now)
            await asyncio.sleep(self.poll_interval_s)

    def _promote_delayed(self, now: float) -> None:
        while self._delayed and self._delayed[0][0] <= now:
            _, _, job = heapq.heappop(self._delayed)
            self._queue.append(job)

    def _dispatch(self, now: float) -> None:
        for handle in self._workers:
            if not self._queue:
                return
            if handle.job is not None or not handle.proc.is_alive():
                continue
            job = self._queue.pop(0)
            fault = None
            if self.faults is not None:
                fault = self.faults.fault_for(self.stats.dispatches)
            self.stats.dispatches += 1
            if fault is not None:
                self.stats.faults_injected += 1
            try:
                handle.conn.send(("job", job.key, job.payload, fault))
            except (OSError, ValueError, BrokenPipeError):
                # Worker died between health checks; re-queue and let
                # the watchdog replace it on this same tick.
                self._queue.insert(0, job)
                continue
            handle.job = job
            handle.dispatched_at = now
            handle.last_heartbeat = now

    def _drain(self, now: float) -> None:
        for handle in self._workers:
            while True:
                try:
                    if not handle.conn.poll():
                        break
                    msg = handle.conn.recv()
                except (EOFError, OSError, ValueError):
                    # Pipe torn: the worker is gone.  The watchdog pass
                    # right after this classifies and replaces it.
                    break
                kind = msg[0]
                if kind == "hb":
                    handle.last_heartbeat = now
                elif kind == "done":
                    _, key, result = msg
                    job = handle.job
                    handle.job = None
                    if job is not None and job.key == key:
                        self._complete(job, result)
                elif kind == "fail":
                    _, key, detail = msg
                    job = handle.job
                    handle.job = None
                    if job is not None and job.key == key:
                        message = f"{detail.get('type')}: {detail.get('message')}"
                        if job.ledger.description is None:
                            job.ledger.description = detail.get("description")
                        self.stats.errors += 1
                        self._failed(job, "error", message)

    def _watchdog(self, now: float) -> None:
        policy = self.policy
        for handle in list(self._workers):
            if not handle.proc.is_alive():
                job, handle.job = handle.job, None
                self._replace(handle)
                if job is not None:
                    self.stats.crashes += 1
                    code = handle.proc.exitcode
                    self._failed(job, "crash", f"worker died (exitcode {code})")
                continue
            job = handle.job
            if job is None:
                continue
            if (
                policy.timeout_s is not None
                and now - handle.dispatched_at > policy.timeout_s
            ):
                handle.job = None
                self._replace(handle)
                self.stats.timeouts += 1
                self._failed(
                    job, "timeout", f"exceeded {policy.timeout_s}s deadline"
                )
            elif now - handle.last_heartbeat > policy.heartbeat_timeout_s:
                handle.job = None
                self._replace(handle)
                self.stats.hung += 1
                self._failed(
                    job,
                    "hung",
                    f"no heartbeat for {policy.heartbeat_timeout_s}s",
                )

    # -- outcomes -------------------------------------------------------

    def _complete(self, job: _QueuedJob, result) -> None:
        self.stats.completed += 1
        by_key = self.stats.completions_by_key
        by_key[job.key] = by_key.get(job.key, 0) + 1
        if job.degradations:
            self.stats.degraded[job.key] = job.degradations
        self._active.pop(job.key, None)
        if not job.future.done():
            job.future.set_result(result)
        if self.completion_hook is not None:
            self.completion_hook(job.key, result)

    def _failed(self, job: _QueuedJob, kind: str, detail: str) -> None:
        decision = job.ledger.decide(self.policy, kind, detail)
        if isinstance(decision, Retry):
            self.stats.retries += 1
            self._delay_seq += 1
            heapq.heappush(
                self._delayed,
                (time.monotonic() + decision.delay_s, self._delay_seq, job),
            )
            return
        assert isinstance(decision, Dead)
        failure = decision.failure
        if self.degrade is not None:
            step = self.degrade(job.payload, failure, job.degradations)
            if step is not None:
                payload, label = step
                job.payload = payload
                job.degradations = job.degradations + (label,)
                job.ledger = JobAttempts(
                    key=job.key, description=job.ledger.description
                )
                self._queue.append(job)
                return
        self.stats.dead.append(failure)
        self._active.pop(job.key, None)
        if not job.future.done():
            job.future.set_exception(JobFailureError(failure))
