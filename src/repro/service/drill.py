"""Chaos drill: prove the sweep service's fault-tolerance claims.

The drill is an executable argument, not a demo.  It runs the same
request grid three ways and asserts the service's contract end to end:

* **Phase 0 (baseline)** — every request simulated serially in-process,
  no store, no faults.  The canonical fingerprints of these results are
  the ground truth everything else must match byte for byte.
* **Phase 1 (chaos)** — N concurrent clients sweep overlapping
  orderings of the grid through one service with a seeded
  :class:`FaultPlan`: at least one worker SIGKILLed mid-job, one wedged
  (silent hang), one store write torn.  Asserts: every client converges
  to the baseline fingerprints, zero duplicate simulations, coalescing
  actually occurred, each fault kind both fired and was recovered from.
  Then a store ``verify`` must find exactly the torn entries, and a
  fresh no-fault re-sweep must re-execute exactly those keys (a corrupt
  entry is a miss, never a crash or a stale read).
* **Phase 2 (resume)** — a child server process is hard-killed
  (``os._exit``) after K completions mid-sweep; the parent reloads the
  journaled checkpoint, rebuilds the request list from its spec, and
  re-runs: only the jobs missing from the store execute, duplicates
  stay zero, and the union still matches the baseline.

Determinism: faults are planned from a seed, backoff jitter is
key-derived, and the simulator itself is deterministic — so a red drill
reproduces under the same seed.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import tempfile
import time
from pathlib import Path

from ..pipeline.cache import ResultCache, result_fingerprint
from ..pipeline.executor import execute_request
from .checkpoint import SweepCheckpoint
from .faults import FaultPlan
from .retry import RetryPolicy
from .server import SweepService, requests_from_spec, run_sweep, sweep_spec

#: Retry/heartbeat tuning for drills: fast heartbeats so a wedged
#: worker is caught in ~a second, generous per-attempt deadline so a
#: legitimate compile+simulate never trips it, quick backoff.
DRILL_POLICY = RetryPolicy(
    max_attempts=4,
    timeout_s=120.0,
    heartbeat_timeout_s=1.5,
    heartbeat_interval_s=0.05,
    base_delay_s=0.05,
    max_delay_s=0.5,
)

HANG_SECONDS = 4.0  # must exceed heartbeat_timeout_s


def _fingerprints(requests, results_by_key) -> dict[str, str]:
    return {
        r.key: result_fingerprint(results_by_key[r.key])
        for r in requests
        if r.key in results_by_key
    }


def _wait_store_quiet(
    store_dir: Path, *, quiet_s: float = 1.0, timeout_s: float = 60.0
) -> None:
    """Block until the store stops changing: orphaned workers of a
    killed server finish their in-flight store writes on their own
    schedule, and the resume math needs a settled directory."""
    deadline = time.monotonic() + timeout_s
    last = None
    quiet_since = time.monotonic()
    while time.monotonic() < deadline:
        snapshot = tuple(
            sorted(
                (str(p), p.stat().st_size)
                for p in store_dir.rglob("*")
                if p.is_file()
            )
        )
        now = time.monotonic()
        if snapshot != last:
            last = snapshot
            quiet_since = now
        elif now - quiet_since >= quiet_s:
            return
        time.sleep(0.05)


async def _chaos_sweep(
    requests, *, store_dir, workers, clients, faults, poll_interval_s=0.01
):
    """N concurrent clients fetch overlapping orderings of one grid
    through a single faulted service; returns (service, per-client
    result dicts)."""
    async with SweepService(
        store_dir=store_dir,
        workers=workers,
        policy=DRILL_POLICY,
        faults=faults,
        degrade=False,  # recovery must be byte-identical, never a swap
        poll_interval_s=poll_interval_s,
    ) as service:

        async def client(ordinal: int) -> dict[str, object]:
            rotated = requests[ordinal:] + requests[:ordinal]
            out = {}
            for request in rotated:
                out[request.key] = await service.fetch(request)
            return out

        per_client = await asyncio.gather(
            *(client(i % len(requests)) for i in range(clients))
        )
        stats = service.supervisor.stats
        summary = {
            "coalesced": service.coalesced,
            "cache_hits": service.cache_hits,
            "supervisor": stats.to_json(),
        }
    return summary, per_client


def _resume_child(spec, store_dir, checkpoint_path, workers, exit_after) -> None:
    """Child-process server for phase 2: dies via os._exit mid-sweep."""
    asyncio.run(
        run_sweep(
            spec,
            store_dir=store_dir,
            checkpoint_path=checkpoint_path,
            workers=workers,
            policy=DRILL_POLICY,
            degrade=False,
            exit_after=exit_after,
        )
    )


def run_drill(
    *,
    seed: int = 0,
    workers: int = 3,
    clients: int = 4,
    benchmarks=("g721dec", "gsmdec"),
    grid: str = "fig5",
    sim_cap: int = 60,
    kills: int = 1,
    hangs: int = 1,
    truncates: int = 1,
    phases=("chaos", "resume"),
    out_dir: str | Path | None = None,
) -> dict:
    """Run the drill; returns a JSON-able report with ``report["ok"]``.

    Every failed assertion lands in ``report["failures"]`` (the drill
    runs to completion rather than stopping at the first red check, so
    one CI run shows the whole picture).
    """
    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    cleanup = None
    if out_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-drill-")
        out_dir = cleanup.name
    out_dir = Path(out_dir)
    report: dict = {
        "params": {
            "seed": seed,
            "workers": workers,
            "clients": clients,
            "benchmarks": list(benchmarks),
            "grid": grid,
            "sim_cap": sim_cap,
            "faults": {"kills": kills, "hangs": hangs, "truncates": truncates},
            "phases": list(phases),
        },
        "failures": failures,
    }
    try:
        spec = sweep_spec(
            benchmarks,
            grid,
            sim_cap=sim_cap,
            compile_cache_dir=str(out_dir / "compile-cache"),
        )
        requests = requests_from_spec(spec)
        total = len(requests)
        report["params"]["total_jobs"] = total

        # -- phase 0: serial ground truth --------------------------------
        baseline = {r.key: execute_request(r) for r in requests}
        truth = _fingerprints(requests, baseline)
        report["baseline"] = {"jobs": total}

        if "chaos" in phases:
            plan = FaultPlan.generate(
                seed,
                total,
                kills=kills,
                hangs=hangs,
                truncates=truncates,
                hang_seconds=HANG_SECONDS,
            )
            store_dir = out_dir / "chaos-store"
            summary, per_client = asyncio.run(
                _chaos_sweep(
                    requests,
                    store_dir=store_dir,
                    workers=workers,
                    clients=clients,
                    faults=plan,
                )
            )
            stats = summary["supervisor"]
            report["chaos"] = {"plan": plan.to_json(), **summary}
            for i, results in enumerate(per_client):
                got = _fingerprints(requests, results)
                check(
                    got == truth,
                    f"chaos: client {i} results differ from serial baseline",
                )
            check(
                stats["duplicate_simulations"] == 0,
                f"chaos: {stats['duplicate_simulations']} duplicate simulations",
            )
            check(summary["coalesced"] > 0, "chaos: no requests were coalesced")
            check(stats["crashes"] >= kills, "chaos: kill fault not observed")
            check(stats["hung"] >= hangs, "chaos: hang fault not observed")
            check(
                stats["restarts"] >= kills + hangs,
                "chaos: workers were not restarted",
            )
            check(not stats["dead"], f"chaos: dead letters: {stats['dead']}")

            # Torn store writes: verify must find exactly them, and a
            # fresh sweep must re-run exactly them.
            verify = ResultCache(store_dir).verify()
            report["chaos"]["verify"] = {
                "ok": verify.ok,
                "corrupt": list(verify.corrupt),
            }
            check(
                len(verify.corrupt) == truncates,
                f"chaos: verify found {len(verify.corrupt)} corrupt entries, "
                f"expected {truncates}",
            )
            resweep = asyncio.run(
                run_sweep(
                    spec,
                    store_dir=store_dir,
                    workers=workers,
                    policy=DRILL_POLICY,
                    degrade=False,
                )
            )
            report["chaos"]["resweep"] = resweep.to_json()
            check(
                resweep.executed == len(verify.corrupt),
                f"chaos: re-sweep executed {resweep.executed} jobs, expected "
                f"exactly the {len(verify.corrupt)} dropped-corrupt keys",
            )
            check(
                resweep.duplicate_simulations == 0,
                "chaos: re-sweep produced duplicate simulations",
            )
            check(
                _fingerprints(requests, resweep.results) == truth,
                "chaos: re-sweep results differ from serial baseline",
            )

        if "resume" in phases:
            store_dir = out_dir / "resume-store"
            checkpoint_path = out_dir / "resume-checkpoint.json"
            exit_after = max(2, total // 3)
            check(
                exit_after < total,
                f"resume: grid too small to kill mid-sweep ({total} jobs)",
            )
            ctx = multiprocessing.get_context("fork")
            child = ctx.Process(
                target=_resume_child,
                args=(spec, str(store_dir), str(checkpoint_path), workers, exit_after),
            )
            child.start()
            child.join(timeout=300)
            if child.is_alive():
                child.kill()
                child.join()
                check(False, "resume: child server never exited")
            check(
                child.exitcode == 42,
                f"resume: child exited {child.exitcode}, expected the "
                "simulated crash (42)",
            )
            _wait_store_quiet(store_dir)
            survived = ResultCache(store_dir).verify()
            check(not survived.corrupt, "resume: store corrupt after crash")
            ckpt = SweepCheckpoint.load(checkpoint_path)
            check(ckpt is not None, "resume: checkpoint missing after crash")
            if ckpt is not None:
                check(
                    ckpt.spec == spec,
                    "resume: checkpoint spec does not round-trip",
                )
            resumed = asyncio.run(
                run_sweep(
                    (ckpt.spec if ckpt is not None else spec),
                    store_dir=store_dir,
                    checkpoint_path=checkpoint_path,
                    workers=workers,
                    policy=DRILL_POLICY,
                    degrade=False,
                )
            )
            report["resume"] = {
                "exit_after": exit_after,
                "store_entries_after_crash": survived.ok,
                "resumed": resumed.to_json(),
            }
            check(
                resumed.executed == total - survived.ok,
                f"resume: executed {resumed.executed} jobs, expected only "
                f"the {total - survived.ok} not already in the store",
            )
            check(
                resumed.duplicate_simulations == 0,
                "resume: duplicate simulations on resume",
            )
            check(not resumed.dead, "resume: dead letters on resume")
            check(
                _fingerprints(requests, resumed.results) == truth,
                "resume: resumed results differ from serial baseline",
            )
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    report["ok"] = not failures
    return report
