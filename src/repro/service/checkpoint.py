"""Crash-safe sweep checkpoint: journaled progress for resume.

The content-addressed result store already makes completed simulations
durable; what it cannot answer after a dead server is *what the sweep
was* (which grid, which benchmarks, which options) and *which jobs were
written off as dead letters*.  The checkpoint journals exactly that —
the sweep spec plus done/dead key sets — under the same single-file
atomic-rename discipline as :class:`~repro.pipeline.manifest.StoreManifest`:
rewrite to a per-process tmp name, ``replace`` into place, so a reader
(or a restarted server) sees either the old snapshot or the new one,
never a torn one.

Unlike the manifest, the checkpoint is single-writer (one server owns
one sweep), so there is no read-merge-write dance; and a corrupt or
missing checkpoint degrades to "start fresh" — the result cache then
ensures already-simulated jobs are instant hits, so the only cost of a
lost checkpoint is re-*checking* work, never re-*doing* it.  Done keys
mix the code fingerprint (they are cache keys), so a checkpoint left by
a different build self-invalidates: none of its keys match the resumed
sweep's, and every job re-runs as it must.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from .retry import JobFailure

CHECKPOINT_SCHEMA = 1


@dataclass
class SweepCheckpoint:
    """Journal of one sweep's identity and progress.

    ``spec`` is an opaque JSON-able description of the sweep (the server
    records benchmarks, grid name and option knobs) used by ``resume``
    to rebuild the request list without the caller re-specifying it.
    ``flush_every`` bounds rewrite traffic the same way the store
    manifest does; ``mark_done``/``mark_dead`` flush on the interval and
    callers flush once more at the end.
    """

    path: Path
    spec: dict = field(default_factory=dict)
    done: set[str] = field(default_factory=set)
    dead: dict[str, JobFailure] = field(default_factory=dict)
    flush_every: int = 8
    _dirty: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    @classmethod
    def load(cls, path: str | Path) -> "SweepCheckpoint | None":
        """Read a checkpoint; ``None`` if absent or unreadable.

        Corruption (torn bytes despite the atomic-rename discipline,
        e.g. a copied-around file) means "no checkpoint": the sweep
        starts fresh and the result cache absorbs the cost.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_bytes())
            if data.get("schema") != CHECKPOINT_SCHEMA:
                return None
            return cls(
                path=path,
                spec=dict(data["spec"]),
                done=set(map(str, data["done"])),
                dead={
                    str(k): JobFailure.from_json(v)
                    for k, v in data["dead"].items()
                },
            )
        except Exception:
            return None

    def mark_done(self, key: str) -> None:
        self.done.add(key)
        self.dead.pop(key, None)
        self._note()

    def mark_dead(self, failure: JobFailure) -> None:
        self.dead[failure.key] = failure
        self._note()

    def _note(self) -> None:
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Atomically rewrite the journal (tmp + rename; best-effort)."""
        self._dirty = 0
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "spec": self.spec,
            "done": sorted(self.done),
            "dead": {k: f.to_json() for k, f in sorted(self.dead.items())},
        }
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            tmp.replace(self.path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def remaining(self, keys) -> list[str]:
        """Keys of ``keys`` not yet done — dead letters are retried on
        resume (a restart is an operator action; give them a new life)."""
        return [k for k in keys if k not in self.done]
