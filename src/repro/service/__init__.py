"""Fault-tolerant sweep service.

A supervised async job queue for simulation sweeps: worker processes
under a heartbeat/deadline watchdog (crashed and wedged workers are
restarted and their jobs re-queued), bounded retries with deterministic
backoff and typed dead letters, request coalescing through the result
cache, shard-partitioned result storage, a journaled checkpoint for
crash-safe resume, and a seeded chaos harness that drills all of it.

Layering (bottom up):

* :mod:`.retry`      — pure retry policy: backoff, jitter, failure taxonomy
* :mod:`.faults`     — seeded fault plans (kill/hang/truncate) + injection
* :mod:`.supervisor` — worker fleet, watchdog, retry/dead-letter loop
* :mod:`.checkpoint` — atomic-rename sweep journal for resume
* :mod:`.server`     — coalescing service, degradation ladder, executor facade
* :mod:`.drill`      — the chaos drill (also the ``chaos-smoke`` CI lane)
"""

from .checkpoint import CHECKPOINT_SCHEMA, SweepCheckpoint
from .drill import DRILL_POLICY, run_drill
from .faults import FAULT_KINDS, Fault, FaultPlan, truncate_entry
from .retry import (
    FAILURE_KINDS,
    Dead,
    JobAttempts,
    JobFailure,
    JobFailureError,
    Retry,
    RetryPolicy,
    backoff_delay,
    jitter_fraction,
)
from .server import (
    GRIDS,
    SupervisedExecutor,
    SweepReport,
    SweepService,
    degrade_request,
    requests_from_spec,
    run_sweep,
    sweep_spec,
)
from .supervisor import Supervisor, SupervisorStats

__all__ = [
    "CHECKPOINT_SCHEMA",
    "DRILL_POLICY",
    "FAILURE_KINDS",
    "FAULT_KINDS",
    "GRIDS",
    "Dead",
    "Fault",
    "FaultPlan",
    "JobAttempts",
    "JobFailure",
    "JobFailureError",
    "Retry",
    "RetryPolicy",
    "Supervisor",
    "SupervisorStats",
    "SupervisedExecutor",
    "SweepCheckpoint",
    "SweepReport",
    "SweepService",
    "backoff_delay",
    "degrade_request",
    "jitter_fraction",
    "requests_from_spec",
    "run_drill",
    "run_sweep",
    "sweep_spec",
    "truncate_entry",
]
