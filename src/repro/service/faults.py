"""Deterministic fault injection for the sweep service (chaos harness).

Mirrors ``repro.fuzz``'s discipline: faults are *planned* up front from
a seed, not sprinkled from an ambient RNG, so a chaos drill is
reproducible.  A :class:`FaultPlan` maps worker *dispatch ordinals*
(the 0-based count of jobs handed to workers, retries included) to
faults; each planned fault fires exactly once.  Because the victim job
is whichever job happens to receive that ordinal, the plan pins the
fault *load*, while the service's recovery obligations (converge,
byte-identical, no duplicate simulations) must hold for any victim —
which is the property worth testing.

Fault kinds:

* ``kill``     — the worker SIGKILLs itself at job start: a crashed
  worker.  The supervisor must detect the dead process, restart it and
  re-queue the job.
* ``hang``     — the worker sleeps without heartbeating before running
  the job: a wedged worker.  The supervisor's heartbeat watchdog must
  kill and replace it.
* ``truncate`` — the worker's result-store write is torn: the entry
  file holds only a prefix of the blob.  Readers must treat it as a
  miss (the ``KeyedFileStore`` contract) and the sweep must re-derive
  the result from the in-memory copy or a re-run, never crash.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

FAULT_KINDS = ("kill", "hang", "truncate")


@dataclass(frozen=True)
class Fault:
    kind: str
    #: ``hang``: seconds to sleep silently (must exceed the policy's
    #: heartbeat timeout to trip the watchdog).  Unused otherwise.
    seconds: float = 0.0

    def to_json(self) -> dict:
        return {"kind": self.kind, "seconds": self.seconds}


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, immutable schedule of faults by dispatch ordinal."""

    seed: int
    by_dispatch: tuple[tuple[int, Fault], ...] = ()

    @classmethod
    def generate(
        cls,
        seed: int,
        n_jobs: int,
        *,
        kills: int = 1,
        hangs: int = 1,
        truncates: int = 1,
        hang_seconds: float = 4.0,
    ) -> "FaultPlan":
        """Plan ``kills + hangs + truncates`` faults over a sweep.

        Ordinals are drawn (seeded) from the first ``n_jobs`` dispatches
        so every fault fires before the queue can drain; distinct
        ordinals keep at most one fault per dispatch.
        """
        wanted = kills + hangs + truncates
        if wanted > n_jobs:
            raise ValueError(
                f"cannot place {wanted} faults in a {n_jobs}-job sweep"
            )
        rng = random.Random(seed)
        ordinals = rng.sample(range(n_jobs), wanted)
        kinds = ["kill"] * kills + ["hang"] * hangs + ["truncate"] * truncates
        plan = tuple(
            (ordinal, Fault(kind, hang_seconds if kind == "hang" else 0.0))
            for ordinal, kind in sorted(zip(ordinals, kinds))
        )
        return cls(seed=seed, by_dispatch=plan)

    def fault_for(self, ordinal: int) -> Fault | None:
        for at, fault in self.by_dispatch:
            if at == ordinal:
                return fault
        return None

    def counts(self) -> dict[str, int]:
        out = {kind: 0 for kind in FAULT_KINDS}
        for _, fault in self.by_dispatch:
            out[fault.kind] += 1
        return out

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [
                {"dispatch": at, **fault.to_json()}
                for at, fault in self.by_dispatch
            ],
        }


def truncate_entry(store, key: str, blob: bytes) -> None:
    """Install a torn write for ``key``: the first half of ``blob``.

    Emulates a writer dying mid-``write`` on a filesystem that exposed
    the partial data (or a torn page after power loss).  The file is
    *installed* — readers will open it — but fails to decode, which is
    exactly the corruption the store's corrupt-entry-is-a-miss contract
    must absorb.
    """
    shard = store._shard(key, create=True) if hasattr(store, "_shard") else store
    shard._file(key).write_bytes(blob[: max(1, len(blob) // 2)])
