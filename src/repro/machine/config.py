"""Machine configurations (paper Table 2) for all evaluated architectures.

Four memory architectures share the same clustered VLIW core:

* ``UNIFIED``   — unified L1, no L0 buffers (the normalisation baseline);
* ``L0``        — unified L1 plus per-cluster flexible compiler-managed
  L0 buffers (the paper's proposal);
* ``MULTIVLIW`` — snoop-coherent distributed L1 (Sánchez & González,
  MICRO-33), the complex comparison point in Figure 7;
* ``INTERLEAVED`` — word-interleaved distributed L1 with attraction
  buffers (Gibert et al., MICRO-35), the simple comparison point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..isa.operations import Opcode


class ArchKind(enum.Enum):
    UNIFIED = "unified"
    L0 = "l0"
    MULTIVLIW = "multivliw"
    INTERLEAVED = "interleaved"


def _default_latencies() -> dict[Opcode, int]:
    return {op: op.default_latency for op in Opcode}


@dataclass(frozen=True)
class MachineConfig:
    """All architectural parameters needed by the scheduler and simulator.

    Defaults reproduce the paper's Table 2.  ``l0_entries is None`` means
    an unbounded buffer (the rightmost bars of Figure 5).
    """

    arch: ArchKind = ArchKind.L0

    # Core
    n_clusters: int = 4
    int_units_per_cluster: int = 1
    mem_units_per_cluster: int = 1
    fp_units_per_cluster: int = 1
    max_live_per_cluster: int = 64  # register pressure cap per cluster

    # L0 buffers (only meaningful for ArchKind.L0)
    l0_entries: int | None = 8
    l0_latency: int = 1
    l0_ports: int = 2

    # Unified L1 (also the backing store of the distributed designs)
    l1_latency: int = 6  # 2 request + 2 access + 2 response
    l1_size: int = 8 * 1024
    l1_assoc: int = 2
    l1_block: int = 32
    interleave_penalty: int = 1  # extra cycle for shift/interleave logic

    # L2 — always hits
    l2_latency: int = 10

    # Inter-cluster register buses
    n_buses: int = 4
    bus_latency: int = 2

    # Distributed-L1 parameters (MULTIVLIW / INTERLEAVED).  Remote module
    # access is cheaper than a round trip to the far-away unified L1
    # (modules sit inside the cluster ring), which is what makes the
    # distributed designs competitive in Figure 7.
    distributed_local_latency: int = 2
    distributed_remote_latency: int = 4
    coherence_penalty: int = 1  # extra cycles for an MSI ownership change
    attraction_entries: int = 8
    attraction_latency: int = 1

    # Operation latencies (producer to consumer)
    op_latencies: dict[Opcode, int] = field(default_factory=_default_latencies)

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError("need at least one cluster")
        if self.l1_block % self.n_clusters:
            raise ValueError("L1 block size must divide evenly into subblocks")
        if self.l0_entries is not None and self.l0_entries < 1:
            raise ValueError("l0_entries must be positive or None (unbounded)")

    @property
    def subblock_bytes(self) -> int:
        """L0 line size: an L1 block split across the clusters (section 3)."""
        return self.l1_block // self.n_clusters

    def latency_of(self, opcode: Opcode) -> int:
        return self.op_latencies[opcode]

    @property
    def load_l0_latency(self) -> int:
        return self.l0_latency

    @property
    def load_l1_latency(self) -> int:
        return self.l1_latency

    def fu_count(self, fu_class: "FUClass") -> int:  # noqa: F821 - doc only
        from ..isa.operations import FUClass

        per_cluster = {
            FUClass.INT: self.int_units_per_cluster,
            FUClass.MEM: self.mem_units_per_cluster,
            FUClass.FP: self.fp_units_per_cluster,
        }
        return per_cluster.get(fu_class, 0)

    def with_l0_entries(self, entries: int | None) -> "MachineConfig":
        return replace(self, l0_entries=entries)


def unified_config(**overrides: object) -> MachineConfig:
    """The baseline: unified L1, no L0 buffers."""
    return MachineConfig(  # type: ignore[arg-type]
        arch=ArchKind.UNIFIED, l0_entries=None, **overrides
    )


def l0_config(entries: int | None = 8, **overrides: object) -> MachineConfig:
    """The proposed architecture with ``entries``-entry L0 buffers."""
    return MachineConfig(  # type: ignore[arg-type]
        arch=ArchKind.L0, l0_entries=entries, **overrides
    )


def multivliw_config(**overrides: object) -> MachineConfig:
    """Distributed snoop-coherent L1 (MultiVLIW)."""
    return MachineConfig(  # type: ignore[arg-type]
        arch=ArchKind.MULTIVLIW, l0_entries=None, **overrides
    )


def interleaved_config(**overrides: object) -> MachineConfig:
    """Word-interleaved distributed L1 with attraction buffers."""
    return MachineConfig(  # type: ignore[arg-type]
        arch=ArchKind.INTERLEAVED, l0_entries=None, **overrides
    )
