"""Issue-resource bookkeeping shared by the scheduler's reservation table.

Resources come in two scopes: per-cluster functional-unit slots (INT,
MEM, FP — one op may issue per unit per cycle, units are fully
pipelined) and the four machine-wide register-to-register buses used by
communication operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.operations import FUClass
from .config import MachineConfig


@dataclass(frozen=True)
class ClusterResource:
    """A functional-unit slot class within one cluster."""

    fu_class: FUClass
    cluster: int

    def __repr__(self) -> str:
        return f"{self.fu_class.value}@c{self.cluster}"


@dataclass(frozen=True)
class BusResource:
    """The shared pool of inter-cluster buses (capacity = n_buses)."""

    def __repr__(self) -> str:
        return "bus"


BUS = BusResource()


class ResourceModel:
    """Capacity lookup for every resource the reservation table tracks."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self._capacity: dict[object, int] = {BUS: config.n_buses}
        per_cluster = {
            FUClass.INT: config.int_units_per_cluster,
            FUClass.MEM: config.mem_units_per_cluster,
            FUClass.FP: config.fp_units_per_cluster,
        }
        for cluster in range(config.n_clusters):
            for fu_class, units in per_cluster.items():
                self._capacity[ClusterResource(fu_class, cluster)] = units

    @property
    def config(self) -> MachineConfig:
        return self._config

    def capacity(self, resource: object) -> int:
        return self._capacity.get(resource, 0)

    def fu_resource(self, fu_class: FUClass, cluster: int) -> ClusterResource:
        if fu_class not in (FUClass.INT, FUClass.MEM, FUClass.FP):
            raise ValueError(f"{fu_class} is not a per-cluster FU class")
        if not 0 <= cluster < self._config.n_clusters:
            raise ValueError(f"cluster {cluster} out of range")
        return ClusterResource(fu_class, cluster)

    def total_fu_slots(self, fu_class: FUClass) -> int:
        """Machine-wide issue slots per cycle for one FU class."""
        return self._config.fu_count(fu_class) * self._config.n_clusters

    def all_resources(self) -> list[object]:
        return list(self._capacity)
