"""Machine model: Table-2 configurations and issue resources."""

from .config import (
    ArchKind,
    MachineConfig,
    interleaved_config,
    l0_config,
    multivliw_config,
    unified_config,
)
from .resources import BUS, BusResource, ClusterResource, ResourceModel

__all__ = [
    "ArchKind",
    "BUS",
    "BusResource",
    "ClusterResource",
    "MachineConfig",
    "ResourceModel",
    "interleaved_config",
    "l0_config",
    "multivliw_config",
    "unified_config",
]
