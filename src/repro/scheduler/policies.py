"""Memory policies: how each architecture schedules its memory instructions.

The engine consults a policy for (a) the latency each load is *planned*
to be scheduled with (used in MII, SMS ordering and window computation),
(b) the ordered (cluster, latency) options to try for a memory
instruction, and (c) finalisation — attaching hints and inserting
explicit prefetches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from ..isa.hints import BYPASS_HINTS
from ..isa.instruction import Instruction
from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..machine.config import MachineConfig
from .mrt import ModuloReservationTable
from .schedule import ModuloSchedule, PlacedOp

if TYPE_CHECKING:  # pragma: no cover
    from .engine import ClusterScheduler


class MemoryPolicy(Protocol):
    """Interface the scheduling engine expects."""

    name: str

    def planned_latency(self, uid: int) -> int:
        """Current planned producer latency for load ``uid``."""
        ...

    def begin_attempt(self, ii: int, engine: "ClusterScheduler") -> None:
        ...

    def options(
        self, instr: Instruction, clusters: list[int]
    ) -> list[tuple[int, int]]:
        """Ordered (cluster, latency) candidates for a memory instruction."""
        ...

    def committed(
        self, instr: Instruction, op: PlacedOp, engine: "ClusterScheduler"
    ) -> bool:
        """Record a placement; returning False vetoes it (engine rolls back)."""
        ...

    def ejected(self, op: PlacedOp, engine: "ClusterScheduler") -> None:
        """A previously committed placement was removed (ejection)."""
        ...

    def finalize(
        self,
        schedule: ModuloSchedule,
        ddg: DDG,
        mrt: ModuloReservationTable,
        engine: "ClusterScheduler",
    ) -> None:
        ...


class UnifiedPolicy:
    """Baseline: every load is an L1 access; memory ops carry no hints."""

    name = "unified"
    #: Options are a pure function of the instruction (no cross-placement
    #: state), so the exact scheduler's refutations are complete.
    SEARCH_EXACT = True

    def __init__(self, loop: Loop, config: MachineConfig) -> None:
        self.loop = loop
        self.config = config

    def planned_latency(self, uid: int) -> int:
        return self.config.l1_latency

    def begin_attempt(self, ii: int, engine: "ClusterScheduler") -> None:
        return None

    def options(self, instr: Instruction, clusters: list[int]) -> list[tuple[int, int]]:
        latency = (
            self.config.l1_latency
            if instr.is_load
            else self.config.latency_of(instr.opcode)
        )
        return [(c, latency) for c in clusters]

    def committed(self, instr: Instruction, op: PlacedOp, engine) -> bool:
        return True

    def ejected(self, op: PlacedOp, engine) -> None:
        return None

    def finalize(self, schedule, ddg, mrt, engine) -> None:
        for op in schedule.placed.values():
            if op.instr.is_memory:
                op.hints = BYPASS_HINTS


class MultiVLIWPolicy:
    """Distributed coherent L1: loads scheduled at the local-hit latency.

    The hardware moves/replicates blocks to the requesting cluster (MSI
    snooping), so the scheduler optimistically assumes local hits and the
    simulator charges remote/coherence penalties as stalls — matching
    how the MultiVLIW paper's scheduler treats the common case.
    """

    name = "multivliw"
    SEARCH_EXACT = True  # stateless options, like UnifiedPolicy

    def __init__(self, loop: Loop, config: MachineConfig) -> None:
        self.loop = loop
        self.config = config

    def planned_latency(self, uid: int) -> int:
        return self.config.distributed_local_latency

    def begin_attempt(self, ii: int, engine: "ClusterScheduler") -> None:
        return None

    def options(self, instr: Instruction, clusters: list[int]) -> list[tuple[int, int]]:
        latency = (
            self.config.distributed_local_latency
            if instr.is_load
            else self.config.latency_of(instr.opcode)
        )
        return [(c, latency) for c in clusters]

    def committed(self, instr: Instruction, op: PlacedOp, engine) -> bool:
        return True

    def ejected(self, op: PlacedOp, engine) -> None:
        return None

    def finalize(self, schedule, ddg, mrt, engine) -> None:
        for op in schedule.placed.values():
            if op.instr.is_memory:
                op.hints = BYPASS_HINTS


class InterleavedPolicy:
    """Word-interleaved distributed L1 (Gibert et al., MICRO-35).

    Address word ``w`` lives in cluster ``w mod N``; a memory op is
    *local-stable* when every iteration's access lands in the same home
    cluster.  Both heuristics steer memory ops toward their dominant
    home cluster; they differ in the latency assumed for unstable ops:

    * ``Interleaved-1`` schedules every load with the local latency
      (short schedules, stalls on remote accesses);
    * ``Interleaved-2`` schedules home-unstable loads with the remote
      latency (longer schedules, fewer stalls) — remote accesses then
      rarely surprise the interlock.
    """

    name = "interleaved"
    #: Home classification is precomputed from the loop alone; options
    #: never depend on what has been placed, so searches are complete.
    SEARCH_EXACT = True

    #: Iterations sampled when classifying an op's home-cluster stability.
    HOME_SAMPLE = 16

    def __init__(
        self, loop: Loop, config: MachineConfig, heuristic: int = 1
    ) -> None:
        if heuristic not in (1, 2):
            raise ValueError("heuristic must be 1 or 2")
        self.loop = loop
        self.config = config
        self.heuristic = heuristic
        self.name = f"interleaved{heuristic}"
        self._home: dict[int, int | None] = {}
        for instr in loop.body:
            if instr.is_memory and instr.pattern is not None:
                self._home[instr.uid] = self._stable_home(instr)

    def _stable_home(self, instr: Instruction) -> int | None:
        """Home cluster if constant across iterations, else None.

        Homes are computed from element offsets (arrays are block-aligned
        by the layout, so offsets are congruent with final addresses).
        """
        pattern = instr.pattern
        assert pattern is not None
        word = 4  # word-interleaving granularity in bytes
        n = self.config.n_clusters
        homes = set()
        for i in range(self.HOME_SAMPLE):
            byte = pattern.element_index(i) * pattern.elem_size
            homes.add((byte // word) % n)
            if len(homes) > 1:
                return None
        return homes.pop()

    def planned_latency(self, uid: int) -> int:
        if self.heuristic == 1:
            return self.config.distributed_local_latency
        if self._home.get(uid) is not None:
            return self.config.distributed_local_latency
        return self.config.distributed_remote_latency

    def begin_attempt(self, ii: int, engine: "ClusterScheduler") -> None:
        return None

    def options(self, instr: Instruction, clusters: list[int]) -> list[tuple[int, int]]:
        if not instr.is_load and not instr.is_store:
            latency = self.config.latency_of(instr.opcode)
            return [(c, latency) for c in clusters]
        latency = (
            self.planned_latency(instr.uid)
            if instr.is_load
            else self.config.latency_of(instr.opcode)
        )
        home = self._home.get(instr.uid)
        if home is None:
            return [(c, latency) for c in clusters]
        ordered = [home] + [c for c in clusters if c != home]
        return [(c, latency) for c in ordered]

    def committed(self, instr: Instruction, op: PlacedOp, engine) -> bool:
        return True

    def ejected(self, op: PlacedOp, engine) -> None:
        return None

    def finalize(self, schedule, ddg, mrt, engine) -> None:
        for op in schedule.placed.values():
            if op.instr.is_memory:
                op.hints = BYPASS_HINTS
