"""Result objects produced by the modulo scheduler.

A :class:`ModuloSchedule` records, for every instruction, the cluster it
was assigned to, its absolute start time within the flat schedule (stage
* II + row), the latency it was scheduled with (loads: L0 or L1), the
hint bundle attached to it, and any communication operations the
cluster assignment forced.  ``validate()`` re-checks every dependence
and resource constraint, which the property-based tests lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.diagnostics import Diagnostic
from ..isa.hints import BYPASS_HINTS, HintBundle
from ..isa.instruction import Instruction
from ..isa.operations import FUClass, Opcode
from ..ir.ddg import DDG
from ..machine.config import MachineConfig


@dataclass
class PlacedOp:
    """One scheduled instruction."""

    instr: Instruction
    cluster: int
    start: int  # absolute schedule time (stage * II + row)
    latency: int  # producer-to-consumer latency used by the scheduler
    hints: HintBundle = BYPASS_HINTS
    #: For PSR store replicas: True only on the instance that performs
    #: the actual memory update (others just invalidate their local L0).
    is_primary: bool = True
    #: uid of the original store when this op is a PSR replica.
    replica_of: int | None = None

    @property
    def row(self) -> int:
        """Kernel row (start modulo II) — filled in via ModuloSchedule."""
        raise AttributeError("use ModuloSchedule.row_of(); PlacedOp has no II")


@dataclass
class PlacedComm:
    """An inter-cluster register copy occupying one bus slot."""

    producer_uid: int
    dst_cluster: int
    src_cluster: int
    start: int  # absolute cycle the bus transfer begins
    latency: int  # bus latency (value available at start + latency)


@dataclass
class PlacedPrefetch:
    """An explicit software prefetch inserted by step 5."""

    instr: Instruction  # a PREFETCH instruction (pattern = target stream)
    cluster: int
    start: int
    #: iterations of lookahead: instance i prefetches the address of
    #: iteration i + distance of the covered load.
    distance: int
    covers_uid: int  # the load this prefetch feeds


@dataclass
class ModuloSchedule:
    """A complete modulo schedule for one loop on one machine config."""

    loop_name: str
    ii: int
    config: MachineConfig
    placed: dict[int, PlacedOp]
    comms: list[PlacedComm] = field(default_factory=list)
    prefetches: list[PlacedPrefetch] = field(default_factory=list)
    replicas: list[PlacedOp] = field(default_factory=list)
    #: Scheduler-backend provenance: which backend produced this schedule
    #: and, for the exact backend, its search outcome (``mii``,
    #: ``ii_sms``, ``improved``, ``proved_optimal``, ``fallback``,
    #: ``nodes_explored``).  Purely informational — simulation and
    #: validation never read it.
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ValueError("II must be >= 1")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def stage_count(self) -> int:
        """Number of overlapped iterations (SC)."""
        span = max(op.start for op in self.placed.values()) + 1
        return max(1, -(-span // self.ii))

    @property
    def span(self) -> int:
        return max(op.start for op in self.placed.values()) + 1

    def row_of(self, uid: int) -> int:
        return self.placed[uid].start % self.ii

    def stage_of(self, uid: int) -> int:
        return self.placed[uid].start // self.ii

    def issue_cycle(self, uid: int, iteration: int) -> int:
        """Absolute issue cycle of instruction ``uid`` in ``iteration``
        assuming no stalls."""
        return self.placed[uid].start + iteration * self.ii

    # ------------------------------------------------------------------
    # Trace metadata (the simulators' static event order)
    # ------------------------------------------------------------------

    def kernel_items(self) -> list[tuple[int, str, object]]:
        """The kernel's schedulable units in canonical simulation order.

        Returns ``(start, kind, payload)`` triples — ``kind`` is
        ``"op"`` / ``"replica"`` / ``"prefetch"``, payload the placed
        record — stably sorted by start time over (placed ops in
        placement order, replicas, prefetches).  Both the reference
        interpreter's heap merge and the precompiled trace executor
        derive their event order from this list, so the two paths
        process instruction instances in provably the same sequence:
        iteration ``i`` of item ``k`` fires at ``start_k + i*II``, ties
        broken by position in this list.
        """
        items: list[tuple[int, str, object]] = []
        for op in self.placed.values():
            items.append((op.start, "op", op))
        for op in self.replicas:
            items.append((op.start, "replica", op))
        for prefetch in self.prefetches:
            items.append((prefetch.start, "prefetch", prefetch))
        items.sort(key=lambda item: item[0])
        return items

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def ops_by_row(self) -> dict[int, list[PlacedOp]]:
        rows: dict[int, list[PlacedOp]] = {r: [] for r in range(self.ii)}
        for op in self.all_placed_ops():
            rows[op.start % self.ii].append(op)
        return rows

    def all_placed_ops(self) -> list[PlacedOp]:
        return list(self.placed.values()) + list(self.replicas)

    def memory_ops(self) -> list[PlacedOp]:
        return [op for op in self.all_placed_ops() if op.instr.is_memory]

    def l0_loads(self) -> list[PlacedOp]:
        return [
            op
            for op in self.placed.values()
            if op.instr.is_load and op.hints.uses_l0
        ]

    def mem_busy(self, cluster: int, row: int) -> int:
        """Memory-unit occupancy of (cluster, kernel row)."""
        count = 0
        for op in self.all_placed_ops():
            if (
                op.instr.fu_class is FUClass.MEM
                and op.cluster == cluster
                and op.start % self.ii == row
            ):
                count += 1
        for pf in self.prefetches:
            if pf.cluster == cluster and pf.start % self.ii == row:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Validation (used heavily by tests)
    # ------------------------------------------------------------------

    def validate(self, ddg: DDG) -> list[Diagnostic]:
        """Return the constraint violations found (empty = valid).

        Each violation is a typed :class:`~repro.analysis.Diagnostic`
        with a stable code; ``str(d)`` still yields the legacy message
        text, so truthiness/``== []`` consumers are unaffected.
        """
        problems: list[Diagnostic] = []
        problems.extend(self._validate_resources())
        problems.extend(self._validate_dependences(ddg))
        problems.extend(self._validate_comms(ddg))
        return [d.with_provenance(loop=self.loop_name) for d in problems]

    def _validate_resources(self) -> list[Diagnostic]:
        problems: list[Diagnostic] = []
        fu_use: dict[tuple[FUClass, int, int], int] = {}
        for op in self.all_placed_ops():
            fu = op.instr.fu_class
            if fu is FUClass.NONE:
                continue
            key = (fu, op.cluster, op.start % self.ii)
            fu_use[key] = fu_use.get(key, 0) + 1
        for pf in self.prefetches:
            key = (FUClass.MEM, pf.cluster, pf.start % self.ii)
            fu_use[key] = fu_use.get(key, 0) + 1
        caps = {
            FUClass.INT: self.config.int_units_per_cluster,
            FUClass.MEM: self.config.mem_units_per_cluster,
            FUClass.FP: self.config.fp_units_per_cluster,
        }
        for (fu, cluster, row), used in fu_use.items():
            if used > caps[fu]:
                problems.append(
                    Diagnostic.new(
                        "A006",
                        f"{fu.value} unit oversubscribed in cluster {cluster} "
                        f"row {row}: {used}",
                    )
                )
        bus_use: dict[int, int] = {}
        for comm in self.comms:
            row = comm.start % self.ii
            bus_use[row] = bus_use.get(row, 0) + 1
        for row, used in bus_use.items():
            if used > self.config.n_buses:
                problems.append(
                    Diagnostic.new(
                        "A007", f"buses oversubscribed in row {row}: {used}"
                    )
                )
        return problems

    def _comm_arrival(self, producer_uid: int, dst_cluster: int) -> int | None:
        """Cycle at which the producer's value lands in dst_cluster, if ever."""
        best: int | None = None
        for comm in self.comms:
            if comm.producer_uid == producer_uid and comm.dst_cluster == dst_cluster:
                arrival = comm.start + comm.latency
                if best is None or arrival < best:
                    best = arrival
        return best

    def _validate_dependences(self, ddg: DDG) -> list[Diagnostic]:
        problems: list[Diagnostic] = []
        lat_of = {uid: op.latency for uid, op in self.placed.items()}
        for edge in ddg.edges:
            src = self.placed.get(edge.src)
            dst = self.placed.get(edge.dst)
            if src is None or dst is None:
                problems.append(
                    Diagnostic.new(
                        "A001", f"edge {edge} references unplaced instruction"
                    )
                )
                continue
            latency = edge.latency(lat_of)
            ready = src.start + latency
            due = dst.start + self.ii * edge.distance
            if edge.kind.value == "reg" and src.cluster != dst.cluster:
                arrival = self._comm_arrival(edge.src, dst.cluster)
                if arrival is None:
                    problems.append(
                        Diagnostic.new(
                            "A003",
                            f"edge {edge}: cross-cluster value has no comm "
                            f"to c{dst.cluster}",
                        )
                    )
                    continue
                ready = arrival
            if ready > due:
                problems.append(
                    Diagnostic.new(
                        "A002",
                        f"edge {edge}: value ready at {ready} but consumer "
                        f"issues at {due}",
                    )
                )
        return problems

    def _validate_comms(self, ddg: DDG) -> list[Diagnostic]:
        problems: list[Diagnostic] = []
        lat_of = {uid: op.latency for uid, op in self.placed.items()}
        for comm in self.comms:
            producer = self.placed.get(comm.producer_uid)
            if producer is None:
                problems.append(
                    Diagnostic.new("A001", f"comm {comm} has unplaced producer")
                )
                continue
            produce_time = producer.start + lat_of.get(comm.producer_uid, 0)
            if producer.instr.is_load:
                produce_time = producer.start + producer.latency
            elif producer.instr.dest is not None:
                produce_time = producer.start + self.config.latency_of(
                    producer.instr.opcode
                )
            if comm.start < produce_time:
                problems.append(
                    Diagnostic.new(
                        "A004",
                        f"comm {comm} starts before its value is produced "
                        f"({produce_time})",
                    )
                )
            if producer.cluster != comm.src_cluster:
                problems.append(
                    Diagnostic.new("A005", f"comm {comm} src cluster mismatch")
                )
        return problems

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------

    def format_kernel(self) -> str:
        """Human-readable kernel table (one line per row, column per cluster)."""
        lines = [
            f"loop {self.loop_name!r}: II={self.ii} SC={self.stage_count} "
            f"(span {self.span} cycles)"
        ]
        rows = self.ops_by_row()
        for row in range(self.ii):
            cells: list[str] = []
            for cluster in range(self.config.n_clusters):
                here = [op for op in rows[row] if op.cluster == cluster]
                text = ",".join(
                    (op.instr.tag or op.instr.opcode.mnemonic)
                    + (f"@{op.latency}" if op.instr.is_load else "")
                    for op in here
                )
                pf_here = [
                    pf
                    for pf in self.prefetches
                    if pf.cluster == cluster and pf.start % self.ii == row
                ]
                if pf_here:
                    text = ",".join(filter(None, [text, "pf" * len(pf_here)]))
                cells.append(text or ".")
            comm_here = [c for c in self.comms if c.start % self.ii == row]
            bus = f" | bus: {len(comm_here)}" if comm_here else ""
            lines.append(
                f"  row {row}: " + " || ".join(f"{c:24s}" for c in cells) + bus
            )
        return "\n".join(lines)


class SchedulingError(RuntimeError):
    """Raised when no valid schedule is found within the II budget."""
