"""Exact modulo scheduling: CP/branch-and-bound over the Roorda variables.

The heuristic engine (:class:`~repro.scheduler.engine.ClusterScheduler`)
iterates the II upward from MII and *hopes* SMS ordering plus ejection
finds a placement; nothing certifies that the II it settles on is
minimal.  This module adds the missing oracle: a complete backtracking
search over the decision variables of Roorda-style optimal software
pipelining — per instruction a kernel row, stage and cluster (folded
into one absolute start time) plus the bus placement of every
cross-cluster register transfer.  The formulation is *parametric in the
machine description* (Witterauf et al.'s symbolic-compilation argument):
cluster count, FU mix, latencies, bus count and the memory policy's
(cluster, latency) options all enter through the same
``MachineConfig``/``MemoryPolicy`` objects the heuristic uses, so one
searcher covers every cluster/L0 variant without per-config models.

Search strategy
---------------

* **SMS first.**  The heuristic schedule is computed up front; it is
  simultaneously the fallback result, the upper bound that terminates
  the deepening loop, and the span hint that sizes the stage horizon.
  ``MII <= II(exact) <= II(SMS)`` therefore holds *by construction*.
* **II deepening.**  For each candidate ``ii`` in
  ``[MII, II(SMS) - 1]`` (ascending), run a depth-first search; the
  first ``ii`` admitting a schedule is optimal provided every smaller
  ``ii`` was fully refuted (no budget exhaustion).
* **Anchored windows.**  Nodes are placed in SMS priority order (every
  node after the first of its weakly-connected component has a placed
  DDG neighbour).  A component's first node is anchored to ``ii``
  consecutive start cycles — any schedule can be shifted by a multiple
  of ``ii`` without changing rows, resources or dependences, so this
  loses no generality.  Every other node's window comes from its placed
  neighbours, clipped to ``anchor ± horizon``.
* **Budget / fallback.**  The search charges one unit per placement
  trial; when ``node_budget`` (or the optional wall-clock
  ``time_budget_s``) is exhausted the searcher abandons the deepening
  loop and returns the SMS schedule, marked ``fallback`` in
  ``schedule.meta``.

Exactness caveats (all recorded in ``meta`` where they matter):

* Optimality is relative to the stage horizon (``max_stages``), exactly
  as in Roorda's fixed-stage SMT formulation.  The default horizon
  covers the SMS span plus two extra stages.
* Bus rows for a needed transfer are taken greedily (earliest free
  slot), so completeness assumes buses are not the binding resource —
  on the paper's 4-bus machine they never are for these kernels.
* Stateful memory policies (the L0 candidate/coherence protocol) are
  driven through the same ``begin_attempt``/``options``/``committed``/
  ``ejected`` protocol as the heuristic engine, so the search is exact
  over the options the policy offers at each step, not over every
  conceivable candidate assignment.  Partial-store-replication
  placements cannot be backtracked through the policy protocol, so
  ``allow_psr`` compiles fall straight back to SMS.

The result is a plain :class:`ModuloSchedule` whose ``meta`` dict
records ``scheduler``, ``mii``, ``ii_sms``, ``improved``,
``proved_optimal``, ``fallback`` and ``nodes_explored`` — the eval
``schedcompare`` mode and the differential oracle tests read these.
"""

from __future__ import annotations

import time

from ..isa.operations import FUClass
from ..ir.ddg import DDG, DepKind
from ..ir.stride import is_candidate
from ..machine.config import ArchKind, MachineConfig
from .engine import ClusterScheduler
from .mii import compute_mii
from .mrt import ModuloReservationTable
from .policies import MemoryPolicy
from .schedule import ModuloSchedule, PlacedComm, PlacedOp
from .sms import sms_order

#: Default number of placement trials before the search gives up and
#: falls back to the SMS schedule.  One trial ~ a few microseconds, so
#: the default bounds a single compile to well under a second of search.
DEFAULT_NODE_BUDGET = 60_000

#: How often (in placement trials) the optional wall-clock budget is
#: polled; node budgets alone keep the search deterministic.
_TIME_POLL = 1024


class BudgetExhausted(Exception):
    """Raised internally when the node/time budget runs out mid-search."""


class ExactScheduler(ClusterScheduler):
    """Branch-and-bound exact scheduler; falls back to SMS on budget.

    Subclasses the heuristic engine purely for its machinery — resource
    model, edge-latency resolution, bus-slot planning and final
    normalisation; :meth:`schedule` is replaced wholesale by the
    deepening search.
    """

    def __init__(
        self,
        ddg: DDG,
        config: MachineConfig,
        policy: MemoryPolicy,
        *,
        node_budget: int = DEFAULT_NODE_BUDGET,
        max_stages: int | None = None,
        time_budget_s: float | None = None,
    ) -> None:
        super().__init__(ddg, config, policy)
        self.node_budget = node_budget
        self.max_stages = max_stages
        self.time_budget_s = time_budget_s
        self.nodes_explored = 0
        self._deadline: float | None = None
        # Lower-bound load latencies for MII/ASAP/ordering purposes: the
        # smallest latency any (cluster, latency) option could assign.
        # Computed once, while the policy is still pristine.
        self._floor: dict[int, int] = {
            instr.uid: self._latency_floor(instr.uid)
            for instr in self.loop.body
            if instr.is_load
        }
        # Weakly-connected DDG components (anchoring is per component).
        self._comp = self._components()

    # ------------------------------------------------------------------
    # Top level: deepening loop around the SMS baseline
    # ------------------------------------------------------------------

    def schedule(self) -> ModuloSchedule:
        mii = compute_mii(self.loop, self.ddg, self.config, self.policy.planned_latency)
        baseline = ClusterScheduler.schedule(self)
        # A stateful policy (the L0 protocol) makes option enumeration
        # path-dependent: a refuted II may still be feasible under option
        # sequences the protocol no longer offers, so optimality proofs
        # are only claimed when the policy declares its options pure.
        search_exact = bool(getattr(self.policy, "SEARCH_EXACT", False))
        meta = {
            "scheduler": "exact",
            "mii": mii,
            "ii_sms": baseline.ii,
            "improved": False,
            "proved_optimal": False,
            "fallback": False,
            "search_exact": search_exact,
            "nodes_explored": 0,
        }
        if getattr(self.policy, "allow_psr", False):
            # PSR replica placement mutates policy/MRT state that the
            # committed/ejected protocol cannot roll back; searching
            # through it would corrupt the reservation table.
            meta["fallback"] = True
            meta["reason"] = "psr-unsupported"
            baseline.meta.update(meta)
            return baseline
        if baseline.ii <= mii:
            meta["proved_optimal"] = True
            baseline.meta.update(meta)
            return baseline

        self.nodes_explored = 0
        if self.time_budget_s is not None:
            # Deliberate: the wall-clock budget is opt-in, and such
            # artifacts bypass the compile cache entirely.
            self._deadline = time.monotonic() + self.time_budget_s  # analysis: allow(A102)
        exhausted = False
        found: ModuloSchedule | None = None
        for ii in range(mii, baseline.ii):
            try:
                found = self._search(ii, span_hint=baseline.span)
            except BudgetExhausted:
                exhausted = True
                break
            if found is not None:
                if found.validate(self.ddg):
                    # Defensive: a schedule that fails re-validation is a
                    # searcher bug; never hand it to the simulator.
                    found = None
                    exhausted = True
                break
        meta["nodes_explored"] = self.nodes_explored
        if found is not None:
            meta["improved"] = True
            # Optimal iff every smaller II was *completely* refuted.
            meta["proved_optimal"] = search_exact or found.ii <= mii
            found.meta.update(meta)
            return found
        meta["fallback"] = exhausted
        meta["proved_optimal"] = not exhausted and search_exact
        baseline.meta.update(meta)
        return baseline

    # ------------------------------------------------------------------
    # One complete search at a fixed II
    # ------------------------------------------------------------------

    def _search(self, ii: int, span_hint: int) -> ModuloSchedule | None:
        asap = self.ddg.earliest_times(ii, self._floor)
        if asap is None:
            return None  # ii below RecMII even under floor latencies
        self.mrt = ModuloReservationTable(ii, self.resources)
        self.current_ii = ii
        self.placed = {}
        self.comms = []
        self._comm_index = {}
        self._asap = asap
        self.policy.begin_attempt(ii, self)

        stages = self.max_stages
        if stages is None:
            span = max(span_hint, max(asap.values()) + 1)
            stages = -(-span // ii) + 2
        self._horizon = ii * max(1, stages)
        self._anchor: dict[int, int] = {}

        # FU-demand pruning state: remaining ops per class vs free slots.
        self._fu_demand = {FUClass.INT: 0, FUClass.MEM: 0, FUClass.FP: 0}
        for instr in self.loop.body:
            if instr.fu_class in self._fu_demand:
                self._fu_demand[instr.fu_class] += 1
        clusters = self.config.n_clusters
        self._fu_capacity = {
            FUClass.INT: ii * self.config.int_units_per_cluster * clusters,
            FUClass.MEM: ii * self.config.mem_units_per_cluster * clusters,
            FUClass.FP: ii * self.config.fp_units_per_cluster * clusters,
        }
        self._fu_placed = {cls: 0 for cls in self._fu_demand}
        if any(
            self._fu_demand[cls] > self._fu_capacity[cls] for cls in self._fu_demand
        ):
            return None

        order = [uid for uid, _ in sms_order(self.ddg, ii, self._floor)]
        if not self._dfs(order, 0, ii):
            return None
        schedule = ModuloSchedule(
            loop_name=self.loop.name,
            ii=ii,
            config=self.config,
            placed=dict(self.placed),
            comms=list(self.comms),
        )
        self.policy.finalize(schedule, self.ddg, self.mrt, self)
        self._normalize(schedule)
        return schedule

    def _dfs(self, order: list[int], depth: int, ii: int) -> bool:
        if depth == len(order):
            return True
        uid = order[depth]
        instr = self.ddg.instruction(uid)
        clusters = list(range(self.config.n_clusters))
        if instr.is_memory:
            options = self.policy.options(instr, clusters)
        else:
            latency = self.config.latency_of(instr.opcode)
            options = [(c, latency) for c in clusters]
        comp = self._comp[uid]
        tried: set[tuple[int, int]] = set()
        for cluster, latency in options:
            if (cluster, latency) in tried:
                continue
            tried.add((cluster, latency))
            if not self._self_edges_feasible(uid, latency, ii):
                continue
            bounds = self._bounds(instr, cluster, latency, ii, comp)
            if bounds is None:
                continue
            lo, hi = bounds
            for start in range(lo, hi + 1):
                self._charge()
                applied = self._apply(instr, cluster, latency, start, ii)
                if applied is None:
                    continue
                op, plan, replaced = applied
                anchored = comp not in self._anchor
                if anchored:
                    self._anchor[comp] = start
                committed = True
                if instr.is_memory:
                    committed = self.policy.committed(instr, op, self)
                if committed:
                    cls = instr.fu_class
                    if cls in self._fu_placed:
                        self._fu_placed[cls] += 1
                        self._fu_demand[cls] -= 1
                    if self._fu_feasible() and self._dfs(order, depth + 1, ii):
                        return True
                    if cls in self._fu_placed:
                        self._fu_placed[cls] -= 1
                        self._fu_demand[cls] += 1
                    if instr.is_memory:
                        self.policy.ejected(op, self)
                if anchored:
                    del self._anchor[comp]
                self._revert(op, plan, replaced)
        return False

    # ------------------------------------------------------------------
    # Placement bookkeeping (fully reversible, unlike the engine's)
    # ------------------------------------------------------------------

    def _apply(
        self, instr, cluster: int, latency: int, start: int, ii: int
    ) -> tuple[PlacedOp, list[PlacedComm], list] | None:
        assert self.mrt is not None
        if instr.fu_class is not FUClass.NONE and not self.mrt.fu_can_place(
            start, instr.fu_class, cluster
        ):
            return None
        plan = self._plan_comms(instr, cluster, start, latency, ii)
        if plan is None:
            return None
        if instr.fu_class is not FUClass.NONE:
            self.mrt.fu_place(start, instr.fu_class, cluster)
        replaced: list[tuple[tuple[int, int], PlacedComm | None]] = []
        for comm in plan:
            self.mrt.bus_place(comm.start)
            self.comms.append(comm)
            key = (comm.producer_uid, comm.dst_cluster)
            replaced.append((key, self._comm_index.get(key)))
            self._comm_index[key] = comm
        op = PlacedOp(instr=instr, cluster=cluster, start=start, latency=latency)
        self.placed[instr.uid] = op
        return op, plan, replaced

    def _revert(self, op: PlacedOp, plan: list[PlacedComm], replaced: list) -> None:
        assert self.mrt is not None
        del self.placed[op.instr.uid]
        for key, old in reversed(replaced):
            if old is None:
                self._comm_index.pop(key, None)
            else:
                self._comm_index[key] = old
        for comm in plan:
            self.mrt.bus_remove(comm.start)
            self.comms.remove(comm)
        if op.instr.fu_class is not FUClass.NONE:
            self.mrt.fu_remove(op.start, op.instr.fu_class, op.cluster)

    # ------------------------------------------------------------------
    # Windows, pruning and budgets
    # ------------------------------------------------------------------

    def _bounds(
        self, instr, cluster: int, latency: int, ii: int, comp: int
    ) -> tuple[int, int] | None:
        """Complete start window for ``instr`` under current placements."""
        anchor = self._anchor.get(comp)
        if anchor is None:
            # First node of its component: any schedule can be shifted by
            # a multiple of II, so II consecutive candidates suffice.
            base = self._asap[instr.uid] if self._asap is not None else 0
            return base, base + ii - 1
        bus = self.config.bus_latency
        lo = anchor - self._horizon
        hi = anchor + self._horizon
        for edge in self.ddg.preds[instr.uid]:
            if edge.src == instr.uid:
                continue
            src_op = self.placed.get(edge.src)
            if src_op is None:
                continue
            lat = self._edge_latency(edge, instr.uid, latency)
            low = src_op.start + lat - ii * edge.distance
            if edge.kind is DepKind.REG and src_op.cluster != cluster:
                # Optimistic: a fresh transfer can arrive at produce+bus;
                # _plan_comms verifies an actual bus slot exists.
                low += bus
            if low > lo:
                lo = low
        for edge in self.ddg.succs[instr.uid]:
            if edge.dst == instr.uid:
                continue
            dst_op = self.placed.get(edge.dst)
            if dst_op is None:
                continue
            lat = self._edge_latency(edge, instr.uid, latency)
            high = dst_op.start + ii * edge.distance - lat
            if edge.kind is DepKind.REG and dst_op.cluster != cluster:
                high -= bus
            if high < hi:
                hi = high
        if hi < lo:
            return None
        return lo, hi

    def _self_edges_feasible(self, uid: int, latency: int, ii: int) -> bool:
        for edge in self.ddg.succs[uid]:
            if edge.dst != uid:
                continue
            lat = edge.fixed_latency if edge.fixed_latency is not None else latency
            if lat > ii * edge.distance:
                return False
        return True

    def _fu_feasible(self) -> bool:
        return all(
            self._fu_demand[cls] <= self._fu_capacity[cls] - self._fu_placed[cls]
            for cls in self._fu_demand
        )

    def _charge(self) -> None:
        self.nodes_explored += 1
        if self.nodes_explored > self.node_budget:
            raise BudgetExhausted
        if (
            self._deadline is not None
            and self.nodes_explored % _TIME_POLL == 0
            and time.monotonic() > self._deadline  # analysis: allow(A102)
        ):
            raise BudgetExhausted

    # ------------------------------------------------------------------
    # Construction-time helpers
    # ------------------------------------------------------------------

    def _latency_floor(self, uid: int) -> int:
        """Smallest latency any option could schedule load ``uid`` with."""
        instr = self.ddg.instruction(uid)
        if self.config.arch is ArchKind.L0 and is_candidate(instr):
            return min(self.config.l0_latency, self.config.l1_latency)
        return self.policy.planned_latency(uid)

    def _components(self) -> dict[int, int]:
        """Map uid -> weakly-connected component id of the DDG."""
        parent = {uid: uid for uid in self.ddg.nodes}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in self.ddg.edges:
            a, b = find(edge.src), find(edge.dst)
            if a != b:
                parent[a] = b
        return {uid: find(uid) for uid in self.ddg.nodes}
