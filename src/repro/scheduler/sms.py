"""Swing-Modulo-Scheduling node ordering (paper section 4.3, step 2).

The ordering preserves the two properties the scheduler relies on
(Llosa et al., PACT'96):

1. every node except the first of each connected component is a DDG
   neighbour of an already-ordered node, which keeps the placement
   window tight (at most II candidate cycles, anchored on a scheduled
   neighbour); and
2. critical nodes — those with the least slack at the target II, which
   includes every node on the binding recurrence — are ordered first.

Each ordered node carries the direction the placer should sweep:
``TOP_DOWN`` (ascending from its earliest start — used when the node was
reached through a predecessor) or ``BOTTOM_UP`` (descending from its
latest start — reached through a successor).  Nodes with ordered
neighbours on both sides default to top-down; the window is bounded on
both sides regardless.
"""

from __future__ import annotations

import enum
from typing import Callable, Mapping

from ..ir.ddg import DDG

LoadLatency = Mapping[int, int] | Callable[[int], int]


class Direction(enum.Enum):
    TOP_DOWN = "top_down"
    BOTTOM_UP = "bottom_up"


def sms_order(
    ddg: DDG, ii: int, load_latency: LoadLatency
) -> list[tuple[int, Direction]]:
    """Order DDG nodes for placement at initiation interval ``ii``.

    Falls back to slack ordering at a feasible II if ``ii`` is below
    RecMII (the caller will fail placement and retry anyway, but the
    order must still be well defined).
    """
    slack = ddg.slack(ii, load_latency)
    probe_ii = ii
    while slack is None:
        probe_ii *= 2
        if probe_ii > 1 << 20:
            raise ValueError("cannot find a feasible II for ordering")
        slack = ddg.slack(probe_ii, load_latency)
    asap = ddg.earliest_times(probe_ii, load_latency)
    assert asap is not None

    def priority(uid: int) -> tuple[int, int, int]:
        return (slack[uid], asap[uid], uid)

    ordered: list[tuple[int, Direction]] = []
    placed: set[int] = set()
    remaining = set(ddg.nodes)

    while remaining:
        # Frontier: unordered nodes adjacent to an ordered node.
        frontier: dict[int, Direction] = {}
        for uid in sorted(placed):
            for edge in ddg.succs[uid]:
                if edge.dst in remaining and edge.dst not in frontier:
                    frontier[edge.dst] = Direction.TOP_DOWN
            for edge in ddg.preds[uid]:
                if edge.src in remaining:
                    # Reached through a successor: place bottom-up unless
                    # it also has an ordered predecessor.
                    if edge.src not in frontier:
                        frontier[edge.src] = Direction.BOTTOM_UP
        if not frontier:
            seed = min(remaining, key=priority)
            frontier = {seed: Direction.TOP_DOWN}
        uid = min(frontier, key=priority)
        ordered.append((uid, frontier[uid]))
        placed.add(uid)
        remaining.discard(uid)

    return ordered
