"""Minimum initiation interval: resource-bound and recurrence-bound.

``MII = max(ResMII, RecMII)`` (paper section 4.2).  ResMII counts issue
slots per FU class across all clusters; RecMII is found by searching for
the smallest II whose dependence constraints admit a fixed point (no
positive cycle in the constraint graph) — equivalent to the classic
max-cycle-ratio bound but robust for arbitrary edge sets.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..isa.operations import FUClass
from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..machine.config import MachineConfig

LoadLatency = Mapping[int, int] | Callable[[int], int]


def res_mii(loop: Loop, config: MachineConfig) -> int:
    """Resource-constrained MII over INT/MEM/FP issue slots."""
    counts = {FUClass.INT: 0, FUClass.MEM: 0, FUClass.FP: 0}
    for instr in loop.body:
        if instr.fu_class in counts:
            counts[instr.fu_class] += 1
    bound = 1
    per_cluster = {
        FUClass.INT: config.int_units_per_cluster,
        FUClass.MEM: config.mem_units_per_cluster,
        FUClass.FP: config.fp_units_per_cluster,
    }
    for fu_class, used in counts.items():
        slots = per_cluster[fu_class] * config.n_clusters
        if used:
            bound = max(bound, -(-used // slots))
    return bound


def rec_mii(ddg: DDG, load_latency: LoadLatency, upper: int | None = None) -> int:
    """Recurrence-constrained MII (1 when the DDG has no recurrences).

    ``upper`` is a *probe hint* — where the exponential search for a
    feasible II starts — never a clamp: a recurrence whose RecMII
    exceeds the hint (e.g. a caller passing ResMII, as the exact
    scheduler's deepening loop seeds with) is still resolved exactly by
    doubling past it.  The default hint is a genuine upper bound: every
    recurrence traverses each edge at most once, so its total latency —
    and therefore ``ceil(latency / distance) <= latency`` for distance
    >= 1 — cannot exceed the sum of all edge latencies.  (The previous
    default summed only distance-carrying edges, which is *not* an upper
    bound — a recurrence's latency is dominated by its distance-0 edges
    whenever the back edge is cheap — and only worked because of the
    doubling rescue below.)
    """
    if upper is None:
        upper = 1 + sum(edge.latency(load_latency) for edge in ddg.edges)
    if ddg.earliest_times(1, load_latency) is not None:
        return 1
    lo, hi = 1, max(2, upper)
    # Feasibility is monotone in II: larger II only relaxes constraints.
    while ddg.earliest_times(hi, load_latency) is None:
        lo = hi
        hi *= 2
        if hi > 1 << 20:
            raise ValueError("RecMII search diverged; inconsistent DDG")
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if ddg.earliest_times(mid, load_latency) is None:
            lo = mid
        else:
            hi = mid
    return hi


def compute_mii(
    loop: Loop, ddg: DDG, config: MachineConfig, load_latency: LoadLatency
) -> int:
    return max(res_mii(loop, config), rec_mii(ddg, load_latency))
