"""Register-pressure estimation for modulo schedules (MaxLive).

The paper (section 4.2) lists register pressure among the parameters
that drive modulo-scheduled performance: a schedule needing more
registers than the cluster files provide forces spills or a larger II.
This reproduction does not insert spill code; instead it exposes a
MaxLive estimator so experiments and tests can confirm schedules stay
inside the Table-2 machine's per-cluster register files.

A value produced by instruction *p* and consumed by instruction *c*
with dependence distance *d* is live from ``t_p + 1`` to
``t_c + d * II`` (inclusive of the consumer's issue).  In steady state
the kernel repeats every II cycles, so a lifetime of length L overlaps
``ceil(L / II)`` simultaneous instances of itself; MaxLive per cluster
row is the sum of live instances across all values resident there.
Cross-cluster consumers read the comm'ed copy, which charges the
*consumer* cluster from the comm's arrival instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.ddg import DDG, DepKind
from .schedule import ModuloSchedule


@dataclass(frozen=True)
class ValueLifetime:
    producer_uid: int
    cluster: int
    start: int  # first cycle the value occupies a register
    end: int  # last cycle it must be preserved

    @property
    def length(self) -> int:
        return max(0, self.end - self.start + 1)


def value_lifetimes(schedule: ModuloSchedule, ddg: DDG) -> list[ValueLifetime]:
    """Lifetimes of every register value, split per resident cluster."""
    ii = schedule.ii
    lifetimes: list[ValueLifetime] = []
    arrivals: dict[tuple[int, int], int] = {}
    for comm in schedule.comms:
        key = (comm.producer_uid, comm.dst_cluster)
        arrival = comm.start + comm.latency
        if key not in arrivals or arrival < arrivals[key]:
            arrivals[key] = arrival

    for uid, op in schedule.placed.items():
        if op.instr.dest is None:
            continue
        produce = op.start + op.latency if op.instr.is_load else (
            op.start + schedule.config.latency_of(op.instr.opcode)
        )
        # Last local use; cross-cluster uses hold the comm'ed copy.
        last_use_by_cluster: dict[int, int] = {}
        for edge in ddg.succs[uid]:
            if edge.kind is not DepKind.REG:
                continue
            consumer = schedule.placed.get(edge.dst)
            if consumer is None:
                continue
            due = consumer.start + edge.distance * ii
            if consumer.cluster == op.cluster:
                cluster, start = op.cluster, produce
            else:
                arrival = arrivals.get((uid, consumer.cluster))
                if arrival is None:
                    continue  # validator reports this case separately
                cluster, start = consumer.cluster, arrival
            key_end = last_use_by_cluster.get(cluster)
            last_use_by_cluster[cluster] = max(due, key_end or due)
            last_use_by_cluster.setdefault(op.cluster, produce)
        # The producing cluster holds the value at least until the bus
        # reads it for any comm.
        for comm in schedule.comms:
            if comm.producer_uid == uid:
                prev = last_use_by_cluster.get(op.cluster, produce)
                last_use_by_cluster[op.cluster] = max(prev, comm.start)
        for cluster, end in last_use_by_cluster.items():
            start = produce if cluster == op.cluster else arrivals[(uid, cluster)]
            if end >= start:
                lifetimes.append(ValueLifetime(uid, cluster, start, end))
    return lifetimes


def max_live(schedule: ModuloSchedule, ddg: DDG) -> dict[int, int]:
    """Steady-state MaxLive per cluster.

    Each lifetime contributes ``ceil(length / II)`` overlapping steady-
    state instances on the rows it covers; the per-cluster maximum over
    rows is the register requirement (modulo-variable-expansion view).
    """
    ii = schedule.ii
    n = schedule.config.n_clusters
    per_row = {(c, r): 0 for c in range(n) for r in range(ii)}
    for lifetime in value_lifetimes(schedule, ddg):
        instances, remainder = divmod(lifetime.length, ii)
        for row in range(ii):
            per_row[(lifetime.cluster, row)] += instances
        start_row = lifetime.start % ii
        for offset in range(remainder):
            row = (start_row + offset) % ii
            per_row[(lifetime.cluster, row)] += 1
    result = {}
    for cluster in range(n):
        result[cluster] = max(per_row[(cluster, row)] for row in range(ii))
    return result


def fits_register_file(schedule: ModuloSchedule, ddg: DDG) -> bool:
    """Whether every cluster's MaxLive fits the configured register cap."""
    cap = schedule.config.max_live_per_cluster
    return all(v <= cap for v in max_live(schedule, ddg).values())
