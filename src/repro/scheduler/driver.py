"""Top-level compilation driver: unroll choice + policy selection + engine.

``compile_loop`` is the public entry point: it picks the unroll factor
(1 or N, step 1 of the paper's algorithm), builds the DDG, instantiates
the policy matching the target architecture, and runs the scheduling
engine.  The same unrolling decision is used for every architecture so
comparisons are not biased by unrolling (paper sections 5.1-5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import memdep
from ..ir.ddg import DDG, build_ddg
from ..ir.loop import Loop
from ..ir.unroll import unroll
from ..machine.config import ArchKind, MachineConfig
from .engine import ClusterScheduler
from .l0policy import L0Policy
from .mii import rec_mii, res_mii
from .policies import InterleavedPolicy, MultiVLIWPolicy, UnifiedPolicy
from .schedule import ModuloSchedule


@dataclass
class CompiledLoop:
    """A loop after unrolling and scheduling for one machine config."""

    loop: Loop  # the (possibly unrolled) body that was scheduled
    schedule: ModuloSchedule
    ddg: DDG
    policy_name: str
    unroll_factor: int

    @property
    def ii(self) -> int:
        return self.schedule.ii


def estimate_compute_time(loop: Loop, config: MachineConfig) -> float:
    """Static per-original-iteration compute-time estimate (MII / factor).

    Uses the L1 latency for every load so the estimate — and therefore
    the unroll decision — is identical across architectures.
    """
    ddg = build_ddg(loop, config)
    mii = max(
        res_mii(loop, config),
        rec_mii(ddg, lambda uid: config.l1_latency),
    )
    return mii / loop.unroll_factor


def choose_unroll_factor(loop: Loop, config: MachineConfig) -> int:
    """Step 1: unroll by N when that lowers the static compute time.

    Ties go to unrolling for recurrence-free loops: it spreads memory
    operations across clusters (workload balance, free memory slots for
    prefetches), which is why the underlying BASE work recommends it.
    Loops bound by a loop-carried recurrence gain nothing from wider
    bodies (the recurrence scales with the factor), so ties keep them
    rolled to avoid the extra prologue and communication.
    """
    n = config.n_clusters
    base = estimate_compute_time(loop, config)
    unrolled = unroll(loop, n)
    wide = estimate_compute_time(unrolled, config)
    if wide < base:
        return n
    if wide == base:
        ddg = build_ddg(loop, config)
        if rec_mii(ddg, lambda uid: config.l1_latency) == 1:
            return n
    return 1


def _make_policy(
    loop: Loop,
    config: MachineConfig,
    dep_info: memdep.MemDepInfo,
    *,
    interleaved_heuristic: int,
    all_candidates: bool,
    allow_psr: bool,
    prefetch_distance: int,
):
    if config.arch is ArchKind.UNIFIED:
        return UnifiedPolicy(loop, config)
    if config.arch is ArchKind.L0:
        return L0Policy(
            loop,
            config,
            dep_info,
            all_candidates=all_candidates,
            allow_psr=allow_psr,
            prefetch_distance=prefetch_distance,
        )
    if config.arch is ArchKind.MULTIVLIW:
        return MultiVLIWPolicy(loop, config)
    if config.arch is ArchKind.INTERLEAVED:
        return InterleavedPolicy(loop, config, heuristic=interleaved_heuristic)
    raise ValueError(f"unknown architecture {config.arch}")


def compile_loop(
    loop: Loop,
    config: MachineConfig,
    *,
    unroll_factor: int | None = None,
    interleaved_heuristic: int = 1,
    all_candidates: bool = False,
    allow_psr: bool = False,
    prefetch_distance: int = 1,
) -> CompiledLoop:
    """Compile one inner loop for one machine configuration.

    ``unroll_factor=None`` applies the paper's static unroll heuristic;
    pass 1 or N to force a factor (used by tests and ablations).
    """
    factor = (
        choose_unroll_factor(loop, config) if unroll_factor is None else unroll_factor
    )
    body = unroll(loop, factor)
    dep_info = memdep.analyze(body)
    ddg = build_ddg(body, config, dep_info)
    policy = _make_policy(
        body,
        config,
        dep_info,
        interleaved_heuristic=interleaved_heuristic,
        all_candidates=all_candidates,
        allow_psr=allow_psr,
        prefetch_distance=prefetch_distance,
    )
    engine = ClusterScheduler(ddg, config, policy)
    schedule = engine.schedule()
    return CompiledLoop(
        loop=body,
        schedule=schedule,
        ddg=ddg,
        policy_name=policy.name,
        unroll_factor=factor,
    )
