"""Top-level compilation driver (compatibility wrapper).

``compile_loop`` remains the public entry point, but the flow it used to
hard-wire — unroll choice, unrolling, memory disambiguation, DDG build,
policy selection, modulo scheduling — now lives in the pass-managed
pipeline (:mod:`repro.pipeline.passes`).  This module keeps the legacy
signature, the :class:`CompiledLoop` record, and the unroll heuristic
(step 1 of the paper's algorithm; the same unrolling decision is used
for every architecture so comparisons are not biased, sections 5.1-5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.ddg import DDG, build_ddg
from ..ir.loop import Loop
from ..ir.unroll import unroll
from ..machine.config import MachineConfig
from .mii import rec_mii, res_mii
from .schedule import ModuloSchedule


@dataclass
class CompiledLoop:
    """A loop after unrolling and scheduling for one machine config."""

    loop: Loop  # the (possibly unrolled) body that was scheduled
    schedule: ModuloSchedule
    ddg: DDG
    policy_name: str
    unroll_factor: int
    #: Lazily built fast-path event trace (``repro.sim.trace.StaticTrace``).
    #: Derived purely from the schedule/DDG, so it is cached alongside
    #: the compiled artifact: persisted compile-cache entries carry it
    #: and warm runs skip the flattening.
    static_trace: object | None = None

    @property
    def ii(self) -> int:
        return self.schedule.ii


def estimate_compute_time(loop: Loop, config: MachineConfig) -> float:
    """Static per-original-iteration compute-time estimate (MII / factor).

    Uses the L1 latency for every load so the estimate — and therefore
    the unroll decision — is identical across architectures.
    """
    ddg = build_ddg(loop, config)
    mii = max(
        res_mii(loop, config),
        rec_mii(ddg, lambda uid: config.l1_latency),
    )
    return mii / loop.unroll_factor


def choose_unroll_factor(loop: Loop, config: MachineConfig) -> int:
    """Step 1: unroll by N when that lowers the static compute time.

    Ties go to unrolling for recurrence-free loops: it spreads memory
    operations across clusters (workload balance, free memory slots for
    prefetches), which is why the underlying BASE work recommends it.
    Loops bound by a loop-carried recurrence gain nothing from wider
    bodies (the recurrence scales with the factor), so ties keep them
    rolled to avoid the extra prologue and communication.
    """
    n = config.n_clusters
    base = estimate_compute_time(loop, config)
    unrolled = unroll(loop, n)
    wide = estimate_compute_time(unrolled, config)
    if wide < base:
        return n
    if wide == base:
        ddg = build_ddg(loop, config)
        if rec_mii(ddg, lambda uid: config.l1_latency) == 1:
            return n
    return 1


def compile_loop(
    loop: Loop,
    config: MachineConfig,
    *,
    unroll_factor: int | None = None,
    interleaved_heuristic: int = 1,
    all_candidates: bool = False,
    allow_psr: bool = False,
    prefetch_distance: int = 1,
    scheduler: str = "sms",
    exact_node_budget: int | None = None,
    exact_max_stages: int | None = None,
    exact_time_budget_s: float | None = None,
) -> CompiledLoop:
    """Compile one inner loop for one machine configuration.

    ``unroll_factor=None`` applies the paper's static unroll heuristic;
    pass 1 or N to force a factor (used by tests and ablations).
    ``scheduler`` picks the backend scheduling pass: ``"sms"`` (the
    heuristic engine) or ``"exact"`` (branch-and-bound with SMS
    fallback; tune it with the ``exact_*`` knobs).

    Thin wrapper over the cached pass pipeline
    (:func:`repro.pipeline.compile_cached`): repeated compilations of an
    identical (loop, config, options) triple are served from the
    process-wide compile cache, and configs differing only in backend
    parameters share the unroll/memdep/DDG frontend stages.  Build a
    custom :class:`repro.pipeline.PassManager` to change the flow
    itself.
    """
    from ..pipeline.artifact import CompileOptions
    from ..pipeline.compilecache import compile_cached

    kwargs = dict(
        unroll_factor=unroll_factor,
        interleaved_heuristic=interleaved_heuristic,
        all_candidates=all_candidates,
        allow_psr=allow_psr,
        prefetch_distance=prefetch_distance,
        scheduler=scheduler,
    )
    if exact_node_budget is not None:
        kwargs["exact_node_budget"] = exact_node_budget
    if exact_max_stages is not None:
        kwargs["exact_max_stages"] = exact_max_stages
    if exact_time_budget_s is not None:
        kwargs["exact_time_budget_s"] = exact_time_budget_s
    options = CompileOptions(**kwargs)
    return compile_cached(loop, config, options)
