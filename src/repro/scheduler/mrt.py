"""The modulo reservation table.

Tracks, for each kernel row (cycle modulo II) and each resource, how
many issue slots are occupied.  All placements go through this table so
the final schedule can never oversubscribe a functional unit or bus.
"""

from __future__ import annotations

from ..isa.operations import FUClass
from ..machine.resources import BUS, ResourceModel


class ModuloReservationTable:
    def __init__(self, ii: int, resources: ResourceModel) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.ii = ii
        self._resources = resources
        self._used: dict[tuple[int, object], int] = {}

    def _key(self, cycle: int, resource: object) -> tuple[int, object]:
        return (cycle % self.ii, resource)

    def used(self, cycle: int, resource: object) -> int:
        return self._used.get(self._key(cycle, resource), 0)

    def free(self, cycle: int, resource: object) -> int:
        return self._resources.capacity(resource) - self.used(cycle, resource)

    def can_place(self, cycle: int, resource: object) -> bool:
        return self.free(cycle, resource) > 0

    def place(self, cycle: int, resource: object) -> None:
        if not self.can_place(cycle, resource):
            raise ValueError(f"resource {resource!r} full at row {cycle % self.ii}")
        key = self._key(cycle, resource)
        self._used[key] = self._used.get(key, 0) + 1

    def remove(self, cycle: int, resource: object) -> None:
        key = self._key(cycle, resource)
        count = self._used.get(key, 0)
        if count <= 0:
            raise ValueError(
                f"resource {resource!r} not placed at row {cycle % self.ii}"
            )
        if count == 1:
            del self._used[key]
        else:
            self._used[key] = count - 1

    # Convenience wrappers ------------------------------------------------

    def fu_can_place(self, cycle: int, fu_class: FUClass, cluster: int) -> bool:
        return self.can_place(cycle, self._resources.fu_resource(fu_class, cluster))

    def fu_place(self, cycle: int, fu_class: FUClass, cluster: int) -> None:
        self.place(cycle, self._resources.fu_resource(fu_class, cluster))

    def fu_remove(self, cycle: int, fu_class: FUClass, cluster: int) -> None:
        self.remove(cycle, self._resources.fu_resource(fu_class, cluster))

    def fu_used(self, cycle: int, fu_class: FUClass, cluster: int) -> int:
        return self.used(cycle, self._resources.fu_resource(fu_class, cluster))

    def bus_can_place(self, cycle: int) -> bool:
        return self.can_place(cycle, BUS)

    def bus_place(self, cycle: int) -> None:
        self.place(cycle, BUS)

    def bus_remove(self, cycle: int) -> None:
        self.remove(cycle, BUS)
