"""The L0-aware memory policy: the paper's Figure-4 algorithm.

Implements, per scheduling attempt:

* ➊ per-cluster free-entry tracking (``num_free_L0_entries``);
* ➋ slack-based assignment of the L0 latency to the most critical
  ``N * NE`` candidate loads (ablation flag ``all_candidates`` disables
  the selection — every candidate is marked, reproducing the "+6% at 4
  entries" experiment of section 5.2);
* ➌/➑ recommended-cluster propagation between related strided loads so
  unrolled copies land in the consecutive clusters interleaved mapping
  expects;
* ➍ per-dependent-set coherence decision (1C when an L0-latency load
  exists and entries remain, else NL0; PSR available behind a flag);
* ➒ entry consumption on L0 placements; ➓ latency reassignment of the
  not-yet-scheduled candidates from their new slack;
* step 4 — hint assignment (SEQ/PAR, LINEAR/INTERLEAVED, prefetch
  hints with redundant-prefetch suppression in interleaved groups);
* step 5 — explicit software prefetch insertion for L0 loads whose
  stride does not match the automatic prefetch hints.
"""

from __future__ import annotations

import math
from itertools import count
from typing import TYPE_CHECKING

from ..isa.hints import AccessHint, HintBundle, MapHint, PrefetchHint
from ..isa.instruction import Instruction
from ..isa.operations import FUClass, Opcode
from ..ir import memdep
from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..ir.stride import StrideClass, classify, is_candidate
from ..machine.config import MachineConfig
from .coherence import CoherenceScheme, SetState
from .mrt import ModuloReservationTable
from .schedule import (
    ModuloSchedule,
    PlacedComm,
    PlacedOp,
    PlacedPrefetch,
)

if TYPE_CHECKING:  # pragma: no cover
    from .engine import ClusterScheduler


class L0Policy:
    """Memory policy for the proposed architecture (unified L1 + L0 buffers)."""

    name = "l0"
    #: Coherence-scheme decisions and candidate re-ranking are sticky
    #: across ejections (matching the heuristic engine), so a backtracking
    #: search over this policy's options is sound but not complete — the
    #: exact scheduler must not claim optimality proofs through it.
    SEARCH_EXACT = False

    #: Buffer entries a load stream occupies in steady state: its current
    #: subblock plus the prefetched next one.  The capacity budget uses
    #: this so "attention is paid not to overflow the buffers" (paper
    #: section 4.3) holds at run time, not just at schedule time.
    ENTRIES_PER_STREAM = 2

    def __init__(
        self,
        loop: Loop,
        config: MachineConfig,
        dep_info: memdep.MemDepInfo | None = None,
        *,
        all_candidates: bool = False,
        allow_psr: bool = False,
        prefetch_distance: int = 1,
    ) -> None:
        self.loop = loop
        self.config = config
        self.dep = dep_info if dep_info is not None else memdep.analyze(loop)
        self.all_candidates = all_candidates
        self.allow_psr = allow_psr
        self.prefetch_distance = prefetch_distance

        self.candidate_loads: list[int] = [
            i.uid for i in loop.body if i.is_load and is_candidate(i)
        ]
        self._instr = {i.uid: i for i in loop.body}

        # Step-2 assumption: all candidates start planned at the L0
        # latency (used for MII and the SMS ordering before any attempt).
        self.l0_planned: set[int] = set(self.candidate_loads)
        self.recommended: dict[int, int] = {}
        self.sets: dict[int, SetState] = {}
        self.free: list[float] = []
        self.replicas: list[PlacedOp] = []
        self.replica_comms: list[PlacedComm] = []
        self._ii = 0

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    @property
    def unbounded(self) -> bool:
        return self.config.l0_entries is None

    def _l0(self) -> int:
        return self.config.l0_latency

    def _l1(self) -> int:
        return self.config.l1_latency

    def _total_free(self) -> float:
        return sum(self.free)

    def _set_state(self, uid: int) -> SetState | None:
        return self.sets.get(uid)

    def planned_latency(self, uid: int) -> int:
        return self._l0() if uid in self.l0_planned else self._l1()

    def _slack_at(self, ddg: DDG, ii: int) -> dict[int, int]:
        slack = ddg.slack(ii, self.planned_latency)
        probe = ii
        while slack is None:
            probe *= 2
            if probe > 1 << 20:
                raise ValueError("no feasible II while computing slack")
            slack = ddg.slack(probe, self.planned_latency)
        return slack

    # ------------------------------------------------------------------
    # Figure 4 — initialisation (➊ ➋ ➌)
    # ------------------------------------------------------------------

    def begin_attempt(self, ii: int, engine: "ClusterScheduler") -> None:
        self._ii = ii
        n = self.config.n_clusters
        entries: float = math.inf if self.unbounded else float(self.config.l0_entries)
        self.free = [entries] * n
        self.recommended = {}
        self.replicas = []
        self.replica_comms = []
        self.sets = {}
        for dep_set in self.dep.sets:
            if self.dep.needs_coherence(dep_set):
                state = SetState(members=dep_set)
                for uid in dep_set:
                    self.sets[uid] = state

        if self.unbounded or self.all_candidates:
            self.l0_planned = set(self.candidate_loads)
            return
        budget = max(1, n * int(self.config.l0_entries) // self.ENTRIES_PER_STREAM)
        assume_all = set(self.candidate_loads)
        self.l0_planned = assume_all
        slack = self._slack_at(engine.ddg, ii)
        ranked = sorted(self.candidate_loads, key=lambda u: (slack[u], u))
        self.l0_planned = set(ranked[:budget])

    # ------------------------------------------------------------------
    # Figure 4 — per-instruction options (➍ ➎ ➏)
    # ------------------------------------------------------------------

    def _decide_scheme(self, state: SetState) -> None:
        if state.decided:
            return
        has_l0_load = any(
            uid in self.l0_planned and self._instr[uid].is_load
            for uid in state.members
        )
        if self.allow_psr and has_l0_load:
            state.decide(CoherenceScheme.PSR)
            return
        if has_l0_load and self._total_free() > 0:
            state.decide(CoherenceScheme.ONE_CLUSTER)
            return
        state.decide(CoherenceScheme.NL0)
        for uid in state.members:
            self.l0_planned.discard(uid)

    def _l0_cluster_options(
        self, instr: Instruction, clusters: list[int]
    ) -> list[tuple[int, int]]:
        """L0-latency options: recommended cluster first, then free ones."""
        order: list[int] = []
        cost = self.ENTRIES_PER_STREAM
        rec = self.recommended.get(instr.uid)
        if rec is not None and self.free[rec] >= cost:
            order.append(rec)
        for cluster in clusters:
            if cluster not in order and self.free[cluster] >= cost:
                order.append(cluster)
        return [(c, self._l0()) for c in order]

    def options(
        self, instr: Instruction, clusters: list[int]
    ) -> list[tuple[int, int]]:
        store_lat = self.config.latency_of(Opcode.STORE)
        if instr.opcode in (Opcode.PREFETCH, Opcode.INVAL_L0):
            return [(c, store_lat) for c in clusters]
        state = self._set_state(instr.uid)
        if state is not None:
            self._decide_scheme(state)

        if instr.is_store:
            if (
                state is not None
                and state.scheme is CoherenceScheme.ONE_CLUSTER
                and state.cluster is not None
            ):
                return [(state.cluster, store_lat)]
            return [(c, store_lat) for c in clusters]

        # Loads --------------------------------------------------------
        l1_options = [(c, self._l1()) for c in clusters]
        if instr.uid not in self.l0_planned:
            return l1_options
        if state is not None and state.scheme is CoherenceScheme.ONE_CLUSTER:
            if state.cluster is not None:
                opts: list[tuple[int, int]] = []
                if self.free[state.cluster] >= self.ENTRIES_PER_STREAM:
                    opts.append((state.cluster, self._l0()))
                return opts + l1_options
            return self._l0_cluster_options(instr, clusters) + l1_options
        if state is not None and state.scheme is CoherenceScheme.NL0:
            return l1_options
        return self._l0_cluster_options(instr, clusters) + l1_options

    # ------------------------------------------------------------------
    # Figure 4 — commitment bookkeeping (➑ ➒ ➓)
    # ------------------------------------------------------------------

    def _mark_related(self, instr: Instruction, op: PlacedOp, engine) -> None:
        """➑: recommend clusters for related strided loads.

        A load placed with the L0 latency in cluster c recommends cluster
        ``(c + Δ) mod N`` to every unscheduled candidate load of the same
        array and stride whose element offset differs by Δ — unrolled
        copies land in consecutive clusters (interleaved mapping) and
        same-subblock loads share a cluster.
        """
        pattern = instr.pattern
        assert pattern is not None
        if not pattern.is_strided:
            return
        n = self.config.n_clusters
        for uid in sorted(self.l0_planned):
            if uid == instr.uid or uid in engine.placed:
                continue
            other = self._instr[uid]
            other_pattern = other.pattern
            assert other_pattern is not None
            if (
                not other_pattern.is_strided
                or other_pattern.array.name != pattern.array.name
                or other_pattern.stride != pattern.stride
            ):
                continue
            delta = other_pattern.offset - pattern.offset
            if abs(pattern.stride) == 1:
                # Sequential streams share subblocks: keep them together.
                self.recommended.setdefault(uid, op.cluster)
            elif abs(pattern.stride) == self.loop.unroll_factor:
                self.recommended.setdefault(uid, (op.cluster + delta) % n)
            elif delta == 0:
                self.recommended.setdefault(uid, op.cluster)

    def _reassign_latencies(self, engine: "ClusterScheduler") -> None:
        """➓: re-rank unscheduled candidates by slack against free entries."""
        if self.unbounded or self.all_candidates:
            return
        nl0_members = {
            uid
            for uid, state in self.sets.items()
            if state.scheme is CoherenceScheme.NL0
        }
        unscheduled = [
            uid
            for uid in self.candidate_loads
            if uid not in engine.placed and uid not in nl0_members
        ]
        if not unscheduled:
            return
        nfree = int(self._total_free()) // self.ENTRIES_PER_STREAM
        slack = self._slack_at(engine.ddg, self._ii)
        ranked = sorted(unscheduled, key=lambda u: (slack[u], u))
        keep = set(ranked[:nfree])
        for uid in unscheduled:
            if uid in keep:
                self.l0_planned.add(uid)
            else:
                self.l0_planned.discard(uid)

    def committed(
        self, instr: Instruction, op: PlacedOp, engine: "ClusterScheduler"
    ) -> bool:
        state = self._set_state(instr.uid)
        if instr.is_load:
            if op.latency == self._l0():
                if not self.unbounded:
                    self.free[op.cluster] -= self.ENTRIES_PER_STREAM
                if (
                    state is not None
                    and state.scheme is CoherenceScheme.ONE_CLUSTER
                    and state.cluster is None
                ):
                    state.cluster = op.cluster
                if state is not None:
                    state.l0_loads.add(instr.uid)
                self._mark_related(instr, op, engine)
            else:
                self.l0_planned.discard(instr.uid)
            self._reassign_latencies(engine)
            return True
        if instr.is_store:
            if (
                state is not None
                and state.scheme is CoherenceScheme.ONE_CLUSTER
                and state.cluster is None
            ):
                state.cluster = op.cluster
            if state is not None and state.scheme is CoherenceScheme.PSR:
                return self._place_replicas(instr, op, engine)
        return True

    def ejected(self, op: PlacedOp, engine: "ClusterScheduler") -> None:
        """Refund buffer entries when the engine ejects an L0 load.

        Set-level state (1C cluster choice, recommendations) is left as
        is: it remains a valid — merely possibly suboptimal — constraint
        for the re-placement.
        """
        instr = op.instr
        if instr.is_load and op.latency == self._l0():
            if not self.unbounded:
                self.free[op.cluster] += self.ENTRIES_PER_STREAM
            self.l0_planned.add(instr.uid)
            state = self._set_state(instr.uid)
            if state is not None:
                state.l0_loads.discard(instr.uid)

    # ------------------------------------------------------------------
    # Partial store replication
    # ------------------------------------------------------------------

    def _place_replicas(
        self, store: Instruction, op: PlacedOp, engine: "ClusterScheduler"
    ) -> bool:
        """Place non-primary store instances in every other cluster.

        Each replica needs a MEM slot at the primary's cycle; the store
        address is broadcast on a bus early enough to arrive by then.
        """
        mrt = engine.mrt
        assert mrt is not None
        ii = engine.current_ii
        taken: list[tuple[int, int]] = []
        new_replicas: list[PlacedOp] = []
        for cluster in range(self.config.n_clusters):
            if cluster == op.cluster:
                continue
            if not mrt.fu_can_place(op.start, FUClass.MEM, cluster):
                for cycle, c in taken:
                    mrt.fu_remove(cycle, FUClass.MEM, c)
                return False
            mrt.fu_place(op.start, FUClass.MEM, cluster)
            taken.append((op.start, cluster))
            new_replicas.append(
                PlacedOp(
                    instr=store,
                    cluster=cluster,
                    start=op.start,
                    latency=op.latency,
                    is_primary=False,
                    replica_of=store.uid,
                )
            )
        bus_cycle = None
        deadline = op.start - self.config.bus_latency
        for cycle in range(deadline, deadline - ii, -1):
            if mrt.bus_can_place(cycle):
                bus_cycle = cycle
                break
        if bus_cycle is None:
            for cycle, c in taken:
                mrt.fu_remove(cycle, FUClass.MEM, c)
            return False
        mrt.bus_place(bus_cycle)
        self.replica_comms.append(
            PlacedComm(
                producer_uid=store.uid,
                dst_cluster=-1,  # broadcast
                src_cluster=op.cluster,
                start=bus_cycle,
                latency=self.config.bus_latency,
            )
        )
        self.replicas.extend(new_replicas)
        return True

    # ------------------------------------------------------------------
    # Step 4: hint assignment
    # ------------------------------------------------------------------

    def _interleaved_groups(self, schedule: ModuloSchedule) -> list[list[PlacedOp]]:
        """Complete unrolled load groups whose placement matches interleaving."""
        n = self.config.n_clusters
        if self.loop.unroll_factor != n:
            return []
        by_origin: dict[int, list[PlacedOp]] = {}
        for op in schedule.placed.values():
            if op.instr.is_load and op.latency == self._l0():
                by_origin.setdefault(op.instr.origin, []).append(op)
        groups: list[list[PlacedOp]] = []
        for members in by_origin.values():
            if len(members) != n:
                continue
            members.sort(key=lambda o: o.instr.copy_index)
            patterns = [m.instr.pattern for m in members]
            if any(p is None or not p.is_strided for p in patterns):
                continue
            strides = {p.stride for p in patterns}
            if len(strides) != 1 or abs(strides.pop()) != n:
                continue
            base = members[0]
            base_pattern = base.instr.pattern
            assert base_pattern is not None
            consistent = True
            for member in members[1:]:
                mp = member.instr.pattern
                assert mp is not None
                delta = mp.offset - base_pattern.offset
                if member.cluster != (base.cluster + delta) % n:
                    consistent = False
                    break
            if consistent:
                groups.append(members)
        return groups

    def _seq_possible(self, schedule: ModuloSchedule, op: PlacedOp) -> bool:
        """SEQ_ACCESS needs the cluster's L1 bus free the cycle after issue."""
        if schedule.ii == 1:
            return False  # the next cycle re-issues this very load
        next_row = (op.start + 1) % schedule.ii
        return schedule.mem_busy(op.cluster, next_row) == 0

    def finalize(
        self,
        schedule: ModuloSchedule,
        ddg: DDG,
        mrt: ModuloReservationTable,
        engine: "ClusterScheduler",
    ) -> None:
        schedule.replicas.extend(self.replicas)
        schedule.comms.extend(self.replica_comms)

        interleaved_groups = self._interleaved_groups(schedule)
        interleaved_uids = {
            op.instr.uid for group in interleaved_groups for op in group
        }

        explicit_prefetch: list[PlacedOp] = []
        for op in schedule.placed.values():
            instr = op.instr
            if not instr.is_memory:
                continue
            if instr.is_load:
                if op.latency != self._l0():
                    op.hints = HintBundle(access=AccessHint.NO_ACCESS)
                    continue
                access = (
                    AccessHint.SEQ_ACCESS
                    if self._seq_possible(schedule, op)
                    else AccessHint.PAR_ACCESS
                )
                mapping = (
                    MapHint.INTERLEAVED
                    if instr.uid in interleaved_uids
                    else MapHint.LINEAR
                )
                prefetch, needs_explicit = self._prefetch_plan(
                    instr, mapping
                )
                op.hints = HintBundle(
                    access=access,
                    mapping=mapping,
                    prefetch=prefetch,
                    prefetch_distance=self.prefetch_distance,
                )
                if needs_explicit:
                    explicit_prefetch.append(op)
            elif instr.is_store:
                op.hints = self._store_hints(instr)

        # Redundant-prefetch suppression: in an interleaved group only the
        # first load in final schedule order keeps its prefetch hint.
        for group in interleaved_groups:
            first = min(group, key=lambda o: o.start)
            for member in group:
                if member is not first:
                    member.hints = member.hints.replace(prefetch=PrefetchHint.NONE)

        for op in schedule.replicas:
            op.hints = HintBundle(access=AccessHint.PAR_ACCESS)

        self._insert_explicit_prefetches(schedule, mrt, explicit_prefetch)

    def _prefetch_plan(
        self, instr: Instruction, mapping: MapHint
    ) -> tuple[PrefetchHint, bool]:
        """(automatic prefetch hint, needs explicit software prefetch)."""
        pattern = instr.pattern
        assert pattern is not None
        if not pattern.is_strided or pattern.stride == 0:
            return PrefetchHint.NONE, False
        stride_class = classify(instr, self.loop.unroll_factor)
        direction = (
            PrefetchHint.POSITIVE if pattern.stride > 0 else PrefetchHint.NEGATIVE
        )
        if mapping is MapHint.INTERLEAVED:
            return direction, False
        if stride_class is StrideClass.GOOD and abs(pattern.stride) == 1:
            return direction, False
        # "Good" ±N strides that missed interleaved mapping, and all other
        # strides, need explicit prefetch (step 5).
        return PrefetchHint.NONE, True

    def _store_hints(self, instr: Instruction) -> HintBundle:
        state = self._set_state(instr.uid)
        if state is None:
            return HintBundle(access=AccessHint.NO_ACCESS)
        if state.scheme is CoherenceScheme.ONE_CLUSTER and state.l0_loads:
            return HintBundle(access=AccessHint.PAR_ACCESS)
        if state.scheme is CoherenceScheme.PSR:
            return HintBundle(access=AccessHint.PAR_ACCESS)
        return HintBundle(access=AccessHint.NO_ACCESS)

    # ------------------------------------------------------------------
    # Step 5: explicit software prefetch
    # ------------------------------------------------------------------

    def _insert_explicit_prefetches(
        self,
        schedule: ModuloSchedule,
        mrt: ModuloReservationTable,
        loads: list[PlacedOp],
    ) -> None:
        if not loads:
            return
        ii = schedule.ii
        uid_counter = count(max(self._instr) + 1)
        for load in loads:
            pattern = load.instr.pattern
            assert pattern is not None
            row = None
            for candidate in range(ii):
                if mrt.fu_can_place(candidate, FUClass.MEM, load.cluster):
                    row = candidate
                    break
            if row is None:
                continue  # no free slot: the paper drops the prefetch too
            start = load.start - ((load.start - row) % ii)
            if start < 0:
                start += ii
            gap = load.start - start
            lookahead = max(
                self.prefetch_distance,
                -(-(self.config.l1_latency + 1 - gap) // ii),
            )
            mrt.fu_place(row, FUClass.MEM, load.cluster)
            pf_instr = Instruction(
                uid=next(uid_counter),
                opcode=Opcode.PREFETCH,
                dest=None,
                srcs=(),
                pattern=pattern,
                tag=f"pf_{load.instr.tag or load.instr.uid}",
            )
            schedule.prefetches.append(
                PlacedPrefetch(
                    instr=pf_instr,
                    cluster=load.cluster,
                    start=start,
                    distance=lookahead,
                    covers_uid=load.instr.uid,
                )
            )
