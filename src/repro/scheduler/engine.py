"""The cluster-aware modulo scheduling engine (paper sections 4.2-4.3).

One engine drives all four architectures; a :class:`MemoryPolicy`
(unified / L0 / MultiVLIW / word-interleaved) decides memory-instruction
latencies, cluster preferences and hints.  The engine implements the
BASE algorithm's skeleton: iterate the II upward from MII, order nodes
with the SMS heuristic, and place one instruction at a time in the
cluster that minimises inter-cluster communication while balancing
workload, inserting bus communication operations whenever a register
value crosses clusters.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from ..isa.instruction import Instruction
from ..isa.operations import FUClass
from ..ir.ddg import DDG, DepKind, Edge
from ..machine.config import MachineConfig
from ..machine.resources import BUS, ResourceModel
from .mii import compute_mii
from .mrt import ModuloReservationTable
from .policies import MemoryPolicy
from .schedule import ModuloSchedule, PlacedComm, PlacedOp, SchedulingError
from .sms import Direction, sms_order


class ClusterScheduler:
    """Schedules one loop for one machine configuration."""

    #: How many II values above MII to try before giving up.
    MAX_II_SLACK = 96

    def __init__(
        self,
        ddg: DDG,
        config: MachineConfig,
        policy: MemoryPolicy,
    ) -> None:
        self.ddg = ddg
        self.loop = ddg.loop
        self.config = config
        self.policy = policy
        self.resources = ResourceModel(config)

        # Per-attempt state
        self._asap: dict[int, int] | None = None
        self._min_start: dict[int, int] = {}
        self.mrt: ModuloReservationTable | None = None
        self.placed: dict[int, PlacedOp] = {}
        self.comms: list[PlacedComm] = []
        self._comm_index: dict[tuple[int, int], PlacedComm] = {}
        self._cluster_ops: list[int] = []
        self._cluster_fu_ops: dict[tuple[int, FUClass], int] = {}

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def schedule(self) -> ModuloSchedule:
        mii = compute_mii(self.loop, self.ddg, self.config, self.policy.planned_latency)
        for ii in range(mii, mii + self.MAX_II_SLACK + 1):
            result = self._attempt(ii)
            if result is None:
                # Dense dependence webs can defeat the SMS order + ejection
                # search; a plain top-down ASAP-topological pass is far
                # less efficient but essentially always placeable once the
                # II is large enough.
                result = self._attempt(ii, order_mode="asap")
            if result is not None:
                return result
        raise SchedulingError(
            f"no schedule for loop {self.loop.name!r} within II "
            f"[{mii}, {mii + self.MAX_II_SLACK}]"
        )

    # ------------------------------------------------------------------
    # One attempt at a fixed II
    # ------------------------------------------------------------------

    def _attempt(self, ii: int, order_mode: str = "sms") -> ModuloSchedule | None:
        self.mrt = ModuloReservationTable(ii, self.resources)
        self.current_ii = ii
        self.placed = {}
        self.comms = []
        self._comm_index = {}
        self._cluster_ops = [0] * self.config.n_clusters
        self._cluster_fu_ops = {}
        self._min_start = {}
        self.policy.begin_attempt(ii, self)

        # ASAP lower bounds for this attempt: placing any node earlier
        # than its longest incoming path (through *unscheduled* nodes
        # included) would wedge a later placement into an empty window.
        self._asap = self.ddg.earliest_times(ii, self.policy.planned_latency)
        if self._asap is None:
            return None  # II below RecMII under the current latency plan

        if order_mode == "sms":
            order = sms_order(self.ddg, ii, self.policy.planned_latency)
        else:
            order = [
                (uid, Direction.TOP_DOWN)
                for uid in sorted(
                    self.ddg.nodes, key=lambda u: (self._asap[u], u)
                )
            ]
        direction_of = dict(order)
        work = deque(order)
        ejection_budget = 12 * len(order)
        ejections = 0
        while work:
            uid, direction = work.popleft()
            if uid in self.placed:
                continue
            instr = self.ddg.instruction(uid)
            clusters = self._cluster_order(instr)
            if instr.is_memory:
                options = self.policy.options(instr, clusters)
            else:
                latency = self.config.latency_of(instr.opcode)
                options = [(c, latency) for c in clusters]
            placed_op = None
            for cluster, latency in options:
                attempt = self._try_place(instr, cluster, latency, direction, ii)
                if attempt is None:
                    continue
                op, new_comms = attempt
                if instr.is_memory and not self.policy.committed(instr, op, self):
                    self._undo_place(op, new_comms)
                    continue
                placed_op = op
                break
            if placed_op is not None:
                self._note_placement(placed_op)
                continue
            # Placement failed: eject the placed neighbours pinning this
            # node's window and retry (iterative modulo scheduling).
            victims = self._placed_neighbours(uid)
            ejections += len(victims) + 1
            if not victims or ejections > ejection_budget:
                return None
            for victim in victims:
                self._eject(victim)
                work.append((victim, direction_of[victim]))
            work.appendleft((uid, direction))

        schedule = ModuloSchedule(
            loop_name=self.loop.name,
            ii=ii,
            config=self.config,
            placed=dict(self.placed),
            comms=list(self.comms),
        )
        self.policy.finalize(schedule, self.ddg, self.mrt, self)
        self._normalize(schedule)
        return schedule

    def _note_placement(self, op: PlacedOp) -> None:
        self._cluster_ops[op.cluster] += 1
        key = (op.cluster, op.instr.fu_class)
        self._cluster_fu_ops[key] = self._cluster_fu_ops.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Cluster preference (BASE heuristic: comms then balance)
    # ------------------------------------------------------------------

    def _cluster_order(self, instr: Instruction) -> list[int]:
        uid = instr.uid
        scores: list[tuple[int, int, int, int]] = []
        for cluster in range(self.config.n_clusters):
            cross = 0
            for edge in self.ddg.preds[uid]:
                if edge.kind is not DepKind.REG:
                    continue
                src = self.placed.get(edge.src)
                if src is not None and src.cluster != cluster:
                    cross += 1
            for edge in self.ddg.succs[uid]:
                if edge.kind is not DepKind.REG:
                    continue
                dst = self.placed.get(edge.dst)
                if dst is not None and dst.cluster != cluster:
                    cross += 1
            fu_load = self._cluster_fu_ops.get((cluster, instr.fu_class), 0)
            scores.append((cross, fu_load, self._cluster_ops[cluster], cluster))
        scores.sort()
        return [cluster for (_, _, _, cluster) in scores]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _edge_latency(self, edge: Edge, pending_uid: int, pending_latency: int) -> int:
        if edge.fixed_latency is not None:
            return edge.fixed_latency
        if edge.src == pending_uid:
            return pending_latency
        src_op = self.placed.get(edge.src)
        if src_op is not None:
            return src_op.latency
        return self.policy.planned_latency(edge.src)

    def _window(
        self, instr: Instruction, cluster: int, latency: int, ii: int
    ) -> tuple[int | None, int | None]:
        """[earliest, latest] start bounds from already-placed neighbours."""
        bus = self.config.bus_latency
        earliest: int | None = None
        latest: int | None = None
        for edge in self.ddg.preds[instr.uid]:
            src_op = self.placed.get(edge.src)
            if src_op is None or edge.src == instr.uid:
                continue
            lat = self._edge_latency(edge, instr.uid, latency)
            low = src_op.start + lat - ii * edge.distance
            if edge.kind is DepKind.REG and src_op.cluster != cluster:
                existing = self._comm_index.get((edge.src, cluster))
                if existing is not None:
                    low = existing.start + existing.latency - ii * edge.distance
                else:
                    low = src_op.start + lat + bus - ii * edge.distance
            earliest = low if earliest is None else max(earliest, low)
        for edge in self.ddg.succs[instr.uid]:
            dst_op = self.placed.get(edge.dst)
            if dst_op is None or edge.dst == instr.uid:
                continue
            lat = self._edge_latency(edge, instr.uid, latency)
            high = dst_op.start + ii * edge.distance - lat
            if edge.kind is DepKind.REG and dst_op.cluster != cluster:
                high -= bus
            latest = high if latest is None else min(latest, high)
        return earliest, latest

    def _try_place(
        self,
        instr: Instruction,
        cluster: int,
        latency: int,
        direction: Direction,
        ii: int,
    ) -> tuple[PlacedOp, list[PlacedComm]] | None:
        assert self.mrt is not None
        earliest, latest = self._window(instr, cluster, latency, ii)
        asap = self._asap[instr.uid] if self._asap is not None else 0
        if latest is None:
            # Top-down: no placed successor constrains us.  Clamp to the
            # static ASAP so nodes with long *unscheduled* incoming paths
            # are not placed so early that those paths can never fit.
            earliest = asap if earliest is None else max(earliest, asap)
            latest = earliest + ii - 1
        elif earliest is None:
            # Bottom-up: scan downward from the successor bound.  Going
            # below the static ASAP is fine (times are relative until
            # normalisation), but clamp the drift to one II: every
            # reservation row is reachable within II consecutive cycles,
            # so deeper descent only feeds ejection livelock.
            earliest = max(latest - ii + 1, asap - ii)
        # Never scan more than II consecutive cycles: rows repeat mod II.
        latest = min(latest, earliest + ii - 1)
        if latest < earliest:
            return None

        if direction is Direction.TOP_DOWN:
            candidates: Sequence[int] = range(earliest, latest + 1)
        else:
            candidates = range(latest, earliest - 1, -1)

        for start in candidates:
            if instr.fu_class is not FUClass.NONE and not self.mrt.fu_can_place(
                start, instr.fu_class, cluster
            ):
                continue
            plan = self._plan_comms(instr, cluster, start, latency, ii)
            if plan is None:
                continue
            if instr.fu_class is not FUClass.NONE:
                self.mrt.fu_place(start, instr.fu_class, cluster)
            for comm in plan:
                self.mrt.bus_place(comm.start)
                self.comms.append(comm)
                self._comm_index[(comm.producer_uid, comm.dst_cluster)] = comm
            op = PlacedOp(instr=instr, cluster=cluster, start=start, latency=latency)
            self.placed[instr.uid] = op
            return op, plan
        return None

    def _undo_place(self, op: PlacedOp, new_comms: list[PlacedComm]) -> None:
        """Roll back a placement the policy vetoed."""
        assert self.mrt is not None
        if op.instr.fu_class is not FUClass.NONE:
            self.mrt.fu_remove(op.start, op.instr.fu_class, op.cluster)
        for comm in new_comms:
            self.mrt.bus_remove(comm.start)
            self.comms.remove(comm)
            key = (comm.producer_uid, comm.dst_cluster)
            if self._comm_index.get(key) is comm:
                del self._comm_index[key]
        del self.placed[op.instr.uid]

    def _placed_neighbours(self, uid: int) -> list[int]:
        """Placed DDG neighbours of ``uid`` (the nodes pinning its window)."""
        neighbours: dict[int, None] = {}
        for edge in self.ddg.preds[uid]:
            if edge.src != uid and edge.src in self.placed:
                neighbours[edge.src] = None
        for edge in self.ddg.succs[uid]:
            if edge.dst != uid and edge.dst in self.placed:
                neighbours[edge.dst] = None
        return list(neighbours)

    def _eject(self, uid: int) -> None:
        """Unplace a node: free its FU slot and producer-side comms."""
        assert self.mrt is not None
        op = self.placed.pop(uid)
        if op.instr.fu_class is not FUClass.NONE:
            self.mrt.fu_remove(op.start, op.instr.fu_class, op.cluster)
        self._cluster_ops[op.cluster] -= 1
        key = (op.cluster, op.instr.fu_class)
        self._cluster_fu_ops[key] -= 1
        for comm in [c for c in self.comms if c.producer_uid == uid]:
            self.mrt.bus_remove(comm.start)
            self.comms.remove(comm)
            index_key = (comm.producer_uid, comm.dst_cluster)
            if self._comm_index.get(index_key) is comm:
                del self._comm_index[index_key]
        if op.instr.is_memory:
            self.policy.ejected(op, self)

    def _plan_comms(
        self, instr: Instruction, cluster: int, start: int, latency: int, ii: int
    ) -> list[PlacedComm] | None:
        """Bus transfers needed if ``instr`` starts at ``start`` in ``cluster``.

        Returns the list of *new* comms (existing ones are reused when
        their arrival meets the deadline), or None if any transfer cannot
        be placed on a bus in time.
        """
        assert self.mrt is not None
        bus = self.config.bus_latency
        new_comms: dict[tuple[int, int], PlacedComm] = {}
        pending_bus_rows: dict[int, int] = {}

        def bus_free(cycle: int) -> bool:
            row = cycle % ii
            extra = pending_bus_rows.get(row, 0)
            return self.mrt.free(cycle, BUS) - extra > 0

        def reserve(comm: PlacedComm) -> None:
            row = comm.start % ii
            pending_bus_rows[row] = pending_bus_rows.get(row, 0) + 1
            new_comms[(comm.producer_uid, comm.dst_cluster)] = comm

        # Values arriving from producers in other clusters.
        for edge in self.ddg.preds[instr.uid]:
            if edge.kind is not DepKind.REG:
                continue
            src_op = self.placed.get(edge.src)
            if src_op is None or src_op.cluster == cluster:
                continue
            deadline = start + ii * edge.distance
            key = (edge.src, cluster)
            existing = self._comm_index.get(key)
            if existing is not None and existing.start + existing.latency <= deadline:
                continue
            planned = new_comms.get(key)
            if planned is not None and planned.start + planned.latency <= deadline:
                continue
            produce = src_op.start + self._edge_latency(edge, instr.uid, latency)
            comm = self._find_bus_slot(produce, deadline - bus, src_op.cluster, cluster,
                                       edge.src, ii, bus_free)
            if comm is None:
                return None
            reserve(comm)

        # Values this instruction produces for consumers in other clusters.
        if instr.dest is not None:
            for edge in self.ddg.succs[instr.uid]:
                if edge.kind is not DepKind.REG:
                    continue
                dst_op = self.placed.get(edge.dst)
                if dst_op is None or dst_op.cluster == cluster:
                    continue
                deadline = dst_op.start + ii * edge.distance
                key = (instr.uid, dst_op.cluster)
                planned = new_comms.get(key)
                if planned is not None and planned.start + planned.latency <= deadline:
                    continue
                produce = start + self._edge_latency(edge, instr.uid, latency)
                comm = self._find_bus_slot(produce, deadline - bus, cluster,
                                           dst_op.cluster, instr.uid, ii, bus_free)
                if comm is None:
                    return None
                reserve(comm)

        return list(new_comms.values())

    def _find_bus_slot(
        self,
        not_before: int,
        not_after: int,
        src_cluster: int,
        dst_cluster: int,
        producer_uid: int,
        ii: int,
        bus_free,
    ) -> PlacedComm | None:
        if not_after < not_before:
            return None
        # Scanning II consecutive cycles covers every kernel row.
        last = min(not_after, not_before + ii - 1)
        for cycle in range(not_before, last + 1):
            if bus_free(cycle):
                return PlacedComm(
                    producer_uid=producer_uid,
                    dst_cluster=dst_cluster,
                    src_cluster=src_cluster,
                    start=cycle,
                    latency=self.config.bus_latency,
                )
        return None

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def _normalize(self, schedule: ModuloSchedule) -> None:
        """Shift all times so the earliest op starts at cycle 0."""
        starts = [op.start for op in schedule.all_placed_ops()]
        starts.extend(c.start for c in schedule.comms)
        starts.extend(p.start for p in schedule.prefetches)
        shift = -min(starts)
        if shift == 0:
            return
        for op in schedule.all_placed_ops():
            op.start += shift
        for comm in schedule.comms:
            comm.start += shift
        for prefetch in schedule.prefetches:
            prefetch.start += shift
