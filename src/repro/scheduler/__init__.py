"""Cluster-aware modulo scheduling: BASE algorithm + L0-aware extension."""

from .coherence import CoherenceScheme, SetState
from .driver import (
    CompiledLoop,
    choose_unroll_factor,
    compile_loop,
    estimate_compute_time,
)
from .engine import ClusterScheduler
from .exact import ExactScheduler
from .l0policy import L0Policy
from .mii import compute_mii, rec_mii, res_mii
from .mrt import ModuloReservationTable
from .policies import InterleavedPolicy, MemoryPolicy, MultiVLIWPolicy, UnifiedPolicy
from .regpressure import ValueLifetime, fits_register_file, max_live, value_lifetimes
from .schedule import (
    ModuloSchedule,
    PlacedComm,
    PlacedOp,
    PlacedPrefetch,
    SchedulingError,
)
from .sms import Direction, sms_order

__all__ = [
    "ClusterScheduler",
    "CoherenceScheme",
    "CompiledLoop",
    "Direction",
    "ExactScheduler",
    "InterleavedPolicy",
    "L0Policy",
    "MemoryPolicy",
    "ModuloReservationTable",
    "ModuloSchedule",
    "MultiVLIWPolicy",
    "PlacedComm",
    "PlacedOp",
    "PlacedPrefetch",
    "SchedulingError",
    "SetState",
    "UnifiedPolicy",
    "ValueLifetime",
    "choose_unroll_factor",
    "fits_register_file",
    "max_live",
    "value_lifetimes",
    "compile_loop",
    "compute_mii",
    "estimate_compute_time",
    "rec_mii",
    "res_mii",
    "sms_order",
]
