"""Intra-loop coherence policies for memory-dependent sets (paper §4.1).

A memory-dependent set S_i that mixes loads and stores can go stale in
L0 buffers: a store only updates its *local* L0 and L1, never remote L0
buffers.  The paper's three software policies:

* **NL0** ("not use L0") — every member bypasses L0 and is scheduled
  with the L1 latency; the only copy of the data lives in L1.
* **1C** ("one cluster") — stores, and loads scheduled with the L0
  latency, all go to one designated cluster; L1-latency loads may go
  anywhere (L1 is always up to date).
* **PSR** ("partial store replication") — each store is replicated in
  all N clusters.  One *primary* instance performs the store (updates
  its local L0 and L1); the others only invalidate matching entries in
  their local L0.  Loads then schedule freely with either latency.
  The paper measures that code specialisation removes the big dependent
  sets that would favour PSR, so the production scheduler only picks
  between NL0 and 1C; PSR stays available for the ablation bench.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CoherenceScheme(enum.Enum):
    NL0 = "nl0"
    ONE_CLUSTER = "1c"
    PSR = "psr"


@dataclass
class SetState:
    """Scheduling-time state of one coherence-constrained dependent set."""

    members: frozenset[int]
    scheme: CoherenceScheme | None = None
    cluster: int | None = None  # designated cluster under 1C
    #: uids of member loads currently planned with the L0 latency.
    l0_loads: set[int] = field(default_factory=set)

    def decide(self, scheme: CoherenceScheme) -> None:
        if self.scheme is None:
            self.scheme = scheme

    @property
    def decided(self) -> bool:
        return self.scheme is not None
