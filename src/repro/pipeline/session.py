"""Session: the cache-aware front door to the simulation pipeline.

A :class:`Session` owns a :class:`~repro.pipeline.cache.ResultCache` and
an executor and exposes two operations:

* :meth:`Session.run` — one request, served from the cache or simulated;
* :meth:`Session.run_many` — a batch: deduplicates by content key,
  checks the cache, fans the misses out through the executor (the
  parallel path), stores them, and returns results in request order.

``session.simulations`` counts actual simulator executions, so tests
and users can assert cache behaviour ("a second identical sweep
performs zero new simulations").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..machine.config import MachineConfig
from ..sim.runner import SimOptions
from ..sim.stats import ProgramResult
from .cache import ResultCache
from .executor import RunRequest, execute_request, make_executor


class Session:
    def __init__(
        self,
        *,
        options: SimOptions | None = None,
        cache: ResultCache | None = None,
        workers: int | None = None,
        executor=None,
    ) -> None:
        self.options = options or SimOptions()
        self.cache = cache if cache is not None else ResultCache()
        self.executor = executor if executor is not None else make_executor(workers)
        #: number of simulator executions performed by this session
        self.simulations = 0
        #: distinct requests served from a pre-existing cache entry (work
        #: this session avoided); re-reads of a result the session itself
        #: produced or already served are not counted
        self.cache_hits = 0
        self._seen: set[str] = set()

    def request(
        self,
        benchmark: str,
        config: MachineConfig,
        options: SimOptions | None = None,
    ) -> RunRequest:
        """Build a request, defaulting to the session's options."""
        return RunRequest(benchmark, config, options or self.options)

    def run(self, request: RunRequest) -> ProgramResult:
        key = request.key
        result = self.cache.get(key)
        if result is None:
            result = execute_request(request)
            self.simulations += 1
            self.cache.put(key, result)
        elif key not in self._seen:
            self.cache_hits += 1
        self._seen.add(key)
        return result

    def run_many(self, requests: Iterable[RunRequest]) -> list[ProgramResult]:
        """Serve a batch, simulating only the distinct uncached requests."""
        requests = list(requests)
        keys = [r.key for r in requests]
        resolved: dict[str, ProgramResult] = {}
        missing: dict[str, RunRequest] = {}
        for key, request in zip(keys, requests):
            if key in resolved or key in missing:
                continue
            cached = self.cache.get(key)
            if cached is None:
                missing[key] = request
            else:
                if key not in self._seen:
                    self.cache_hits += 1
                resolved[key] = cached
            self._seen.add(key)
        if missing:
            fresh = self.executor.map(list(missing.values()))
            self.simulations += len(missing)
            for key, result in zip(missing, fresh):
                self.cache.put(key, result)
                resolved[key] = result
        return [resolved[key] for key in keys]

    def prefetch(self, requests: Sequence[RunRequest]) -> None:
        """Warm the cache for a batch (run_many with the results ignored)."""
        self.run_many(requests)
