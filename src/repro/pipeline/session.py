"""Session: the cache-aware front door to the simulation pipeline.

A :class:`Session` owns a :class:`~repro.pipeline.cache.ResultCache` and
an executor and exposes two operations:

* :meth:`Session.run` — one request, served from the cache or simulated;
* :meth:`Session.run_many` — a batch: deduplicates by content key,
  checks the cache, fans the misses out through the executor (the
  parallel path), stores them, and returns results in request order.

``session.simulations`` counts actual simulator executions, so tests
and users can assert cache behaviour ("a second identical sweep
performs zero new simulations").

:meth:`Session.close` (or the context-manager form) flushes buffered
store-manifest updates and — opt-in via ``gc_max_bytes`` — bounds the
on-disk stores with the LRU garbage collector on teardown.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..machine.config import MachineConfig
from ..sim.runner import SimOptions
from ..sim.stats import ProgramResult
from .cache import ResultCache, code_fingerprint
from .executor import RunRequest, describe_request, execute_request, make_executor


class Session:
    def __init__(
        self,
        *,
        options: SimOptions | None = None,
        cache: ResultCache | None = None,
        workers: int | None = None,
        executor=None,
        gc_max_bytes: int | None = None,
    ) -> None:
        self.options = options or SimOptions()
        self.cache = cache if cache is not None else ResultCache()
        self.executor = executor if executor is not None else make_executor(workers)
        #: number of simulator executions performed by this session
        self.simulations = 0
        #: distinct requests served from a pre-existing cache entry (work
        #: this session avoided); re-reads of a result the session itself
        #: produced or already served are not counted
        self.cache_hits = 0
        #: opt-in: bound the result store to this many bytes on close()
        self.gc_max_bytes = gc_max_bytes
        self._seen: set[str] = set()

    def request(
        self,
        benchmark: str,
        config: MachineConfig,
        options: SimOptions | None = None,
    ) -> RunRequest:
        """Build a request, defaulting to the session's options."""
        return RunRequest(benchmark, config, options or self.options)

    def run(self, request: RunRequest) -> ProgramResult:
        key = request.key
        result = self.cache.get(key)
        if result is None:
            result = execute_request(request)
            self.simulations += 1
            self.cache.put(key, result, description=describe_request(request))
        elif key not in self._seen:
            self.cache_hits += 1
        self._seen.add(key)
        return result

    def run_many(self, requests: Iterable[RunRequest]) -> list[ProgramResult]:
        """Serve a batch, simulating only the distinct uncached requests."""
        requests = list(requests)
        keys = [r.key for r in requests]
        resolved: dict[str, ProgramResult] = {}
        missing: dict[str, RunRequest] = {}
        for key, request in zip(keys, requests):
            if key in resolved or key in missing:
                continue
            cached = self.cache.get(key)
            if cached is None:
                missing[key] = request
            else:
                if key not in self._seen:
                    self.cache_hits += 1
                resolved[key] = cached
            self._seen.add(key)
        if missing:
            fresh = self.executor.map(list(missing.values()))
            self.simulations += len(missing)
            for (key, request), result in zip(missing.items(), fresh):
                self.cache.put(key, result, description=describe_request(request))
                resolved[key] = result
        return [resolved[key] for key in keys]

    def prefetch(self, requests: Sequence[RunRequest]) -> None:
        """Warm the cache for a batch (run_many with the results ignored)."""
        self.run_many(requests)

    def close(self) -> list:
        """Teardown: flush manifests; optionally GC both on-disk stores.

        With ``gc_max_bytes`` set, the result store *and* the compile
        store this session's options point at are bounded by the LRU
        policy, and entries from other code fingerprints are
        orphan-swept (their keys mix the fingerprint, so this session
        could never have hit them).  No grace period: entries the
        session itself just wrote are fair game — bounding on exit is
        the point.  Without the knob, only buffered recency updates are
        persisted.  Idempotent; safe on memory-only caches.  Returns
        the :class:`GCReport` per store (empty list when not GCing).
        """
        from .compilecache import get_compile_cache

        compile_cache = get_compile_cache(self.options.compile_cache_dir)
        if self.gc_max_bytes is None:
            self.cache.flush()
            compile_cache.flush()
            return []
        keep = {code_fingerprint()}
        return [
            cache.gc(max_bytes=self.gc_max_bytes, keep_fingerprints=keep)
            for cache in (self.cache, compile_cache)
        ]

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
