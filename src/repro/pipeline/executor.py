"""Serial and process-parallel execution of simulation requests.

A :class:`RunRequest` names a benchmark (rebuilt inside the worker, so
only small config/options objects cross process boundaries) plus the
machine configuration and simulation options.  Executors map a request
list to results *in request order*, which — together with the
deterministic simulator — makes serial and parallel execution produce
identical result rows.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..machine.config import MachineConfig
from ..sim.runner import SimOptions
from ..sim.stats import ProgramResult
from .cache import cache_key, describe_config, describe_options


@dataclass(frozen=True)
class RunRequest:
    """One benchmark x configuration simulation to perform."""

    benchmark: str
    config: MachineConfig
    options: SimOptions = field(default_factory=SimOptions)

    @property
    def key(self) -> str:
        return cache_key(self.benchmark, self.config, self.options)


def describe_request(request: RunRequest) -> dict:
    """Human-readable description of one run: what someone needs to
    recognise it (benchmark, scheduler, non-default config/options).
    Used for store-manifest rows and dead-letter records alike."""
    return {
        "benchmark": request.benchmark,
        "scheduler": request.options.scheduler,
        "config": describe_config(request.config),
        "options": describe_options(request.options),
    }


class RequestError(RuntimeError):
    """A worker-side failure tagged with the request that caused it.

    Raw exceptions surfaced through ``executor.map`` are useless for a
    sweep operator: a ``KeyError`` from a pool worker names neither the
    benchmark nor the configuration that blew up.  ``execute_request``
    wraps every failure in this type, carrying the content key and the
    human description, so retry layers can file an actionable
    dead-letter record.  All state rides in ``args`` so the exception
    pickles across process boundaries intact.
    """

    def __init__(
        self, key: str, description: dict, cause_type: str, cause_message: str
    ) -> None:
        super().__init__(key, description, cause_type, cause_message)
        self.key = key
        self.description = description
        self.cause_type = cause_type
        self.cause_message = cause_message

    def __str__(self) -> str:
        what = self.description.get("benchmark", "?")
        return (
            f"{self.cause_type}: {self.cause_message} "
            f"(job {self.key[:12]}, benchmark {what!r}, {self.description})"
        )


def execute_request(request: RunRequest) -> ProgramResult:
    """Compile and simulate one request (module-level: picklable).

    Failures are re-raised as :class:`RequestError` so the originating
    job key and configuration survive the trip back through a process
    pool (the raw exception stays chained as ``__cause__`` locally).
    """
    from ..sim.runner import run_program
    from ..workloads.mediabench import build

    try:
        return run_program(
            build(request.benchmark), request.config, options=request.options
        )
    except Exception as exc:
        raise RequestError(
            request.key, describe_request(request), type(exc).__name__, str(exc)
        ) from exc


class SerialExecutor:
    """Runs jobs one after another in this process."""

    workers = 1

    def map(self, requests, fn=execute_request) -> list:
        return [fn(r) for r in requests]


class ParallelExecutor:
    """Fans jobs out across worker processes.

    ``fn`` must be a module-level (picklable) callable; jobs cross the
    process boundary pickled.  Results come back in request order
    (``ProcessPoolExecutor.map``), so swapping this in for
    :class:`SerialExecutor` changes wall-clock time and nothing else.
    The pool is created lazily and reused across batches — one worker
    startup per sweep, not per figure (this matters on spawn-based
    platforms, where each worker re-imports the package).
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers or os.cpu_count() or 1
        self._pool: ProcessPoolExecutor | None = None

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            atexit.register(self.shutdown)
        return self._pool

    def map(self, requests, fn=execute_request) -> list:
        requests = list(requests)
        if len(requests) <= 1 or self.workers <= 1:
            return SerialExecutor().map(requests, fn)
        return list(self._get_pool().map(fn, requests))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def make_executor(workers: int | None):
    """``None``/0/1 -> serial; N>1 -> N processes; negative -> all cores."""
    if workers is None or workers in (0, 1):
        return SerialExecutor()
    if workers < 0:
        return ParallelExecutor()
    return ParallelExecutor(workers)


_SHARED_POOLS: dict[int, ParallelExecutor] = {}


def shared_executor(workers: int | None):
    """Like :func:`make_executor`, but parallel executors are process-wide
    singletons keyed by resolved worker count, so repeated callers (e.g.
    ``run_program`` once per benchmark x config of a sweep) reuse one
    pool instead of leaking one per call.  Serial executors are
    stateless and created fresh.
    """
    if workers is None or workers in (0, 1):
        return SerialExecutor()
    resolved = (os.cpu_count() or 1) if workers < 0 else workers
    executor = _SHARED_POOLS.get(resolved)
    if executor is None:
        executor = ParallelExecutor(resolved)
        _SHARED_POOLS[resolved] = executor
    return executor
