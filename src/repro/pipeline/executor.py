"""Serial and process-parallel execution of simulation requests.

A :class:`RunRequest` names a benchmark (rebuilt inside the worker, so
only small config/options objects cross process boundaries) plus the
machine configuration and simulation options.  Executors map a request
list to results *in request order*, which — together with the
deterministic simulator — makes serial and parallel execution produce
identical result rows.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..machine.config import MachineConfig
from ..sim.runner import SimOptions
from ..sim.stats import ProgramResult
from .cache import cache_key


@dataclass(frozen=True)
class RunRequest:
    """One benchmark x configuration simulation to perform."""

    benchmark: str
    config: MachineConfig
    options: SimOptions = field(default_factory=SimOptions)

    @property
    def key(self) -> str:
        return cache_key(self.benchmark, self.config, self.options)


def execute_request(request: RunRequest) -> ProgramResult:
    """Compile and simulate one request (module-level: picklable)."""
    from ..sim.runner import run_program
    from ..workloads.mediabench import build

    return run_program(build(request.benchmark), request.config, options=request.options)


class SerialExecutor:
    """Runs requests one after another in this process."""

    workers = 1

    def map(self, requests) -> list[ProgramResult]:
        return [execute_request(r) for r in requests]


class ParallelExecutor:
    """Fans requests out across worker processes.

    Results come back in request order (``ProcessPoolExecutor.map``), so
    swapping this in for :class:`SerialExecutor` changes wall-clock time
    and nothing else.  The pool is created lazily and reused across
    batches — one worker startup per sweep, not per figure (this matters
    on spawn-based platforms, where each worker re-imports the package).
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers or os.cpu_count() or 1
        self._pool: ProcessPoolExecutor | None = None

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            atexit.register(self.shutdown)
        return self._pool

    def map(self, requests) -> list[ProgramResult]:
        requests = list(requests)
        if len(requests) <= 1 or self.workers <= 1:
            return SerialExecutor().map(requests)
        return list(self._get_pool().map(execute_request, requests))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def make_executor(workers: int | None):
    """``None``/0/1 -> serial; N>1 -> N processes; negative -> all cores."""
    if workers is None or workers in (0, 1):
        return SerialExecutor()
    if workers < 0:
        return ParallelExecutor()
    return ParallelExecutor(workers)
