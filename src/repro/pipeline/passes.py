"""The pass-manager compile pipeline.

Every stage of the paper's compilation flow — unroll choice, unrolling,
memory disambiguation, DDG construction, policy selection, modulo
scheduling (which performs the L0 candidate assignment through the
policy) — is a named :class:`Pass` over a
:class:`~repro.pipeline.artifact.CompilationArtifact`.  The default
sequence reproduces the hard-wired driver exactly; new architectures or
schedulers slot in by registering a pass and naming it in a custom
sequence rather than editing the driver.

    manager = PassManager()                     # the default pipeline
    artifact = manager.run(loop, config)
    compiled = artifact.compiled()              # legacy CompiledLoop

Ordering is validated at construction time: a sequence whose pass
requires a product no earlier pass provides raises
:class:`~repro.pipeline.artifact.PassOrderError` before any work runs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import Callable, Iterable, Sequence

from ..ir import memdep
from ..ir.ddg import build_ddg
from ..ir.loop import Loop
from ..ir.unroll import unroll
from ..machine.config import ArchKind, MachineConfig
from .artifact import CompilationArtifact, CompileOptions, PassOrderError, PipelineError

#: Every attribute a pass may declare in ``config_fields``.
CONFIG_FIELD_NAMES = frozenset(f.name for f in dataclass_fields(MachineConfig))


@dataclass(frozen=True)
class Pass:
    """One named pipeline stage.

    ``requires``/``provides`` name artifact product fields; they drive
    the static ordering validation in :class:`PassManager`.

    ``config_fields`` declares which :class:`MachineConfig` attributes
    the pass reads — its *config dependency set*.  ``None`` means
    undeclared (the pass may read anything; its outputs can only be
    cached under a key covering the whole config).  A declared tuple is
    a contract: the compile cache keys the pass's products on exactly
    those fields, and the test suite runs every declared pass against a
    read-tracing config to catch an undeclared access.
    """

    name: str
    run: Callable[[CompilationArtifact], None]
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    config_fields: tuple[str, ...] | None = None

    def __call__(self, artifact: CompilationArtifact) -> None:
        artifact.require(self.name, *self.requires)
        self.run(artifact)
        artifact.trace.append(self.name)


_REGISTRY: dict[str, Pass] = {}


def register_pass(
    name: str,
    *,
    requires: Iterable[str] = (),
    provides: Iterable[str] = (),
    config_fields: Iterable[str] | None = None,
) -> Callable[[Callable[[CompilationArtifact], None]], Pass]:
    """Decorator: register ``fn`` as a named pass in the global registry."""
    known = set(CompilationArtifact.product_fields())
    bad = (set(requires) | set(provides)) - known
    if bad:
        raise PipelineError(
            f"pass {name!r} names unknown artifact fields {sorted(bad)}"
        )
    if config_fields is not None:
        unknown = set(config_fields) - CONFIG_FIELD_NAMES
        if unknown:
            raise PipelineError(
                f"pass {name!r} declares unknown config fields {sorted(unknown)}"
            )
        config_fields = tuple(sorted(config_fields))

    def decorate(fn: Callable[[CompilationArtifact], None]) -> Pass:
        if name in _REGISTRY:
            raise PipelineError(f"pass {name!r} already registered")
        p = Pass(
            name=name,
            run=fn,
            requires=tuple(requires),
            provides=tuple(provides),
            config_fields=config_fields,
        )
        _REGISTRY[name] = p
        return p

    return decorate


def get_pass(name: str) -> Pass:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PipelineError(
            f"unknown pass {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_passes() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# The default passes (the paper's compilation flow, sections 4-5)
# ----------------------------------------------------------------------


@register_pass(
    "select-unroll",
    provides=("unroll_factor",),
    # The static compute-time estimate = max(resource MII, recurrence
    # MII): FU mix x cluster count, op latencies, and the L1 load
    # latency every load is charged in the architecture-neutral DDG.
    config_fields=(
        "n_clusters",
        "int_units_per_cluster",
        "mem_units_per_cluster",
        "fp_units_per_cluster",
        "l1_latency",
        "op_latencies",
    ),
)
def _select_unroll(artifact: CompilationArtifact) -> None:
    """Step 1: pick 1 or N via the static compute-time estimate."""
    from ..scheduler.driver import choose_unroll_factor

    forced = artifact.options.unroll_factor
    artifact.unroll_factor = (
        choose_unroll_factor(artifact.loop, artifact.config)
        if forced is None
        else forced
    )


@register_pass(
    "apply-unroll", requires=("unroll_factor",), provides=("body",), config_fields=()
)
def _apply_unroll(artifact: CompilationArtifact) -> None:
    artifact.body = unroll(artifact.loop, artifact.unroll_factor)


@register_pass(
    "mem-disambiguation", requires=("body",), provides=("dep_info",), config_fields=()
)
def _mem_disambiguation(artifact: CompilationArtifact) -> None:
    artifact.dep_info = memdep.analyze(artifact.body)


@register_pass(
    "build-ddg",
    requires=("body", "dep_info"),
    provides=("ddg",),
    # Fixed producer latencies for non-load ops; load latencies stay
    # symbolic in the DDG (resolved by the backend against L0/L1).
    config_fields=("op_latencies",),
)
def _build_ddg(artifact: CompilationArtifact) -> None:
    artifact.ddg = build_ddg(artifact.body, artifact.config, artifact.dep_info)


@register_pass("select-policy", requires=("body", "dep_info"), provides=("policy",))
def _select_policy(artifact: CompilationArtifact) -> None:
    artifact.policy = make_policy(
        artifact.body, artifact.config, artifact.dep_info, artifact.options
    )


@register_pass("modulo-schedule", requires=("ddg", "policy"), provides=("schedule",))
def _modulo_schedule(artifact: CompilationArtifact) -> None:
    """Cluster-aware SMS; the policy performs L0/mapping assignment."""
    from ..scheduler.engine import ClusterScheduler

    # Guard the default pipeline against silently ignoring a scheduler
    # request: options asking for a different registered backend must
    # not fall through to SMS.  (Explicitly naming exact-schedule in a
    # custom sequence remains an explicit choice and is not guarded.)
    requested = artifact.options.scheduler
    if SCHEDULER_PASSES.get(requested, "modulo-schedule") != "modulo-schedule":
        raise PipelineError(
            f"options request scheduler {requested!r} but this pipeline runs "
            "'modulo-schedule'; build the pipeline via backend_pipeline"
            f"({requested!r}) or compile through compile_cached/compile_loop"
        )
    engine = ClusterScheduler(artifact.ddg, artifact.config, artifact.policy)
    artifact.schedule = engine.schedule()
    artifact.schedule.meta.setdefault("scheduler", "sms")


@register_pass("exact-schedule", requires=("ddg", "policy"), provides=("schedule",))
def _exact_schedule(artifact: CompilationArtifact) -> None:
    """Exact CP/branch-and-bound modulo scheduling (SMS fallback).

    Runs the heuristic engine first (fallback + upper bound), then
    searches every II in ``[MII, II(SMS) - 1]`` within the configured
    node/time budget; ``artifact.schedule.meta`` records the outcome.
    """
    from ..scheduler.exact import ExactScheduler

    engine = ExactScheduler(
        artifact.ddg,
        artifact.config,
        artifact.policy,
        node_budget=artifact.options.exact_node_budget,
        max_stages=artifact.options.exact_max_stages,
        time_budget_s=artifact.options.exact_time_budget_s,
    )
    artifact.schedule = engine.schedule()


@register_pass("analyze", requires=("ddg", "schedule"), provides=("analysis",))
def _analyze(artifact: CompilationArtifact) -> None:
    """Opt-in: certify the schedule with the independent static checker.

    Appended to a pipeline (or triggered via ``options.analyze`` on the
    cached compile path) after a scheduler pass; the findings land in
    ``artifact.analysis`` and the verdict in ``schedule.meta``.
    """
    from ..analysis.certify import certify_schedule

    artifact.analysis = certify_schedule(artifact.schedule, artifact.ddg)


def make_policy(
    loop: Loop,
    config: MachineConfig,
    dep_info: memdep.MemDepInfo,
    options: CompileOptions,
):
    """Instantiate the memory policy matching the target architecture."""
    from ..scheduler.l0policy import L0Policy
    from ..scheduler.policies import InterleavedPolicy, MultiVLIWPolicy, UnifiedPolicy

    if config.arch is ArchKind.UNIFIED:
        return UnifiedPolicy(loop, config)
    if config.arch is ArchKind.L0:
        return L0Policy(
            loop,
            config,
            dep_info,
            all_candidates=options.all_candidates,
            allow_psr=options.allow_psr,
            prefetch_distance=options.prefetch_distance,
        )
    if config.arch is ArchKind.MULTIVLIW:
        return MultiVLIWPolicy(loop, config)
    if config.arch is ArchKind.INTERLEAVED:
        return InterleavedPolicy(loop, config, heuristic=options.interleaved_heuristic)
    raise ValueError(f"unknown architecture {config.arch}")


#: The paper's flow, in order.
DEFAULT_PIPELINE: tuple[str, ...] = (
    "select-unroll",
    "apply-unroll",
    "mem-disambiguation",
    "build-ddg",
    "select-policy",
    "modulo-schedule",
)

#: The architecture-agnostic prefix of the flow: unroll choice through
#: DDG construction.  These stages read only the core parameters of the
#: machine (cluster count, FU mix, op/L1 latencies), never the memory
#: subsystem, which is what lets the compile cache share their products
#: across every L0 size of a Figure-5 sweep.
FRONTEND_PIPELINE: tuple[str, ...] = DEFAULT_PIPELINE[:4]

#: The architecture-specific suffix: policy selection + modulo
#: scheduling (where L0 candidate assignment happens).
BACKEND_PIPELINE: tuple[str, ...] = DEFAULT_PIPELINE[4:]


@functools.lru_cache(maxsize=1)
def frontend_config_fields() -> tuple[str, ...]:
    """The frontend's config dependency set, derived from the passes.

    The union of every :data:`FRONTEND_PIPELINE` pass's declared
    ``config_fields`` — this is what the compile cache keys shared
    frontend artifacts on.  Derivation replaces the old hand-maintained
    ``FRONTEND_CONFIG_FIELDS`` tuple: a new frontend pass (or a new
    config read in an existing one) must *declare* its dependencies, or
    it cannot join the frontend at all.  Cached: the pipeline tuple is
    fixed and registered passes are immutable, so the union cannot
    change after import (and ``frontend_key`` calls this per compile).
    """
    fields_ = PassManager(FRONTEND_PIPELINE).config_fields
    if fields_ is None:
        undeclared = [
            name for name in FRONTEND_PIPELINE if get_pass(name).config_fields is None
        ]
        raise PipelineError(
            f"frontend passes {undeclared} do not declare config_fields; "
            "every frontend pass must, so the shared frontend cache key "
            "can cover exactly what the prefix reads"
        )
    return fields_


class _TracingConfig(MachineConfig):
    """A MachineConfig clone that records every field read.

    Built by :func:`traced_config`; the test suite compiles through one
    of these to prove each pass's declared ``config_fields`` covers
    every attribute it actually touches (reads made via properties and
    helper methods like ``latency_of`` resolve to field accesses and
    are captured too).
    """

    def __getattribute__(self, name: str):
        if name in CONFIG_FIELD_NAMES:
            try:
                object.__getattribute__(self, "_accessed").add(name)
            except AttributeError:
                pass  # during __init__/__post_init__, before attachment
        return object.__getattribute__(self, name)


def traced_config(config: MachineConfig) -> tuple[MachineConfig, set[str]]:
    """A functional clone of ``config`` plus a live set of fields read."""
    clone = _TracingConfig(
        **{f.name: getattr(config, f.name) for f in dataclass_fields(MachineConfig)}
    )
    accessed: set[str] = set()
    object.__setattr__(clone, "_accessed", accessed)  # frozen dataclass
    return clone, accessed

#: Scheduler backends: ``CompileOptions.scheduler`` value -> the name of
#: the registered pass that provides ``schedule``.  A third backend
#: plugs in with ``@register_pass("my-schedule", requires=("ddg",
#: "policy"), provides=("schedule",))`` + ``register_scheduler("mine",
#: "my-schedule")`` — the compile cache, ``compile_loop(scheduler=...)``
#: and the eval CLI pick it up through this table.
SCHEDULER_PASSES: dict[str, str] = {
    "sms": "modulo-schedule",
    "exact": "exact-schedule",
}


def register_scheduler(name: str, pass_name: str) -> None:
    """Expose a registered schedule-providing pass as a scheduler backend."""
    if name in SCHEDULER_PASSES:
        raise PipelineError(f"scheduler {name!r} already registered")
    p = get_pass(pass_name)  # raises for unknown passes
    if "schedule" not in p.provides:
        raise PipelineError(
            f"pass {pass_name!r} does not provide 'schedule'; cannot back a scheduler"
        )
    SCHEDULER_PASSES[name] = pass_name


def backend_pipeline(scheduler: str = "sms") -> tuple[str, ...]:
    """The backend pass sequence for one scheduler backend."""
    try:
        pass_name = SCHEDULER_PASSES[scheduler]
    except KeyError:
        raise PipelineError(
            f"unknown scheduler {scheduler!r}; registered: {sorted(SCHEDULER_PASSES)}"
        ) from None
    return ("select-policy", pass_name)


class PassManager:
    """An ordered, validated sequence of passes.

    Accepts pass names (resolved in the registry) or :class:`Pass`
    objects; validates at construction that each pass's ``requires`` is
    covered by the union of earlier passes' ``provides``.  ``assume``
    names products an incoming artifact is expected to already carry —
    it lets a manager holding only the tail of a pipeline (e.g. the
    backend passes resumed over a cached frontend artifact) validate.
    """

    def __init__(
        self,
        passes: Sequence[str | Pass] | None = None,
        *,
        assume: Iterable[str] = (),
    ) -> None:
        chosen = DEFAULT_PIPELINE if passes is None else passes
        self.passes: tuple[Pass, ...] = tuple(
            p if isinstance(p, Pass) else get_pass(p) for p in chosen
        )
        self.assume = frozenset(assume)
        self._validate()

    def _validate(self) -> None:
        provided: set[str] = set(self.assume)
        for p in self.passes:
            missing = set(p.requires) - provided
            if missing:
                raise PassOrderError(
                    f"pass {p.name!r} requires {sorted(missing)} but the "
                    f"preceding passes only provide {sorted(provided)}"
                )
            provided |= set(p.provides)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    @property
    def config_fields(self) -> tuple[str, ...] | None:
        """Union of the passes' declared config dependency sets.

        ``None`` if any pass in the sequence is undeclared — such a
        sequence's products can only be keyed on the whole config.
        """
        out: set[str] = set()
        for p in self.passes:
            if p.config_fields is None:
                return None
            out.update(p.config_fields)
        return tuple(sorted(out))

    def run(
        self,
        loop: Loop,
        config: MachineConfig,
        options: CompileOptions | None = None,
    ) -> CompilationArtifact:
        artifact = CompilationArtifact(
            loop=loop, config=config, options=options or CompileOptions()
        )
        return self.resume(artifact)

    def resume(self, artifact: CompilationArtifact) -> CompilationArtifact:
        """Run this manager's passes over an existing artifact.

        Used to continue a pipeline from a cached prefix: the artifact
        already carries the products the earlier (skipped) passes would
        have produced; each pass still checks its own ``requires``.
        """
        for p in self.passes:
            p(artifact)
        return artifact


_DEFAULT_MANAGER: PassManager | None = None


def default_pass_manager() -> PassManager:
    """The shared, pre-validated default pipeline (hot compile path)."""
    global _DEFAULT_MANAGER
    if _DEFAULT_MANAGER is None:
        _DEFAULT_MANAGER = PassManager()
    return _DEFAULT_MANAGER
