"""Pipeline subsystem: pass-managed compilation, cached + parallel runs.

Three layers, consumed bottom-up by the rest of the stack:

* **Pass manager** (:mod:`.passes`, :mod:`.artifact`) — the compile flow
  as named, registered passes over a :class:`CompilationArtifact`;
  ``repro.scheduler.compile_loop`` is now a thin wrapper over it.
* **Result cache** (:mod:`.cache`) — content-addressed
  ``(benchmark, MachineConfig, SimOptions)`` -> :class:`ProgramResult`
  store with an optional on-disk JSON mirror.
* **Executor + session** (:mod:`.executor`, :mod:`.session`) — serial or
  process-parallel fan-out of simulation requests behind the cache;
  ``repro.eval.ExperimentContext`` runs everything through a session.
"""

from .artifact import (
    CompilationArtifact,
    CompileOptions,
    PassOrderError,
    PipelineError,
)
from .cache import (
    ResultCache,
    cache_key,
    code_fingerprint,
    decode_result,
    encode_result,
    result_fingerprint,
)
from .executor import (
    ParallelExecutor,
    RunRequest,
    SerialExecutor,
    execute_request,
    make_executor,
)
from .passes import (
    DEFAULT_PIPELINE,
    Pass,
    PassManager,
    available_passes,
    default_pass_manager,
    get_pass,
    make_policy,
    register_pass,
)
from .session import Session

__all__ = [
    "DEFAULT_PIPELINE",
    "CompilationArtifact",
    "CompileOptions",
    "ParallelExecutor",
    "Pass",
    "PassManager",
    "PassOrderError",
    "PipelineError",
    "ResultCache",
    "RunRequest",
    "SerialExecutor",
    "Session",
    "available_passes",
    "cache_key",
    "code_fingerprint",
    "decode_result",
    "default_pass_manager",
    "encode_result",
    "execute_request",
    "get_pass",
    "make_executor",
    "make_policy",
    "register_pass",
    "result_fingerprint",
]
