"""Pipeline subsystem: pass-managed compilation, cached + parallel runs.

Three layers, consumed bottom-up by the rest of the stack:

* **Pass manager** (:mod:`.passes`, :mod:`.artifact`) — the compile flow
  as named, registered passes over a :class:`CompilationArtifact`;
  ``repro.scheduler.compile_loop`` is now a thin wrapper over it.
* **Result cache** (:mod:`.cache`) — content-addressed
  ``(benchmark, MachineConfig, SimOptions)`` -> :class:`ProgramResult`
  store with an optional on-disk JSON mirror.
* **Executor + session** (:mod:`.executor`, :mod:`.session`) — serial or
  process-parallel fan-out of simulation requests behind the cache;
  ``repro.eval.ExperimentContext`` runs everything through a session.
"""

from .artifact import (
    CompilationArtifact,
    CompileOptions,
    PassOrderError,
    PipelineError,
)
from .cache import (
    KeyedFileStore,
    ResultCache,
    cache_key,
    code_fingerprint,
    decode_result,
    encode_result,
    result_fingerprint,
)
from .compilecache import (
    CompileCacheStats,
    CompiledLoopCache,
    FrontendArtifact,
    compile_cached,
    compile_key,
    frontend_key,
    get_compile_cache,
    loop_fingerprint,
)
from .executor import (
    ParallelExecutor,
    RunRequest,
    SerialExecutor,
    execute_request,
    make_executor,
    shared_executor,
)
from .passes import (
    BACKEND_PIPELINE,
    DEFAULT_PIPELINE,
    FRONTEND_PIPELINE,
    SCHEDULER_PASSES,
    Pass,
    PassManager,
    available_passes,
    backend_pipeline,
    default_pass_manager,
    get_pass,
    make_policy,
    register_pass,
    register_scheduler,
)
from .session import Session

__all__ = [
    "BACKEND_PIPELINE",
    "DEFAULT_PIPELINE",
    "FRONTEND_PIPELINE",
    "CompilationArtifact",
    "CompileCacheStats",
    "CompileOptions",
    "CompiledLoopCache",
    "FrontendArtifact",
    "KeyedFileStore",
    "ParallelExecutor",
    "Pass",
    "PassManager",
    "PassOrderError",
    "PipelineError",
    "ResultCache",
    "RunRequest",
    "SCHEDULER_PASSES",
    "SerialExecutor",
    "Session",
    "available_passes",
    "backend_pipeline",
    "cache_key",
    "code_fingerprint",
    "compile_cached",
    "compile_key",
    "decode_result",
    "default_pass_manager",
    "encode_result",
    "execute_request",
    "frontend_key",
    "get_compile_cache",
    "get_pass",
    "loop_fingerprint",
    "make_executor",
    "make_policy",
    "register_pass",
    "register_scheduler",
    "result_fingerprint",
    "shared_executor",
]
