"""Pipeline subsystem: pass-managed compilation, cached + parallel runs.

Three layers, consumed bottom-up by the rest of the stack:

* **Pass manager** (:mod:`.passes`, :mod:`.artifact`) — the compile flow
  as named, registered passes over a :class:`CompilationArtifact`;
  ``repro.scheduler.compile_loop`` is now a thin wrapper over it.
* **Result cache** (:mod:`.cache`) — content-addressed
  ``(benchmark, MachineConfig, SimOptions)`` -> :class:`ProgramResult`
  store with an optional on-disk JSON mirror.
* **Executor + session** (:mod:`.executor`, :mod:`.session`) — serial or
  process-parallel fan-out of simulation requests behind the cache;
  ``repro.eval.ExperimentContext`` runs everything through a session.
"""

from .artifact import (
    CompilationArtifact,
    CompileOptions,
    PassOrderError,
    PipelineError,
)
from .cache import (
    RESULT_SCHEMA_VERSION,
    KeyedFileStore,
    ResultCache,
    ShardedKeyedFileStore,
    cache_key,
    code_fingerprint,
    decode_result,
    describe_config,
    describe_options,
    detect_shard_width,
    encode_result,
    result_fingerprint,
    result_schema_digest,
)
from .compilecache import (
    CompileCacheStats,
    CompiledLoopCache,
    FrontendArtifact,
    compile_cached,
    compile_key,
    drop_compile_cache,
    frontend_key,
    get_compile_cache,
    loop_fingerprint,
)
from .executor import (
    ParallelExecutor,
    RequestError,
    RunRequest,
    SerialExecutor,
    describe_request,
    execute_request,
    make_executor,
    shared_executor,
)
from .manifest import GCReport, ManifestEntry, StoreManifest, VerifyReport
from .passes import (
    BACKEND_PIPELINE,
    DEFAULT_PIPELINE,
    FRONTEND_PIPELINE,
    SCHEDULER_PASSES,
    Pass,
    PassManager,
    available_passes,
    backend_pipeline,
    default_pass_manager,
    frontend_config_fields,
    get_pass,
    make_policy,
    register_pass,
    register_scheduler,
    traced_config,
)
from .session import Session

__all__ = [
    "BACKEND_PIPELINE",
    "DEFAULT_PIPELINE",
    "FRONTEND_PIPELINE",
    "RESULT_SCHEMA_VERSION",
    "SCHEDULER_PASSES",
    "CompilationArtifact",
    "CompileCacheStats",
    "CompileOptions",
    "CompiledLoopCache",
    "FrontendArtifact",
    "GCReport",
    "KeyedFileStore",
    "ManifestEntry",
    "ParallelExecutor",
    "Pass",
    "PassManager",
    "PassOrderError",
    "PipelineError",
    "RequestError",
    "ResultCache",
    "RunRequest",
    "SerialExecutor",
    "Session",
    "ShardedKeyedFileStore",
    "StoreManifest",
    "VerifyReport",
    "available_passes",
    "backend_pipeline",
    "cache_key",
    "code_fingerprint",
    "compile_cached",
    "compile_key",
    "decode_result",
    "default_pass_manager",
    "describe_config",
    "describe_options",
    "describe_request",
    "detect_shard_width",
    "drop_compile_cache",
    "encode_result",
    "execute_request",
    "frontend_config_fields",
    "frontend_key",
    "get_compile_cache",
    "get_pass",
    "loop_fingerprint",
    "make_executor",
    "make_policy",
    "register_pass",
    "register_scheduler",
    "result_fingerprint",
    "result_schema_digest",
    "shared_executor",
    "traced_config",
]
