"""Content-addressed cache of compile artifacts.

Compilation is deterministic: one ``(loop, MachineConfig,
CompileOptions)`` triple always produces the same ``CompiledLoop``.
Multi-architecture sweeps therefore recompile identical inputs dozens of
times — Figure 5 alone compiles every loop once per L0 size even though
the sizes only differ in the *backend* of the pipeline.  This module
memoises at both granularities:

* **Full artifacts** — ``CompiledLoop`` keyed by a content hash of the
  whole triple (plus the code fingerprint), with the same in-memory +
  optional on-disk layout as :class:`~repro.pipeline.cache.ResultCache`
  (one file per key, atomic writes, corrupt entry == miss).  The disk
  store uses pickle: a ``CompiledLoop`` is a closed graph of plain
  dataclasses and round-trips exactly.
* **Frontend artifacts** — the products of the architecture-agnostic
  prefix of the pipeline (``select-unroll`` … ``build-ddg``), keyed only
  by the loop, the *core* machine parameters those passes read, and the
  forced unroll factor.  Configs differing in backend parameters (L0
  size, bus counts, distributed-L1 latencies, …) share one entry, so a
  Figure-5 sweep runs the unroll/memdep/DDG stages once per loop, not
  once per L0 size.

Both layers store *pickled bytes*, not live objects: every hit
deserialises a private object graph, so callers may freely mutate what
they get back (the schedule-validation tests deliberately corrupt
schedules) without poisoning the cache.  A round-trip costs a fraction
of a backend schedule.  ``cache.stats`` counts hits/misses at both
layers so tests can assert "a repeated sweep recompiles nothing".
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..ir.memdep import MemDepInfo
from ..machine.config import MachineConfig
from .artifact import CompilationArtifact, CompileOptions
from .cache import (
    KeyedFileStore,
    _canonical,
    code_fingerprint,
    describe_config,
    describe_options,
)
from .manifest import GCReport, VerifyReport
from .passes import frontend_config_fields


def loop_fingerprint(loop: Loop) -> dict:
    """Canonical (JSON-able) rendering of a loop's full content."""
    return _canonical(loop)


def _digest(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def compile_key(loop: Loop, config: MachineConfig, options: CompileOptions) -> str:
    """Content hash identifying one full compilation."""
    return _digest(
        {
            "code": code_fingerprint(),
            "loop": loop_fingerprint(loop),
            "config": _canonical(config),
            "options": _canonical(options),
        }
    )


def frontend_key(loop: Loop, config: MachineConfig, options: CompileOptions) -> str:
    """Content hash of the inputs the frontend passes actually consume.

    The config projection is *derived* from the frontend passes' own
    ``config_fields`` declarations (union via
    :func:`repro.pipeline.passes.frontend_config_fields`), so a pass
    cannot silently read an unkeyed field: an undeclared read is caught
    by the tracing guard test, and a declared one widens this key
    automatically.
    """
    return _digest(
        {
            "code": code_fingerprint(),
            "loop": loop_fingerprint(loop),
            "config": {
                name: _canonical(getattr(config, name))
                for name in frontend_config_fields()
            },
            "unroll_factor": options.unroll_factor,
        }
    )


@dataclass(frozen=True)
class FrontendArtifact:
    """Products of the architecture-agnostic pipeline prefix."""

    unroll_factor: int
    body: Loop
    dep_info: MemDepInfo
    ddg: DDG


@dataclass
class CompileCacheStats:
    """Hit/miss counters at both cache granularities."""

    full_hits: int = 0
    full_misses: int = 0
    frontend_hits: int = 0
    frontend_misses: int = 0
    #: Subset of ``full_hits`` served from the on-disk store (a disk hit
    #: also records recency in the store manifest — the LRU signal).
    full_disk_hits: int = 0

    @property
    def full_memory_hits(self) -> int:
        """Full hits served without touching the disk store."""
        return self.full_hits - self.full_disk_hits

    @property
    def compilations(self) -> int:
        """Backend compilations performed (== full misses)."""
        return self.full_misses


def _probed_pickle(data: bytes) -> bytes:
    """Disk decode for the artifact store: probe, then keep the bytes.

    The in-memory layer stores pickled bytes (each hit deserialises a
    private copy), so disk entries stay as bytes too; the probe load
    makes a torn write raise — and therefore count as a miss — at read
    time instead of at first use.
    """
    pickle.loads(data)
    return data


class CompiledLoopCache:
    """In-memory compile-artifact cache with an optional pickle store.

    Mirrors :class:`~repro.pipeline.cache.ResultCache`'s layout (via the
    shared :class:`~repro.pipeline.cache.KeyedFileStore`): memory first,
    one ``<key>.pkl`` file per full artifact under ``path``, atomic
    per-process tmp writes, and a torn/corrupt/vanished entry is a
    miss, never a crash.  Frontend artifacts stay in-memory only —
    their value is intra-sweep sharing, and they are cheap relative to
    the backend schedule they feed.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._artifacts: dict[str, bytes] = {}
        self._frontends: dict[str, bytes] = {}
        self.stats = CompileCacheStats()
        self.path = Path(path) if path is not None else None
        self._store = (
            KeyedFileStore(path, ".pkl", lambda blob: blob, _probed_pickle)
            if path is not None
            else None
        )

    # -- full artifacts -------------------------------------------------

    def get(self, key: str):
        blob = self._artifacts.get(key)
        if blob is None and self._store is not None:
            blob = self._store.load(key)  # records recency in the manifest
            if blob is not None:
                self._artifacts[key] = blob
                self.stats.full_disk_hits += 1
        if blob is None:
            return None
        return pickle.loads(blob)

    def put(self, key: str, compiled, *, description: dict | None = None) -> None:
        blob = pickle.dumps(compiled)
        self._artifacts[key] = blob
        if self._store is not None:
            self._store.save(key, blob, description=description)

    # -- frontend artifacts ---------------------------------------------

    def get_frontend(self, key: str) -> FrontendArtifact | None:
        blob = self._frontends.get(key)
        return None if blob is None else pickle.loads(blob)

    def put_frontend(self, key: str, front: FrontendArtifact) -> None:
        self._frontends[key] = pickle.dumps(front)

    # -- maintenance ----------------------------------------------------

    @property
    def store(self) -> KeyedFileStore | None:
        return self._store

    def clear(self) -> None:
        """Drop all entries — only files this cache wrote."""
        self._artifacts.clear()
        self._frontends.clear()
        if self._store is not None:
            self._store.clear()

    def flush(self) -> None:
        """Persist any buffered manifest updates (recency hits)."""
        if self._store is not None:
            self._store.manifest.flush()

    def gc(self, **kwargs) -> GCReport:
        if self._store is None:
            return GCReport()
        return self._store.gc(**kwargs)

    def verify(self) -> VerifyReport:
        if self._store is None:
            return VerifyReport()
        return self._store.verify()


def compile_cached(
    loop: Loop,
    config: MachineConfig,
    options: CompileOptions | None = None,
    *,
    cache: CompiledLoopCache | None = None,
):
    """Compile a loop through the cache (the hot compile path).

    Consults the full-artifact layer first; on a miss, reuses (or
    produces) the shared frontend artifact, then runs only the backend
    passes.  Returns the legacy ``CompiledLoop``.
    """
    from .passes import FRONTEND_PIPELINE, backend_pipeline

    options = options or CompileOptions()
    backend_pipeline(options.scheduler)  # fail fast on unknown schedulers
    cache = cache if cache is not None else get_compile_cache(None)

    # A wall-clock search budget makes the exact backend's output depend
    # on machine load: such artifacts must never be served to (or from)
    # other runs, so the full-artifact layer is bypassed entirely.  The
    # frontend products stay cacheable — they are deterministic — and so
    # is the SMS backend, which never reads the knob.
    cacheable = options.exact_time_budget_s is None or options.scheduler == "sms"

    key = compile_key(loop, config, options)
    compiled = cache.get(key) if cacheable else None
    if compiled is not None:
        cache.stats.full_hits += 1
        return compiled
    cache.stats.full_misses += 1

    artifact = CompilationArtifact(loop=loop, config=config, options=options)
    fkey = frontend_key(loop, config, options)
    front = cache.get_frontend(fkey)
    if front is not None:
        cache.stats.frontend_hits += 1
        artifact.unroll_factor = front.unroll_factor
        artifact.body = front.body
        artifact.dep_info = front.dep_info
        artifact.ddg = front.ddg
        artifact.trace.extend(FRONTEND_PIPELINE)
    else:
        cache.stats.frontend_misses += 1
        _frontend_manager().resume(artifact)
        assert artifact.unroll_factor is not None
        assert artifact.body is not None
        assert artifact.dep_info is not None
        assert artifact.ddg is not None
        cache.put_frontend(
            fkey,
            FrontendArtifact(
                unroll_factor=artifact.unroll_factor,
                body=artifact.body,
                dep_info=artifact.dep_info,
                ddg=artifact.ddg,
            ),
        )
    _backend_manager(options.scheduler).resume(artifact)
    compiled = artifact.compiled()
    # Flatten the simulator's fast-path event trace now so it rides the
    # cached (and persisted) artifact: warm runs — in-memory or from
    # disk — skip both scheduling *and* trace compilation.
    from ..sim.trace import static_trace

    static_trace(compiled)
    if options.analyze:
        # Certify before the artifact is persisted so the meta verdict
        # (and any proved_optimal downgrade) rides every future hit.
        from ..analysis.certify import certify_compiled

        certify_compiled(compiled, artifact_key=key)
    if cacheable:
        cache.put(
            key,
            compiled,
            description={
                "loop": loop.name,
                "scheduler": options.scheduler,
                "config": describe_config(config),
                "options": describe_options(options),
            },
        )
    return compiled


_FRONTEND_MANAGER: "PassManager | None" = None  # noqa: F821
#: One backend manager per scheduler backend (sms / exact / plug-ins):
#: the frontend is scheduler-agnostic, so every backend resumes over the
#: same shared frontend artifacts.
_BACKEND_MANAGERS: dict[str, "PassManager"] = {}  # noqa: F821


def _frontend_manager():
    global _FRONTEND_MANAGER
    if _FRONTEND_MANAGER is None:
        from .passes import FRONTEND_PIPELINE, PassManager

        _FRONTEND_MANAGER = PassManager(FRONTEND_PIPELINE)
    return _FRONTEND_MANAGER


def _backend_manager(scheduler: str = "sms"):
    manager = _BACKEND_MANAGERS.get(scheduler)
    if manager is None:
        from .passes import PassManager, backend_pipeline

        manager = PassManager(
            backend_pipeline(scheduler),
            assume=("unroll_factor", "body", "dep_info", "ddg"),
        )
        _BACKEND_MANAGERS[scheduler] = manager
    return manager


#: Process-wide cache instances, one per directory (None == memory-only).
#: Worker processes build their own registry lazily, so parallel sweeps
#: sharing a directory share the disk layer while keeping private memory.
_CACHES: dict[str | None, CompiledLoopCache] = {}


def get_compile_cache(path: str | Path | None = None) -> CompiledLoopCache:
    """The shared compile cache for ``path`` (created on first use)."""
    key = str(path) if path is not None else None
    cache = _CACHES.get(key)
    if cache is None:
        cache = CompiledLoopCache(path)
        _CACHES[key] = cache
    return cache


def drop_compile_cache(path: str | Path | None = None) -> None:
    """Forget the process-wide instance for ``path`` (manifest flushed).

    The next :func:`get_compile_cache` starts with empty memory, so a
    warm consumer genuinely re-reads the disk store — what the cibench
    perf lane needs to measure cross-process warm starts in-process.
    """
    cache = _CACHES.pop(str(path) if path is not None else None, None)
    if cache is not None:
        cache.flush()
