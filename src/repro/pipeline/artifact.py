"""Typed state threaded through the compile pipeline.

A :class:`CompilationArtifact` starts life holding only the inputs
(loop, machine config, compile options); each registered pass fills in
one or more derived fields (unroll factor, unrolled body, memory
disambiguation, DDG, policy, schedule).  The pass manager validates —
*before* running anything — that every pass's ``requires`` set is
provided by an earlier pass, so a misordered pipeline fails fast with a
:class:`PassOrderError` instead of an ``AttributeError`` mid-compile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..ir.memdep import MemDepInfo
from ..machine.config import MachineConfig


class PipelineError(Exception):
    """Base class for pipeline construction/execution failures."""


class PassOrderError(PipelineError):
    """A pass's requirements are not met by the passes before it."""


@dataclass(frozen=True)
class CompileOptions:
    """Per-compile knobs, mirroring ``compile_loop``'s keyword surface.

    ``unroll_factor=None`` applies the paper's static heuristic; an
    integer forces that factor (tests and ablations).

    ``scheduler`` selects the backend scheduling pass (``"sms"`` — the
    heuristic engine — or ``"exact"``; see
    ``repro.pipeline.passes.SCHEDULER_PASSES``).  The ``exact_*`` knobs
    configure the exact backend's search: a node budget (placement
    trials before falling back to SMS), an optional stage horizon, and
    an optional wall-clock budget in seconds (``None`` keeps compiles
    deterministic; all three are inert under ``scheduler="sms"`` but
    still participate in compile-cache keys like every other option).

    ``analyze`` runs the independent static certifier
    (``repro.analysis``) over the finished artifact before it is cached;
    the verdict lands in ``schedule.meta["analysis"]`` and rides every
    future cache hit.
    """

    unroll_factor: int | None = None
    interleaved_heuristic: int = 1
    all_candidates: bool = False
    allow_psr: bool = False
    prefetch_distance: int = 1
    scheduler: str = "sms"
    exact_node_budget: int = 60_000
    exact_max_stages: int | None = None
    exact_time_budget_s: float | None = None
    analyze: bool = False


@dataclass
class CompilationArtifact:
    """Everything known about one loop compiling for one machine.

    Input fields are always set; product fields start as ``None`` and
    are populated by the pass that ``provides`` them.
    """

    # Inputs
    loop: Loop
    config: MachineConfig
    options: CompileOptions = field(default_factory=CompileOptions)

    # Products (filled in by passes)
    unroll_factor: int | None = None
    body: Loop | None = None
    dep_info: MemDepInfo | None = None
    ddg: DDG | None = None
    policy: object | None = None
    schedule: object | None = None
    #: ``list[repro.analysis.Diagnostic]`` once the ``analyze`` pass ran.
    analysis: object | None = None

    #: names of the passes that have run, in order (for diagnostics)
    trace: list[str] = field(default_factory=list)

    INPUT_FIELDS = ("loop", "config", "options")

    @classmethod
    def product_fields(cls) -> tuple[str, ...]:
        skip = set(cls.INPUT_FIELDS) | {"trace"}
        return tuple(f.name for f in fields(cls) if f.name not in skip)

    def require(self, pass_name: str, *names: str) -> None:
        missing = [n for n in names if getattr(self, n) is None]
        if missing:
            raise PassOrderError(
                f"pass {pass_name!r} requires {missing} but no earlier pass "
                f"produced them (ran: {self.trace})"
            )

    @property
    def policy_name(self) -> str:
        if self.policy is None:
            raise PipelineError("no policy selected yet")
        return self.policy.name

    def compiled(self) -> "CompiledLoop":  # noqa: F821 - forward ref
        """Package the finished artifact as the legacy ``CompiledLoop``."""
        from ..scheduler.driver import CompiledLoop

        self.require("compiled", "body", "ddg", "policy", "schedule", "unroll_factor")
        return CompiledLoop(
            loop=self.body,
            schedule=self.schedule,
            ddg=self.ddg,
            policy_name=self.policy_name,
            unroll_factor=self.unroll_factor,
        )
