"""Content-addressed cache of simulation results.

A run is fully determined by ``(benchmark, MachineConfig, SimOptions)``
— the simulator is deterministic (random access patterns are seeded) —
so results are keyed by a SHA-256 digest of a canonical JSON rendering
of those three values.  Experiments that share a configuration share
cache entries automatically, regardless of what display label each
experiment uses.

The cache is in-memory first with an optional on-disk JSON store
(one file per key), so sweeps can survive process restarts and be
shared between the CLI and the benchmark harness.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import json
import os
import time
from dataclasses import fields, is_dataclass
from pathlib import Path

from ..machine.config import MachineConfig
from ..sim.runner import SimOptions
from ..sim.stats import ProgramResult
from .manifest import (
    LEGACY_FINGERPRINT,
    GCReport,
    StoreManifest,
    VerifyReport,
    _is_key,
)


def _canonical(value):
    """Reduce a value to JSON-able primitives, deterministically.

    Dataclass fields carrying ``metadata={"no_cache_key": True}`` are
    excluded: they tune *how* a run executes (worker counts, cache
    directories) without changing *what* it computes, so two requests
    differing only there must share a cache entry.
    """
    if isinstance(value, enum.Enum):
        return value.name
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in fields(value)
            if not f.metadata.get("no_cache_key")
        }
    if isinstance(value, dict):
        items = {str(_canonical(k)): _canonical(v) for k, v in value.items()}
        return dict(sorted(items.items()))
    if isinstance(value, (frozenset, set)):
        return sorted(str(_canonical(v)) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for cache keying")


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources.

    Mixed into every cache key so a persisted ``--cache-dir`` can never
    serve results simulated by a different version of the compiler or
    simulator: "a run is fully determined by (benchmark, config,
    options)" only holds for a fixed code base.
    """
    root = Path(__file__).resolve().parents[1]  # the repro package
    digest = hashlib.sha256()
    for file in sorted(root.rglob("*.py")):
        digest.update(str(file.relative_to(root)).encode())
        digest.update(file.read_bytes())
    return digest.hexdigest()[:16]


def cache_key(benchmark: str, config: MachineConfig, options: SimOptions) -> str:
    """Content hash identifying one (benchmark, config, options) run."""
    payload = {
        "benchmark": benchmark,
        "code": code_fingerprint(),
        "config": _canonical(config),
        "options": _canonical(options),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# ProgramResult <-> JSON
# ----------------------------------------------------------------------


def _result_classes() -> dict[str, type]:
    from ..memory.bus import BusStats
    from ..memory.hierarchy import MemoryStats
    from ..memory.interleaved import InterleavedStats
    from ..memory.l0buffer import L0Stats
    from ..memory.l1cache import CacheStats
    from ..memory.multivliw import MSIStats
    from ..sim.stats import LoopResult, LoopRunResult

    classes = (
        ProgramResult,
        LoopResult,
        LoopRunResult,
        MemoryStats,
        L0Stats,
        CacheStats,
        BusStats,
        InterleavedStats,
        MSIStats,
    )
    return {cls.__name__: cls for cls in classes}


def encode_result(value):
    """Encode a result record (nested dataclasses of scalars) as JSON data.

    Plain dicts (``ProgramResult.meta``) are allowed with string keys;
    ``__type__`` is reserved as the dataclass tag."""
    if is_dataclass(value) and not isinstance(value, type):
        data = {f.name: encode_result(getattr(value, f.name)) for f in fields(value)}
        data["__type__"] = type(value).__name__
        return data
    if isinstance(value, dict):
        if "__type__" in value:
            raise TypeError("result dicts must not carry a __type__ key")
        return {str(k): encode_result(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_result(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} into the result store")


def decode_result(data):
    if isinstance(data, dict):
        name = data.get("__type__")
        if name is None:
            # A plain mapping (e.g. ProgramResult.meta); the top-level
            # envelope decode still insists on a ProgramResult, so a
            # tag-stripped entry is caught there as corruption.
            return {k: decode_result(v) for k, v in data.items()}
        cls = _result_classes().get(name)
        if cls is None:
            raise ValueError(f"result store references unknown type {name!r}")
        kwargs = {k: decode_result(v) for k, v in data.items() if k != "__type__"}
        return cls(**kwargs)
    if isinstance(data, list):
        return [decode_result(v) for v in data]
    return data


def result_fingerprint(result: ProgramResult) -> str:
    """Canonical byte string of one result row (executor-parity checks)."""
    return json.dumps(encode_result(result), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Result-store schema
# ----------------------------------------------------------------------

#: Version of the on-disk result-entry layout.  Entries are stored in a
#: versioned JSON envelope (schema + writer fingerprint + the explicit
#: per-dataclass stat fields), so a persisted directory stays
#: introspectable and decodable across code-fingerprint bumps as long
#: as the *schema* is unchanged.  Bump this whenever a stat dataclass
#: gains, loses or renames a field — the pinned
#: :func:`result_schema_digest` test will insist.
RESULT_SCHEMA_VERSION = 4  # v4: ProgramResult.meta provenance annotations

#: Expected value of :func:`result_schema_digest` for
#: :data:`RESULT_SCHEMA_VERSION`.  A test recomputes the digest from
#: the live dataclasses; if they drift without a version bump it fails.
RESULT_SCHEMA_DIGEST = "983bd4da05394927"


def result_schema_digest() -> str:
    """Digest of the result schema: every stat class and its fields."""
    spec = {
        name: [f.name for f in fields(cls)]
        for name, cls in sorted(_result_classes().items())
    }
    text = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _non_defaults(value, *, skip=(), structured=lambda v: "non-default") -> dict:
    """Manifest-compact field diff of a default-constructible dataclass.

    Scalar fields differing from the default are emitted verbatim;
    structured ones go through ``structured``.  Fields tagged
    ``no_cache_key`` tune *how* a run executes and are omitted,
    matching the content key.
    """
    default = type(value)()
    desc: dict = {}
    for f in fields(value):
        if f.name in skip or f.metadata.get("no_cache_key"):
            continue
        v = getattr(value, f.name)
        if v == getattr(default, f.name):
            continue
        if v is None or isinstance(v, (bool, int, float, str)):
            desc[f.name] = v
        else:
            desc[f.name] = structured(v)
    return desc


def describe_config(config: MachineConfig) -> dict:
    """Human-readable, compact rendering of a config for the manifest:
    the architecture plus every non-default field (structured fields —
    op_latencies — would bloat every row and are just flagged)."""
    return {"arch": config.arch.value, **_non_defaults(config, skip=("arch",))}


def describe_options(options) -> dict:
    """Non-default fields of ``SimOptions``/``CompileOptions`` for the
    manifest; small structured values (compile_kwargs) are rendered."""
    return _non_defaults(options, structured=lambda v: str(_canonical(v)))


class KeyedFileStore:
    """On-disk store of content-keyed entries, shared by the result and
    compile caches: one ``<key><suffix>`` file per entry.

    Concurrency contract (multiple processes may share one directory):
    writes go to a per-process tmp name and are installed by atomic
    rename, so readers never see a half-written entry; a torn, corrupt
    or vanished entry decodes as a miss (and is dropped), never a
    crash; ``clear()`` removes only key-named files this store could
    have written, tolerating entries another process unlinked first.
    """

    def __init__(self, path: str | Path, suffix: str, encode, decode) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.suffix = suffix
        self._encode = encode  # value -> bytes
        self._decode = decode  # bytes -> value (raises on corruption)
        self.manifest = StoreManifest(self.path, suffix)

    def _file(self, key: str) -> Path:
        return self.path / f"{key}{self.suffix}"

    def load(self, key: str):
        file = self._file(key)
        if not file.exists():
            return None
        try:
            value = self._decode(file.read_bytes())
        except Exception:
            # Treat as a miss and drop the entry so a fresh value can
            # overwrite it (OSError covers races with concurrent clear()).
            try:
                file.unlink(missing_ok=True)
            except OSError:
                pass
            self.manifest.forget(key)
            self.manifest.flush()
            return None
        self.manifest.touch(key)
        return value

    def save(self, key: str, value, *, description: dict | None = None) -> None:
        # Persistence is best-effort: callers already serve the value
        # from memory, so a disk failure must not abort the sweep.
        tmp = self.path / f".{key}.{os.getpid()}.tmp"
        try:
            blob = self._encode(value)
            tmp.write_bytes(blob)
            tmp.replace(self._file(key))
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        self.manifest.record(
            key,
            size=len(blob),
            fingerprint=code_fingerprint(),
            description=description,
        )

    def clear(self) -> None:
        """Remove all entries — only files this store wrote, never the
        directory's unrelated contents."""
        for file in self.path.glob(f"*{self.suffix}"):
            if _is_key(file.stem):
                file.unlink(missing_ok=True)
        # Orphaned tmp files from writers killed mid-save.
        for tmp in self.path.glob(".*.tmp"):
            if _is_key(tmp.name[1:].split(".")[0]):
                tmp.unlink(missing_ok=True)
        self.manifest.reset()

    # -- introspection and maintenance ----------------------------------

    def flush(self) -> None:
        """Persist buffered manifest updates (recency hits, new rows)."""
        self.manifest.flush()

    def entries(self):
        """Manifest view reconciled against the directory (see
        :meth:`StoreManifest.entries`)."""
        return self.manifest.entries()

    def total_bytes(self) -> int:
        return sum(e.size for e in self.entries().values())

    def gc(
        self,
        *,
        max_bytes: int | None = None,
        keep_fingerprints=None,
        min_age_s: float = 0.0,
    ) -> GCReport:
        """Garbage-collect the directory; returns what was removed.

        Two policies, both opt-in per call:

        * **Orphan sweep** — with ``keep_fingerprints`` (an iterable of
          code fingerprints, usually ``{code_fingerprint()}``), entries
          *known* to have been written by any other fingerprint are
          removed: their keys mix the writer's fingerprint, so no
          current run can ever hit them again.  Entries with an
          *unknown* fingerprint (pre-manifest files, rebuilt manifests)
          are conservatively kept — only the size cap can reclaim them.
        * **LRU size cap** — with ``max_bytes``, least-recently-hit
          entries are evicted until the directory fits.  Entries
          younger than ``min_age_s`` are skipped (grace period for
          concurrent writers), so the cap is a target, not a guarantee.

        Concurrent safety: eviction unlinks only *installed* files;
        in-flight ``.tmp`` writes are never touched, and a concurrent
        writer's atomic rename simply reinstalls its entry.
        """
        self.manifest.flush()
        entries = self.entries()
        report = GCReport(
            path=str(self.path),
            entries_before=len(entries),
            bytes_before=sum(e.size for e in entries.values()),
        )

        def _drop(key: str) -> bool:
            try:
                self._file(key).unlink(missing_ok=True)
            except OSError:
                return False
            self.manifest.forget(key)
            return True

        if keep_fingerprints is not None:
            keep = set(keep_fingerprints)
            for key, entry in list(entries.items()):
                known_foreign = (
                    entry.fingerprint is not None and entry.fingerprint not in keep
                )
                if known_foreign and _drop(key):
                    report.orphans.append(key)
                    del entries[key]

        if max_bytes is not None:
            total = sum(e.size for e in entries.values())
            now = time.time()
            by_lru = sorted(
                entries.values(), key=lambda e: (e.last_hit, e.created, e.key)
            )
            for entry in by_lru:
                if total <= max_bytes:
                    break
                if now - entry.created < min_age_s:
                    continue
                if _drop(entry.key):
                    report.evicted.append(entry.key)
                    total -= entry.size

        self.manifest.rewrite()
        remaining = self.entries()
        report.entries_after = len(remaining)
        report.bytes_after = sum(e.size for e in remaining.values())
        return report

    def verify(self, *, migrate=None) -> VerifyReport:
        """Decode every entry; drop the corrupt, optionally migrate.

        ``migrate`` is an optional ``bytes -> bytes | None`` hook: given
        a *valid* entry's raw bytes it returns replacement bytes (the
        entry is rewritten atomically) or ``None`` (already current).
        The result store uses it to upgrade legacy un-versioned entries
        into the current schema envelope.
        """
        report = VerifyReport(path=str(self.path))
        for file in sorted(self.path.glob(f"*{self.suffix}")):
            if not _is_key(file.stem):
                continue
            try:
                data = file.read_bytes()
            except OSError:  # vanished under a concurrent clear/gc
                continue
            try:
                self._decode(data)
            except Exception:
                try:
                    file.unlink(missing_ok=True)
                except OSError:
                    pass
                self.manifest.forget(file.stem)
                report.corrupt.append(file.stem)
                continue
            if migrate is not None:
                upgraded = migrate(data)
                if upgraded is not None:
                    tmp = self.path / f".{file.stem}.{os.getpid()}.tmp"
                    try:
                        tmp.write_bytes(upgraded)
                        tmp.replace(file)
                    except OSError:
                        try:
                            tmp.unlink(missing_ok=True)
                        except OSError:
                            pass
                    else:
                        report.migrated.append(file.stem)
                        # A legacy entry was provably written by older
                        # code: its key (which mixes that fingerprint)
                        # is unreachable from the current build.  Mark
                        # it so the orphan sweep may reclaim it instead
                        # of letting dead data occupy the size budget.
                        self.manifest.record(
                            file.stem,
                            size=len(upgraded),
                            fingerprint=LEGACY_FINGERPRINT,
                        )
            report.ok += 1
        self.manifest.rewrite()
        return report


# ----------------------------------------------------------------------
# Sharded store
# ----------------------------------------------------------------------

#: Shard-prefix widths a store may use (1 hex char = 16 shards, 2 = 256).
SHARD_WIDTHS = (1, 2)


def _is_shard_name(name: str, width: int) -> bool:
    return len(name) == width and all(c in "0123456789abcdef" for c in name)


def detect_shard_width(path: str | Path) -> int | None:
    """Shard-prefix width of an existing store directory, ``None`` if flat.

    A sharded store is recognised by its hex-prefix subdirectories
    (``0``..``f`` or ``00``..``ff``); a flat store has none.  Used so
    maintenance tooling and resumed sweeps open a directory the way it
    was written without being told.
    """
    path = Path(path)
    if not path.is_dir():
        return None
    for width in SHARD_WIDTHS:
        for child in sorted(path.iterdir()):
            if child.is_dir() and _is_shard_name(child.name, width):
                return width
    return None


class ShardedKeyedFileStore:
    """A :class:`KeyedFileStore` partitioned by key prefix.

    Entry ``<key>`` lives in ``path/<key[:width]>/<key><suffix>``, and
    every shard directory carries its *own* sidecar manifest.  That is
    the point: N workers writing results land on different shards with
    probability ``1 - 1/16**width``, so their read-merge-write manifest
    flushes (and GC passes) stop contending on a single ``manifest.json``.

    The read/maintenance surface mirrors :class:`KeyedFileStore`
    (``load``/``save``/``entries``/``gc``/``verify``/``clear``/``flush``)
    but only ``save`` ever creates a shard directory — lookups and
    maintenance skip missing shards, so pointing a tool at an empty or
    partially populated store never litters it with empty dirs.
    """

    def __init__(
        self, path: str | Path, suffix: str, encode, decode, *, width: int = 1
    ) -> None:
        if width not in SHARD_WIDTHS:
            raise ValueError(f"shard width must be one of {SHARD_WIDTHS}: {width}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.suffix = suffix
        self.width = width
        self._encode = encode
        self._decode = decode
        self._shards: dict[str, KeyedFileStore] = {}

    def _shard(self, key: str, *, create: bool) -> KeyedFileStore | None:
        name = key[: self.width]
        store = self._shards.get(name)
        if store is None:
            if not create and not (self.path / name).is_dir():
                return None  # read path: a missing shard is a miss, not a mkdir
            store = KeyedFileStore(
                self.path / name, self.suffix, self._encode, self._decode
            )
            self._shards[name] = store
        return store

    def shard_stores(self) -> list[KeyedFileStore]:
        """Sub-stores for every shard directory that exists, sorted."""
        out: list[KeyedFileStore] = []
        for child in sorted(self.path.iterdir()):
            if child.is_dir() and _is_shard_name(child.name, self.width):
                store = self._shards.get(child.name)
                if store is None:
                    store = KeyedFileStore(
                        child, self.suffix, self._encode, self._decode
                    )
                    self._shards[child.name] = store
                out.append(store)
        return out

    def load(self, key: str):
        store = self._shard(key, create=False)
        return None if store is None else store.load(key)

    def save(self, key: str, value, *, description: dict | None = None) -> None:
        self._shard(key, create=True).save(key, value, description=description)

    def clear(self) -> None:
        for store in self.shard_stores():
            store.clear()

    def flush(self) -> None:
        for store in self.shard_stores():
            store.flush()

    def entries(self) -> dict[str, ManifestEntry]:
        out: dict[str, ManifestEntry] = {}
        for store in self.shard_stores():
            out.update(store.entries())
        return out

    def total_bytes(self) -> int:
        return sum(e.size for e in self.entries().values())

    def gc(
        self,
        *,
        max_bytes: int | None = None,
        keep_fingerprints=None,
        min_age_s: float = 0.0,
    ) -> GCReport:
        """Per-shard GC, aggregated into one report.

        The size cap divides evenly across the existing shards — content
        keys are uniform sha256, so an even split is a global cap in
        expectation, and keeping each shard's GC independent is exactly
        what lets many workers collect without a store-wide lock.
        """
        shards = self.shard_stores()
        report = GCReport(path=str(self.path))
        per_shard = None if max_bytes is None else max_bytes // max(1, len(shards))
        for store in shards:
            sub = store.gc(
                max_bytes=per_shard,
                keep_fingerprints=keep_fingerprints,
                min_age_s=min_age_s,
            )
            report.entries_before += sub.entries_before
            report.bytes_before += sub.bytes_before
            report.entries_after += sub.entries_after
            report.bytes_after += sub.bytes_after
            report.evicted.extend(sub.evicted)
            report.orphans.extend(sub.orphans)
        return report

    def verify(self, *, migrate=None) -> VerifyReport:
        report = VerifyReport(path=str(self.path))
        for store in self.shard_stores():
            sub = store.verify(migrate=migrate)
            report.ok += sub.ok
            report.corrupt.extend(sub.corrupt)
            report.migrated.extend(sub.migrated)
        return report


def _encode_result_bytes(result: ProgramResult) -> bytes:
    """Current (v2) layout: a versioned envelope around the stat fields."""
    envelope = {
        "schema": RESULT_SCHEMA_VERSION,
        "fingerprint": code_fingerprint(),
        "result": encode_result(result),
    }
    return json.dumps(envelope, sort_keys=True).encode()


def _decode_result_bytes(data: bytes) -> ProgramResult:
    payload = json.loads(data.decode())
    if isinstance(payload, dict) and "schema" in payload:
        if payload["schema"] != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"result entry has schema {payload['schema']!r}, "
                f"this code reads {RESULT_SCHEMA_VERSION}"
            )
        decoded = decode_result(payload["result"])
    else:
        # Legacy (v1) entry: the bare encode_result payload, un-versioned.
        # Still decodable — verify/migrate rewrites it into the envelope.
        decoded = decode_result(payload)
    if not isinstance(decoded, ProgramResult):
        raise ValueError("result entry does not decode to a ProgramResult")
    return decoded


def _migrate_result_bytes(data: bytes) -> bytes | None:
    """Verify hook: rewrap a legacy (v1) entry in the current envelope.

    The payload is preserved as-is (verify decode-validated it first);
    the envelope's fingerprint stays null — the original writer's
    identity is unknown, only provably *not current*.
    """
    payload = json.loads(data.decode())
    if isinstance(payload, dict) and "schema" in payload:
        return None  # already enveloped
    envelope = {
        "schema": RESULT_SCHEMA_VERSION,
        "fingerprint": None,
        "result": payload,
    }
    return json.dumps(envelope, sort_keys=True).encode()


class ResultCache:
    """In-memory result cache with an optional on-disk JSON store.

    ``shard_width=None`` (the default) auto-detects: a directory that
    already contains hex-prefix shard subdirectories opens sharded, any
    other opens flat.  ``shard_width=0`` forces flat; 1 or 2 force (or
    create) a sharded layout — the sweep service's many-writer mode.
    """

    def __init__(
        self, path: str | Path | None = None, *, shard_width: int | None = None
    ) -> None:
        self._memory: dict[str, ProgramResult] = {}
        self.path = Path(path) if path is not None else None
        if path is None:
            self._store = None
        else:
            if shard_width is None:
                shard_width = detect_shard_width(path) or 0
            if shard_width:
                self._store = ShardedKeyedFileStore(
                    path,
                    ".json",
                    _encode_result_bytes,
                    _decode_result_bytes,
                    width=shard_width,
                )
            else:
                self._store = KeyedFileStore(
                    path, ".json", _encode_result_bytes, _decode_result_bytes
                )

    @property
    def store(self) -> KeyedFileStore | ShardedKeyedFileStore | None:
        return self._store

    def get(self, key: str) -> ProgramResult | None:
        result = self._memory.get(key)
        if result is None and self._store is not None:
            result = self._store.load(key)
            if result is not None:
                self._memory[key] = result
        return result

    def put(
        self,
        key: str,
        result: ProgramResult,
        *,
        description: dict | None = None,
        persist: bool = True,
    ) -> None:
        """Record a result.  ``persist=False`` keeps it memory-only —
        used when another process (a sweep-service worker) already wrote
        the disk entry, so the server must not write it a second time."""
        self._memory[key] = result
        if persist and self._store is not None:
            self._store.save(key, result, description=description)

    def clear(self) -> None:
        """Drop all entries — only files this cache wrote."""
        self._memory.clear()
        if self._store is not None:
            self._store.clear()

    # -- maintenance (no-ops for the memory-only cache) ------------------

    def flush(self) -> None:
        """Persist any buffered manifest updates (recency hits)."""
        if self._store is not None:
            self._store.flush()

    def gc(self, **kwargs) -> GCReport:
        if self._store is None:
            return GCReport()
        return self._store.gc(**kwargs)

    def verify(self) -> VerifyReport:
        """Decode-check every disk entry, migrating legacy layouts."""
        if self._store is None:
            return VerifyReport()
        return self._store.verify(migrate=_migrate_result_bytes)
