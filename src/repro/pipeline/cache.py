"""Content-addressed cache of simulation results.

A run is fully determined by ``(benchmark, MachineConfig, SimOptions)``
— the simulator is deterministic (random access patterns are seeded) —
so results are keyed by a SHA-256 digest of a canonical JSON rendering
of those three values.  Experiments that share a configuration share
cache entries automatically, regardless of what display label each
experiment uses.

The cache is in-memory first with an optional on-disk JSON store
(one file per key), so sweeps can survive process restarts and be
shared between the CLI and the benchmark harness.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import json
import os
from dataclasses import fields, is_dataclass
from pathlib import Path

from ..machine.config import MachineConfig
from ..sim.runner import SimOptions
from ..sim.stats import ProgramResult


def _canonical(value):
    """Reduce a value to JSON-able primitives, deterministically."""
    if isinstance(value, enum.Enum):
        return value.name
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, dict):
        items = {str(_canonical(k)): _canonical(v) for k, v in value.items()}
        return dict(sorted(items.items()))
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for cache keying")


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources.

    Mixed into every cache key so a persisted ``--cache-dir`` can never
    serve results simulated by a different version of the compiler or
    simulator: "a run is fully determined by (benchmark, config,
    options)" only holds for a fixed code base.
    """
    root = Path(__file__).resolve().parents[1]  # the repro package
    digest = hashlib.sha256()
    for file in sorted(root.rglob("*.py")):
        digest.update(str(file.relative_to(root)).encode())
        digest.update(file.read_bytes())
    return digest.hexdigest()[:16]


def cache_key(benchmark: str, config: MachineConfig, options: SimOptions) -> str:
    """Content hash identifying one (benchmark, config, options) run."""
    payload = {
        "benchmark": benchmark,
        "code": code_fingerprint(),
        "config": _canonical(config),
        "options": _canonical(options),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# ProgramResult <-> JSON
# ----------------------------------------------------------------------


def _result_classes() -> dict[str, type]:
    from ..memory.bus import BusStats
    from ..memory.hierarchy import MemoryStats
    from ..memory.interleaved import InterleavedStats
    from ..memory.l0buffer import L0Stats
    from ..memory.l1cache import CacheStats
    from ..memory.multivliw import MSIStats
    from ..sim.stats import LoopResult, LoopRunResult

    classes = (
        ProgramResult,
        LoopResult,
        LoopRunResult,
        MemoryStats,
        L0Stats,
        CacheStats,
        BusStats,
        InterleavedStats,
        MSIStats,
    )
    return {cls.__name__: cls for cls in classes}


def encode_result(value):
    """Encode a result record (nested dataclasses of scalars) as JSON data."""
    if is_dataclass(value) and not isinstance(value, type):
        data = {f.name: encode_result(getattr(value, f.name)) for f in fields(value)}
        data["__type__"] = type(value).__name__
        return data
    if isinstance(value, (list, tuple)):
        return [encode_result(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} into the result store")


def decode_result(data):
    if isinstance(data, dict):
        name = data.get("__type__")
        if name is None:
            raise ValueError("result store entry missing __type__ tag")
        cls = _result_classes().get(name)
        if cls is None:
            raise ValueError(f"result store references unknown type {name!r}")
        kwargs = {k: decode_result(v) for k, v in data.items() if k != "__type__"}
        return cls(**kwargs)
    if isinstance(data, list):
        return [decode_result(v) for v in data]
    return data


def result_fingerprint(result: ProgramResult) -> str:
    """Canonical byte string of one result row (executor-parity checks)."""
    return json.dumps(encode_result(result), sort_keys=True, separators=(",", ":"))


class ResultCache:
    """In-memory result cache with an optional on-disk JSON store."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._memory: dict[str, ProgramResult] = {}
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)

    def _file(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.json"

    def get(self, key: str) -> ProgramResult | None:
        result = self._memory.get(key)
        if result is None and self.path is not None:
            file = self._file(key)
            if file.exists():
                try:
                    result = decode_result(json.loads(file.read_text()))
                except (ValueError, TypeError, OSError):
                    # A torn/corrupt/unreadable store entry is a miss, not
                    # a crash: drop it so a fresh simulation can overwrite
                    # it (OSError covers races with concurrent clear()).
                    try:
                        file.unlink(missing_ok=True)
                    except OSError:
                        pass
                else:
                    self._memory[key] = result
        return result

    def put(self, key: str, result: ProgramResult) -> None:
        self._memory[key] = result
        if self.path is not None:
            file = self._file(key)
            # Per-process tmp name + atomic rename, so concurrent writers
            # sharing a cache dir never install a half-written entry.
            # Persistence is best-effort: the result is already served
            # from memory, so a disk failure must not abort the sweep.
            tmp = self.path / f".{key}.{os.getpid()}.tmp"
            try:
                tmp.write_text(json.dumps(encode_result(result), sort_keys=True))
                tmp.replace(file)
            except OSError:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass

    def clear(self) -> None:
        """Drop all entries — only files this cache wrote, never the
        directory's unrelated contents."""
        self._memory.clear()
        if self.path is None:
            return
        def _is_key(stem: str) -> bool:
            return len(stem) == 64 and all(c in "0123456789abcdef" for c in stem)

        for file in self.path.glob("*.json"):
            if _is_key(file.stem):
                file.unlink()
        # Orphaned tmp files from writers killed mid-put.
        for tmp in self.path.glob(".*.tmp"):
            if _is_key(tmp.name[1:].split(".")[0]):
                tmp.unlink()
