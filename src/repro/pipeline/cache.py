"""Content-addressed cache of simulation results.

A run is fully determined by ``(benchmark, MachineConfig, SimOptions)``
— the simulator is deterministic (random access patterns are seeded) —
so results are keyed by a SHA-256 digest of a canonical JSON rendering
of those three values.  Experiments that share a configuration share
cache entries automatically, regardless of what display label each
experiment uses.

The cache is in-memory first with an optional on-disk JSON store
(one file per key), so sweeps can survive process restarts and be
shared between the CLI and the benchmark harness.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import json
import os
from dataclasses import fields, is_dataclass
from pathlib import Path

from ..machine.config import MachineConfig
from ..sim.runner import SimOptions
from ..sim.stats import ProgramResult


def _canonical(value):
    """Reduce a value to JSON-able primitives, deterministically.

    Dataclass fields carrying ``metadata={"no_cache_key": True}`` are
    excluded: they tune *how* a run executes (worker counts, cache
    directories) without changing *what* it computes, so two requests
    differing only there must share a cache entry.
    """
    if isinstance(value, enum.Enum):
        return value.name
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in fields(value)
            if not f.metadata.get("no_cache_key")
        }
    if isinstance(value, dict):
        items = {str(_canonical(k)): _canonical(v) for k, v in value.items()}
        return dict(sorted(items.items()))
    if isinstance(value, (frozenset, set)):
        return sorted(str(_canonical(v)) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for cache keying")


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources.

    Mixed into every cache key so a persisted ``--cache-dir`` can never
    serve results simulated by a different version of the compiler or
    simulator: "a run is fully determined by (benchmark, config,
    options)" only holds for a fixed code base.
    """
    root = Path(__file__).resolve().parents[1]  # the repro package
    digest = hashlib.sha256()
    for file in sorted(root.rglob("*.py")):
        digest.update(str(file.relative_to(root)).encode())
        digest.update(file.read_bytes())
    return digest.hexdigest()[:16]


def cache_key(benchmark: str, config: MachineConfig, options: SimOptions) -> str:
    """Content hash identifying one (benchmark, config, options) run."""
    payload = {
        "benchmark": benchmark,
        "code": code_fingerprint(),
        "config": _canonical(config),
        "options": _canonical(options),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# ProgramResult <-> JSON
# ----------------------------------------------------------------------


def _result_classes() -> dict[str, type]:
    from ..memory.bus import BusStats
    from ..memory.hierarchy import MemoryStats
    from ..memory.interleaved import InterleavedStats
    from ..memory.l0buffer import L0Stats
    from ..memory.l1cache import CacheStats
    from ..memory.multivliw import MSIStats
    from ..sim.stats import LoopResult, LoopRunResult

    classes = (
        ProgramResult,
        LoopResult,
        LoopRunResult,
        MemoryStats,
        L0Stats,
        CacheStats,
        BusStats,
        InterleavedStats,
        MSIStats,
    )
    return {cls.__name__: cls for cls in classes}


def encode_result(value):
    """Encode a result record (nested dataclasses of scalars) as JSON data."""
    if is_dataclass(value) and not isinstance(value, type):
        data = {f.name: encode_result(getattr(value, f.name)) for f in fields(value)}
        data["__type__"] = type(value).__name__
        return data
    if isinstance(value, (list, tuple)):
        return [encode_result(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} into the result store")


def decode_result(data):
    if isinstance(data, dict):
        name = data.get("__type__")
        if name is None:
            raise ValueError("result store entry missing __type__ tag")
        cls = _result_classes().get(name)
        if cls is None:
            raise ValueError(f"result store references unknown type {name!r}")
        kwargs = {k: decode_result(v) for k, v in data.items() if k != "__type__"}
        return cls(**kwargs)
    if isinstance(data, list):
        return [decode_result(v) for v in data]
    return data


def result_fingerprint(result: ProgramResult) -> str:
    """Canonical byte string of one result row (executor-parity checks)."""
    return json.dumps(encode_result(result), sort_keys=True, separators=(",", ":"))


def _is_key(stem: str) -> bool:
    """Whether a filename stem is one of our sha256 content keys."""
    return len(stem) == 64 and all(c in "0123456789abcdef" for c in stem)


class KeyedFileStore:
    """On-disk store of content-keyed entries, shared by the result and
    compile caches: one ``<key><suffix>`` file per entry.

    Concurrency contract (multiple processes may share one directory):
    writes go to a per-process tmp name and are installed by atomic
    rename, so readers never see a half-written entry; a torn, corrupt
    or vanished entry decodes as a miss (and is dropped), never a
    crash; ``clear()`` removes only key-named files this store could
    have written, tolerating entries another process unlinked first.
    """

    def __init__(self, path: str | Path, suffix: str, encode, decode) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.suffix = suffix
        self._encode = encode  # value -> bytes
        self._decode = decode  # bytes -> value (raises on corruption)

    def _file(self, key: str) -> Path:
        return self.path / f"{key}{self.suffix}"

    def load(self, key: str):
        file = self._file(key)
        if not file.exists():
            return None
        try:
            return self._decode(file.read_bytes())
        except Exception:
            # Treat as a miss and drop the entry so a fresh value can
            # overwrite it (OSError covers races with concurrent clear()).
            try:
                file.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def save(self, key: str, value) -> None:
        # Persistence is best-effort: callers already serve the value
        # from memory, so a disk failure must not abort the sweep.
        tmp = self.path / f".{key}.{os.getpid()}.tmp"
        try:
            tmp.write_bytes(self._encode(value))
            tmp.replace(self._file(key))
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def clear(self) -> None:
        """Remove all entries — only files this store wrote, never the
        directory's unrelated contents."""
        for file in self.path.glob(f"*{self.suffix}"):
            if _is_key(file.stem):
                file.unlink(missing_ok=True)
        # Orphaned tmp files from writers killed mid-save.
        for tmp in self.path.glob(".*.tmp"):
            if _is_key(tmp.name[1:].split(".")[0]):
                tmp.unlink(missing_ok=True)


def _encode_result_bytes(result: ProgramResult) -> bytes:
    return json.dumps(encode_result(result), sort_keys=True).encode()


def _decode_result_bytes(data: bytes) -> ProgramResult:
    return decode_result(json.loads(data.decode()))


class ResultCache:
    """In-memory result cache with an optional on-disk JSON store."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._memory: dict[str, ProgramResult] = {}
        self.path = Path(path) if path is not None else None
        self._store = (
            KeyedFileStore(path, ".json", _encode_result_bytes, _decode_result_bytes)
            if path is not None
            else None
        )

    def get(self, key: str) -> ProgramResult | None:
        result = self._memory.get(key)
        if result is None and self._store is not None:
            result = self._store.load(key)
            if result is not None:
                self._memory[key] = result
        return result

    def put(self, key: str, result: ProgramResult) -> None:
        self._memory[key] = result
        if self._store is not None:
            self._store.save(key, result)

    def clear(self) -> None:
        """Drop all entries — only files this cache wrote."""
        self._memory.clear()
        if self._store is not None:
            self._store.clear()
