"""Sidecar manifest for :class:`~repro.pipeline.cache.KeyedFileStore` dirs.

Both on-disk caches (results and compile artifacts) are directories of
``<sha256><suffix>`` files.  The content hash is perfect for lookups and
useless for humans and for garbage collection: nothing in the directory
says *what* an entry is, *when* it was last useful, or *which* code
version produced it.  The manifest fills that gap: one ``manifest.json``
per store directory mapping every key to a
:class:`ManifestEntry` — a human-readable description of the inputs
(benchmark/loop, config, options, scheduler), the entry's size, its
creation time, its last-hit time (the LRU signal) and the code
fingerprint that wrote it.

Concurrency contract (mirrors the store itself — multiple processes may
share one directory):

* Updates are buffered in-process and flushed by **read-merge-write**
  under an atomic rename, so a flush never tears the file and never
  drops another process's freshly recorded entries.  Two simultaneous
  flushes may lose one side's *recency* updates — recency is a hint,
  not a ledger — but never corrupt the manifest.
* The manifest is **advisory**: the directory is the source of truth.
  A corrupt, missing or stale manifest is rebuilt from a directory
  scan (sizes and times from ``stat``; descriptions and fingerprints
  unknown until the entry is next written), never trusted over the
  files themselves.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA_VERSION = 1

#: Sentinel fingerprint for entries rewritten from a pre-manifest
#: layout by ``verify``: provably *not* authored by the current code
#: (their bytes predate the envelope), so — unlike entries whose
#: authorship is merely unknown — the orphan sweep may reclaim them.
LEGACY_FINGERPRINT = "pre-manifest"

#: Updates (new entries and recency hits alike) are buffered and folded
#: in every N operations — plus at every gc/verify/clear coordination
#: point, on explicit ``flush()``, and at interpreter exit — so a hot
#: save/read path does not rewrite the manifest per entry.  Updates
#: lost to a hard kill cost only metadata: ``entries()`` re-adopts the
#: files from a directory scan.
FLUSH_EVERY = 16


@dataclass(frozen=True)
class ManifestEntry:
    """Everything the manifest knows about one store entry."""

    key: str
    size: int = 0
    created: float = 0.0
    last_hit: float = 0.0
    #: ``repro`` code fingerprint of the writer (None == unknown, e.g.
    #: the entry predates the manifest or was recovered by a dir scan).
    fingerprint: str | None = None
    #: Human-readable inputs: benchmark/loop, config, options, scheduler.
    description: dict | None = None

    def to_json(self) -> dict:
        data = {
            "size": self.size,
            "created": self.created,
            "last_hit": self.last_hit,
        }
        if self.fingerprint is not None:
            data["fingerprint"] = self.fingerprint
        if self.description is not None:
            data["description"] = self.description
        return data

    @classmethod
    def from_json(cls, key: str, data: dict) -> "ManifestEntry":
        if not isinstance(data, dict):
            raise ValueError(f"manifest entry for {key} is not an object")
        description = data.get("description")
        if description is not None and not isinstance(description, dict):
            description = None
        return cls(
            key=key,
            size=int(data.get("size", 0)),
            created=float(data.get("created", 0.0)),
            last_hit=float(data.get("last_hit", 0.0)),
            fingerprint=data.get("fingerprint"),
            description=description,
        )


@dataclass
class GCReport:
    """What one :meth:`KeyedFileStore.gc` call found and removed."""

    path: str = ""
    entries_before: int = 0
    bytes_before: int = 0
    entries_after: int = 0
    bytes_after: int = 0
    #: keys removed by the LRU size-cap policy
    evicted: list[str] = field(default_factory=list)
    #: keys removed by the code-fingerprint orphan sweep
    orphans: list[str] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.evicted) + len(self.orphans)


@dataclass
class VerifyReport:
    """What one :meth:`KeyedFileStore.verify` pass found."""

    path: str = ""
    ok: int = 0
    #: keys whose file failed to decode and was dropped
    corrupt: list[str] = field(default_factory=list)
    #: keys rewritten from a legacy layout to the current schema
    migrated: list[str] = field(default_factory=list)


def _is_key(stem: str) -> bool:
    """Whether a filename stem is one of our sha256 content keys."""
    return len(stem) == 64 and all(c in "0123456789abcdef" for c in stem)


class StoreManifest:
    """The ``manifest.json`` of one store directory.

    One instance per :class:`KeyedFileStore`; other processes sharing
    the directory hold their own instances and reconcile through the
    read-merge-write flush.
    """

    def __init__(self, path: str | Path, suffix: str) -> None:
        self.path = Path(path)
        self.suffix = suffix
        self.file = self.path / MANIFEST_NAME
        #: pending upserts (new/overwritten entries), key -> entry
        self._dirty: dict[str, ManifestEntry] = {}
        #: pending recency updates, key -> hit timestamp
        self._touches: dict[str, float] = {}
        #: pending removals (evicted or corrupt entries)
        self._forgotten: set[str] = set()
        self._unflushed_ops = 0
        self._exit_hook_installed = False

    def _note_pending(self) -> None:
        """Count a buffered update; fold in every FLUSH_EVERY-th one."""
        if not self._exit_hook_installed:
            # Pool workers and CLIs that never reach an explicit
            # teardown still persist their buffered rows on clean exit.
            atexit.register(self.flush)
            self._exit_hook_installed = True
        self._unflushed_ops += 1
        if self._unflushed_ops >= FLUSH_EVERY:
            self.flush()

    # -- recording ------------------------------------------------------

    def record(
        self,
        key: str,
        *,
        size: int,
        fingerprint: str | None = None,
        description: dict | None = None,
        now: float | None = None,
    ) -> None:
        """Note that ``key`` was (re)written: size, authorship, inputs."""
        now = time.time() if now is None else now
        self._forgotten.discard(key)
        self._dirty[key] = ManifestEntry(
            key=key,
            size=size,
            created=now,
            last_hit=now,
            fingerprint=fingerprint,
            description=description,
        )
        self._note_pending()

    def touch(self, key: str, now: float | None = None) -> None:
        """Note a disk hit on ``key`` (the LRU recency signal)."""
        now = time.time() if now is None else now
        if key in self._dirty:
            self._dirty[key] = replace(self._dirty[key], last_hit=now)
        else:
            self._touches[key] = now
        self._note_pending()

    def forget(self, key: str) -> None:
        """Drop ``key`` (entry evicted or found corrupt); flush later."""
        self._dirty.pop(key, None)
        self._touches.pop(key, None)
        self._forgotten.add(key)

    # -- reading --------------------------------------------------------

    def _read(self) -> dict[str, ManifestEntry]:
        """The on-disk manifest, empty on corruption (never a crash).

        The manifest is advisory, so *any* failure to decode it — not
        just the common malformed-JSON cases — means "rebuild from the
        directory scan and continue".  A bare ``except Exception``
        is deliberate: adversarially corrupt bytes can raise surprises
        (e.g. ``RecursionError`` from deeply nested arrays), and a
        sidecar file must never be able to abort a sweep mid-``gc``.
        """
        try:
            data = json.loads(self.file.read_bytes())
            if data.get("schema") != MANIFEST_SCHEMA_VERSION:
                raise ValueError("unknown manifest schema")
            raw = data["entries"]
            return {
                key: ManifestEntry.from_json(key, value)
                for key, value in raw.items()
                if _is_key(key)
            }
        except Exception:
            return {}

    def _merged(self) -> dict[str, ManifestEntry]:
        """On-disk view with this process's pending updates folded in."""
        merged = self._read()
        for key, entry in self._dirty.items():
            old = merged.get(key)
            if old is not None:
                # created == first seen; a rewrite keeps the original
                # birthday and any description the new writer omitted.
                entry = replace(
                    entry,
                    created=old.created or entry.created,
                    last_hit=max(entry.last_hit, old.last_hit),
                    description=(
                        entry.description
                        if entry.description is not None
                        else old.description
                    ),
                )
            merged[key] = entry
        for key, hit in self._touches.items():
            old = merged.get(key)
            if old is None:
                # Manifest lost this entry (rebuilt, concurrent clear);
                # keep the recency signal — entries() reconciles size.
                merged[key] = ManifestEntry(key=key, created=hit, last_hit=hit)
            elif hit > old.last_hit:
                merged[key] = replace(old, last_hit=hit)
        for key in sorted(self._forgotten):
            merged.pop(key, None)
        return merged

    def entries(self) -> dict[str, ManifestEntry]:
        """Manifest reconciled against the directory (the truth).

        Files without a manifest row are adopted with ``stat`` metadata
        (this is the corrupt-manifest rebuild path); manifest rows whose
        file vanished are dropped.  Sizes always come from the file.
        """
        known = self._merged()
        out: dict[str, ManifestEntry] = {}
        for file in self.path.glob(f"*{self.suffix}"):
            if not _is_key(file.stem):
                continue
            try:
                stat = file.stat()
            except OSError:  # vanished under us (concurrent clear/gc)
                continue
            entry = known.get(file.stem)
            if entry is None:
                entry = ManifestEntry(
                    key=file.stem,
                    size=stat.st_size,
                    created=stat.st_mtime,
                    last_hit=stat.st_mtime,
                )
            else:
                entry = replace(entry, size=stat.st_size)
                if entry.created == 0.0:
                    entry = replace(entry, created=stat.st_mtime)
                if entry.last_hit == 0.0:
                    entry = replace(entry, last_hit=entry.created)
            out[file.stem] = entry
        return out

    # -- writing --------------------------------------------------------

    def _write(self, entries: dict[str, ManifestEntry]) -> None:
        """Atomically install ``entries`` as the manifest (best-effort)."""
        payload = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "entries": {key: entries[key].to_json() for key in sorted(entries)},
        }
        tmp = self.path / f".manifest.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            tmp.replace(self.file)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def flush(self) -> None:
        """Fold pending updates into the file (read-merge-write)."""
        if not (self._dirty or self._touches or self._forgotten):
            return
        self._write(self._merged())
        self._dirty.clear()
        self._touches.clear()
        self._forgotten.clear()
        self._unflushed_ops = 0

    def rewrite(self) -> None:
        """Replace the manifest with the reconciled directory view.

        Unlike :meth:`flush` this *drops* rows for vanished files; gc
        and verify call it so the manifest never accretes stale keys.
        """
        entries = self.entries()
        self._write(entries)
        self._dirty.clear()
        self._touches.clear()
        self._forgotten.clear()
        self._unflushed_ops = 0

    def reset(self) -> None:
        """Forget everything (the store was cleared)."""
        self._dirty.clear()
        self._touches.clear()
        self._forgotten.clear()
        self._unflushed_ops = 0
        try:
            self.file.unlink(missing_ok=True)
        except OSError:
            pass
        for tmp in self.path.glob(".manifest.*.tmp"):
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
