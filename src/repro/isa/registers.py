"""Virtual registers for the loop-level IR.

The IR is register-based but not SSA: a virtual register may be written
once per loop iteration and read by any number of consumers, including
consumers in later iterations (loop-carried uses, expressed as DDG edge
distances).  Physical register allocation is out of scope; the scheduler
estimates register pressure instead (paper section 4.2 notes pressure
mainly matters through spills, which our machine model folds into the
MaxLive cap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count


@dataclass(frozen=True, order=True)
class VReg:
    """A virtual register, identified by an integer id.

    The optional name is purely cosmetic (used in disassembly and
    debugging output) and does not participate in equality.
    """

    rid: int
    name: str = field(default="", compare=False)

    def __repr__(self) -> str:
        return f"%{self.name or self.rid}"


class RegisterFactory:
    """Allocates fresh virtual registers with unique ids."""

    def __init__(self) -> None:
        self._ids = count()

    def new(self, name: str = "") -> VReg:
        return VReg(next(self._ids), name)

    def batch(self, n: int, prefix: str = "r") -> list[VReg]:
        return [self.new(f"{prefix}{i}") for i in range(n)]
