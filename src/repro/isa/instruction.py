"""Instruction objects for the loop-level IR."""

from __future__ import annotations

from dataclasses import dataclass, field

from .memory_access import AccessPattern
from .operations import FUClass, Opcode
from .registers import VReg


@dataclass(eq=False)
class Instruction:
    """One operation in a loop body.

    Instructions use identity equality: two distinct body slots holding
    the same opcode/operands are different schedulable units.  ``uid`` is
    unique within a loop and stable across compiler passes; unrolled
    copies record the ``origin`` uid of the pre-unroll instruction and
    their ``copy_index``, which the L0-aware scheduler uses to recognise
    stride groups (paper section 4.3, step 3, mark ➑).
    """

    uid: int
    opcode: Opcode
    dest: VReg | None = None
    srcs: tuple[VReg, ...] = ()
    pattern: AccessPattern | None = None
    tag: str = ""
    origin: int = -1
    copy_index: int = 0

    def __post_init__(self) -> None:
        if self.origin < 0:
            self.origin = self.uid
        if self.opcode.is_memory and self.opcode is not Opcode.INVAL_L0:
            if self.pattern is None:
                raise ValueError(f"{self.opcode.mnemonic} instruction needs a pattern")
        if self.opcode is Opcode.STORE and self.dest is not None:
            raise ValueError("stores produce no register value")

    @property
    def fu_class(self) -> FUClass:
        return self.opcode.fu_class

    @property
    def is_memory(self) -> bool:
        return self.opcode.is_memory

    @property
    def is_load(self) -> bool:
        return self.opcode.is_load

    @property
    def is_store(self) -> bool:
        return self.opcode.is_store

    @property
    def access_width(self) -> int:
        """Memory access width in bytes (the element size of the pattern)."""
        if self.pattern is None:
            raise ValueError(f"{self} has no access pattern")
        return self.pattern.elem_size

    def __repr__(self) -> str:
        parts = [self.opcode.mnemonic]
        if self.dest is not None:
            parts.append(f"{self.dest} <-")
        if self.srcs:
            parts.append(", ".join(map(repr, self.srcs)))
        if self.pattern is not None:
            arr = self.pattern.array.name
            if self.pattern.is_strided:
                parts.append(f"[{arr}: stride {self.pattern.stride}]")
            else:
                parts.append(f"[{arr}: random]")
        label = self.tag or f"#{self.uid}"
        return f"<{label}: {' '.join(parts)}>"


@dataclass(eq=False)
class CommOp:
    """An inter-cluster register-to-register copy inserted by the scheduler.

    Comm operations are not part of the input IR; the cluster-assignment
    pass materialises them when a value produced in one cluster is
    consumed in another.  They occupy a slot on one of the shared buses.
    """

    uid: int
    value: VReg
    src_cluster: int
    dst_cluster: int
    field_tag: str = field(default="comm", repr=False)

    opcode = Opcode.COMM

    @property
    def fu_class(self) -> FUClass:
        return FUClass.BUS

    def __repr__(self) -> str:
        return f"<comm#{self.uid} {self.value} c{self.src_cluster}->c{self.dst_cluster}>"
