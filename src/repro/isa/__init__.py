"""VLIW instruction-set definitions: opcodes, registers, hints, patterns."""

from .hints import BYPASS_HINTS, AccessHint, HintBundle, MapHint, PrefetchHint
from .instruction import CommOp, Instruction
from .memory_access import AccessPattern, ArrayRef, MemoryLayout, PatternKind
from .operations import VALUE_PRODUCERS, FUClass, Opcode
from .registers import RegisterFactory, VReg

__all__ = [
    "AccessHint",
    "AccessPattern",
    "ArrayRef",
    "BYPASS_HINTS",
    "CommOp",
    "FUClass",
    "HintBundle",
    "Instruction",
    "MapHint",
    "MemoryLayout",
    "Opcode",
    "PatternKind",
    "PrefetchHint",
    "RegisterFactory",
    "VALUE_PRODUCERS",
    "VReg",
]
