"""L0-buffer hint encodings attached to memory instructions.

The paper (section 3.2) defines three families of hints that the compiler
attaches to memory instructions:

* *access hints* — whether the instruction touches the L0 buffer of the
  cluster it is scheduled in, and whether L0 and L1 are probed
  sequentially or in parallel;
* *mapping hints* — how data moves from L1 into L0 buffers (one linear
  subblock, or a whole block element-interleaved across clusters);
* *prefetch hints* — automatic next/previous subblock prefetch triggered
  by touching the last/first element of a cached subblock.

Only the access hints are architecturally mandatory (they govern bus
arbitration and coherence); mapping and prefetch hints may be ignored by
an implementation at a performance cost.
"""

from __future__ import annotations

import enum


class AccessHint(enum.Enum):
    """Whether and how a memory instruction accesses its local L0 buffer."""

    #: Bypass L0 entirely; go straight to L1 and do not allocate in L0.
    NO_ACCESS = "no_access"

    #: Probe L0 first; forward to L1 on a miss (loads only).  Legal only
    #: when the compiler guarantees the cluster's L1 bus is free on the
    #: cycle after issue, so the miss request needs no buffering.
    SEQ_ACCESS = "seq_access"

    #: Probe L0 and L1 in parallel; the L1 reply is dropped on an L0 hit.
    PAR_ACCESS = "par_access"


class MapHint(enum.Enum):
    """How a load's data is mapped from L1 into the L0 buffers."""

    #: Consecutive bytes of the L1 block form one subblock, placed in the
    #: L0 buffer of the cluster executing the load.
    LINEAR = "linear_map"

    #: The whole L1 block is split into N element-interleaved subblocks
    #: (N = number of clusters); subblock 0 lands in the executing
    #: cluster, the rest in consecutive clusters.  The interleaving
    #: granularity is the access width of the instruction.
    INTERLEAVED = "interleaved_map"


class PrefetchHint(enum.Enum):
    """Automatic prefetch action bound to a load that allocates in L0."""

    NONE = "no_prefetch"

    #: When the *last* element of a cached subblock is touched, prefetch
    #: the next subblock (same mapping as the trigger).
    POSITIVE = "positive"

    #: When the *first* element of a cached subblock is touched, prefetch
    #: the previous subblock.
    NEGATIVE = "negative"


class HintBundle:
    """The full hint triple carried by one memory instruction.

    Instances are immutable; the scheduler builds them in its hint
    assignment pass (paper section 4.3, step 4).
    """

    __slots__ = ("access", "mapping", "prefetch", "prefetch_distance")

    def __init__(
        self,
        access: AccessHint = AccessHint.NO_ACCESS,
        mapping: MapHint = MapHint.LINEAR,
        prefetch: PrefetchHint = PrefetchHint.NONE,
        prefetch_distance: int = 1,
    ) -> None:
        self.access = access
        self.mapping = mapping
        self.prefetch = prefetch
        #: How many subblocks ahead the automatic prefetch reaches.  The
        #: paper evaluates distance 1 (default) and 2 (section 5.2).
        self.prefetch_distance = prefetch_distance

    @property
    def uses_l0(self) -> bool:
        """True when the instruction probes/allocates in its local L0."""
        return self.access is not AccessHint.NO_ACCESS

    def replace(self, **kwargs: object) -> "HintBundle":
        """Return a copy with the given fields replaced."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(kwargs)
        return HintBundle(**fields)  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HintBundle):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, name) for name in self.__slots__))

    def __repr__(self) -> str:
        return (
            f"HintBundle(access={self.access.name}, mapping={self.mapping.name}, "
            f"prefetch={self.prefetch.name}, distance={self.prefetch_distance})"
        )


#: Hints for a memory instruction that never touches L0 (the baseline).
BYPASS_HINTS = HintBundle()
