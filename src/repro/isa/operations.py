"""Opcode and functional-unit-class definitions for the clustered VLIW ISA.

The machine follows the paper's Table 2: each cluster has one integer,
one memory and one floating-point unit, all fully pipelined.  Inter-
cluster communication operations occupy a slot on one of the four
register-to-register buses instead of a functional unit.
"""

from __future__ import annotations

import enum


class FUClass(enum.Enum):
    """The resource class an operation occupies for one cycle at issue."""

    INT = "int"
    MEM = "mem"
    FP = "fp"
    BUS = "bus"  # inter-cluster register-to-register communication
    NONE = "none"  # pseudo-ops that consume no issue slot


class Opcode(enum.Enum):
    """Operation codes.  The value triple is (mnemonic, fu class, latency).

    Latencies are *default* producer-to-consumer latencies; the machine
    configuration may override them, and memory latencies are assigned by
    the scheduler (L0 vs L1) rather than taken from this table.
    """

    # Integer unit
    IADD = ("iadd", FUClass.INT, 1)
    ISUB = ("isub", FUClass.INT, 1)
    IMUL = ("imul", FUClass.INT, 2)
    IDIV = ("idiv", FUClass.INT, 8)
    IAND = ("iand", FUClass.INT, 1)
    IOR = ("ior", FUClass.INT, 1)
    IXOR = ("ixor", FUClass.INT, 1)
    ISHL = ("ishl", FUClass.INT, 1)
    ISHR = ("ishr", FUClass.INT, 1)
    ICMP = ("icmp", FUClass.INT, 1)
    IMOV = ("imov", FUClass.INT, 1)
    ISELECT = ("iselect", FUClass.INT, 1)
    IABS = ("iabs", FUClass.INT, 1)
    IMIN = ("imin", FUClass.INT, 1)
    IMAX = ("imax", FUClass.INT, 1)
    ISAT = ("isat", FUClass.INT, 1)  # saturating add, common in media code

    # Floating-point unit
    FADD = ("fadd", FUClass.FP, 2)
    FSUB = ("fsub", FUClass.FP, 2)
    FMUL = ("fmul", FUClass.FP, 2)
    FDIV = ("fdiv", FUClass.FP, 8)
    FMAC = ("fmac", FUClass.FP, 3)
    FMOV = ("fmov", FUClass.FP, 1)
    FCMP = ("fcmp", FUClass.FP, 1)

    # Memory unit
    LOAD = ("load", FUClass.MEM, 0)  # latency assigned by the scheduler
    STORE = ("store", FUClass.MEM, 1)
    PREFETCH = ("prefetch", FUClass.MEM, 1)  # explicit software prefetch
    INVAL_L0 = ("inval_l0", FUClass.MEM, 1)  # invalidate local L0 buffer

    # Inter-cluster communication (occupies a bus slot, not an FU)
    COMM = ("comm", FUClass.BUS, 2)

    # No-op / pseudo
    NOP = ("nop", FUClass.NONE, 0)

    def __init__(self, mnemonic: str, fu_class: FUClass, latency: int) -> None:
        self.mnemonic = mnemonic
        self.fu_class = fu_class
        self.default_latency = latency

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LOAD, Opcode.STORE, Opcode.PREFETCH, Opcode.INVAL_L0)

    @property
    def is_load(self) -> bool:
        return self is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self is Opcode.STORE

    @property
    def is_comm(self) -> bool:
        return self is Opcode.COMM


#: Opcodes whose results feed other instructions (everything but stores,
#: prefetches, invalidates and nops produces a register value).
VALUE_PRODUCERS = frozenset(
    op
    for op in Opcode
    if op not in (Opcode.STORE, Opcode.PREFETCH, Opcode.INVAL_L0, Opcode.NOP)
)
