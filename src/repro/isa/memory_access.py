"""Address-stream descriptions for static memory instructions.

The reproduction does not interpret address arithmetic functionally.
Instead each static memory instruction carries an :class:`AccessPattern`
that describes the address it touches on every iteration of its loop —
exactly the information the paper's compiler derives statically (stride
analysis) plus a deterministic pseudo-random mode for the accesses the
compiler cannot analyse (the non-strided fraction in Table 1).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ArrayRef:
    """A named array living in simulated memory.

    The base address is assigned later by :class:`MemoryLayout`; patterns
    refer to arrays symbolically so the same loop can be laid out at
    different addresses by different experiments.
    """

    name: str
    n_elems: int
    elem_size: int

    def __post_init__(self) -> None:
        if self.n_elems <= 0:
            raise ValueError(f"array {self.name!r} must have n_elems > 0")
        if self.elem_size not in (1, 2, 4, 8):
            raise ValueError(f"array {self.name!r}: elem_size must be 1/2/4/8")

    @property
    def size_bytes(self) -> int:
        return self.n_elems * self.elem_size


class PatternKind(enum.Enum):
    STRIDED = "strided"
    RANDOM = "random"


def _splitmix64(x: int) -> int:
    """Deterministic 64-bit mixer used for reproducible random streams."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


@dataclass(frozen=True)
class AccessPattern:
    """The per-iteration address stream of one static memory instruction.

    For ``STRIDED`` patterns, iteration ``i`` touches element
    ``(offset + i * stride) mod n_elems`` of the array (wrapping keeps the
    working set equal to the array size over long trip counts).  For
    ``RANDOM`` patterns the element index is a seeded hash of ``i``.
    """

    array: ArrayRef
    kind: PatternKind = PatternKind.STRIDED
    stride: int = 1
    offset: int = 0
    seed: int = 0

    @property
    def elem_size(self) -> int:
        return self.array.elem_size

    @property
    def is_strided(self) -> bool:
        return self.kind is PatternKind.STRIDED

    def element_index(self, iteration: int) -> int:
        if self.kind is PatternKind.STRIDED:
            return (self.offset + iteration * self.stride) % self.array.n_elems
        return _splitmix64(self.seed * 0x10001 + iteration) % self.array.n_elems

    def address(self, iteration: int, layout: "MemoryLayout") -> int:
        return (
            layout.base_of(self.array) + self.element_index(iteration) * self.elem_size
        )

    # ------------------------------------------------------------------
    # Affine export (the simulator fast path's contract)
    # ------------------------------------------------------------------

    def affine(self, layout: "MemoryLayout") -> tuple[int, int, int, int, int] | None:
        """``(base, offset, stride, n_elems, elem_size)`` or ``None``.

        Strided patterns export the closed form the trace executor
        inlines — iteration ``i`` touches byte address
        ``base + ((offset + i*stride) % n_elems) * elem_size`` — so
        per-access addresses need no method dispatch or layout lookup.
        Random patterns return ``None`` (the executor falls back to
        :meth:`address`).
        """
        if self.kind is not PatternKind.STRIDED:
            return None
        return (
            layout.base_of(self.array),
            self.offset,
            self.stride,
            self.array.n_elems,
            self.elem_size,
        )

    @property
    def input_period(self) -> int | None:
        """Iterations until this pattern's address stream repeats exactly.

        ``(offset + i*stride) mod n`` is periodic with period
        ``n / gcd(|stride|, n)``; random streams never repeat
        (``None``).  The convergence early-exit uses the lcm of these
        periods as the only window length at which the simulator's
        *inputs* provably recur.
        """
        if self.kind is not PatternKind.STRIDED:
            return None
        n = self.array.n_elems
        if self.stride == 0:
            return 1
        return n // math.gcd(abs(self.stride), n)

    def unrolled_copy(self, copy_index: int, factor: int) -> "AccessPattern":
        """Pattern of the ``copy_index``-th body copy after unrolling.

        Copy ``k`` of a strided access starts ``k`` original iterations
        later and advances ``factor`` original iterations per new-loop
        iteration.  Random patterns get a distinct seed per copy so the
        copies don't collide on identical addresses.
        """
        if self.kind is PatternKind.STRIDED:
            return replace(
                self,
                offset=self.offset + copy_index * self.stride,
                stride=self.stride * factor,
            )
        return replace(self, seed=self.seed * factor + copy_index + 1)


class MemoryLayout:
    """Assigns base addresses to arrays, aligned to L1 block boundaries.

    The paper assumes (section 3.3) that padding/data-layout keeps
    mixed-granularity conflicts out of L0; aligning every array to a
    block boundary reproduces that assumption.
    """

    def __init__(self, align: int = 32, start: int = 0x1000) -> None:
        if align <= 0 or align & (align - 1):
            raise ValueError("alignment must be a positive power of two")
        self._align = align
        self._next = start
        self._bases: dict[str, int] = {}
        self._arrays: dict[str, ArrayRef] = {}

    def add(self, array: ArrayRef) -> int:
        """Place ``array`` (idempotent) and return its base address."""
        existing = self._bases.get(array.name)
        if existing is not None:
            if self._arrays[array.name] != array:
                raise ValueError(f"conflicting definitions of array {array.name!r}")
            return existing
        base = self._next
        self._bases[array.name] = base
        self._arrays[array.name] = array
        size = array.size_bytes
        self._next = base + ((size + self._align - 1) // self._align) * self._align
        return base

    def ensure(self, array: ArrayRef) -> int:
        """Registration contract for executors binding to a shared layout.

        A loop executor re-registers its loop's arrays against the
        program-wide layout ``plan_program`` already populated.  That
        re-add must be *exactly* idempotent: the same definition returns
        the established base; a conflicting redefinition means the
        executor was handed a stale layout whose addresses would
        silently shift the simulation, so it fails loudly instead.
        """
        try:
            return self.add(array)
        except ValueError as exc:
            raise ValueError(
                f"stale memory layout: loop array {array.name!r} "
                f"({array.n_elems}x{array.elem_size}B) conflicts with the "
                "layout's established definition "
                f"({self._arrays[array.name].n_elems}x"
                f"{self._arrays[array.name].elem_size}B); executors must "
                "bind to the layout the program was planned with"
            ) from exc

    def base_of(self, array: ArrayRef) -> int:
        try:
            return self._bases[array.name]
        except KeyError:
            raise KeyError(
                f"array {array.name!r} has no layout; call add() first"
            ) from None

    @property
    def arrays(self) -> list[ArrayRef]:
        return list(self._arrays.values())

    @property
    def footprint_bytes(self) -> int:
        return sum(a.size_bytes for a in self._arrays.values())
