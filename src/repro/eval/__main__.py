"""CLI: regenerate any table or figure of the paper.

Examples::

    python -m repro.eval table1
    python -m repro.eval fig5
    python -m repro.eval fig5 --benchmarks g721dec jpegdec
    python -m repro.eval fig5 --scheduler exact
    python -m repro.eval schedcompare --benchmarks gsmenc
    python -m repro.eval all
"""

from __future__ import annotations

import argparse
import sys
import time

from ..cache import parse_size
from ..sim.runner import SimOptions
from . import (
    ExperimentContext,
    ablation_all_candidates,
    ablation_prefetch_distance,
    fig5,
    fig6,
    fig7,
    render_ablation,
    render_fig5,
    render_fig6,
    render_fig7,
    render_sched_compare,
    render_table1,
    render_table2,
    scheduler_comparison,
    table1,
    table2,
)

EXPERIMENTS = (
    "table1",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "ablations",
    "schedcompare",
    "all",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict to a subset of the 13 benchmarks",
    )
    parser.add_argument(
        "--sim-cap",
        type=int,
        default=1500,
        help="max kernel iterations simulated per loop invocation",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for benchmark fan-out (default serial; -1 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist simulation results as JSON under this directory",
    )
    parser.add_argument(
        "--compile-cache-dir",
        default=None,
        help="persist compile artifacts (pickled CompiledLoops) under this directory",
    )
    parser.add_argument(
        "--loop-workers",
        type=int,
        default=None,
        help="worker processes for per-program loop fan-out (default serial; "
        "-1 = all cores); results are byte-identical to serial",
    )
    parser.add_argument(
        "--scheduler",
        choices=("sms", "exact"),
        default="sms",
        help="backend scheduling pass every loop compiles with "
        "(exact = branch-and-bound with SMS fallback)",
    )
    parser.add_argument(
        "--exact-budget",
        type=int,
        default=None,
        help="node budget (placement trials) for the exact scheduler "
        "before it falls back to SMS",
    )
    parser.add_argument(
        "--gc-max-bytes",
        type=parse_size,
        default=None,
        help="after the run, bound each on-disk cache to this many bytes "
        "(LRU by last hit; accepts K/M/G suffixes, e.g. 200M)",
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="fan batches out through the fault-tolerant supervised "
        "executor (repro.service): crashed or wedged workers are "
        "restarted and their jobs retried instead of aborting the run",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=600.0,
        help="with --supervised: per-attempt deadline in seconds",
    )
    parser.add_argument(
        "--job-retries",
        type=int,
        default=3,
        help="with --supervised: attempts per job before it dead-letters",
    )
    args = parser.parse_args(argv)

    compile_kwargs = {}
    if args.exact_budget is not None:
        compile_kwargs["exact_node_budget"] = args.exact_budget
    options = SimOptions(
        sim_cap=args.sim_cap,
        loop_workers=args.loop_workers,
        scheduler=args.scheduler,
        compile_kwargs=compile_kwargs,
    )
    if args.supervised:
        # An explicit session: same cache/options wiring as the
        # ExperimentContext default, with the supervised executor
        # swapped in for the bare process pool.
        from dataclasses import replace

        from ..pipeline.cache import ResultCache
        from ..pipeline.session import Session
        from ..service import RetryPolicy, SupervisedExecutor

        if args.compile_cache_dir is not None:
            options = replace(options, compile_cache_dir=str(args.compile_cache_dir))
        ctx = ExperimentContext(
            benchmarks=tuple(args.benchmarks) if args.benchmarks else None,
            session=Session(
                options=options,
                cache=ResultCache(args.cache_dir),
                executor=SupervisedExecutor(
                    args.workers,
                    policy=RetryPolicy(
                        max_attempts=args.job_retries, timeout_s=args.job_timeout
                    ),
                ),
                gc_max_bytes=args.gc_max_bytes,
            ),
        )
    else:
        ctx = ExperimentContext(
            options=options,
            benchmarks=tuple(args.benchmarks) if args.benchmarks else None,
            workers=args.workers,
            cache_dir=args.cache_dir,
            compile_cache_dir=args.compile_cache_dir,
            gc_max_bytes=args.gc_max_bytes,
        )

    started = time.time()
    # "all" covers the paper's tables/figures; schedcompare is its own
    # (compile-only, exact-scheduler) report and runs only when asked.
    todo = (
        tuple(e for e in EXPERIMENTS if e not in ("all", "schedcompare"))
        if args.experiment == "all"
        else (args.experiment,)
    )
    for experiment in todo:
        if experiment == "table1":
            print(render_table1(table1(ctx)))
        elif experiment == "table2":
            print(render_table2(table2()))
        elif experiment == "fig5":
            print(render_fig5(fig5(ctx)))
        elif experiment == "fig6":
            print(render_fig6(fig6(ctx)))
        elif experiment == "fig7":
            print(render_fig7(fig7(ctx)))
        elif experiment == "schedcompare":
            print(
                render_sched_compare(
                    scheduler_comparison(ctx, exact_node_budget=args.exact_budget)
                )
            )
        elif experiment == "ablations":
            print(
                render_ablation(
                    ablation_all_candidates(ctx),
                    "Ablation: selective vs all-candidates L0 marking (4-entry)",
                    "selective",
                    "all_candidates",
                )
            )
            print()
            print(
                render_ablation(
                    ablation_prefetch_distance(ctx),
                    "Ablation: prefetch distance 1 vs 2 (epicdec, rasta)",
                    "distance_1",
                    "distance_2",
                )
            )
        print()
    session = ctx.session
    trailer = (
        f"[{time.time() - started:.1f}s, {session.simulations} simulations, "
        f"{session.cache_hits} cache hits"
    )

    def _parallel(workers: int | None) -> bool:
        return workers is not None and workers not in (0, 1)

    if args.supervised or _parallel(args.workers) or _parallel(args.loop_workers):
        # Compilation happened inside pool workers; this process's
        # compile-cache counters cannot reflect it, so don't print them.
        trailer += ", compile stats in workers]"
    else:
        from ..pipeline.compilecache import get_compile_cache

        compile_stats = get_compile_cache(args.compile_cache_dir).stats
        trailer += (
            f", {compile_stats.compilations} compilations "
            f"({compile_stats.full_hits + compile_stats.frontend_hits} "
            f"compile-cache hits, {compile_stats.full_disk_hits} from disk)]"
        )
    print(trailer, file=sys.stderr)

    # Teardown: flush buffered manifest recency and — with
    # --gc-max-bytes — bound both on-disk stores, so a persisted CI
    # cache cannot grow without limit (one implementation: the
    # session's own close()).
    for report in session.close():
        print(
            f"[gc {report.path or 'memory'}: {report.entries_before} -> "
            f"{report.entries_after} entries, {report.bytes_after} bytes]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
