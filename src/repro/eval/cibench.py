"""CI perf-regression bench: timed cold vs warm smoke evals.

``python -m repro.eval.cibench`` runs the smoke evaluation workload
twice against one pair of (initially empty) cache directories:

* **cold** — every result is simulated, every loop compiled; times the
  full pipeline and populates the stores;
* **warm** — a fresh session over the same directories; on an unchanged
  tree every result must come back from the disk stores with **zero**
  simulations, and the figures must be byte-identical to the cold run.

The summary — wall-clock per experiment and phase, simulation counts,
result/compile cache hit/miss counters — is written as versioned JSON
(``BENCH_ci.json``) for the CI workflow to upload as an artifact, and
the process exits non-zero if the warm run simulated anything or
reproduced different figures: that is the cache-regression tripwire.

The workload is the fig5 smoke subset plus (optionally) the
``schedcompare`` exact-scheduler oracle on one benchmark, mirroring the
CI smoke steps.

A third lane measures **simulator throughput**: the fig5 smoke loops
are precompiled, then executed cold through the reference interpreter
and the trace fast path; kernel iterations/second for both plus their
ratio land in ``BENCH_sim.json`` (the repo-root copy is the committed
baseline).  Absolute throughput is machine-bound, so the regression
gate compares *speedup ratios* — fast-over-reference now vs the
baseline's — and fails the lane when the ratio lost more than
:data:`SIM_REGRESSION_TOLERANCE` of its value.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

from ..isa.memory_access import MemoryLayout
from ..machine.config import l0_config, unified_config
from ..pipeline.cache import code_fingerprint
from ..pipeline.compilecache import drop_compile_cache, get_compile_cache
from ..scheduler.driver import compile_loop
from ..sim.executor import LoopExecutor
from ..sim.runner import SimOptions, make_memory
from ..sim.trace import TraceExecutor
from ..workloads.mediabench import build
from .experiments import ExperimentContext, fig5, scheduler_comparison

#: Schema of the emitted summary; bump when the layout changes so
#: downstream tooling can detect what it is reading.
BENCH_SCHEMA_VERSION = 1

#: Schema of the BENCH_sim.json throughput record.
SIM_BENCH_SCHEMA_VERSION = 1

#: Allowed loss of the fast-over-reference speedup ratio before the
#: perf lane fails (>30% throughput regression, machine-normalized).
SIM_REGRESSION_TOLERANCE = 0.30


def _compile_counters(cache_dir: str | None) -> dict:
    stats = get_compile_cache(cache_dir).stats
    return {
        "compilations": stats.compilations,
        "full_hits": stats.full_hits,
        "full_disk_hits": stats.full_disk_hits,
        "frontend_hits": stats.frontend_hits,
        "frontend_misses": stats.frontend_misses,
    }


def _run_phase(
    root: Path,
    benchmarks: tuple[str, ...],
    sched_benchmarks: tuple[str, ...],
    sim_cap: int,
) -> tuple[dict, dict]:
    """One timed pass over the workload; returns (summary, figures)."""
    result_dir = str(root / "result-cache")
    compile_dir = str(root / "compile-cache")
    # Drop the process-wide instance so this phase starts with empty
    # memory: the warm pass must re-read the *disk* stores, or a broken
    # persistence layer would hide behind in-process memory hits.
    drop_compile_cache(compile_dir)
    before = _compile_counters(compile_dir)
    timings: dict[str, float] = {}
    figures: dict[str, object] = {}

    started = time.perf_counter()
    ctx = ExperimentContext(
        options=SimOptions(sim_cap=sim_cap),
        benchmarks=benchmarks,
        cache_dir=result_dir,
        compile_cache_dir=compile_dir,
    )
    t0 = time.perf_counter()
    figures["fig5"] = fig5(ctx)
    timings["fig5_s"] = time.perf_counter() - t0
    simulations = ctx.session.simulations
    cache_hits = ctx.session.cache_hits
    ctx.session.close()

    if sched_benchmarks:
        sched_ctx = ExperimentContext(
            options=SimOptions(sim_cap=sim_cap),
            benchmarks=sched_benchmarks,
            cache_dir=result_dir,
            compile_cache_dir=compile_dir,
        )
        t0 = time.perf_counter()
        figures["schedcompare"] = scheduler_comparison(sched_ctx)
        timings["schedcompare_s"] = time.perf_counter() - t0
        # Fold this session's counters in too: the zero-simulations
        # tripwire must cover every session the phase ran, not just
        # fig5's (schedcompare is compile-only today, but a future
        # simulating workload must not slip past the check).
        simulations += sched_ctx.session.simulations
        cache_hits += sched_ctx.session.cache_hits
        sched_ctx.session.close()

    after = _compile_counters(compile_dir)
    summary = {
        "wall_s": time.perf_counter() - started,
        "timings": {k: round(v, 3) for k, v in timings.items()},
        "simulations": simulations,
        "result_cache_hits": cache_hits,
        "compile": {k: after[k] - before[k] for k in after},
    }
    return summary, figures


def _sim_bench_jobs(benchmarks: tuple[str, ...], sim_cap: int) -> list:
    """Precompiled (compiled, config, iterations) jobs for the throughput
    lane — compilation stays outside the timed region, this is a
    *simulator* metric."""
    jobs = []
    for name in benchmarks:
        bench = build(name)
        for config in (unified_config(), l0_config(8)):
            for spec in bench.loops:
                compiled = compile_loop(spec.loop, config)
                jobs.append((compiled, config, min(spec.loop.trip_count, sim_cap)))
    return jobs


def _throughput(jobs, make_exec) -> tuple[float, int]:
    """(kernel iterations per second, iterations) over one cold pass."""
    total = 0
    started = time.perf_counter()
    for compiled, config, iterations in jobs:
        memory = make_memory(config)
        executor = make_exec(compiled, memory, MemoryLayout(align=config.l1_block))
        executor.run(iterations)
        total += iterations
    elapsed = time.perf_counter() - started
    return total / elapsed if elapsed else float("inf"), total


def run_sim_bench(
    benchmarks: tuple[str, ...],
    sim_cap: int,
    *,
    baseline_path: str | Path | None = None,
) -> dict:
    """Measure reference vs fast-path simulator throughput (cold).

    Returns the ``BENCH_sim.json`` record; ``failures`` is non-empty
    when the machine-normalized speedup regressed more than
    :data:`SIM_REGRESSION_TOLERANCE` against the recorded baseline.
    """
    jobs = _sim_bench_jobs(benchmarks, sim_cap)
    ref_ips, iterations = _throughput(jobs, LoopExecutor)
    fast_ips, _ = _throughput(jobs, TraceExecutor)
    speedup = fast_ips / ref_ips if ref_ips else float("inf")

    failures: list[str] = []
    baseline: dict | None = None
    if baseline_path is not None and Path(baseline_path).exists():
        try:
            candidate = json.loads(Path(baseline_path).read_text())
        except (OSError, ValueError):
            candidate = None
        if (
            isinstance(candidate, dict)
            and candidate.get("schema") == SIM_BENCH_SCHEMA_VERSION
            and candidate.get("speedup")
        ):
            # Ratios are only comparable over the same workload: a
            # baseline recorded for different benchmarks or sim cap is
            # reported but never gated against.
            same_workload = candidate.get("benchmarks") == list(
                benchmarks
            ) and candidate.get("sim_cap") == sim_cap
            baseline = {
                "speedup": candidate["speedup"],
                "fast_iters_per_s": candidate.get("fast_iters_per_s"),
                "code_fingerprint": candidate.get("code_fingerprint"),
                "workload_match": same_workload,
            }
            floor = candidate["speedup"] * (1.0 - SIM_REGRESSION_TOLERANCE)
            if same_workload and speedup < floor:
                failures.append(
                    f"simulator throughput regressed: fast path is {speedup:.2f}x "
                    f"the reference interpreter, below {floor:.2f}x (baseline "
                    f"{candidate['speedup']:.2f}x - {SIM_REGRESSION_TOLERANCE:.0%})"
                )

    return {
        "schema": SIM_BENCH_SCHEMA_VERSION,
        "code_fingerprint": code_fingerprint(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": list(benchmarks),
        "sim_cap": sim_cap,
        "iterations": iterations,
        "reference_iters_per_s": round(ref_ips, 1),
        "fast_iters_per_s": round(fast_ips, 1),
        "speedup": round(speedup, 3),
        "baseline": baseline,
        "failures": failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.cibench",
        description="Timed cold/warm smoke evals; fails on warm-run "
        "simulations or figure drift.",
    )
    parser.add_argument("--output", default="BENCH_ci.json")
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=["g721dec", "jpegdec"],
        help="fig5 smoke subset",
    )
    parser.add_argument(
        "--sched-benchmarks",
        nargs="*",
        default=["gsmenc"],
        help="schedcompare subset (empty list disables the oracle pass)",
    )
    parser.add_argument("--sim-cap", type=int, default=150)
    parser.add_argument(
        "--root",
        default=None,
        help="cache-directory root (default: a fresh temp dir, deleted "
        "afterwards, so the cold pass is genuinely cold)",
    )
    parser.add_argument(
        "--sim-output",
        default="BENCH_sim.json",
        help="simulator-throughput record (also read as the regression "
        "baseline before being overwritten; empty string disables the "
        "throughput lane)",
    )
    args = parser.parse_args(argv)

    owns_root = args.root is None
    root = Path(args.root) if args.root else Path(tempfile.mkdtemp(prefix="cibench-"))
    root.mkdir(parents=True, exist_ok=True)
    try:
        phases: dict[str, dict] = {}
        all_figures: dict[str, dict] = {}
        for phase in ("cold", "warm"):
            summary, figures = _run_phase(
                root,
                tuple(args.benchmarks),
                tuple(args.sched_benchmarks),
                args.sim_cap,
            )
            phases[phase] = summary
            all_figures[phase] = figures
            print(
                f"[{phase}: {summary['wall_s']:.1f}s, "
                f"{summary['simulations']} simulations, "
                f"{summary['result_cache_hits']} result-cache hits, "
                f"{summary['compile']['compilations']} compilations]",
                file=sys.stderr,
            )

        sim_bench: dict | None = None
        if args.sim_output:
            sim_bench = run_sim_bench(
                tuple(args.benchmarks), args.sim_cap, baseline_path=args.sim_output
            )
            Path(args.sim_output).write_text(json.dumps(sim_bench, indent=2) + "\n")
            print(
                f"[sim bench: reference {sim_bench['reference_iters_per_s']:,.0f} "
                f"it/s, fast {sim_bench['fast_iters_per_s']:,.0f} it/s, "
                f"speedup {sim_bench['speedup']:.2f}x -> {args.sim_output}]",
                file=sys.stderr,
            )

        figures_identical = all_figures["cold"] == all_figures["warm"]
        failures = []
        if sim_bench is not None:
            failures.extend(sim_bench["failures"])
        if phases["warm"]["simulations"]:
            failures.append(
                f"warm run simulated {phases['warm']['simulations']} requests "
                "(expected 0: every result must come from the store)"
            )
        if phases["warm"]["compile"]["compilations"]:
            failures.append(
                f"warm run compiled {phases['warm']['compile']['compilations']} "
                "loops (expected 0: every artifact must come from the store)"
            )
        if not figures_identical:
            failures.append("warm-run figures differ from the cold run")

        report = {
            "schema": BENCH_SCHEMA_VERSION,
            "code_fingerprint": code_fingerprint(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "benchmarks": args.benchmarks,
            "sched_benchmarks": args.sched_benchmarks,
            "sim_cap": args.sim_cap,
            "phases": phases,
            "figures_identical": figures_identical,
            "sim_bench": sim_bench,
            "failures": failures,
        }
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[summary written to {args.output}]", file=sys.stderr)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
