"""Text rendering of experiment results in the paper's row/series shape."""

from __future__ import annotations

from .experiments import NormalizedTime


def _rule(width: int = 78) -> str:
    return "-" * width


def render_table1(rows: list[dict]) -> str:
    lines = [
        "Table 1: benchmark stride statistics (measured vs paper)",
        _rule(),
        f"{'benchmark':<12} {'S%':>6} {'SG%':>6} {'SO%':>6}   "
        f"{'paper S':>8} {'paper SG':>9} {'paper SO':>9}",
        _rule(),
    ]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<12} {row['S']:>6.0f} {row['SG']:>6.0f} "
            f"{row['SO']:>6.0f}   {row['paper_S']:>8} {row['paper_SG']:>9} "
            f"{row['paper_SO']:>9}"
        )
    return "\n".join(lines)


def render_table2(rows: list[tuple[str, str]]) -> str:
    lines = ["Table 2: configuration parameters", _rule()]
    for name, value in rows:
        lines.append(f"{name:<24} {value}")
    return "\n".join(lines)


def _measured_row(series: dict[str, list[NormalizedTime]]) -> str:
    """Bottom table row: per-series measured (interpreted) fraction.

    The simulator reports how much of every bar was interpreted cycle by
    cycle versus covered by exact fast-forward / statistical scaling
    (``LoopResult.simulated_iterations``); the arithmetic mean over the
    column's benchmarks lands here so figure tables carry the honesty
    metadata next to the numbers it qualifies.
    """
    cells = []
    for rows in series.values():
        mean = sum(r.measured for r in rows) / len(rows)
        cells.append(f"{mean:>20.1%}")
    return f"{'measured':<12}" + " ".join(cells)


def render_fig5(series: dict[str, list[NormalizedTime]]) -> str:
    lines = [
        "Figure 5: normalized execution time vs L0 buffer size",
        "(1.00 = clustered VLIW with unified L1, no L0 buffers; "
        "stall column included in total)",
        _rule(),
    ]
    labels = list(series)
    header = f"{'benchmark':<12}" + "".join(
        f" {label:>20}" for label in labels
    )
    lines.append(header)
    lines.append(f"{'':<12}" + " ".join(
        f"{'total (stall)':>20}" for _ in labels
    ))
    lines.append(_rule())
    benchmarks = [row.benchmark for row in series[labels[0]]]
    for idx, bench in enumerate(benchmarks):
        cells = []
        for label in labels:
            row = series[label][idx]
            cells.append(f"{row.total:>12.3f} ({row.stall:.3f})")
        lines.append(f"{bench:<12}" + " ".join(f"{c:>20}" for c in cells))
    lines.append(_rule())
    lines.append(_measured_row(series))
    return "\n".join(lines)


def render_fig6(rows: list[dict]) -> str:
    lines = [
        "Figure 6: subblock mapping mix, L0 hit rate, average unroll factor",
        _rule(),
        f"{'benchmark':<12} {'linear':>8} {'interleaved':>12} "
        f"{'L0 hit rate':>12} {'avg unroll':>11}",
        _rule(),
    ]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<12} {row['linear_ratio']:>8.2f} "
            f"{row['interleaved_ratio']:>12.2f} {row['l0_hit_rate']:>12.3f} "
            f"{row['avg_unroll']:>11.1f}"
        )
    return "\n".join(lines)


def render_fig7(series: dict[str, list[NormalizedTime]]) -> str:
    lines = [
        "Figure 7: L0 buffers vs MultiVLIW vs word-interleaved cache",
        "(normalized to unified L1 without L0 buffers)",
        _rule(),
    ]
    labels = list(series)
    lines.append(
        f"{'benchmark':<12}" + "".join(f" {label:>20}" for label in labels)
    )
    lines.append(_rule())
    benchmarks = [row.benchmark for row in series[labels[0]]]
    for idx, bench in enumerate(benchmarks):
        cells = []
        for label in labels:
            row = series[label][idx]
            cells.append(f"{row.total:>12.3f} ({row.stall:.3f})")
        lines.append(f"{bench:<12}" + " ".join(f"{c:>20}" for c in cells))
    lines.append(_rule())
    lines.append(_measured_row(series))
    return "\n".join(lines)


def render_sched_compare(rows: list[dict]) -> str:
    """The scheduler-oracle table: per-loop II(SMS) / II(exact) / MII."""
    lines = [
        "Scheduler comparison: II(SMS) vs II(exact) vs MII per loop",
        "(exact = branch-and-bound with SMS fallback; Figure-5 L0 configs)",
        _rule(),
        f"{'benchmark':<12} {'loop':<18} {'config':<12} "
        f"{'MII':>4} {'SMS':>4} {'exact':>6}  verdict",
        _rule(),
    ]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<12} {row['loop']:<18} {row['config']:<12} "
            f"{row['mii']:>4} {row['ii_sms']:>4} {row['ii_exact']:>6}  "
            f"{row['verdict']}"
        )
    lines.append(_rule())
    improved = [r for r in rows if r["ii_exact"] < r["ii_sms"]]
    exhausted = [r for r in rows if r["verdict"] == "budget exhausted"]
    at_mii = [r for r in rows if r["ii_sms"] <= r["mii"]]
    lines.append(
        f"{len(rows)} loop/config pairs: exact beat SMS on {len(improved)}, "
        f"SMS already at MII on {len(at_mii)}, budget exhausted on "
        f"{len(exhausted)}"
    )
    if improved:
        worst = max(improved, key=lambda r: r["ii_sms"] - r["ii_exact"])
        lines.append(
            "largest gap: "
            f"{worst['benchmark']}/{worst['loop']} ({worst['config']}) "
            f"II {worst['ii_sms']} -> {worst['ii_exact']} (MII {worst['mii']})"
        )
    elif all(r["verdict"].startswith("SMS optimal") for r in rows):
        lines.append("SMS proved optimal on every loop/config pair")
    return "\n".join(lines)


def render_ablation(rows: list[dict], title: str, a: str, b: str) -> str:
    lines = [title, _rule(), f"{'benchmark':<12} {a:>16} {b:>16} {'ratio':>8}", _rule()]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<12} {row[a]:>16.0f} {row[b]:>16.0f} "
            f"{row['ratio']:>8.3f}"
        )
    return "\n".join(lines)
