"""Experiment harness: one entry per table/figure of the paper."""

from .experiments import (
    AMEAN,
    ExperimentContext,
    NormalizedTime,
    ablation_all_candidates,
    ablation_prefetch_distance,
    fig5,
    fig6,
    fig7,
    scheduler_comparison,
    table1,
    table2,
)
from .report import (
    render_ablation,
    render_fig5,
    render_fig6,
    render_fig7,
    render_sched_compare,
    render_table1,
    render_table2,
)

__all__ = [
    "AMEAN",
    "ExperimentContext",
    "NormalizedTime",
    "ablation_all_candidates",
    "ablation_prefetch_distance",
    "fig5",
    "fig6",
    "fig7",
    "render_ablation",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_sched_compare",
    "render_table1",
    "render_table2",
    "scheduler_comparison",
    "table1",
    "table2",
]
