"""Experiment definitions: one entry per table/figure in the paper.

Every experiment returns plain data (dicts/lists of rows) so the report
module can format it and tests can assert on it.  Normalisation follows
the paper: execution time relative to the clustered VLIW with a unified
L1 and no L0 buffers.  Because only ~80% of the dynamic stream is
modulo-scheduled loop code (``Benchmark.loop_fraction``), every
configuration's loop cycles are extended with an architecture-
independent scalar residue sized from the baseline run before the ratio
is taken.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from ..ir import stride
from ..machine.config import (
    MachineConfig,
    interleaved_config,
    l0_config,
    multivliw_config,
    unified_config,
)
from ..pipeline.cache import ResultCache
from ..pipeline.executor import RunRequest
from ..pipeline.session import Session
from ..sim.runner import SimOptions
from ..sim.stats import ProgramResult
from ..workloads.mediabench import PAPER_TABLE1, Benchmark, build, suite

AMEAN = "AMEAN"


@dataclass
class NormalizedTime:
    """One bar of Figures 5/7: total + stall portion, normalised."""

    benchmark: str
    label: str
    total: float
    stall: float
    #: Cycle-weighted fraction of the bar that was actually interpreted
    #: cycle by cycle (the rest was exact fast-forward or statistical
    #: sim-cap scaling) — honesty metadata for the figure tables.
    measured: float = 1.0

    @property
    def compute(self) -> float:
        return self.total - self.stall


@dataclass
class ExperimentContext:
    """The experiments' handle on the pipeline session.

    All simulation goes through :class:`repro.pipeline.Session`:
    results are content-addressed by ``(benchmark, config, options)``
    (experiments sharing a configuration share cache entries), batches
    fan out across ``workers`` processes, and ``cache_dir`` persists
    results on disk across invocations.
    """

    options: SimOptions | None = None  # defaults to SimOptions() post-init
    benchmarks: tuple[str, ...] | None = None
    workers: int | None = None  # None/0/1 serial, N processes, -1 all cores
    cache_dir: str | Path | None = None
    compile_cache_dir: str | Path | None = None
    gc_max_bytes: int | None = None  # bound both stores on session.close()
    session: Session = None  # type: ignore[assignment] - filled in post-init

    def __post_init__(self) -> None:
        if self.session is None:
            if self.options is None:
                self.options = SimOptions()
            if self.compile_cache_dir is not None:
                # Rides inside the options (excluded from cache keys) so
                # worker processes inherit it through pickled requests.
                self.options = replace(
                    self.options, compile_cache_dir=str(self.compile_cache_dir)
                )
            self.session = Session(
                options=self.options,
                cache=ResultCache(self.cache_dir),
                workers=self.workers,
                gc_max_bytes=self.gc_max_bytes,
            )
        else:
            if (
                self.workers is not None
                or self.cache_dir is not None
                or self.compile_cache_dir is not None
                or self.gc_max_bytes is not None
            ):
                raise ValueError(
                    "workers/cache_dir/compile_cache_dir/gc_max_bytes "
                    "configure the context's own session; set them on "
                    "the explicit Session instead"
                )
            if self.options is not None and self.options != self.session.options:
                raise ValueError(
                    "options conflicts with the explicit session's options; "
                    "pass one or the other"
                )
            # The session owns the authoritative options: ctx.options must
            # never diverge from what the session simulates with.
            self.options = self.session.options

    def names(self) -> tuple[str, ...]:
        if self.benchmarks is not None:
            return self.benchmarks
        return tuple(PAPER_TABLE1)

    def options_with(self, **compile_kwargs) -> SimOptions:
        """The context's options with extra ``compile_kwargs`` merged in.

        Every other knob (sim cap, selective flush, future fields) stays
        identical to the context's options, so derived runs remain
        content-addressed alongside the context's own.
        """
        return replace(
            self.options,
            compile_kwargs={**self.options.compile_kwargs, **compile_kwargs},
        )

    def request(
        self,
        bench_name: str,
        config: MachineConfig,
        options: SimOptions | None = None,
    ) -> RunRequest:
        return self.session.request(bench_name, config, options)

    def prefetch(self, requests) -> None:
        """Warm the cache for a batch (the parallel fan-out point)."""
        self.session.prefetch(list(requests))

    def run(
        self,
        bench_name: str,
        label: str,
        config: MachineConfig,
        *,
        options: SimOptions | None = None,
    ) -> ProgramResult:
        del label  # results are content-addressed; labels are display-only
        return self.session.run(self.request(bench_name, config, options))

    def baseline_request(self, bench_name: str) -> RunRequest:
        return self.request(bench_name, unified_config())

    def baseline(self, bench_name: str) -> ProgramResult:
        return self.run(bench_name, "baseline", unified_config())

    def scalar_cycles(self, bench_name: str) -> float:
        """Architecture-independent (non-loop) cycles, from the baseline."""
        bench = build(bench_name)
        base = self.baseline(bench_name)
        f = bench.loop_fraction
        return base.total_cycles * (1.0 - f) / f

    def normalized(
        self, bench_name: str, label: str, result: ProgramResult
    ) -> NormalizedTime:
        base = self.baseline(bench_name)
        scalar = self.scalar_cycles(bench_name)
        denom = base.total_cycles + scalar
        return NormalizedTime(
            benchmark=bench_name,
            label=label,
            total=(result.total_cycles + scalar) / denom,
            stall=result.stall_cycles / denom,
            measured=result.measured_fraction,
        )


def _amean(rows: list[NormalizedTime], label: str) -> NormalizedTime:
    n = len(rows)
    return NormalizedTime(
        benchmark=AMEAN,
        label=label,
        total=sum(r.total for r in rows) / n,
        stall=sum(r.stall for r in rows) / n,
        measured=sum(r.measured for r in rows) / n,
    )


# ----------------------------------------------------------------------
# Table 1 — benchmark stride statistics
# ----------------------------------------------------------------------


def table1(ctx: ExperimentContext | None = None) -> list[dict]:
    """Dynamic stride percentages (S / SG / SO) per benchmark."""
    names = ctx.names() if ctx is not None else tuple(PAPER_TABLE1)
    rows: list[dict] = []
    for name in names:
        bench = build(name)
        total = strided = good = other = 0
        for spec in bench.loops:
            weight = spec.loop.trip_count * spec.invocations
            s, g, o = stride.dynamic_stride_stats(spec.loop)
            m = stride.total_memory_ops(spec.loop)
            total += m * weight
            strided += s * weight
            good += g * weight
            other += o * weight
        paper = PAPER_TABLE1[name]
        rows.append(
            {
                "benchmark": name,
                "S": 100.0 * strided / total if total else 0.0,
                "SG": 100.0 * good / total if total else 0.0,
                "SO": 100.0 * other / total if total else 0.0,
                "paper_S": paper[0],
                "paper_SG": paper[1],
                "paper_SO": paper[2],
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 2 — configuration parameters
# ----------------------------------------------------------------------


def table2() -> list[tuple[str, str]]:
    cfg = l0_config(8)
    return [
        ("Number of clusters", f"{cfg.n_clusters} clusters working in lock-step mode"),
        (
            "Functional units",
            f"({cfg.int_units_per_cluster} integer + {cfg.mem_units_per_cluster} "
            f"memory + {cfg.fp_units_per_cluster} FP) per cluster",
        ),
        (
            "L0 buffers",
            f"{cfg.l0_latency} cycle latency + fully associative + "
            f"{cfg.subblock_bytes}-byte subblocks + {cfg.l0_ports} read/write ports",
        ),
        (
            "L1 cache",
            f"{cfg.l1_latency} cycles latency, {cfg.l1_assoc}-way set-associative "
            f"{cfg.l1_size // 1024}KB, {cfg.l1_block}-byte blocks, "
            f"{cfg.interleave_penalty} extra cycle for shift/interleave logic",
        ),
        ("L2 cache", f"{cfg.l2_latency} cycle latency, always hits"),
        (
            "Register buses",
            f"{cfg.n_buses} buses with {cfg.bus_latency}-cycle latency",
        ),
    ]


# ----------------------------------------------------------------------
# Figure 5 — execution time vs number of L0 entries
# ----------------------------------------------------------------------

FIG5_SIZES: tuple[int | None, ...] = (4, 8, 16, None)


def fig5(
    ctx: ExperimentContext, sizes: tuple[int | None, ...] = FIG5_SIZES
) -> dict[str, list[NormalizedTime]]:
    """Normalized execution time for each L0 size (None = unbounded)."""
    # One request list drives both the warm-up prefetch and the row
    # assembly below, so a new row can never drift out of the parallel
    # batch (a second, hand-maintained list silently de-parallelises).
    requests = {
        (name, entries): ctx.request(name, l0_config(entries))
        for entries in sizes
        for name in ctx.names()
    }
    ctx.prefetch(
        [ctx.baseline_request(name) for name in ctx.names()]
        + list(requests.values())
    )
    series: dict[str, list[NormalizedTime]] = {}
    for entries in sizes:
        label = f"{entries} entries" if entries is not None else "unbounded"
        rows: list[NormalizedTime] = []
        for name in ctx.names():
            result = ctx.session.run(requests[(name, entries)])
            rows.append(ctx.normalized(name, label, result))
        rows.append(_amean(rows, label))
        series[label] = rows
    return series


# ----------------------------------------------------------------------
# Figure 6 — mapping mix, L0 hit rate, average unroll factor
# ----------------------------------------------------------------------


def fig6(ctx: ExperimentContext) -> list[dict]:
    requests = {name: ctx.request(name, l0_config(8)) for name in ctx.names()}
    ctx.prefetch(list(requests.values()))
    rows: list[dict] = []
    for name in ctx.names():
        result = ctx.session.run(requests[name])
        stats = result.memory_stats
        fills = stats.l0.linear_fills + stats.l0.interleaved_fills
        rows.append(
            {
                "benchmark": name,
                "linear_ratio": stats.l0.linear_fills / fills if fills else 1.0,
                "interleaved_ratio": (
                    stats.l0.interleaved_fills / fills if fills else 0.0
                ),
                "l0_hit_rate": stats.l0.hit_rate,
                "avg_unroll": result.average_unroll_factor,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 7 — L0 vs MultiVLIW vs word-interleaved
# ----------------------------------------------------------------------


def fig7(ctx: ExperimentContext) -> dict[str, list[NormalizedTime]]:
    configs = {
        "8-entry L0 buffers": (l0_config(8), {}),
        "MultiVLIW": (multivliw_config(), {}),
        "Interleaved 1": (interleaved_config(), {"interleaved_heuristic": 1}),
        "Interleaved 2": (interleaved_config(), {"interleaved_heuristic": 2}),
    }
    requests = {
        (label, name): ctx.request(name, config, ctx.options_with(**compile_kwargs))
        for label, (config, compile_kwargs) in configs.items()
        for name in ctx.names()
    }
    ctx.prefetch(
        [ctx.baseline_request(name) for name in ctx.names()]
        + list(requests.values())
    )
    series: dict[str, list[NormalizedTime]] = {}
    for label in configs:
        rows: list[NormalizedTime] = []
        for name in ctx.names():
            result = ctx.session.run(requests[(label, name)])
            rows.append(ctx.normalized(name, label, result))
        rows.append(_amean(rows, label))
        series[label] = rows
    return series


# ----------------------------------------------------------------------
# Section 5.2 text experiments (ablations)
# ----------------------------------------------------------------------


def ablation_all_candidates(ctx: ExperimentContext, entries: int = 4) -> list[dict]:
    """Selective (slack-based) vs mark-all candidate assignment.

    The paper: with 4-entry buffers, marking every candidate overflows
    the buffers and costs ~6% over the selective policy.
    """
    options = ctx.options_with(all_candidates=True)
    selective_requests = {
        name: ctx.request(name, l0_config(entries)) for name in ctx.names()
    }
    greedy_requests = {
        name: ctx.request(name, l0_config(entries), options) for name in ctx.names()
    }
    ctx.prefetch(
        [ctx.baseline_request(name) for name in ctx.names()]
        + list(selective_requests.values())
        + list(greedy_requests.values())
    )
    rows: list[dict] = []
    for name in ctx.names():
        selective = ctx.session.run(selective_requests[name])
        greedy = ctx.session.run(greedy_requests[name])
        scalar = ctx.scalar_cycles(name)
        rows.append(
            {
                "benchmark": name,
                "selective": selective.total_cycles + scalar,
                "all_candidates": greedy.total_cycles + scalar,
                "ratio": (greedy.total_cycles + scalar)
                / (selective.total_cycles + scalar),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Scheduler-oracle comparison — II(SMS) vs II(exact) vs MII
# ----------------------------------------------------------------------


def _compare_one(job: tuple) -> dict:
    """Compile one (loop, config) pair with the exact backend (picklable
    module-level worker for the scheduler-comparison fan-out)."""
    benchmark, loop, config_label, config, options, cache_dir = job
    from ..pipeline.compilecache import compile_cached, get_compile_cache

    compiled = compile_cached(
        loop, config, options, cache=get_compile_cache(cache_dir)
    )
    meta = compiled.schedule.meta
    if meta["improved"]:
        verdict = "exact beats SMS"
    elif meta["fallback"]:
        verdict = "budget exhausted"
    elif meta["ii_sms"] <= meta["mii"]:
        verdict = "SMS optimal (== MII)"
    elif meta["proved_optimal"]:
        verdict = "SMS optimal (proved)"
    else:
        # Search came up dry, but the L0 protocol's sticky decisions make
        # refutation incomplete — don't print a proof that doesn't exist.
        verdict = "SMS not improved (policy-limited)"
    return {
        "benchmark": benchmark,
        "loop": loop.name,
        "config": config_label,
        "mii": meta["mii"],
        "ii_sms": meta["ii_sms"],
        "ii_exact": compiled.ii,
        "nodes": meta["nodes_explored"],
        "verdict": verdict,
    }


def scheduler_comparison(
    ctx: ExperimentContext,
    sizes: tuple[int | None, ...] = FIG5_SIZES,
    *,
    exact_node_budget: int | None = None,
) -> list[dict]:
    """Per-loop II achieved by each scheduler backend, against MII.

    One ``scheduler="exact"`` compile per (loop, Figure-5 config)
    delivers all three numbers at once: the exact backend runs the SMS
    engine first (its fallback and upper bound), so ``schedule.meta``
    carries ``mii`` and ``ii_sms`` alongside the exact II.  Compiles go
    through the shared compile cache (so a following ``--scheduler
    exact`` evaluation run reuses every artifact produced here) and fan
    out across ``ctx.workers`` processes like every other experiment.
    """
    from ..pipeline.artifact import CompileOptions
    from ..pipeline.executor import shared_executor

    kwargs = {"scheduler": "exact"}
    if exact_node_budget is not None:
        kwargs["exact_node_budget"] = exact_node_budget
    options = CompileOptions(**kwargs)
    cache_dir = ctx.options.compile_cache_dir
    jobs: list[tuple] = []
    for name in ctx.names():
        bench = build(name)
        for spec in bench.loops:
            for entries in sizes:
                label = f"{entries} entries" if entries is not None else "unbounded"
                jobs.append(
                    (name, spec.loop, label, l0_config(entries), options, cache_dir)
                )
    return shared_executor(ctx.workers).map(jobs, fn=_compare_one)


def ablation_prefetch_distance(
    ctx: ExperimentContext, names: tuple[str, ...] = ("epicdec", "rasta")
) -> list[dict]:
    """Prefetching two subblocks ahead (paper: epicdec -12%, rasta -4%)."""
    options = ctx.options_with(prefetch_distance=2)
    chosen = [
        name
        for name in names
        if ctx.benchmarks is None or name in ctx.benchmarks
    ]
    near_requests = {name: ctx.request(name, l0_config(8)) for name in chosen}
    far_requests = {name: ctx.request(name, l0_config(8), options) for name in chosen}
    ctx.prefetch(
        [ctx.baseline_request(name) for name in chosen]
        + list(near_requests.values())
        + list(far_requests.values())
    )
    rows: list[dict] = []
    for name in chosen:
        near = ctx.session.run(near_requests[name])
        far = ctx.session.run(far_requests[name])
        scalar = ctx.scalar_cycles(name)
        rows.append(
            {
                "benchmark": name,
                "distance_1": near.total_cycles + scalar,
                "distance_2": far.total_cycles + scalar,
                "ratio": (far.total_cycles + scalar) / (near.total_cycles + scalar),
            }
        )
    return rows
