"""Workloads: the synthetic Mediabench suite and random loop generation."""

from . import kernels
from .generator import random_loop
from .kernels import make_column, make_dpcm, make_saxpy
from .mediabench import (
    BENCHMARK_BUILDERS,
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    Benchmark,
    LoopSpec,
    build,
    suite,
)

__all__ = [
    "BENCHMARK_BUILDERS",
    "BENCHMARK_NAMES",
    "Benchmark",
    "LoopSpec",
    "PAPER_TABLE1",
    "build",
    "kernels",
    "make_column",
    "make_dpcm",
    "make_saxpy",
    "random_loop",
    "suite",
]
