"""Workloads: the synthetic Mediabench suite and random loop generation."""

from . import kernels
from .generator import (
    PROFILES,
    GenProfile,
    KernelGenotype,
    random_genotype,
    random_loop,
)
from .kernels import make_column, make_dpcm, make_saxpy
from .mediabench import (
    BENCHMARK_BUILDERS,
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    Benchmark,
    LoopSpec,
    build,
    suite,
)

__all__ = [
    "BENCHMARK_BUILDERS",
    "BENCHMARK_NAMES",
    "Benchmark",
    "GenProfile",
    "KernelGenotype",
    "LoopSpec",
    "PAPER_TABLE1",
    "PROFILES",
    "build",
    "kernels",
    "make_column",
    "make_dpcm",
    "make_saxpy",
    "random_genotype",
    "random_loop",
    "suite",
]
