"""Workloads: the synthetic Mediabench suite and random loop generation."""

from . import kernels
from .generator import random_loop
from .mediabench import (
    BENCHMARK_BUILDERS,
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    Benchmark,
    LoopSpec,
    build,
    suite,
)

__all__ = [
    "BENCHMARK_BUILDERS",
    "BENCHMARK_NAMES",
    "Benchmark",
    "LoopSpec",
    "PAPER_TABLE1",
    "build",
    "kernels",
    "random_loop",
    "suite",
]
