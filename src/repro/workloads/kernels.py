"""Reusable inner-loop kernel builders for the synthetic benchmark suite.

Each builder produces a :class:`~repro.ir.loop.Loop` with a particular
dependence/access shape found in media code:

* ``stream_map``     — elementwise map over arrays (good ±1 strides);
* ``feedback``       — DPCM/IIR-style loop-carried recurrence through a
  load (these are where L0 latency shrinks the II dramatically);
* ``reduction``      — accumulator loops (autocorrelation, dot products);
* ``column_walk``    — "other"-stride walks (DCT columns, wavelets);
* ``table_mix``      — streams mixed with random table lookups
  (Huffman/crypto-style non-strided accesses);
* ``bignum``         — word streams with a carry recurrence (PGP);
* ``fp_filter``      — floating-point filterbank (rasta/epic).

``alu_depth`` controls the ALU work per element, which sets the
compute/memory balance (and therefore the II class) of each loop.
"""

from __future__ import annotations

from ..ir.builder import LoopBuilder
from ..ir.loop import Loop
from ..isa.registers import VReg


def _int_chain(b: LoopBuilder, seed: VReg, depth: int, salt: VReg) -> VReg:
    """A chain of ``depth`` dependent integer ops starting at ``seed``."""
    value = seed
    ops = (b.iadd, b.ixor, b.ishr, b.imax, b.iand, b.isub)
    for level in range(depth):
        value = ops[level % len(ops)](value, salt, tag=f"alu{level}")
    return value


def _fp_chain(b: LoopBuilder, seed: VReg, depth: int, salt: VReg) -> VReg:
    value = seed
    ops = (b.fmul, b.fadd, b.fsub)
    for level in range(depth):
        value = ops[level % len(ops)](value, salt, tag=f"falu{level}")
    return value


def make_saxpy(trip: int = 256, n: int = 1024) -> Loop:
    """``y[i] = a * x[i] + y[i]`` — two streams, one in-place store.

    The canonical recurrence-free micro-kernel shared by the tests,
    examples, and docs (importable, unlike a conftest).
    """
    b = LoopBuilder("saxpy", trip_count=trip)
    x = b.array("x", n, 4)
    y = b.array("y", n, 4)
    a = b.live_in("a")
    vx = b.load(x, stride=1, tag="ld_x")
    vy = b.load(y, stride=1, tag="ld_y")
    prod = b.fmul(a, vx)
    total = b.fadd(prod, vy)
    b.store(y, total, stride=1, tag="st_y")
    return b.build()


def make_dpcm(trip: int = 256, n: int = 1024) -> Loop:
    """``y[i+1] = f(y[i], x[i])`` — the canonical recurrence-through-a-load."""
    b = LoopBuilder("dpcm", trip_count=trip)
    x = b.array("x", n, 2)
    y = b.array("y", n, 2)
    a = b.live_in("a")
    prev = b.load(y, stride=1, offset=0, tag="ld_prev")
    vx = b.load(x, stride=1, tag="ld_x")
    m = b.imul(prev, a)
    s = b.iadd(m, vx)
    b.store(y, s, stride=1, offset=1, tag="st_y")
    return b.build()


def make_column(trip: int = 64, n: int = 512, stride: int = 8) -> Loop:
    """Canonical non-unit-stride ("other" stride class) micro-kernel."""
    b = LoopBuilder("column", trip_count=trip)
    src = b.array("src", n, 2)
    dst = b.array("dst", n, 2)
    k = b.live_in("k")
    v = b.load(src, stride=stride, tag="ld_col")
    w = b.iadd(v, k)
    w = b.ixor(w, k)
    w = b.imax(w, k)
    b.store(dst, w, stride=stride, tag="st_col")
    return b.build()


def stream_map(
    name: str,
    *,
    trip: int,
    n: int,
    elem: int = 2,
    taps: int = 2,
    alu_depth: int = 4,
    in_place: bool = False,
    negative: bool = False,
) -> Loop:
    """``dst[i] = f(src[i], src[i+1], ...)`` — the bread-and-butter stream."""
    b = LoopBuilder(name, trip_count=trip)
    src = b.array(f"{name}_src", n, elem)
    dst = src if in_place else b.array(f"{name}_dst", n, elem)
    salt = b.live_in("k")
    stride = -1 if negative else 1
    first = b.load(src, stride=stride, offset=0, tag="ld0")
    acc = first
    for tap in range(1, taps):
        value = b.load(src, stride=stride, offset=tap, tag=f"ld{tap}")
        acc = b.iadd(acc, value, tag=f"mix{tap}")
    result = _int_chain(b, acc, alu_depth, salt)
    b.store(dst, result, stride=stride, tag="st")
    return b.build()


def multi_stream(
    name: str,
    *,
    trip: int,
    n: int,
    elem: int = 2,
    inputs: int = 3,
    alu_depth: int = 4,
) -> Loop:
    """Elementwise combine of several distinct arrays (RGB planes, etc.).

    Each input array is its own L0-resident stream, so a cluster needs
    roughly ``2 * inputs`` live subblocks (current + prefetched) — the
    workload that separates 4-entry from 8-entry buffers in Figure 5.
    """
    b = LoopBuilder(name, trip_count=trip)
    salt = b.live_in("k")
    acc = None
    for idx in range(inputs):
        src = b.array(f"{name}_in{idx}", n, elem)
        value = b.load(src, stride=1, tag=f"ld_in{idx}")
        acc = value if acc is None else b.iadd(acc, value, tag=f"mix{idx}")
    assert acc is not None
    dst = b.array(f"{name}_dst", n, elem)
    result = _int_chain(b, acc, alu_depth, salt)
    b.store(dst, result, stride=1, tag="st")
    return b.build()


def feedback(
    name: str,
    *,
    trip: int,
    n: int,
    elem: int = 2,
    work: int = 2,
    extra_stream: bool = True,
) -> Loop:
    """Recurrence through memory: ``y[i+1] = f(y[i], x[i])`` (ADPCM/IIR).

    The load of ``y[i]`` sits on the loop-carried critical cycle, so its
    latency multiplies straight into the II — the paper's biggest win.
    """
    b = LoopBuilder(name, trip_count=trip)
    state = b.array(f"{name}_state", n, elem)
    salt = b.live_in("a")
    prev = b.load(state, stride=1, offset=0, tag="ld_prev")
    mixed = prev
    if extra_stream:
        stream = b.array(f"{name}_in", n, elem)
        sample = b.load(stream, stride=1, tag="ld_in")
        mixed = b.iadd(prev, sample, tag="mix")
    value = _int_chain(b, mixed, work, salt)
    b.store(state, value, stride=1, offset=1, tag="st_next")
    return b.build()


def reduction(
    name: str,
    *,
    trip: int,
    n: int,
    elem: int = 2,
    taps: int = 2,
    alu_depth: int = 1,
) -> Loop:
    """Accumulator loop: ``acc += f(x[i] * y[i])`` (autocorrelation, dot)."""
    from ..isa.operations import Opcode

    b = LoopBuilder(name, trip_count=trip)
    x = b.array(f"{name}_x", n, elem)
    salt = b.live_in("k")
    value = b.load(x, stride=1, tag="ld_x")
    if taps > 1:
        y = b.array(f"{name}_y", n, elem)
        other = b.load(y, stride=1, tag="ld_y")
        value = b.imul(value, other, tag="prod")
    value = _int_chain(b, value, alu_depth, salt)
    b.accumulate(Opcode.IADD, value, tag="acc")
    return b.build()


def column_walk(
    name: str,
    *,
    trip: int,
    n: int,
    elem: int = 2,
    stride: int = 8,
    taps: int = 2,
    alu_depth: int = 3,
    store_stride: int | None = None,
) -> Loop:
    """Strided-but-not-unit walk (matrix columns, wavelet subsampling)."""
    b = LoopBuilder(name, trip_count=trip)
    src = b.array(f"{name}_src", n, elem)
    dst = b.array(f"{name}_dst", n, elem)
    salt = b.live_in("k")
    mixed = b.load(src, stride=stride, offset=0, tag="ldc0")
    for tap in range(1, taps):
        value = b.load(src, stride=stride, offset=tap, tag=f"ldc{tap}")
        mixed = b.iadd(mixed, value, tag=f"mix{tap}")
    result = _int_chain(b, mixed, alu_depth, salt)
    b.store(dst, result, stride=store_stride if store_stride is not None else stride,
            tag="stc")
    return b.build()


def table_mix(
    name: str,
    *,
    trip: int,
    n_stream: int,
    n_table: int,
    elem: int = 1,
    random_loads: int = 1,
    alu_depth: int = 3,
    seed: int = 7,
) -> Loop:
    """Stream processing with random table lookups (Huffman, S-boxes)."""
    b = LoopBuilder(name, trip_count=trip)
    stream = b.array(f"{name}_stream", n_stream, elem)
    table = b.array(f"{name}_table", n_table, elem)
    out = b.array(f"{name}_out", n_stream, elem)
    salt = b.live_in("k")
    acc = b.load(stream, stride=1, tag="ld_s")
    for idx in range(random_loads):
        entry = b.load(table, random=True, seed=seed + idx, tag=f"ld_t{idx}")
        acc = b.ixor(acc, entry, tag=f"fold{idx}")
    result = _int_chain(b, acc, alu_depth, salt)
    b.store(out, result, stride=1, tag="st")
    return b.build()


def bignum(
    name: str,
    *,
    trip: int,
    n: int,
    alu_depth: int = 2,
) -> Loop:
    """Multiword arithmetic: two word streams and a carry recurrence."""
    from ..isa.operations import Opcode

    b = LoopBuilder(name, trip_count=trip)
    a = b.array(f"{name}_a", n, 4)
    c = b.array(f"{name}_c", n, 4)
    salt = b.live_in("m")
    wa = b.load(a, stride=1, tag="ld_a")
    wc = b.load(c, stride=1, tag="ld_c")
    prod = b.imul(wa, salt, tag="mul")
    summed = b.iadd(prod, wc, tag="add")
    summed = _int_chain(b, summed, alu_depth, salt)
    carry = b.accumulate(Opcode.IADD, summed, tag="carry")
    b.store(c, carry, stride=1, tag="st_c")
    return b.build()


def fp_filter(
    name: str,
    *,
    trip: int,
    n: int,
    taps: int = 2,
    fp_depth: int = 3,
    stride: int = 1,
) -> Loop:
    """Floating-point filter stage (rasta's filterbank, epic's wavelets)."""
    b = LoopBuilder(name, trip_count=trip)
    src = b.array(f"{name}_src", n, 4)
    dst = b.array(f"{name}_dst", n, 4)
    coef = b.live_in("c")
    acc = b.load(src, stride=stride, offset=0, tag="ld0")
    for tap in range(1, taps):
        value = b.load(src, stride=stride, offset=tap, tag=f"ld{tap}")
        scaled = b.fmul(value, coef, tag=f"scale{tap}")
        acc = b.fadd(acc, scaled, tag=f"sum{tap}")
    result = _fp_chain(b, acc, fp_depth, coef)
    b.store(dst, result, stride=stride, tag="st")
    return b.build()


def fp_feedback(
    name: str,
    *,
    trip: int,
    n: int,
    fp_depth: int = 1,
) -> Loop:
    """IIR with floating-point state (rasta's RASTA filter itself)."""
    b = LoopBuilder(name, trip_count=trip)
    state = b.array(f"{name}_state", n, 4)
    stream = b.array(f"{name}_in", n, 4)
    coef = b.live_in("c")
    prev = b.load(state, stride=1, offset=0, tag="ld_prev")
    sample = b.load(stream, stride=1, tag="ld_in")
    scaled = b.fmul(prev, coef, tag="scale")
    mixed = b.fadd(scaled, sample, tag="mix")
    value = _fp_chain(b, mixed, fp_depth, coef)
    b.store(state, value, stride=1, offset=1, tag="st_next")
    return b.build()
