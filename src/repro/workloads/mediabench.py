"""The synthetic Mediabench suite.

The paper evaluates 13 Mediabench programs (Table 1).  Their sources and
inputs are not redistributable here, so each program is modelled as a
small set of weighted inner loops — the modulo-scheduled kernels that
make up ~80% of the paper's dynamic instruction stream — chosen to match
that program's published stride profile (Table 1: %S strided, %SG good
strides, %SO other strides) and the per-program behaviours the paper
narrates:

* g721/gsm/pgp — feedback recurrences and unit-stride streams over
  small (L1-resident) state arrays: the big L0 wins;
* jpegdec — a pathological block loop with every memory slot busy and
  heavy prefetching (L0 loses there), plus Huffman table lookups;
* epicdec/rasta — small-II loops whose prefetches arrive late;
* pegwit — large random working sets (low L1 hit rate, stall-bound
  even with unbounded L0);
* mpeg2dec — motion-compensation walks dominated by non-unit strides.

Each benchmark also carries ``loop_fraction``: modulo-scheduled inner
loops cover ~80% of the paper's dynamic stream, so experiment
normalisation adds an architecture-independent scalar-code residue
sized from the baseline run (see ``repro.eval``).

See DESIGN.md ("Substitutions") for the fidelity argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir.loop import Loop
from . import kernels


@dataclass(frozen=True)
class LoopSpec:
    """One inner loop plus how many times the program enters it."""

    loop: Loop
    invocations: int = 1


@dataclass(frozen=True)
class Benchmark:
    name: str
    loops: tuple[LoopSpec, ...]
    description: str = ""
    #: Fraction of dynamic execution spent in modulo-scheduled loops
    #: (the paper reports ~80%); the rest is architecture-independent.
    loop_fraction: float = 0.8


#: Paper Table 1 — (S, SG, SO) percentages per benchmark.
PAPER_TABLE1: dict[str, tuple[int, int, int]] = {
    "epicdec": (99, 66, 33),
    "g721dec": (100, 100, 0),
    "g721enc": (100, 100, 0),
    "gsmdec": (97, 97, 0),
    "gsmenc": (99, 99, 0),
    "jpegdec": (60, 39, 21),
    "jpegenc": (49, 40, 9),
    "mpeg2dec": (96, 42, 54),
    "pegwitdec": (50, 48, 2),
    "pegwitenc": (56, 54, 2),
    "pgpdec": (99, 98, 1),
    "pgpenc": (86, 86, 0),
    "rasta": (95, 87, 8),
}


def _epicdec() -> Benchmark:
    return Benchmark(
        name="epicdec",
        description="wavelet pyramid decoder: unit-stride filters + "
        "column subsampling walks in small-II loops",
        loops=(
            LoopSpec(
                kernels.fp_filter("epic_recon", trip=1200, n=1024, taps=2, fp_depth=3),
                invocations=4,
            ),
            LoopSpec(
                kernels.column_walk(
                    "epic_cols", trip=512, n=1024, elem=4, stride=8, alu_depth=3
                ),
                invocations=6,
            ),
            LoopSpec(
                kernels.stream_map(
                    "epic_unquant", trip=1600, n=1024, elem=4, taps=1, alu_depth=5
                ),
                invocations=3,
            ),
        ),
    )


def _g721(name: str) -> Benchmark:
    return Benchmark(
        name=name,
        description="ADPCM codec: predictor feedback recurrences over "
        "small state arrays; 100% good strides",
        loops=(
            LoopSpec(
                kernels.feedback(f"{name}_pred", trip=2400, n=1024, elem=2, work=4),
                invocations=3,
            ),
            LoopSpec(
                kernels.feedback(
                    f"{name}_adapt", trip=2400, n=1024, elem=2, work=5,
                    extra_stream=False,
                ),
                invocations=2,
            ),
            LoopSpec(
                kernels.stream_map(
                    f"{name}_io", trip=2400, n=1024, elem=2, taps=1, alu_depth=3
                ),
                invocations=2,
            ),
        ),
    )


def _gsmdec() -> Benchmark:
    return Benchmark(
        name="gsmdec",
        description="GSM decoder: LTP synthesis feedback + unit-stride "
        "postprocessing; ~3% non-strided side lookups",
        loops=(
            LoopSpec(
                kernels.feedback("gsmd_ltp", trip=2000, n=1024, elem=2, work=3),
                invocations=3,
            ),
            LoopSpec(
                kernels.stream_map(
                    "gsmd_deemph", trip=2000, n=1024, elem=2, taps=2, alu_depth=6
                ),
                invocations=3,
            ),
            LoopSpec(
                kernels.table_mix(
                    "gsmd_dequant", trip=640, n_stream=1024, n_table=256,
                    elem=2, random_loads=1, alu_depth=3,
                ),
                invocations=1,
            ),
        ),
    )


def _gsmenc() -> Benchmark:
    return Benchmark(
        name="gsmenc",
        description="GSM encoder: autocorrelation reductions + weighting "
        "filters; ~1% non-strided",
        loops=(
            LoopSpec(
                kernels.reduction(
                    "gsme_autoc", trip=2000, n=1024, elem=2, taps=2, alu_depth=4
                ),
                invocations=4,
            ),
            LoopSpec(
                kernels.stream_map(
                    "gsme_weight", trip=2000, n=1024, elem=2, taps=2, alu_depth=6
                ),
                invocations=3,
            ),
            LoopSpec(
                kernels.feedback("gsme_preemph", trip=2000, n=1024, elem=2, work=1),
                invocations=2,
            ),
        ),
    )


def _jpegdec() -> Benchmark:
    return Benchmark(
        name="jpegdec",
        description="JPEG decoder: Huffman table lookups (non-strided), "
        "the pathological all-memory-slots-busy IDCT column loop, and "
        "unit-stride color output",
        loops=(
            LoopSpec(
                # The loop the paper singles out: every memory slot busy,
                # column strides that want interleaved mapping but cannot
                # all get it, prefetching common.
                kernels.column_walk(
                    "jpgd_idct_col", trip=8, n=64, elem=2, stride=8, taps=3,
                    alu_depth=1,
                ),
                invocations=1000,
            ),
            LoopSpec(
                kernels.table_mix(
                    "jpgd_huff", trip=2000, n_stream=2048, n_table=512,
                    elem=2, random_loads=3, alu_depth=2,
                ),
                invocations=12,
            ),
            LoopSpec(
                kernels.multi_stream(
                    "jpgd_color", trip=2000, n=2048, elem=1, inputs=3, alu_depth=4
                ),
                invocations=2,
            ),
            LoopSpec(
                kernels.multi_stream(
                    "jpgd_upsample", trip=2000, n=2048, elem=2, inputs=3,
                    alu_depth=3,
                ),
                invocations=2,
            ),
        ),
    )


def _jpegenc() -> Benchmark:
    return Benchmark(
        name="jpegenc",
        description="JPEG encoder: forward DCT rows, quantization with "
        "table lookups, Huffman emit (heavily non-strided)",
        loops=(
            LoopSpec(
                kernels.column_walk(
                    "jpge_fdct", trip=8, n=64, elem=2, stride=8, alu_depth=3
                ),
                invocations=400,
            ),
            LoopSpec(
                kernels.table_mix(
                    "jpge_quant", trip=2000, n_stream=2048, n_table=512,
                    elem=2, random_loads=3, alu_depth=3,
                ),
                invocations=6,
            ),
            LoopSpec(
                kernels.stream_map(
                    "jpge_shift", trip=1600, n=2048, elem=1, taps=1, alu_depth=3
                ),
                invocations=2,
            ),
        ),
    )


def _mpeg2dec() -> Benchmark:
    return Benchmark(
        name="mpeg2dec",
        description="MPEG-2 decoder: motion compensation row/column walks "
        "(54% other strides) + IDCT output adds, II around 5-6",
        loops=(
            LoopSpec(
                kernels.column_walk(
                    "mpg_mocomp", trip=1024, n=8192, elem=1, stride=45,
                    alu_depth=4, store_stride=45,
                ),
                invocations=4,
            ),
            LoopSpec(
                kernels.column_walk(
                    "mpg_pred", trip=1024, n=8192, elem=1, stride=45, alu_depth=5
                ),
                invocations=3,
            ),
            LoopSpec(
                kernels.multi_stream(
                    "mpg_add", trip=1800, n=4096, elem=1, inputs=2, alu_depth=6
                ),
                invocations=3,
            ),
            LoopSpec(
                kernels.table_mix(
                    "mpg_vlc", trip=400, n_stream=2048, n_table=512,
                    elem=2, random_loads=1, alu_depth=2,
                ),
                invocations=1,
            ),
        ),
    )


def _pegwit(name: str) -> Benchmark:
    taps = 3 if name.endswith("enc") else 2
    return Benchmark(
        name=name,
        description="elliptic-curve crypto: big random S-box working set "
        "(low L1 hit rate; stall-bound even with unbounded L0)",
        loops=(
            LoopSpec(
                kernels.table_mix(
                    f"{name}_sbox", trip=2000, n_stream=1024,
                    n_table=8192, elem=4, random_loads=4, alu_depth=4,
                ),
                invocations=4,
            ),
            LoopSpec(
                kernels.stream_map(
                    f"{name}_hash", trip=2000, n=1024, elem=4,
                    taps=taps, alu_depth=7,
                ),
                invocations=1,
            ),
            LoopSpec(
                kernels.bignum(f"{name}_gf", trip=1200, n=1024, alu_depth=3),
                invocations=1,
            ),
            LoopSpec(
                kernels.feedback(
                    f"{name}_chain", trip=1000, n=1024, elem=4, work=3
                ),
                invocations=2,
            ),
        ),
    )


def _pgpdec() -> Benchmark:
    return Benchmark(
        name="pgpdec",
        description="RSA/IDEA decrypt: multiword arithmetic with carry "
        "recurrences; 98% good strides",
        loops=(
            LoopSpec(
                kernels.bignum("pgpd_mulmod", trip=2000, n=1024, alu_depth=3),
                invocations=4,
            ),
            LoopSpec(
                kernels.stream_map(
                    "pgpd_idea", trip=2000, n=2048, elem=2, taps=2, alu_depth=6
                ),
                invocations=3,
            ),
            LoopSpec(
                kernels.column_walk(
                    "pgpd_transpose", trip=256, n=1024, elem=4, stride=16,
                    alu_depth=2,
                ),
                invocations=1,
            ),
            LoopSpec(
                kernels.feedback(
                    "pgpd_borrow", trip=2000, n=1024, elem=4, work=2
                ),
                invocations=4,
            ),
        ),
    )


def _pgpenc() -> Benchmark:
    return Benchmark(
        name="pgpenc",
        description="RSA/IDEA encrypt: multiword arithmetic plus a "
        "non-strided key schedule (~14%)",
        loops=(
            LoopSpec(
                kernels.bignum("pgpe_mulmod", trip=2000, n=1024, alu_depth=3),
                invocations=4,
            ),
            LoopSpec(
                kernels.stream_map(
                    "pgpe_idea", trip=2000, n=2048, elem=2, taps=2, alu_depth=6
                ),
                invocations=2,
            ),
            LoopSpec(
                kernels.table_mix(
                    "pgpe_keys", trip=1200, n_stream=1024, n_table=1024,
                    elem=4, random_loads=2, alu_depth=2,
                ),
                invocations=3,
            ),
            LoopSpec(
                kernels.feedback(
                    "pgpe_borrow", trip=2000, n=1024, elem=4, work=2
                ),
                invocations=4,
            ),
        ),
    )


def _rasta() -> Benchmark:
    return Benchmark(
        name="rasta",
        description="RASTA-PLP speech analysis: FP IIR filterbank with "
        "small-II loops (late prefetches) + FFT-style strides",
        loops=(
            LoopSpec(
                kernels.fp_feedback("rasta_iir", trip=1600, n=1024, fp_depth=1),
                invocations=3,
            ),
            LoopSpec(
                kernels.fp_filter(
                    "rasta_bank", trip=1600, n=1024, taps=2, fp_depth=1
                ),
                invocations=3,
            ),
            LoopSpec(
                kernels.column_walk(
                    "rasta_fft", trip=512, n=1024, elem=4, stride=32, alu_depth=1
                ),
                invocations=2,
            ),
            LoopSpec(
                kernels.table_mix(
                    "rasta_nl", trip=400, n_stream=1024, n_table=256,
                    elem=4, random_loads=1, alu_depth=2,
                ),
                invocations=1,
            ),
        ),
    )


BENCHMARK_BUILDERS: dict[str, Callable[[], Benchmark]] = {
    "epicdec": _epicdec,
    "g721dec": lambda: _g721("g721dec"),
    "g721enc": lambda: _g721("g721enc"),
    "gsmdec": _gsmdec,
    "gsmenc": _gsmenc,
    "jpegdec": _jpegdec,
    "jpegenc": _jpegenc,
    "mpeg2dec": _mpeg2dec,
    "pegwitdec": lambda: _pegwit("pegwitdec"),
    "pegwitenc": lambda: _pegwit("pegwitenc"),
    "pgpdec": _pgpdec,
    "pgpenc": _pgpenc,
    "rasta": _rasta,
}

BENCHMARK_NAMES: tuple[str, ...] = tuple(BENCHMARK_BUILDERS)


def build(name: str) -> Benchmark:
    try:
        return BENCHMARK_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {', '.join(BENCHMARK_NAMES)}"
        ) from None


def suite(names: tuple[str, ...] | None = None) -> list[Benchmark]:
    """The full 13-program suite (or a named subset), in paper order."""
    return [build(name) for name in (names or BENCHMARK_NAMES)]
