"""Parametric random-kernel generation for stress tests and fuzzing.

Two generations of generator live here:

* :func:`random_loop` — the original direct generator.  Its output is
  pinned by seed in regression and property tests, so its construction
  is kept byte-for-byte stable.
* The **genotype** generator — :class:`KernelGenotype` is a JSON-able
  intermediate representation of a kernel (arrays, alias groups, a flat
  op list with *indexed* value references) that builds into a
  :class:`~repro.ir.loop.Loop`.  :func:`random_genotype` samples one
  from a named :class:`GenProfile` (tunable structure profiles:
  recurrence chains, bus-saturating traffic, register-pressure cliffs,
  store-heavy aliasing).  Because value/array references are indices
  resolved modulo the live population at build time, *any* subset of a
  genotype's ops still builds a structurally valid loop — which is what
  makes the fuzzer's shrinker (``repro.fuzz.shrink``) able to delete
  ops, drop arrays and clamp scalars freely while hunting a minimal
  reproducer.

Used by hypothesis tests to check scheduler invariants and by
``repro.fuzz`` as the random half of the kernel corpus.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

from ..ir.builder import LoopBuilder
from ..ir.loop import Loop
from ..isa.operations import Opcode
from ..isa.registers import VReg


def random_loop(
    seed: int,
    *,
    max_ops: int = 14,
    trip_count: int = 64,
    allow_random_patterns: bool = True,
    allow_feedback: bool = True,
) -> Loop:
    """A reproducible random loop with realistic structure."""
    rng = random.Random(seed)
    b = LoopBuilder(f"rand{seed}", trip_count=trip_count)
    n_arrays = rng.randint(1, 3)
    arrays = [
        b.array(f"a{idx}", rng.choice([256, 1024, 4096]), rng.choice([1, 2, 4]))
        for idx in range(n_arrays)
    ]
    values: list[VReg] = [b.live_in("k0"), b.live_in("k1")]
    n_ops = rng.randint(4, max_ops)
    has_store_target: dict[str, bool] = {}

    for _ in range(n_ops):
        kind = rng.random()
        if kind < 0.30:
            array = rng.choice(arrays)
            if allow_random_patterns and rng.random() < 0.2:
                values.append(b.load(array, random=True, seed=rng.randint(0, 99)))
            else:
                stride = rng.choice([1, 1, 1, -1, 0, 2, 8])
                offset = rng.randint(0, 4)
                values.append(b.load(array, stride=stride, offset=offset))
        elif kind < 0.45 and len(values) >= 1:
            array = rng.choice(arrays)
            stride = rng.choice([1, 1, -1, 8])
            offset = rng.randint(0, 4)
            b.store(array, rng.choice(values), stride=stride, offset=offset)
            has_store_target[array.name] = True
        elif kind < 0.55 and allow_feedback:
            values.append(b.accumulate(Opcode.IADD, rng.choice(values)))
        elif kind < 0.80:
            op = rng.choice([b.iadd, b.isub, b.imul, b.ixor, b.ishr, b.imax])
            values.append(op(rng.choice(values), rng.choice(values)))
        else:
            op = rng.choice([b.fadd, b.fmul, b.fsub])
            values.append(op(rng.choice(values), rng.choice(values)))

    # Guarantee at least one memory op so every loop exercises the
    # hierarchy.
    if not any(i.is_memory for i in b._body):  # noqa: SLF001 - test helper
        values.append(b.load(arrays[0], stride=1))
    return b.build()


# ----------------------------------------------------------------------
# Genotype representation
# ----------------------------------------------------------------------

#: Builder methods a genotype ``alu`` op may name.
ALU_OPS = (
    "iadd",
    "isub",
    "imul",
    "ixor",
    "ishr",
    "imin",
    "imax",
    "isat",
    "fadd",
    "fsub",
    "fmul",
)

#: Opcodes a genotype ``acc`` (recurrence) op may name.
ACC_OPS = ("IADD", "IMAX", "IXOR", "FADD")

GENOTYPE_SCHEMA = 1


@dataclass
class KernelGenotype:
    """A kernel as serialisable data: the fuzzer's unit of mutation.

    ``ops`` is a flat list of dicts; value operands (``v``/``x``/``y``)
    and array operands (``a``) are indices taken *modulo the population
    alive at build time* (two live-in registers seed the value list), so
    dropping any subset of ops or arrays leaves every remaining
    reference resolvable.  Op kinds:

    * ``{"k": "load", "a": i, "stride": s, "offset": o}`` (or
      ``"random": True, "seed": n`` for a random access pattern);
    * ``{"k": "store", "a": i, "v": j, "stride": s, "offset": o}``;
    * ``{"k": "acc", "op": "IADD", "v": j}`` — a loop-carried
      accumulation (distance-1 recurrence);
    * ``{"k": "alu", "op": "imul", "x": j, "y": m}`` — a pure op named
      by its :class:`LoopBuilder` helper.
    """

    name: str
    trip: int
    arrays: list[dict]  # {"n": n_elems, "elem": elem_size}
    ops: list[dict]
    alias: list[list[int]] = field(default_factory=list)  # array-index groups

    # -- serialisation ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": GENOTYPE_SCHEMA,
            "name": self.name,
            "trip": self.trip,
            "arrays": [dict(a) for a in self.arrays],
            "ops": [dict(op) for op in self.ops],
            "alias": [list(g) for g in self.alias],
        }

    @classmethod
    def from_json(cls, data: dict) -> "KernelGenotype":
        schema = data.get("schema", GENOTYPE_SCHEMA)
        if schema != GENOTYPE_SCHEMA:
            raise ValueError(
                f"genotype has schema {schema!r}, this code reads {GENOTYPE_SCHEMA}"
            )
        return cls(
            name=data["name"],
            trip=int(data["trip"]),
            arrays=[dict(a) for a in data["arrays"]],
            ops=[dict(op) for op in data["ops"]],
            alias=[list(g) for g in data.get("alias", [])],
        )

    def fingerprint(self) -> str:
        """Content digest (name excluded: two routes to one kernel hit)."""
        payload = self.to_json()
        del payload["name"]
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    # -- phenotype -------------------------------------------------------

    def build(self) -> Loop:
        """Materialise the loop.  Total on any op/array subset: indices
        wrap modulo the live population, an empty memory profile gets a
        fallback load, and degenerate alias groups are dropped."""
        if not self.arrays:
            raise ValueError(f"genotype {self.name!r} declares no arrays")
        b = LoopBuilder(self.name, trip_count=self.trip)
        arrays = [
            b.array(f"a{i}", int(a["n"]), int(a.get("elem", 4)))
            for i, a in enumerate(self.arrays)
        ]
        for group in self.alias:
            members = sorted({arrays[i % len(arrays)].name for i in group})
            if len(members) >= 2:
                b.alias(*(b.array(name, *_shape(self, name)) for name in members))
        values: list[VReg] = [b.live_in("k0"), b.live_in("k1")]
        for op in self.ops:
            kind = op["k"]
            if kind == "load":
                array = arrays[op["a"] % len(arrays)]
                if op.get("random"):
                    seed = int(op.get("seed", 0))
                    values.append(b.load(array, random=True, seed=seed))
                else:
                    values.append(
                        b.load(
                            array,
                            stride=int(op.get("stride", 1)),
                            offset=int(op.get("offset", 0)),
                        )
                    )
            elif kind == "store":
                b.store(
                    arrays[op["a"] % len(arrays)],
                    values[op["v"] % len(values)],
                    stride=int(op.get("stride", 1)),
                    offset=int(op.get("offset", 0)),
                )
            elif kind == "acc":
                opcode = Opcode[op.get("op", "IADD")]
                values.append(b.accumulate(opcode, values[op["v"] % len(values)]))
            elif kind == "alu":
                helper = op.get("op", "iadd")
                if helper not in ALU_OPS:
                    raise ValueError(
                        f"genotype {self.name!r}: unknown alu op {helper!r}"
                    )
                emit = getattr(b, helper)
                values.append(
                    emit(values[op["x"] % len(values)], values[op["y"] % len(values)])
                )
            else:
                raise ValueError(f"genotype {self.name!r}: unknown op kind {kind!r}")
        if not any(i.is_memory for i in b._body):  # noqa: SLF001 - sibling builder
            b.load(arrays[0], stride=1)
        return b.build()


def _shape(genotype: KernelGenotype, name: str) -> tuple[int, int]:
    index = int(name[1:])
    spec = genotype.arrays[index]
    return int(spec["n"]), int(spec.get("elem", 4))


# ----------------------------------------------------------------------
# Structure profiles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GenProfile:
    """Tunable structure profile: the knobs one kernel family turns.

    ``weights`` orders the (load, store, acc, alu, fp-alu) draw; the
    op-kind mix, operand bias and scalar ranges together aim the family
    at one stressor (recurrence chains, bus traffic, register-pressure
    cliffs, aliasing stores).
    """

    name: str
    ops: tuple[int, int]  # body length range (inclusive)
    trips: tuple[int, ...]  # trip-count choices
    n_arrays: tuple[int, int]
    array_sizes: tuple[int, ...]
    elem_sizes: tuple[int, ...]
    strides: tuple[int, ...]
    store_strides: tuple[int, ...]
    max_offset: int
    weights: tuple[float, float, float, float, float]  # load/store/acc/alu/fp
    p_random_pattern: float = 0.0
    p_alias: float = 0.0
    acc_chain: tuple[int, int] = (1, 1)  # accumulate run length range
    src_bias: str = "any"  # "any" | "old" (long live ranges)


PROFILES: dict[str, GenProfile] = {
    # Balanced mix, mirroring the legacy random_loop distribution.
    "default": GenProfile(
        name="default",
        ops=(4, 14),
        trips=(32, 48, 64),
        n_arrays=(1, 3),
        array_sizes=(256, 1024, 4096),
        elem_sizes=(1, 2, 4),
        strides=(1, 1, 1, -1, 0, 2, 8),
        store_strides=(1, 1, -1, 8),
        max_offset=4,
        weights=(0.30, 0.15, 0.10, 0.25, 0.20),
        p_random_pattern=0.2,
    ),
    # Max-recurrence chains: long accumulate runs force rec_mii up and
    # stress the exact scheduler's window anchoring.
    "recurrence": GenProfile(
        name="recurrence",
        ops=(6, 14),
        trips=(24, 32, 48),
        n_arrays=(1, 2),
        array_sizes=(256, 1024),
        elem_sizes=(2, 4),
        strides=(1, 1, 2),
        store_strides=(1,),
        max_offset=2,
        weights=(0.20, 0.08, 0.42, 0.18, 0.12),
        acc_chain=(2, 5),
    ),
    # Bus-saturating cross-cluster traffic: wide memory-heavy bodies
    # over several arrays (paired with multi-cluster configs at the job
    # layer) keep the inter-cluster buses binding.
    "bus": GenProfile(
        name="bus",
        ops=(10, 20),
        trips=(24, 32, 48),
        n_arrays=(3, 4),
        array_sizes=(512, 1024, 4096),
        elem_sizes=(2, 4),
        strides=(1, 1, -1, 2, 4),
        store_strides=(1, 1, 2),
        max_offset=4,
        weights=(0.42, 0.22, 0.04, 0.22, 0.10),
    ),
    # Register-pressure cliffs: many early loads whose consumers are
    # biased toward the *oldest* live values, stretching live ranges
    # toward the per-cluster cap.
    "regpressure": GenProfile(
        name="regpressure",
        ops=(12, 22),
        trips=(24, 32),
        n_arrays=(2, 3),
        array_sizes=(1024, 4096),
        elem_sizes=(4,),
        strides=(1, 1, 2, 8),
        store_strides=(1,),
        max_offset=2,
        weights=(0.34, 0.08, 0.06, 0.30, 0.22),
        src_bias="old",
    ),
    # Store-heavy aliasing: small arrays, alias groups, overlapping
    # offsets and degenerate strides exercise the memory-dependence
    # analysis and the L0 flush machinery.
    "aliasing": GenProfile(
        name="aliasing",
        ops=(6, 16),
        trips=(24, 32, 48),
        n_arrays=(2, 3),
        array_sizes=(64, 128, 256),
        elem_sizes=(1, 2, 4),
        strides=(1, 1, -1, 0, 2),
        store_strides=(1, 1, -1, 0, 2),
        max_offset=3,
        weights=(0.26, 0.34, 0.06, 0.22, 0.12),
        p_alias=0.8,
    ),
}


def random_genotype(seed: int, profile: str = "default") -> KernelGenotype:
    """Sample one genotype from a named profile, reproducibly.

    The RNG is seeded on ``(profile, seed)``, so a seed range fans out
    to distinct kernels per profile and the mapping never shifts when
    profiles are added.
    """
    p = PROFILES[profile]
    rng = random.Random(f"{profile}:{seed}")
    n_arrays = rng.randint(*p.n_arrays)
    arrays = [
        {"n": rng.choice(p.array_sizes), "elem": rng.choice(p.elem_sizes)}
        for _ in range(n_arrays)
    ]
    alias: list[list[int]] = []
    if n_arrays >= 2 and rng.random() < p.p_alias:
        group = rng.sample(range(n_arrays), rng.randint(2, n_arrays))
        alias.append(sorted(group))

    kinds = ("load", "store", "acc", "alu", "fp")
    ops: list[dict] = []
    value_count = 2  # the two live-ins

    def pick_value() -> int:
        if p.src_bias == "old":
            return rng.randint(0, max(0, value_count // 3))
        return rng.randrange(value_count)

    n_ops = rng.randint(*p.ops)
    while len(ops) < n_ops:
        kind = rng.choices(kinds, weights=p.weights)[0]
        if kind == "load":
            if rng.random() < p.p_random_pattern:
                ops.append(
                    {
                        "k": "load",
                        "a": rng.randrange(n_arrays),
                        "random": True,
                        "seed": rng.randint(0, 99),
                    }
                )
            else:
                ops.append(
                    {
                        "k": "load",
                        "a": rng.randrange(n_arrays),
                        "stride": rng.choice(p.strides),
                        "offset": rng.randint(0, p.max_offset),
                    }
                )
            value_count += 1
        elif kind == "store":
            ops.append(
                {
                    "k": "store",
                    "a": rng.randrange(n_arrays),
                    "v": pick_value(),
                    "stride": rng.choice(p.store_strides),
                    "offset": rng.randint(0, p.max_offset),
                }
            )
        elif kind == "acc":
            for _ in range(rng.randint(*p.acc_chain)):
                ops.append(
                    {"k": "acc", "op": rng.choice(ACC_OPS), "v": pick_value()}
                )
                value_count += 1
        elif kind == "alu":
            int_ops = tuple(o for o in ALU_OPS if not o.startswith("f"))
            ops.append(
                {
                    "k": "alu",
                    "op": rng.choice(int_ops),
                    "x": pick_value(),
                    "y": pick_value(),
                }
            )
            value_count += 1
        else:  # fp
            fp_ops = tuple(o for o in ALU_OPS if o.startswith("f"))
            ops.append(
                {
                    "k": "alu",
                    "op": rng.choice(fp_ops),
                    "x": pick_value(),
                    "y": pick_value(),
                }
            )
            value_count += 1

    return KernelGenotype(
        name=f"fz_{profile}_{seed}",
        trip=rng.choice(p.trips),
        arrays=arrays,
        ops=ops,
        alias=alias,
    )
