"""Random loop generation for stress and property-based tests.

Generates structurally valid loops with a controlled mix of opcode
classes, stride kinds, dependences and recurrences.  Used by hypothesis
tests to check scheduler invariants (every schedule validates, no L0
overflow, coherence counters stay zero) across a wide input space.
"""

from __future__ import annotations

import random

from ..ir.builder import LoopBuilder
from ..ir.loop import Loop
from ..isa.operations import Opcode
from ..isa.registers import VReg


def random_loop(
    seed: int,
    *,
    max_ops: int = 14,
    trip_count: int = 64,
    allow_random_patterns: bool = True,
    allow_feedback: bool = True,
) -> Loop:
    """A reproducible random loop with realistic structure."""
    rng = random.Random(seed)
    b = LoopBuilder(f"rand{seed}", trip_count=trip_count)
    n_arrays = rng.randint(1, 3)
    arrays = [
        b.array(f"a{idx}", rng.choice([256, 1024, 4096]), rng.choice([1, 2, 4]))
        for idx in range(n_arrays)
    ]
    values: list[VReg] = [b.live_in("k0"), b.live_in("k1")]
    n_ops = rng.randint(4, max_ops)
    has_store_target: dict[str, bool] = {}

    for _ in range(n_ops):
        kind = rng.random()
        if kind < 0.30:
            array = rng.choice(arrays)
            if allow_random_patterns and rng.random() < 0.2:
                values.append(b.load(array, random=True, seed=rng.randint(0, 99)))
            else:
                stride = rng.choice([1, 1, 1, -1, 0, 2, 8])
                offset = rng.randint(0, 4)
                values.append(b.load(array, stride=stride, offset=offset))
        elif kind < 0.45 and len(values) >= 1:
            array = rng.choice(arrays)
            stride = rng.choice([1, 1, -1, 8])
            offset = rng.randint(0, 4)
            b.store(array, rng.choice(values), stride=stride, offset=offset)
            has_store_target[array.name] = True
        elif kind < 0.55 and allow_feedback:
            values.append(b.accumulate(Opcode.IADD, rng.choice(values)))
        elif kind < 0.80:
            op = rng.choice([b.iadd, b.isub, b.imul, b.ixor, b.ishr, b.imax])
            values.append(op(rng.choice(values), rng.choice(values)))
        else:
            op = rng.choice([b.fadd, b.fmul, b.fsub])
            values.append(op(rng.choice(values), rng.choice(values)))

    # Guarantee at least one memory op so every loop exercises the
    # hierarchy.
    if not any(i.is_memory for i in b._body):  # noqa: SLF001 - test helper
        values.append(b.load(arrays[0], stride=1))
    return b.build()
