"""Setuptools shim.

The canonical metadata lives in pyproject.toml.  This file exists so the
package can be installed in environments without the `wheel` package or
network access (legacy ``python setup.py develop`` path).
"""

from setuptools import setup

setup()
