"""Shared fixtures: canonical loops and machine configurations."""

from __future__ import annotations

import pytest

from repro.ir import LoopBuilder
from repro.machine import l0_config, unified_config


def make_saxpy(trip: int = 256, n: int = 1024) -> "Loop":  # noqa: F821
    """y[i] = a * x[i] + y[i] — two streams, one in-place store."""
    b = LoopBuilder("saxpy", trip_count=trip)
    x = b.array("x", n, 4)
    y = b.array("y", n, 4)
    a = b.live_in("a")
    vx = b.load(x, stride=1, tag="ld_x")
    vy = b.load(y, stride=1, tag="ld_y")
    prod = b.fmul(a, vx)
    total = b.fadd(prod, vy)
    b.store(y, total, stride=1, tag="st_y")
    return b.build()


def make_dpcm(trip: int = 256, n: int = 1024) -> "Loop":  # noqa: F821
    """y[i+1] = f(y[i], x[i]) — a recurrence through a load."""
    b = LoopBuilder("dpcm", trip_count=trip)
    x = b.array("x", n, 2)
    y = b.array("y", n, 2)
    a = b.live_in("a")
    prev = b.load(y, stride=1, offset=0, tag="ld_prev")
    vx = b.load(x, stride=1, tag="ld_x")
    m = b.imul(prev, a)
    s = b.iadd(m, vx)
    b.store(y, s, stride=1, offset=1, tag="st_y")
    return b.build()


def make_column(trip: int = 64, n: int = 512, stride: int = 8) -> "Loop":  # noqa: F821
    b = LoopBuilder("column", trip_count=trip)
    src = b.array("src", n, 2)
    dst = b.array("dst", n, 2)
    k = b.live_in("k")
    v = b.load(src, stride=stride, tag="ld_col")
    w = b.iadd(v, k)
    w = b.ixor(w, k)
    w = b.imax(w, k)
    b.store(dst, w, stride=stride, tag="st_col")
    return b.build()


@pytest.fixture
def saxpy():
    return make_saxpy()


@pytest.fixture
def dpcm():
    return make_dpcm()


@pytest.fixture
def column():
    return make_column()


@pytest.fixture
def base_cfg():
    return unified_config()


@pytest.fixture
def l0_cfg():
    return l0_config(8)
