"""Shared fixtures: canonical loops and machine configurations.

The loop factories live in :mod:`repro.workloads.kernels` (an importable
module); tests that need them directly import them from there rather
than from this conftest, which pytest does not guarantee to be the one
on ``sys.path`` when several test roots are collected together.
"""

from __future__ import annotations

import pytest

from repro.machine import l0_config, unified_config
from repro.workloads.kernels import make_column, make_dpcm, make_saxpy


@pytest.fixture
def saxpy():
    return make_saxpy()


@pytest.fixture
def dpcm():
    return make_dpcm()


@pytest.fixture
def column():
    return make_column()


@pytest.fixture
def base_cfg():
    return unified_config()


@pytest.fixture
def l0_cfg():
    return l0_config(8)
