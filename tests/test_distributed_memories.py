"""Tests for the word-interleaved and MultiVLIW distributed L1 models."""

from repro.isa import BYPASS_HINTS
from repro.machine import interleaved_config, multivliw_config
from repro.memory import MultiVLIWMemory, WordInterleavedMemory


class TestWordInterleaved:
    def make(self):
        return WordInterleavedMemory(interleaved_config())

    def test_home_mapping(self):
        mem = self.make()
        assert mem.home_of(0x0) == 0
        assert mem.home_of(0x4) == 1
        assert mem.home_of(0x8) == 2
        assert mem.home_of(0xC) == 3
        assert mem.home_of(0x10) == 0

    def test_local_access_latency(self):
        mem = self.make()
        cfg = interleaved_config()
        mem.modules[0].load(0x0)  # pre-warm
        ready = mem.load(0, 0x0, 4, BYPASS_HINTS, cycle=10)
        assert ready == 10 + cfg.distributed_local_latency
        assert mem.stats.local_accesses == 1

    def test_remote_access_fills_attraction_buffer(self):
        mem = self.make()
        cfg = interleaved_config()
        mem.modules[1].load(0x4)  # warm home module
        ready = mem.load(0, 0x4, 4, BYPASS_HINTS, cycle=0)
        assert ready == cfg.distributed_remote_latency
        # Second access served by the attraction buffer at 1 cycle.
        ready2 = mem.load(0, 0x4, 4, BYPASS_HINTS, cycle=20)
        assert ready2 == 20 + cfg.attraction_latency
        assert mem.stats.attraction_hits == 1

    def test_attraction_buffer_lru_bounded(self):
        mem = self.make()
        for i in range(20):
            mem.load(0, 0x4 + 16 * i, 4, BYPASS_HINTS, cycle=i * 10)
        assert len(mem.attraction[0]) <= interleaved_config().attraction_entries

    def test_store_invalidates_remote_attraction_copies(self):
        mem = self.make()
        mem.load(0, 0x4, 4, BYPASS_HINTS, cycle=0)  # cluster 0 attracts word 1
        mem.store(2, 0x4, 4, BYPASS_HINTS, cycle=10)
        ready = mem.load(0, 0x4, 4, BYPASS_HINTS, cycle=20)
        assert ready > 20 + interleaved_config().attraction_latency

    def test_module_miss_pays_l2(self):
        mem = self.make()
        cfg = interleaved_config()
        ready = mem.load(0, 0x0, 4, BYPASS_HINTS, cycle=0)
        assert ready == cfg.distributed_local_latency + cfg.l2_latency


class TestMultiVLIW:
    def make(self):
        return MultiVLIWMemory(multivliw_config())

    def test_cold_miss_goes_to_l2(self):
        mem = self.make()
        cfg = multivliw_config()
        ready = mem.load(0, 0x100, 4, BYPASS_HINTS, cycle=0)
        assert ready == cfg.distributed_local_latency + cfg.l2_latency
        assert mem.stats.misses_to_l2 == 1

    def test_local_hit_after_fill(self):
        mem = self.make()
        cfg = multivliw_config()
        mem.load(0, 0x100, 4, BYPASS_HINTS, cycle=0)
        ready = mem.load(0, 0x104, 4, BYPASS_HINTS, cycle=20)
        assert ready == 20 + cfg.distributed_local_latency
        assert mem.stats.local_hits == 1

    def test_remote_clean_transfer(self):
        mem = self.make()
        cfg = multivliw_config()
        mem.load(0, 0x100, 4, BYPASS_HINTS, cycle=0)
        ready = mem.load(1, 0x100, 4, BYPASS_HINTS, cycle=20)
        assert ready == 20 + cfg.distributed_remote_latency
        assert mem.stats.remote_clean == 1
        # Both clusters now share: local hits on both sides.
        mem.load(0, 0x100, 4, BYPASS_HINTS, cycle=40)
        mem.load(1, 0x100, 4, BYPASS_HINTS, cycle=40)
        assert mem.stats.local_hits == 2

    def test_store_invalidates_sharers(self):
        mem = self.make()
        mem.load(0, 0x100, 4, BYPASS_HINTS, cycle=0)
        mem.load(1, 0x100, 4, BYPASS_HINTS, cycle=10)
        mem.store(0, 0x100, 4, BYPASS_HINTS, cycle=20)
        assert mem.stats.store_invalidations == 1
        # Cluster 1 must re-fetch the dirty block.
        cfg = multivliw_config()
        ready = mem.load(1, 0x100, 4, BYPASS_HINTS, cycle=30)
        assert ready == 30 + cfg.distributed_remote_latency + cfg.coherence_penalty
        assert mem.stats.remote_dirty == 1

    def test_store_to_owned_block_is_quiet(self):
        mem = self.make()
        mem.store(0, 0x100, 4, BYPASS_HINTS, cycle=0)
        invalidations = mem.stats.store_invalidations
        mem.store(0, 0x104, 4, BYPASS_HINTS, cycle=10)
        assert mem.stats.store_invalidations == invalidations

    def test_capacity_eviction_drops_coherence_state(self):
        mem = self.make()
        blocks = mem.blocks_per_module
        for i in range(blocks + 4):
            mem.load(0, 0x1000 + 32 * i, 4, BYPASS_HINTS, cycle=i * 20)
        # The first block was evicted: loading it again misses to L2.
        before = mem.stats.misses_to_l2
        mem.load(0, 0x1000, 4, BYPASS_HINTS, cycle=10_000)
        assert mem.stats.misses_to_l2 == before + 1
