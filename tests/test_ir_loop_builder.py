"""Tests for the loop IR and the builder DSL."""

import pytest

from repro.ir import LoopBuilder
from repro.isa import Opcode

from repro.workloads.kernels import make_dpcm, make_saxpy


class TestLoopBuilder:
    def test_saxpy_structure(self):
        loop = make_saxpy()
        assert len(loop) == 5
        assert len(loop.loads) == 2
        assert len(loop.stores) == 1
        assert [a.name for a in loop.arrays] == ["x", "y"]

    def test_live_ins(self):
        loop = make_saxpy()
        names = {r.name for r in loop.live_ins}
        assert "a" in names

    def test_duplicate_array_shape_checked(self):
        b = LoopBuilder("l", trip_count=4)
        b.array("a", 16, 4)
        with pytest.raises(ValueError):
            b.array("a", 32, 4)
        assert b.array("a", 16, 4).n_elems == 16

    def test_accumulate_self_dependence(self):
        b = LoopBuilder("acc", trip_count=4)
        arr = b.array("x", 16, 4)
        v = b.load(arr, stride=1)
        acc = b.accumulate(Opcode.IADD, v)
        loop = b.build()
        instr = loop.defs[acc]
        assert acc in instr.srcs  # reads its own previous value

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            LoopBuilder("empty", trip_count=4).build()

    def test_bad_trip_count_rejected(self):
        b = LoopBuilder("l", trip_count=0)
        b.live_in("x")
        arr = b.array("a", 4, 4)
        b.load(arr)
        with pytest.raises(ValueError):
            b.build()

    def test_alias_group_requires_two(self):
        b = LoopBuilder("l", trip_count=4)
        a = b.array("a", 4, 4)
        with pytest.raises(ValueError):
            b.alias(a)

    def test_alias_groups_recorded(self):
        b = LoopBuilder("l", trip_count=4)
        a = b.array("a", 4, 4)
        c = b.array("c", 4, 4)
        b.alias(a, c)
        b.load(a)
        loop = b.build()
        assert loop.may_alias_arrays("a", "c")
        assert not loop.may_alias_arrays("a", "zzz")

    def test_position_and_instruction_lookup(self):
        loop = make_saxpy()
        first = loop.body[0]
        assert loop.position(first.uid) == 0
        assert loop.instruction(first.uid) is first
        with pytest.raises(KeyError):
            loop.instruction(999)

    def test_unique_defs_enforced(self):
        from repro.isa import Instruction, VReg
        from repro.ir.loop import Loop

        reg = VReg(0, "v")
        body = [
            Instruction(uid=0, opcode=Opcode.IADD, dest=reg),
            Instruction(uid=1, opcode=Opcode.IADD, dest=reg),
        ]
        with pytest.raises(ValueError):
            Loop(name="bad", body=body, trip_count=4)

    def test_memory_helpers(self):
        loop = make_dpcm()
        assert len(loop.memory_ops) == 3
        assert {i.tag for i in loop.loads} == {"ld_prev", "ld_x"}
