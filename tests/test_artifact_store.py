"""Tests for the managed artifact store: manifest, GC, schema, CLI."""

import json
import os

import pytest

from repro.cache import main as cache_main
from repro.cache import parse_size
from repro.machine import l0_config, unified_config
from repro.pipeline import (
    RESULT_SCHEMA_VERSION,
    CompiledLoopCache,
    CompileOptions,
    KeyedFileStore,
    ResultCache,
    RunRequest,
    Session,
    compile_cached,
    compile_key,
    encode_result,
    result_fingerprint,
    result_schema_digest,
)
from repro.pipeline.cache import RESULT_SCHEMA_DIGEST, code_fingerprint
from repro.pipeline.manifest import LEGACY_FINGERPRINT, MANIFEST_NAME
from repro.sim import SimOptions
from repro.workloads.kernels import make_dpcm, make_saxpy

FAST = SimOptions(sim_cap=80)


def _json_store(path) -> KeyedFileStore:
    return KeyedFileStore(
        path,
        ".json",
        lambda v: json.dumps(v).encode(),
        lambda b: json.loads(b.decode()),
    )


def _key(i: int) -> str:
    return f"{i:064x}"


class TestManifest:
    def test_round_trip_through_a_fresh_store(self, tmp_path):
        store = _json_store(tmp_path)
        desc = {"benchmark": "g721dec", "config": {"arch": "l0"}}
        store.save(_key(1), {"x": 1}, description=desc)
        store.manifest.flush()  # records are buffered; fold them in

        reopened = _json_store(tmp_path)
        entries = reopened.entries()
        assert set(entries) == {_key(1)}
        entry = entries[_key(1)]
        assert entry.description == desc
        assert entry.fingerprint == code_fingerprint()
        assert entry.size == (tmp_path / f"{_key(1)}.json").stat().st_size
        assert entry.created > 0 and entry.last_hit >= entry.created

    def test_load_updates_recency(self, tmp_path):
        store = _json_store(tmp_path)
        store.save(_key(1), {"x": 1})
        # Backdate the entry, then hit it: last_hit must move forward.
        store.manifest.record(_key(1), size=8, now=100.0)
        assert store.load(_key(1)) == {"x": 1}
        store.manifest.flush()
        assert _json_store(tmp_path).entries()[_key(1)].last_hit > 100.0

    def test_corrupt_manifest_rebuilt_from_dir_scan(self, tmp_path):
        store = _json_store(tmp_path)
        for i in range(3):
            store.save(_key(i), {"i": i})
        (tmp_path / MANIFEST_NAME).write_text("{torn")

        reopened = _json_store(tmp_path)
        entries = reopened.entries()
        assert set(entries) == {_key(0), _key(1), _key(2)}
        for entry in entries.values():
            assert entry.size > 0  # stat-backed
            assert entry.fingerprint is None  # authorship unknown
        # ... and GC still functions over the rebuilt view.
        report = reopened.gc(max_bytes=0, min_age_s=0.0)
        assert report.entries_after == 0

    def test_adversarially_corrupt_manifest_cannot_abort_gc(self, tmp_path):
        """Malformed JSON is the easy case; bytes that *explode* inside
        the decoder (deeply nested arrays raise RecursionError, not
        ValueError) must equally mean "rebuild from the directory scan"
        — a sidecar file may never take down a sweep mid-``gc``."""
        store = _json_store(tmp_path)
        for i in range(3):
            store.save(_key(i), {"i": i})
        (tmp_path / MANIFEST_NAME).write_bytes(b"[" * 100_000)

        reopened = _json_store(tmp_path)
        report = reopened.gc(max_bytes=0, min_age_s=0.0)  # must not raise
        assert report.entries_before == 3
        assert report.entries_after == 0
        # The rewrite healed the manifest for the next reader.
        assert _json_store(tmp_path).entries() == {}

    def test_concurrent_writer_entries_survive_a_flush(self, tmp_path):
        ours, theirs = _json_store(tmp_path), _json_store(tmp_path)
        theirs.save(_key(2), {"who": "them"})
        theirs.manifest.flush()
        # Our flush read-merge-writes: their freshly recorded entry must
        # survive even though our in-process view never saw it.
        ours.save(_key(1), {"who": "us"})
        ours.manifest.flush()
        entries = _json_store(tmp_path).entries()
        assert entries[_key(2)].fingerprint == code_fingerprint()
        assert entries[_key(1)].fingerprint == code_fingerprint()

    def test_clear_resets_manifest(self, tmp_path):
        store = _json_store(tmp_path)
        store.save(_key(1), {"x": 1})
        store.clear()
        assert not (tmp_path / MANIFEST_NAME).exists()
        assert _json_store(tmp_path).entries() == {}


class TestGC:
    def test_lru_size_cap_evicts_coldest_first(self, tmp_path):
        store = _json_store(tmp_path)
        sizes = {}
        for i in range(4):
            store.save(_key(i), {"payload": "x" * 50})
            sizes[_key(i)] = (tmp_path / f"{_key(i)}.json").stat().st_size
            # Deterministic recency: key 0 coldest ... key 3 hottest.
            store.manifest.record(_key(i), size=sizes[_key(i)], now=100.0 + i)
        cap = sizes[_key(2)] + sizes[_key(3)]
        report = store.gc(max_bytes=cap, min_age_s=0.0)
        assert report.evicted == [_key(0), _key(1)]
        assert set(store.entries()) == {_key(2), _key(3)}
        assert report.bytes_after <= cap
        # The manifest file was pruned along with the directory.
        data = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert set(data["entries"]) == {_key(2), _key(3)}

    def test_orphan_sweep_by_fingerprint(self, tmp_path):
        store = _json_store(tmp_path)
        store.save(_key(1), {"v": 1})  # current fingerprint
        store.save(_key(2), {"v": 2})
        store.manifest.record(_key(2), size=8, fingerprint="dead0000dead0000")
        report = store.gc(keep_fingerprints={code_fingerprint()})
        assert report.orphans == [_key(2)]
        assert set(store.entries()) == {_key(1)}

    def test_unknown_fingerprint_survives_orphan_sweep(self, tmp_path):
        """After a manifest loss, authorship is unknown; the sweep must
        be conservative (only the size cap may reclaim those entries)."""
        store = _json_store(tmp_path)
        store.save(_key(1), {"v": 1})
        store.manifest.flush()
        (tmp_path / MANIFEST_NAME).unlink()
        reopened = _json_store(tmp_path)
        report = reopened.gc(keep_fingerprints={code_fingerprint()})
        assert report.orphans == []
        assert set(reopened.entries()) == {_key(1)}

    def test_gc_never_touches_in_flight_writes(self, tmp_path):
        """A concurrent writer's tmp file must survive GC, and its
        atomic rename must land afterwards."""
        store = _json_store(tmp_path)
        store.save(_key(1), {"v": 1})
        tmp = tmp_path / f".{_key(2)}.{os.getpid()}.tmp"
        tmp.write_bytes(json.dumps({"v": 2}).encode())  # mid-write

        report = store.gc(max_bytes=0, min_age_s=0.0)
        assert report.entries_after == 0
        assert tmp.exists()  # the in-flight write was spared

        tmp.replace(tmp_path / f"{_key(2)}.json")  # writer finishes
        assert _json_store(tmp_path).load(_key(2)) == {"v": 2}

    def test_min_age_grace_period(self, tmp_path):
        store = _json_store(tmp_path)
        store.save(_key(1), {"v": 1})  # created just now
        report = store.gc(max_bytes=0, min_age_s=3600.0)
        assert report.evicted == []
        assert set(store.entries()) == {_key(1)}

    def test_verify_drops_corrupt_entries(self, tmp_path):
        store = _json_store(tmp_path)
        store.save(_key(1), {"v": 1})
        (tmp_path / f"{_key(2)}.json").write_text("{torn")
        report = store.verify()
        assert report.ok == 1
        assert report.corrupt == [_key(2)]
        assert not (tmp_path / f"{_key(2)}.json").exists()


class TestResultSchema:
    def test_entries_written_in_versioned_envelope(self, tmp_path):
        request = RunRequest("g721dec", l0_config(8), FAST)
        Session(options=FAST, cache=ResultCache(tmp_path)).run(request)
        envelope = json.loads((tmp_path / f"{request.key}.json").read_text())
        assert envelope["schema"] == RESULT_SCHEMA_VERSION
        assert envelope["fingerprint"] == code_fingerprint()
        assert envelope["result"]["__type__"] == "ProgramResult"

    def test_legacy_entry_decodes_and_migrates(self, tmp_path):
        request = RunRequest("g721dec", l0_config(8), FAST)
        session = Session(options=FAST, cache=ResultCache(tmp_path))
        fresh = session.run(request)
        # Rewrite the entry in the legacy (v1) bare layout.
        (tmp_path / f"{request.key}.json").write_text(json.dumps(encode_result(fresh)))
        cache = ResultCache(tmp_path)
        decoded = cache.get(request.key)
        assert result_fingerprint(decoded) == result_fingerprint(fresh)
        # verify() migrates the dir into the current envelope in place.
        report = cache.verify()
        assert report.migrated == [request.key]
        envelope = json.loads((tmp_path / f"{request.key}.json").read_text())
        assert envelope["schema"] == RESULT_SCHEMA_VERSION
        assert envelope["fingerprint"] is None  # original writer unknown
        migrated = ResultCache(tmp_path).get(request.key)
        assert result_fingerprint(migrated) == result_fingerprint(fresh)
        # A second verify has nothing left to do.
        assert ResultCache(tmp_path).verify().migrated == []
        # Migrated entries are marked provably-not-current, so the
        # orphan sweep may reclaim the dead data.
        entry = ResultCache(tmp_path).store.entries()[request.key]
        assert entry.fingerprint == LEGACY_FINGERPRINT
        swept = ResultCache(tmp_path).gc(keep_fingerprints={code_fingerprint()})
        assert swept.orphans == [request.key]

    def test_foreign_schema_version_is_a_miss(self, tmp_path):
        request = RunRequest("g721dec", unified_config(), FAST)
        session = Session(options=FAST, cache=ResultCache(tmp_path))
        session.run(request)
        envelope = json.loads((tmp_path / f"{request.key}.json").read_text())
        envelope["schema"] = RESULT_SCHEMA_VERSION + 1
        (tmp_path / f"{request.key}.json").write_text(json.dumps(envelope))
        reopened = Session(options=FAST, cache=ResultCache(tmp_path))
        reopened.run(request)
        assert reopened.simulations == 1  # mismatched entry not served

    def test_schema_digest_pinned_to_version(self):
        """Changing any stat dataclass's fields without bumping
        RESULT_SCHEMA_VERSION (and re-pinning the digest) must fail."""
        assert result_schema_digest() == RESULT_SCHEMA_DIGEST, (
            "the result schema changed: bump RESULT_SCHEMA_VERSION and "
            "re-pin RESULT_SCHEMA_DIGEST in repro/pipeline/cache.py"
        )


class TestCompileCacheDiskHits:
    def test_disk_hits_counted_separately_and_touch_recency(self, tmp_path):
        config = l0_config(8)
        warm = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), config, cache=warm)
        key = compile_key(make_saxpy(), config, CompileOptions())
        warm.store.manifest.record(key, size=1, now=100.0)  # backdate
        warm.flush()

        reopened = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), config, cache=reopened)
        assert reopened.stats.full_hits == 1
        assert reopened.stats.full_disk_hits == 1
        assert reopened.stats.full_memory_hits == 0
        # A repeat is served from memory: no new disk hit.
        compile_cached(make_saxpy(), config, cache=reopened)
        assert reopened.stats.full_hits == 2
        assert reopened.stats.full_disk_hits == 1
        assert reopened.stats.full_memory_hits == 1
        # The disk hit refreshed the manifest's LRU signal.
        reopened.flush()
        assert CompiledLoopCache(tmp_path).store.entries()[key].last_hit > 100.0

    def test_compile_entries_carry_descriptions(self, tmp_path):
        cache = CompiledLoopCache(tmp_path)
        compile_cached(make_dpcm(), l0_config(4), cache=cache)
        (entry,) = cache.store.entries().values()
        assert entry.description["loop"] == "dpcm"
        assert entry.description["scheduler"] == "sms"
        assert entry.description["config"]["l0_entries"] == 4


class TestSessionTeardown:
    def test_close_gc_bounds_the_store(self, tmp_path):
        session = Session(options=FAST, cache=ResultCache(tmp_path), gc_max_bytes=0)
        session.run(RunRequest("g721dec", unified_config(), FAST))
        assert any(p.stem != "manifest" for p in tmp_path.glob("*.json"))
        session.close()
        assert session.cache.store.entries() == {}

    def test_context_manager_flushes_recency(self, tmp_path):
        request = RunRequest("g721dec", unified_config(), FAST)
        Session(options=FAST, cache=ResultCache(tmp_path)).run(request)
        cache = ResultCache(tmp_path)
        cache.store.manifest.record(request.key, size=1, now=100.0)
        with Session(options=FAST, cache=cache) as session:
            session.run(request)  # disk hit -> buffered touch
        entries = ResultCache(tmp_path).store.entries()
        assert entries[request.key].last_hit > 100.0


class TestCacheCLI:
    @pytest.fixture()
    def dirs(self, tmp_path):
        result_dir = tmp_path / "results"
        compile_dir = tmp_path / "compile"
        fuzz_dir = tmp_path / "fuzz"
        request = RunRequest("g721dec", l0_config(8), FAST)
        with Session(options=FAST, cache=ResultCache(result_dir)) as session:
            session.run(request)
        compile_cache = CompiledLoopCache(compile_dir)
        compile_cached(make_saxpy(), l0_config(8), cache=compile_cache)
        compile_cache.flush()
        from repro.fuzz.engine import make_jobs, run_jobs
        from repro.fuzz.store import FuzzStore

        jobs = make_jobs(["edge:tiny"], ["unified"], ("certify",), spread=False)
        run_jobs(jobs, store=FuzzStore(fuzz_dir))
        return result_dir, compile_dir, fuzz_dir

    def _argv(self, dirs, *rest):
        result_dir, compile_dir, fuzz_dir = dirs
        return [
            "--cache-dir",
            str(result_dir),
            "--compile-cache-dir",
            str(compile_dir),
            "--fuzz-cache-dir",
            str(fuzz_dir),
            *rest,
        ]

    def test_stats(self, dirs, capsys):
        assert cache_main(self._argv(dirs, "stats")) == 0
        out = capsys.readouterr().out
        assert "results:" in out and "compile:" in out and "fuzz:" in out
        assert "(current)" in out

    def test_ls_shows_descriptions(self, dirs, capsys):
        assert cache_main(self._argv(dirs, "ls")) == 0
        out = capsys.readouterr().out
        assert "g721dec" in out  # result entry description
        assert "saxpy" in out  # compile entry description
        assert "edge:tiny" in out  # fuzz entry description

    def test_gc_bounds_all_dirs(self, dirs, capsys):
        argv = self._argv(dirs, "gc", "--max-bytes", "0", "--min-age", "0")
        assert cache_main(argv) == 0
        result_dir, compile_dir, fuzz_dir = dirs
        leftovers = sorted(p.name for p in result_dir.glob("*.json"))
        assert leftovers in ([], [MANIFEST_NAME])
        assert not list(compile_dir.glob("*.pkl"))
        fuzz_left = sorted(p.name for p in fuzz_dir.glob("*.json"))
        assert fuzz_left in ([], [MANIFEST_NAME])

    def test_verify_exits_nonzero_on_corruption(self, dirs, capsys):
        result_dir = dirs[0]
        (result_dir / f"{_key(9)}.json").write_text("{torn")
        assert cache_main(self._argv(dirs, "verify")) == 1
        # The corrupt entry was dropped: a second pass is clean.
        assert cache_main(self._argv(dirs, "verify")) == 0

    def test_missing_dirs_are_skipped(self, tmp_path, capsys):
        argv = [
            "--cache-dir",
            str(tmp_path / "absent"),
            "--compile-cache-dir",
            str(tmp_path / "also-absent"),
            "--fuzz-cache-dir",
            str(tmp_path / "absent-too"),
            "stats",
        ]
        assert cache_main(argv) == 0
        assert "no cache directories" in capsys.readouterr().err
        assert not (tmp_path / "absent").exists()  # never mkdirs

    def test_parse_size(self):
        assert parse_size("200M") == 200 * 1024**2
        assert parse_size("1.5K") == 1536
        assert parse_size("4096") == 4096
        assert parse_size("2GB") == 2 * 1024**3


class TestWarmReuseAfterGC:
    def test_survivors_serve_a_warm_run_with_zero_recompiles(self, tmp_path):
        """Acceptance: gc bounds the dirs; a subsequent warm run
        reproduces byte-identical results with zero work for the
        entries that survived."""
        result_dir = tmp_path / "results"
        compile_dir = tmp_path / "compile"
        requests = [
            RunRequest("g721dec", l0_config(8), FAST),
            RunRequest("g721dec", unified_config(), FAST),
        ]
        cold = Session(options=FAST, cache=ResultCache(result_dir))
        first = [cold.run(r) for r in requests]
        cold.close()
        compile_cache = CompiledLoopCache(compile_dir)
        compile_cached(make_saxpy(), l0_config(8), cache=compile_cache)
        compile_cache.flush()

        # Generous cap: everything survives.
        argv = [
            "--cache-dir",
            str(result_dir),
            "--compile-cache-dir",
            str(compile_dir),
            "gc",
            "--max-bytes",
            "1G",
            "--min-age",
            "0",
        ]
        assert cache_main(argv) == 0

        warm = Session(options=FAST, cache=ResultCache(result_dir))
        second = [warm.run(r) for r in requests]
        assert warm.simulations == 0
        for a, b in zip(first, second):
            assert result_fingerprint(a) == result_fingerprint(b)
        reopened = CompiledLoopCache(compile_dir)
        compile_cached(make_saxpy(), l0_config(8), cache=reopened)
        assert reopened.stats.compilations == 0


class TestCIBench:
    def test_cibench_smoke(self, tmp_path):
        from repro.eval.cibench import main as cibench_main

        output = tmp_path / "BENCH_ci.json"
        sim_output = tmp_path / "BENCH_sim.json"
        rc = cibench_main(
            [
                "--output",
                str(output),
                # Redirected away from the repo root: the default would
                # overwrite the committed throughput baseline on every
                # test run.
                "--sim-output",
                str(sim_output),
                "--benchmarks",
                "g721dec",
                "--sched-benchmarks",
                "--sim-cap",
                "60",
                "--root",
                str(tmp_path / "caches"),
            ]
        )
        assert rc == 0
        report = json.loads(output.read_text())
        assert report["schema"] == 1
        assert report["phases"]["cold"]["simulations"] > 0
        assert report["phases"]["warm"]["simulations"] == 0
        assert report["figures_identical"] is True
        assert report["failures"] == []
        sim_record = json.loads(sim_output.read_text())
        assert sim_record["speedup"] > 0
        assert report["sim_bench"]["speedup"] == sim_record["speedup"]
