"""Executor behaviour around inter-cluster communication and late values."""

import pytest

from repro.ir import LoopBuilder
from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.scheduler import compile_loop
from repro.sim import LoopExecutor, make_memory


def wide_fanout_loop(trip=64):
    """One load feeding a chain long enough to spill across clusters."""
    b = LoopBuilder("fanout", trip_count=trip)
    arr = b.array("a", 512, 4)
    k = b.live_in("k")
    v = b.load(arr, stride=1, tag="ld")
    chains = []
    for lane in range(4):
        w = v
        for _ in range(3):
            w = b.iadd(w, k)
        chains.append(w)
    acc = chains[0]
    for other in chains[1:]:
        acc = b.imax(acc, other)
    out = b.array("o", 512, 4)
    b.store(out, acc, stride=1)
    return b.build()


class TestCommExecution:
    def test_cross_cluster_schedule_runs_clean_when_l1_resident(self):
        config = unified_config()
        compiled = compile_loop(wide_fanout_loop(), config, unroll_factor=1)
        assert compiled.schedule.comms, "expected cross-cluster values"
        memory = make_memory(config)
        executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
        executor.run(compiled.loop.trip_count)
        warm = executor.run(compiled.loop.trip_count, start_cycle=50_000)
        assert warm.stall_cycles == 0  # schedule honoured all comm latencies

    def test_late_load_through_comm_propagates_stall(self):
        """A late load's lateness must reach cross-cluster consumers."""
        config = l0_config(8)
        # Column walk: every iteration misses unless prefetched; make the
        # value cross clusters by fanning it out.
        b = LoopBuilder("latecomm", trip_count=64)
        arr = b.array("a", 2048, 4)
        k = b.live_in("k")
        v = b.load(arr, stride=16, tag="ldcol")  # other-stride, L0 marked
        lanes = [v]
        for lane in range(6):
            w = b.imul(v, k)
            for _ in range(2):
                w = b.iadd(w, k)
            lanes.append(w)
        acc = lanes[0]
        for other in lanes[1:]:
            acc = b.imax(acc, other)
        out = b.array("o", 512, 4)
        b.store(out, acc, stride=1)
        compiled = compile_loop(b.build(), config, unroll_factor=1)
        memory = make_memory(config)
        executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
        result = executor.run(compiled.loop.trip_count)
        # The loop must still execute with consistent cycle accounting.
        assert result.compute_cycles > 0
        assert result.stall_cycles >= 0

    def test_start_cycle_offsets_memory_clock(self):
        config = unified_config()
        compiled = compile_loop(wide_fanout_loop(), config, unroll_factor=1)
        memory = make_memory(config)
        executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
        executor.run(4, start_cycle=0)
        grants_before = memory.stats.bus.grants
        executor.run(4, start_cycle=1_000_000)
        assert memory.stats.bus.grants > grants_before

    def test_history_pruning_keeps_results_exact(self):
        """Pruned producer history must never change stall accounting
        (window is sized to cover every reachable dependence)."""
        config = unified_config()
        compiled = compile_loop(wide_fanout_loop(trip=600), config, unroll_factor=1)
        memory = make_memory(config)
        executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
        full = executor.run(600)
        memory2 = make_memory(config)
        executor2 = LoopExecutor(compiled, memory2, MemoryLayout(align=32))
        split_a = executor2.run(600)
        assert full.stall_cycles == split_a.stall_cycles
