"""Tests for the MaxLive estimator and selective inter-loop flushing."""

import pytest

from repro.ir import LoopBuilder
from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.scheduler import (
    compile_loop,
    fits_register_file,
    max_live,
    value_lifetimes,
)
from repro.sim import (
    SimOptions,
    flush_needed,
    loops_may_conflict,
    make_memory,
    run_program,
)
from repro.workloads import Benchmark, LoopSpec, kernels

from repro.workloads.kernels import make_dpcm, make_saxpy


class TestMaxLive:
    def test_lifetimes_nonnegative_and_clustered(self, saxpy):
        compiled = compile_loop(saxpy, unified_config())
        lifetimes = value_lifetimes(compiled.schedule, compiled.ddg)
        assert lifetimes
        for lt in lifetimes:
            assert lt.length >= 1
            assert 0 <= lt.cluster < 4

    def test_max_live_positive_where_values_flow(self, saxpy):
        compiled = compile_loop(saxpy, unified_config())
        pressure = max_live(compiled.schedule, compiled.ddg)
        assert set(pressure) == {0, 1, 2, 3}
        assert max(pressure.values()) >= 1

    def test_l0_schedule_has_lower_or_equal_pressure(self, dpcm):
        """Shorter load latencies shorten lifetimes (paper section 4.2)."""
        base = compile_loop(make_dpcm(), unified_config(), unroll_factor=1)
        l0 = compile_loop(make_dpcm(), l0_config(8), unroll_factor=1)
        base_p = max(max_live(base.schedule, base.ddg).values())
        l0_p = max(max_live(l0.schedule, l0.ddg).values())
        assert l0_p <= base_p

    def test_suite_fits_register_files(self):
        from repro.workloads import build

        for spec in build("gsmdec").loops:
            compiled = compile_loop(spec.loop, l0_config(8))
            assert fits_register_file(compiled.schedule, compiled.ddg)

    def test_longer_lifetimes_raise_pressure(self):
        """A wide fan-in of long-lived loads needs more registers than a
        short chain."""
        def chain(n_loads):
            b = LoopBuilder(f"fan{n_loads}", trip_count=32)
            arr = b.array("a", 512, 4)
            vals = [b.load(arr, stride=1, offset=k) for k in range(n_loads)]
            acc = vals[0]
            for v in vals[1:]:
                acc = b.iadd(acc, v)
            out = b.array("o", 512, 4)
            b.store(out, acc, stride=1)
            return b.build()

        small = compile_loop(chain(2), unified_config(), unroll_factor=1)
        large = compile_loop(chain(6), unified_config(), unroll_factor=1)
        assert sum(max_live(large.schedule, large.ddg).values()) >= sum(
            max_live(small.schedule, small.ddg).values()
        )


class TestSelectiveFlush:
    def _loop(self, name, array_name, *, store=False, n=512):
        b = LoopBuilder(name, trip_count=64)
        arr = b.array(array_name, n, 4)
        v = b.load(arr, stride=1, tag="ld")
        k = b.live_in("k")
        w = b.iadd(v, k)
        if store:
            b.store(arr, w, stride=1, tag="st")
        else:
            out = b.array(f"{name}_out", n, 4)
            b.store(out, w, stride=1, tag="st")
        return b.build()

    def test_disjoint_loops_need_no_flush(self):
        a = self._loop("first", "alpha", store=True)
        b = self._loop("second", "beta", store=True)
        assert not loops_may_conflict(a, b)
        assert not flush_needed(a, b)

    def test_write_then_read_needs_flush(self):
        writer = self._loop("writer", "shared", store=True)
        reader = self._loop("reader", "shared", store=False)
        assert loops_may_conflict(writer, reader)

    def test_read_then_write_needs_flush(self):
        """The next loop's stores invalidate what the previous cached."""
        reader = self._loop("reader", "shared", store=False)
        writer = self._loop("writer", "shared", store=True)
        assert loops_may_conflict(reader, writer)

    def test_pure_readers_share_buffers(self):
        a = self._loop("r1", "table", store=False)
        b = self._loop("r2", "table", store=False)
        # Neither loop stores to 'table' (stores go to the _out arrays),
        # so the shared read-only data needs no flush between them.
        assert not loops_may_conflict(a, b)

    def test_program_edges_always_flush(self):
        loop = self._loop("only", "x")
        assert flush_needed(None, loop)
        assert flush_needed(loop, None)

    def test_selective_flush_is_coherent_end_to_end(self):
        """Running with selective flushing must never read stale data."""
        bench = Benchmark(
            name="flushtest",
            loops=(
                LoopSpec(kernels.stream_map("sf_a", trip=200, n=256, elem=4,
                                            taps=1, alu_depth=3), 3),
                LoopSpec(kernels.stream_map("sf_b", trip=200, n=256, elem=4,
                                            taps=1, alu_depth=3,
                                            in_place=True), 3),
            ),
        )
        options = SimOptions(sim_cap=250, selective_flush=True)
        result = run_program(bench, l0_config(8), options=options)
        assert result.memory_stats.coherence_violations == 0

    def test_selective_flush_never_slower(self):
        bench_loops = (
            LoopSpec(kernels.stream_map("sfc_a", trip=200, n=256, elem=4,
                                        taps=1, alu_depth=3), 4),
        )
        bench = Benchmark(name="flushcmp", loops=bench_loops)
        always = run_program(
            bench, l0_config(8), options=SimOptions(sim_cap=250)
        )
        bench2 = Benchmark(name="flushcmp", loops=(
            LoopSpec(kernels.stream_map("sfc_a", trip=200, n=256, elem=4,
                                        taps=1, alu_depth=3), 4),
        ))
        selective = run_program(
            bench2, l0_config(8),
            options=SimOptions(sim_cap=250, selective_flush=True),
        )
        assert selective.total_cycles <= always.total_cycles
