"""Mutation harness: the certifier must catch every corruption class.

A checker proves nothing until it has been shown to *fail*: each test
here takes a certified-clean compiled artifact, applies one targeted
corruption, and asserts the expected stable diagnostic code appears.
Corruptions cover every certifier code (A001-A013) — the A014 advisory
path has its own tests in test_analysis.py.

A companion property test closes the loop the other way: an artifact
the certifier passes simulates cleanly on the reference interpreter,
byte-identical to the fast path.
"""

from __future__ import annotations

import copy
import dataclasses

import pytest

from repro.analysis.certify import certify_compiled
from repro.isa import MemoryLayout
from repro.machine import l0_config, multivliw_config, unified_config
from repro.pipeline.artifact import CompileOptions
from repro.pipeline.compilecache import CompiledLoopCache, compile_cached
from repro.sim import LoopExecutor, TraceExecutor, make_memory
from repro.sim.trace import EV_CHECK, EV_LOAD
from repro.workloads import kernels

_CACHE = CompiledLoopCache()


def _fresh(loop=None, config=None, scheduler="sms"):
    """A private, certified-clean compiled artifact to corrupt."""
    loop = loop or kernels.multi_stream(
        "mut_mix", trip=64, n=512, inputs=6, alu_depth=8
    )
    compiled = compile_cached(
        loop, config or l0_config(), CompileOptions(scheduler=scheduler), cache=_CACHE
    )
    compiled = copy.deepcopy(compiled)
    assert certify_compiled(compiled) == [], "fixture must start clean"
    return compiled


def codes(compiled):
    return {d.code for d in certify_compiled(compiled)}


# ----------------------------------------------------------------------
# Schedule corruptions (A001-A007)
# ----------------------------------------------------------------------


def test_a001_dropped_instruction():
    compiled = _fresh()
    uid = next(
        uid for uid in compiled.schedule.placed if compiled.ddg.preds[uid]
    )
    del compiled.schedule.placed[uid]
    assert "A001" in codes(compiled)


def test_a001_comm_with_bogus_producer():
    compiled = _fresh()
    assert compiled.schedule.comms, "fixture must have comms"
    compiled.schedule.comms[0].producer_uid = 987654
    assert "A001" in codes(compiled)


def test_a002_consumer_moved_before_producer():
    compiled = _fresh()
    sched = compiled.schedule
    edge = next(
        e
        for e in compiled.ddg.edges
        if e.kind.value == "reg"
        and e.distance == 0
        and e.src in sched.placed
        and e.dst in sched.placed
    )
    sched.placed[edge.dst].start = 0
    sched.placed[edge.src].start = 50
    assert "A002" in codes(compiled)


def test_a003_stripped_comms():
    compiled = _fresh()
    assert compiled.schedule.comms, "fixture must have comms"
    compiled.schedule.comms.clear()
    assert "A003" in codes(compiled)


def test_a004_comm_before_production():
    compiled = _fresh()
    compiled.schedule.comms[0].start = -100
    assert "A004" in codes(compiled)


def test_a005_forged_comm_source_cluster():
    compiled = _fresh()
    comm = compiled.schedule.comms[0]
    comm.src_cluster = (comm.src_cluster + 1) % compiled.schedule.config.n_clusters
    assert "A005" in codes(compiled)


def test_a006_fu_collision():
    compiled = _fresh()
    sched = compiled.schedule
    loads = [op for op in sched.placed.values() if op.instr.is_load]
    a, b = loads[0], loads[1]
    b.cluster = a.cluster
    b.start = a.start
    assert "A006" in codes(compiled)


def test_a007_bus_oversubscription():
    compiled = _fresh()
    sched = compiled.schedule
    template = sched.comms[0]
    for _ in range(sched.config.n_buses + 1):
        sched.comms.append(copy.copy(template))
    assert "A007" in codes(compiled)


# ----------------------------------------------------------------------
# Register / L0 corruptions (A008-A011)
# ----------------------------------------------------------------------


def test_a008_register_file_too_small():
    compiled = _fresh()
    sched = compiled.schedule
    sched.config = dataclasses.replace(sched.config, max_live_per_cluster=0)
    assert "A008" in codes(compiled)


def test_a009_l0_capacity_exceeded():
    compiled = _fresh()  # l0_config: 16 L0 streams across 4 clusters
    sched = compiled.schedule
    assert any(op.hints.uses_l0 for op in sched.placed.values() if op.instr.is_load)
    sched.config = dataclasses.replace(sched.config, l0_entries=1)
    assert "A009" in codes(compiled)


def test_a010_forged_load_latency():
    compiled = _fresh()
    sched = compiled.schedule
    victim = next(
        op
        for op in sched.placed.values()
        if op.instr.is_load and op.hints.uses_l0
    )
    victim.latency = sched.config.l1_latency + 3
    assert "A010" in codes(compiled)


def test_a011_is_covered_by_flush_audit():
    # The flush planner operates program-level, outside CompiledLoop;
    # its positive/negative cases live in test_analysis.py.  This stub
    # keeps the one-test-per-code inventory honest.
    from repro.analysis.diagnostics import CODES

    assert "A011" in CODES


# ----------------------------------------------------------------------
# Trace corruptions (A012-A013)
# ----------------------------------------------------------------------


def test_a012_deleted_interlock_check_event():
    compiled = _fresh()
    trace = compiled.static_trace
    victim = next(e for e in trace.events if e.kind == EV_CHECK)
    trace.events.remove(victim)
    assert "A012" in codes(compiled)


def test_a012_stripped_dependence_entry():
    compiled = _fresh()
    trace = compiled.static_trace
    victim = next(e for e in trace.events if e.deps)
    victim.deps = ()
    assert "A012" in codes(compiled)


def test_a013_removed_memory_event():
    compiled = _fresh()
    trace = compiled.static_trace
    victim = next(e for e in trace.events if e.kind == EV_LOAD)
    trace.events.remove(victim)
    assert "A013" in codes(compiled)


def test_a013_forged_geometry():
    compiled = _fresh()
    compiled.static_trace.ii += 1
    assert "A013" in codes(compiled)


def test_a013_missing_ring_slot():
    compiled = _fresh()
    trace = compiled.static_trace
    assert trace.ring_slots, "fixture must have load-fed dependences"
    trace.ring_slots.pop(next(iter(trace.ring_slots)))
    assert "A013" in codes(compiled)


def test_a013_shrunk_history_window():
    compiled = _fresh()
    compiled.static_trace.history_window = 0
    assert "A013" in codes(compiled)


def test_a013_forged_convergence_period():
    compiled = _fresh()
    trace = compiled.static_trace
    assert trace.input_period is not None
    trace.input_period = trace.input_period * 2 + 1  # not a multiple
    assert "A013" in codes(compiled)


def test_trace_period_multiple_is_accepted():
    compiled = _fresh()
    trace = compiled.static_trace
    trace.input_period = trace.input_period * 3  # sound over-approximation
    assert certify_compiled(compiled) == []


# ----------------------------------------------------------------------
# Property: certifier-pass => clean reference simulation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", ["sms", "exact"])
@pytest.mark.parametrize(
    "config", [unified_config(), l0_config(), multivliw_config()]
)
def test_certified_artifacts_simulate_cleanly(config, scheduler):
    """An artifact the certifier passes runs on the reference
    interpreter without tripping an assertion, and the fast path agrees
    with it cycle-for-cycle — the simulator cross-check that anchors
    the certifier's verdict to executable reality."""
    for loop in (
        kernels.make_saxpy(),
        kernels.feedback("mut_fb", trip=64, n=256),
    ):
        compiled = compile_cached(
            loop, config, CompileOptions(scheduler=scheduler), cache=_CACHE
        )
        compiled = copy.deepcopy(compiled)
        assert certify_compiled(compiled) == []
        n = compiled.loop.trip_count
        layout = MemoryLayout(align=config.l1_block)
        ref = LoopExecutor(compiled, make_memory(config), layout).run(n)
        fast = TraceExecutor(compiled, make_memory(config), layout).run(n)
        assert (ref.compute_cycles, ref.stall_cycles) == (
            fast.compute_cycles,
            fast.stall_cycles,
        )
