"""Property-based tests: scheduler invariants over random loops.

These are the heavy-duty correctness checks: for *any* structurally
valid loop, every architecture's scheduler must produce a schedule that
satisfies all dependence and resource constraints, and running it must
never read stale data out of an L0 buffer.
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.ir import build_ddg, unroll
from repro.isa import MemoryLayout
from repro.machine import (
    interleaved_config,
    l0_config,
    multivliw_config,
    unified_config,
)
from repro.scheduler import compile_loop, compute_mii, rec_mii
from repro.sim import LoopExecutor, make_memory
from repro.workloads import random_loop

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


# ----------------------------------------------------------------------
# Brute-force modulo-scheduling oracle (single cluster, fixed latencies)
# ----------------------------------------------------------------------

#: Stage bound shared by the brute forcer and the exact scheduler so
#: both search exactly the same decision space.
BRUTE_STAGES = 6

#: Placement-trial cap for one brute-force feasibility probe; blown
#: probes skip the example rather than time out the suite.
BRUTE_TRIALS = 300_000


class _BruteBlown(Exception):
    pass


def _brute_order(ddg):
    """Nodes ordered so each (after its component's first) touches an
    earlier one — keeps the naive search's pruning effective."""
    order: list[int] = []
    placed: set[int] = set()
    remaining = set(ddg.nodes)
    neighbours = {
        uid: {e.dst for e in ddg.succs[uid]} | {e.src for e in ddg.preds[uid]}
        for uid in ddg.nodes
    }
    while remaining:
        frontier = [u for u in remaining if neighbours[u] & placed]
        uid = min(frontier) if frontier else min(remaining)
        order.append(uid)
        placed.add(uid)
        remaining.discard(uid)
    return order


def _brute_feasible(ddg, config, ii: int) -> bool:
    """Naive complete search: is any modulo schedule possible at ``ii``?

    Written independently of the production searcher: plain recursion,
    whole-window enumeration, constraints checked edge by edge.  Single
    cluster only (no comms), loads fixed at the L1 latency.
    """
    lat = lambda uid: config.l1_latency  # noqa: E731
    horizon = ii * BRUTE_STAGES
    order = _brute_order(ddg)
    from repro.isa.operations import FUClass

    per_class = {
        FUClass.INT: config.int_units_per_cluster,
        FUClass.MEM: config.mem_units_per_cluster,
        FUClass.FP: config.fp_units_per_cluster,
    }
    rows: dict = {}
    assign: dict[int, int] = {}
    trials = [0]

    # Self-dependences constrain II alone.
    for edge in ddg.edges:
        if edge.src == edge.dst and edge.latency(lat) > ii * edge.distance:
            return False

    def consistent(uid: int, t: int) -> bool:
        for edge in ddg.preds[uid]:
            if edge.src == uid or edge.src not in assign:
                continue
            if assign[edge.src] + edge.latency(lat) - ii * edge.distance > t:
                return False
        for edge in ddg.succs[uid]:
            if edge.dst == uid or edge.dst not in assign:
                continue
            if t + edge.latency(lat) - ii * edge.distance > assign[edge.dst]:
                return False
        return True

    def recurse(depth: int) -> bool:
        if depth == len(order):
            return True
        uid = order[depth]
        fu = ddg.instruction(uid).fu_class
        anchored = {e.src for e in ddg.preds[uid]} | {e.dst for e in ddg.succs[uid]}
        anchored &= set(assign)
        if anchored:
            pivot = assign[min(anchored)]
            window = range(pivot - horizon, pivot + horizon + 1)
        elif depth == 0:
            # Shifting the whole schedule by any amount permutes rows
            # uniformly, so the very first node can be pinned to 0.
            window = range(1)
        else:
            # A later component may shift by multiples of II, but its row
            # alignment against already-placed components matters: try
            # every residue.
            window = range(ii)
        for t in window:
            trials[0] += 1
            if trials[0] > BRUTE_TRIALS:
                raise _BruteBlown
            if not consistent(uid, t):
                continue
            if fu in per_class:
                row = t % ii
                if rows.get((fu, row), 0) >= per_class[fu]:
                    continue
                rows[(fu, row)] = rows.get((fu, row), 0) + 1
            assign[uid] = t
            if recurse(depth + 1):
                return True
            del assign[uid]
            if fu in per_class:
                rows[(fu, t % ii)] -= 1
        return False

    return recurse(0)


@SLOW
@given(seed=seeds)
def test_exact_matches_brute_force_optimum(seed):
    """On brute-forceable problems the exact scheduler's II is *the*
    optimum: every smaller II is refuted by exhaustive enumeration."""
    loop = random_loop(seed, max_ops=6, trip_count=8)
    assume(len(loop.body) <= 8)
    config = unified_config(n_clusters=1)
    compiled = compile_loop(
        loop,
        config,
        unroll_factor=1,
        scheduler="exact",
        exact_node_budget=500_000,
        exact_max_stages=BRUTE_STAGES,
    )
    meta = compiled.schedule.meta
    assume(not meta["fallback"])  # budget-bound examples prove nothing here
    assert compiled.schedule.validate(compiled.ddg) == []
    try:
        assert _brute_feasible(compiled.ddg, config, compiled.ii)
        for ii in range(1, compiled.ii):
            assert not _brute_feasible(compiled.ddg, config, ii), (
                f"brute force schedules II={ii} but exact settled on "
                f"{compiled.ii} (meta={meta})"
            )
    except _BruteBlown:
        assume(False)


@SLOW
@given(seed=seeds)
def test_exact_budget_fallback_validates(seed):
    """With a starved budget the exact pass must degrade to exactly the
    SMS schedule — still valid, never worse, never corrupted."""
    loop = random_loop(seed)
    config = l0_config(4)
    sms = compile_loop(loop, config)
    starved = compile_loop(loop, config, scheduler="exact", exact_node_budget=1)
    assert starved.schedule.validate(starved.ddg) == []
    assert starved.ii <= sms.ii
    meta = starved.schedule.meta
    assert meta["scheduler"] == "exact"
    if starved.ii == sms.ii and sms.ii > meta["mii"]:
        # No improvement was found within one trial: the schedule must be
        # the SMS fallback, flagged as such (a refutation that genuinely
        # needed no trials is the only other possibility).
        assert meta["fallback"] or meta["nodes_explored"] <= 1


@SLOW
@given(seed=seeds)
def test_base_schedule_validates(seed):
    loop = random_loop(seed)
    compiled = compile_loop(loop, unified_config())
    assert compiled.schedule.validate(compiled.ddg) == []


@SLOW
@given(seed=seeds)
def test_l0_schedule_validates(seed):
    loop = random_loop(seed)
    compiled = compile_loop(loop, l0_config(8))
    assert compiled.schedule.validate(compiled.ddg) == []


@SLOW
@given(seed=seeds, entries=st.sampled_from([2, 4, 16, None]))
def test_l0_schedule_validates_across_sizes(seed, entries):
    loop = random_loop(seed)
    compiled = compile_loop(loop, l0_config(entries))
    assert compiled.schedule.validate(compiled.ddg) == []


@SLOW
@given(seed=seeds)
def test_distributed_schedules_validate(seed):
    loop = random_loop(seed)
    for config in (multivliw_config(), interleaved_config()):
        compiled = compile_loop(loop, config)
        assert compiled.schedule.validate(compiled.ddg) == []


@SLOW
@given(seed=seeds)
def test_ii_at_least_mii(seed):
    loop = random_loop(seed)
    compiled = compile_loop(loop, unified_config(), unroll_factor=1)
    ddg = build_ddg(loop, unified_config())
    mii = compute_mii(loop, ddg, unified_config(), lambda uid: 6)
    assert compiled.ii >= mii


@SLOW
@given(seed=seeds)
def test_l0_never_reads_stale_data(seed):
    """The headline coherence property (paper section 4.1)."""
    loop = random_loop(seed, trip_count=48)
    config = l0_config(4)
    compiled = compile_loop(loop, config)
    memory = make_memory(config)
    layout = MemoryLayout(align=config.l1_block)
    executor = LoopExecutor(compiled, memory, layout)
    executor.run(compiled.loop.trip_count)
    memory.invalidate_l0(10_000)
    executor.run(compiled.loop.trip_count, start_cycle=20_000)
    assert memory.stats.coherence_violations == 0


@SLOW
@given(seed=seeds)
def test_l0_capacity_respected_at_runtime(seed):
    loop = random_loop(seed, trip_count=48)
    config = l0_config(4)
    compiled = compile_loop(loop, config)
    memory = make_memory(config)
    executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
    executor.run(compiled.loop.trip_count)
    for buffer in memory.l0:
        assert len(buffer) <= 4


@SLOW
@given(seed=seeds)
def test_l0_loads_marked_consistently(seed):
    """A load scheduled with the L0 latency must carry an L0 access hint,
    and NO_ACCESS loads must use the L1 latency."""
    loop = random_loop(seed)
    config = l0_config(8)
    compiled = compile_loop(loop, config)
    for op in compiled.schedule.placed.values():
        if not op.instr.is_load:
            continue
        if op.latency == config.l0_latency:
            assert op.hints.uses_l0
        else:
            assert op.latency == config.l1_latency
            assert not op.hints.uses_l0


@SLOW
@given(seed=seeds)
def test_unroll_preserves_recurrence_cost(seed):
    """RecMII per original iteration is invariant under unrolling."""
    loop = random_loop(seed, trip_count=64)
    cfg = unified_config()
    narrow = build_ddg(loop, cfg)
    wide = build_ddg(unroll(loop, 4), cfg)
    lat = lambda uid: 6  # noqa: E731
    narrow_rec = rec_mii(narrow, lat)
    wide_rec = rec_mii(wide, lat)
    assert wide_rec <= 4 * narrow_rec


@SLOW
@given(seed=seeds)
def test_stall_accounting_is_deterministic(seed):
    loop = random_loop(seed, trip_count=32)
    config = l0_config(8)
    totals = set()
    for _ in range(2):
        compiled = compile_loop(loop, config)
        memory = make_memory(config)
        executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
        result = executor.run(compiled.loop.trip_count)
        totals.add((result.compute_cycles, result.stall_cycles))
    assert len(totals) == 1
