"""Property-based tests: scheduler invariants over random loops.

These are the heavy-duty correctness checks: for *any* structurally
valid loop, every architecture's scheduler must produce a schedule that
satisfies all dependence and resource constraints, and running it must
never read stale data out of an L0 buffer.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir import build_ddg, unroll
from repro.isa import MemoryLayout
from repro.machine import interleaved_config, l0_config, multivliw_config, unified_config
from repro.scheduler import compile_loop, compute_mii, rec_mii
from repro.sim import LoopExecutor, make_memory
from repro.workloads import random_loop

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


@SLOW
@given(seed=seeds)
def test_base_schedule_validates(seed):
    loop = random_loop(seed)
    compiled = compile_loop(loop, unified_config())
    assert compiled.schedule.validate(compiled.ddg) == []


@SLOW
@given(seed=seeds)
def test_l0_schedule_validates(seed):
    loop = random_loop(seed)
    compiled = compile_loop(loop, l0_config(8))
    assert compiled.schedule.validate(compiled.ddg) == []


@SLOW
@given(seed=seeds, entries=st.sampled_from([2, 4, 16, None]))
def test_l0_schedule_validates_across_sizes(seed, entries):
    loop = random_loop(seed)
    compiled = compile_loop(loop, l0_config(entries))
    assert compiled.schedule.validate(compiled.ddg) == []


@SLOW
@given(seed=seeds)
def test_distributed_schedules_validate(seed):
    loop = random_loop(seed)
    for config in (multivliw_config(), interleaved_config()):
        compiled = compile_loop(loop, config)
        assert compiled.schedule.validate(compiled.ddg) == []


@SLOW
@given(seed=seeds)
def test_ii_at_least_mii(seed):
    loop = random_loop(seed)
    compiled = compile_loop(loop, unified_config(), unroll_factor=1)
    ddg = build_ddg(loop, unified_config())
    mii = compute_mii(loop, ddg, unified_config(), lambda uid: 6)
    assert compiled.ii >= mii


@SLOW
@given(seed=seeds)
def test_l0_never_reads_stale_data(seed):
    """The headline coherence property (paper section 4.1)."""
    loop = random_loop(seed, trip_count=48)
    config = l0_config(4)
    compiled = compile_loop(loop, config)
    memory = make_memory(config)
    layout = MemoryLayout(align=config.l1_block)
    executor = LoopExecutor(compiled, memory, layout)
    executor.run(compiled.loop.trip_count)
    memory.invalidate_l0(10_000)
    executor.run(compiled.loop.trip_count, start_cycle=20_000)
    assert memory.stats.coherence_violations == 0


@SLOW
@given(seed=seeds)
def test_l0_capacity_respected_at_runtime(seed):
    loop = random_loop(seed, trip_count=48)
    config = l0_config(4)
    compiled = compile_loop(loop, config)
    memory = make_memory(config)
    executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
    executor.run(compiled.loop.trip_count)
    for buffer in memory.l0:
        assert len(buffer) <= 4


@SLOW
@given(seed=seeds)
def test_l0_loads_marked_consistently(seed):
    """A load scheduled with the L0 latency must carry an L0 access hint,
    and NO_ACCESS loads must use the L1 latency."""
    loop = random_loop(seed)
    config = l0_config(8)
    compiled = compile_loop(loop, config)
    for op in compiled.schedule.placed.values():
        if not op.instr.is_load:
            continue
        if op.latency == config.l0_latency:
            assert op.hints.uses_l0
        else:
            assert op.latency == config.l1_latency
            assert not op.hints.uses_l0


@SLOW
@given(seed=seeds)
def test_unroll_preserves_recurrence_cost(seed):
    """RecMII per original iteration is invariant under unrolling."""
    loop = random_loop(seed, trip_count=64)
    cfg = unified_config()
    narrow = build_ddg(loop, cfg)
    wide = build_ddg(unroll(loop, 4), cfg)
    lat = lambda uid: 6  # noqa: E731
    narrow_rec = rec_mii(narrow, lat)
    wide_rec = rec_mii(wide, lat)
    assert wide_rec <= 4 * narrow_rec


@SLOW
@given(seed=seeds)
def test_stall_accounting_is_deterministic(seed):
    loop = random_loop(seed, trip_count=32)
    config = l0_config(8)
    totals = set()
    for _ in range(2):
        compiled = compile_loop(loop, config)
        memory = make_memory(config)
        executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
        result = executor.run(compiled.loop.trip_count)
        totals.add((result.compute_cycles, result.stall_cycles))
    assert len(totals) == 1
