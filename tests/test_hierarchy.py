"""Tests for the unified hierarchy (L0 + L1 + buses) timing and semantics."""

import pytest

from repro.isa import AccessHint, HintBundle, MapHint, PrefetchHint
from repro.machine import l0_config, unified_config
from repro.memory import UnifiedMemory

PAR = HintBundle(access=AccessHint.PAR_ACCESS)
SEQ = HintBundle(access=AccessHint.SEQ_ACCESS)
NO = HintBundle(access=AccessHint.NO_ACCESS)
PAR_INT = HintBundle(access=AccessHint.PAR_ACCESS, mapping=MapHint.INTERLEAVED)


def make_mem(entries=8):
    return UnifiedMemory(l0_config(entries))


class TestBaselineLoads:
    def test_no_access_goes_to_l1(self):
        mem = UnifiedMemory(unified_config())
        # Cold: L1 miss -> L1 + L2 latency.
        assert mem.load(0, 0x100, 4, NO, cycle=0) == 0 + 6 + 10
        # Warm: L1 hit.
        assert mem.load(0, 0x104, 4, NO, cycle=20) == 20 + 6

    def test_bus_conflict_delays_l1_load(self):
        mem = UnifiedMemory(unified_config())
        mem.load(0, 0x100, 4, NO, cycle=0)
        ready = mem.load(0, 0x200, 4, NO, cycle=0)  # same bus, same cycle
        assert ready == 1 + 6 + 10

    def test_different_clusters_no_conflict(self):
        mem = UnifiedMemory(unified_config())
        mem.load(0, 0x100, 4, NO, cycle=0)
        assert mem.load(1, 0x200, 4, NO, cycle=0) == 16


class TestL0Loads:
    def test_par_miss_fills_linear(self):
        mem = make_mem()
        ready = mem.load(0, 0x100, 4, PAR, cycle=0)
        assert ready == 16  # L1 miss on a cold cache
        assert mem.l0[0].find(0x100, 4) is not None
        # Second access within the subblock hits but waits for the fill.
        ready2 = mem.load(0, 0x104, 4, PAR, cycle=1)
        assert ready2 == 16
        assert mem.stats.l0.hits == 1

    def test_l0_hit_after_fill_is_one_cycle(self):
        mem = make_mem()
        mem.load(0, 0x100, 4, PAR, cycle=0)
        assert mem.load(0, 0x104, 4, PAR, cycle=30) == 31

    def test_seq_miss_uses_next_cycle_bus(self):
        mem = make_mem()
        mem.l1.load(0x100)  # pre-warm L1
        ready = mem.load(0, 0x100, 4, SEQ, cycle=10)
        assert ready == 11 + 6  # request issued at cycle 11

    def test_seq_hit_skips_l1(self):
        mem = make_mem()
        mem.load(0, 0x100, 4, PAR, cycle=0)
        grants_before = mem.stats.bus.grants
        mem.load(0, 0x100, 4, SEQ, cycle=30)
        assert mem.stats.bus.grants == grants_before  # no L1 traffic

    def test_par_hit_still_sends_l1_request(self):
        mem = make_mem()
        mem.load(0, 0x100, 4, PAR, cycle=0)
        grants_before = mem.stats.bus.grants
        mem.load(0, 0x100, 4, PAR, cycle=30)
        assert mem.stats.bus.grants == grants_before + 1

    def test_interleaved_fill_distributes_block(self):
        mem = make_mem()
        # 4-byte elements: block has 8 elements, residues mod 4.
        ready = mem.load(1, 0x200, 4, PAR_INT, cycle=0)
        assert ready == 17  # +1 shift/interleave penalty over the L2 miss
        # Element 0 (residue 0) lives in the accessing cluster 1.
        assert mem.l0[1].find(0x200, 4) is not None
        # Element 1 (residue 1) lives in cluster 2, etc.
        assert mem.l0[2].find(0x204, 4) is not None
        assert mem.l0[3].find(0x208, 4) is not None
        assert mem.l0[0].find(0x20C, 4) is not None
        # Element 4 shares residue 0 -> cluster 1 again.
        assert mem.l0[1].find(0x210, 4) is not None


class TestPrefetchHints:
    def test_positive_linear_prefetch_on_last_element(self):
        mem = make_mem()
        hints = HintBundle(
            access=AccessHint.PAR_ACCESS, prefetch=PrefetchHint.POSITIVE
        )
        mem.load(0, 0x100, 4, hints, cycle=0)
        assert mem.l0[0].find(0x108, 4) is None
        # Touch the last element of the subblock -> next subblock fetched.
        mem.load(0, 0x104, 4, hints, cycle=30)
        assert mem.l0[0].find(0x108, 4) is not None
        assert mem.stats.prefetch_requests == 1

    def test_negative_prefetch_on_first_element(self):
        mem = make_mem()
        hints = HintBundle(
            access=AccessHint.PAR_ACCESS, prefetch=PrefetchHint.NEGATIVE
        )
        mem.load(0, 0x108, 4, hints, cycle=0)
        mem.load(0, 0x108, 4, hints, cycle=30)  # first element of its subblock
        assert mem.l0[0].find(0x100, 4) is not None

    def test_prefetch_dropped_when_bus_busy(self):
        mem = make_mem()
        hints = HintBundle(
            access=AccessHint.PAR_ACCESS, prefetch=PrefetchHint.POSITIVE
        )
        mem.load(0, 0x100, 4, hints, cycle=0)  # first element: no trigger
        mem.buses[0].grant(31)  # occupy the slot after the next access
        mem.load(0, 0x104, 4, hints, cycle=30)  # last element: trigger
        assert mem.stats.dropped_prefetches >= 1
        assert mem.l0[0].find(0x108, 4) is None

    def test_interleaved_prefetch_brings_next_block_everywhere(self):
        mem = make_mem()
        hints = HintBundle(
            access=AccessHint.PAR_ACCESS,
            mapping=MapHint.INTERLEAVED,
            prefetch=PrefetchHint.POSITIVE,
        )
        mem.load(0, 0x200, 4, hints, cycle=0)
        # Last element of cluster 0's residue-0 subblock is element 4.
        mem.load(0, 0x210, 4, hints, cycle=40)
        for cluster in range(4):
            entries = mem.l0[cluster].entries()
            assert any(e.block_addr == 0x220 for e in entries)

    def test_distance_two_prefetches_two_ahead(self):
        mem = make_mem()
        hints = HintBundle(
            access=AccessHint.PAR_ACCESS,
            prefetch=PrefetchHint.POSITIVE,
            prefetch_distance=2,
        )
        mem.load(0, 0x104, 4, hints, cycle=0)
        mem.load(0, 0x104, 4, hints, cycle=40)
        assert mem.l0[0].find(0x110, 4) is not None  # two subblocks ahead

    def test_explicit_prefetch(self):
        mem = make_mem()
        mem.prefetch(0, 0x300, 4, cycle=0)
        assert mem.l0[0].find(0x300, 4) is not None
        assert mem.stats.explicit_prefetches == 1
        mem.prefetch(0, 0x300, 4, cycle=50)  # already present: no-op
        assert mem.stats.explicit_prefetches == 1


class TestStoresAndCoherence:
    def test_store_par_updates_local_l0(self):
        mem = make_mem()
        mem.load(0, 0x100, 4, PAR, cycle=0)
        mem.store(0, 0x100, 4, PAR, cycle=30)
        entry = mem.l0[0].find(0x100, 4)
        assert entry.update_time == 30
        # A later local load sees fresh data: no violation.
        mem.load(0, 0x100, 4, PAR, cycle=40)
        assert mem.stats.coherence_violations == 0

    def test_remote_store_makes_l0_stale(self):
        """A store in another cluster is NOT propagated to remote L0s —
        reading the old entry is a coherence violation the compiler must
        prevent; the model detects it."""
        mem = make_mem()
        mem.load(0, 0x100, 4, PAR, cycle=0)
        mem.store(1, 0x100, 4, NO, cycle=30)
        mem.load(0, 0x100, 4, PAR, cycle=40)
        assert mem.stats.coherence_violations == 1

    def test_psr_replica_invalidates_without_l1_traffic(self):
        mem = make_mem()
        mem.load(0, 0x100, 4, PAR, cycle=0)
        grants = mem.stats.bus.grants
        mem.store(0, 0x100, 4, PAR, cycle=30, is_primary=False)
        assert mem.l0[0].find(0x100, 4) is None
        assert mem.stats.bus.grants == grants

    def test_invalidate_l0_clears_all_buffers(self):
        mem = make_mem()
        for cluster in range(4):
            mem.load(cluster, 0x100 * (cluster + 1), 4, PAR, cycle=0)
        mem.invalidate_l0(cycle=100)
        assert all(len(buf) == 0 for buf in mem.l0)

    def test_l1_always_current_after_store(self):
        mem = make_mem()
        mem.load(0, 0x100, 4, PAR, cycle=0)
        mem.store(1, 0x100, 4, NO, cycle=30)
        # NO_ACCESS load from any cluster reads L1: no violation recorded.
        violations = mem.stats.coherence_violations
        mem.load(2, 0x100, 4, NO, cycle=40)
        assert mem.stats.coherence_violations == violations
