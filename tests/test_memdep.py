"""Tests for memory disambiguation and dependent-set analysis."""

from repro.ir import LoopBuilder, analyze, order_edges
from repro.ir.memdep import patterns_may_alias
from repro.isa import AccessPattern, ArrayRef, PatternKind

from repro.workloads.kernels import make_dpcm, make_saxpy


def _strided(array, stride, offset=0):
    return AccessPattern(array, stride=stride, offset=offset)


class TestPatternAliasing:
    ARR = ArrayRef("a", 1024, 4)

    def test_same_stride_same_offset_alias(self):
        assert patterns_may_alias(
            _strided(self.ARR, 1, 0), _strided(self.ARR, 1, 0), True
        )

    def test_same_stride_offset_mod_mismatch_disjoint(self):
        # stride 4, offsets 0 and 1: element sets never intersect.
        assert not patterns_may_alias(
            _strided(self.ARR, 4, 0), _strided(self.ARR, 4, 1), True
        )

    def test_same_stride_offset_multiple_alias(self):
        assert patterns_may_alias(
            _strided(self.ARR, 4, 0), _strided(self.ARR, 4, 8), True
        )

    def test_different_strides_conservative(self):
        assert patterns_may_alias(
            _strided(self.ARR, 1, 0), _strided(self.ARR, 8, 3), True
        )

    def test_stride_zero_same_element(self):
        assert patterns_may_alias(
            _strided(self.ARR, 0, 5), _strided(self.ARR, 0, 5), True
        )
        assert not patterns_may_alias(
            _strided(self.ARR, 0, 5), _strided(self.ARR, 0, 6), True
        )

    def test_random_always_aliases(self):
        rnd = AccessPattern(self.ARR, kind=PatternKind.RANDOM)
        assert patterns_may_alias(rnd, _strided(self.ARR, 1), True)

    def test_different_arrays_never_alias_without_group(self):
        assert not patterns_may_alias(
            _strided(self.ARR, 1), _strided(ArrayRef("b", 64, 4), 1), False
        )


class TestDependentSets:
    def test_saxpy_sets(self):
        loop = make_saxpy()
        info = analyze(loop)
        # ld_x alone; ld_y and st_y form a coherence set.
        sizes = sorted(len(s) for s in info.sets)
        assert sizes == [1, 2]
        assert len(info.constrained_sets()) == 1

    def test_store_only_sets_unconstrained(self):
        b = LoopBuilder("stores", trip_count=4)
        a = b.array("a", 64, 4)
        v = b.live_in("v")
        b.store(a, v, stride=1, offset=0)
        b.store(a, v, stride=1, offset=0, tag="st2")
        loop = b.build()
        info = analyze(loop)
        assert not info.constrained_sets()  # no loads involved

    def test_alias_group_merges_cross_array_sets(self):
        b = LoopBuilder("aliased", trip_count=4)
        p = b.array("p", 64, 4)
        q = b.array("q", 64, 4)
        b.alias(p, q)
        v = b.load(p, stride=1)
        b.store(q, v, stride=1)
        loop = b.build()
        info = analyze(loop)
        assert len(info.constrained_sets()) == 1

    def test_in_coherence_set_lookup(self):
        loop = make_saxpy()
        info = analyze(loop)
        ld_y = next(i for i in loop.body if i.tag == "ld_y")
        ld_x = next(i for i in loop.body if i.tag == "ld_x")
        assert info.in_coherence_set(ld_y.uid)
        assert not info.in_coherence_set(ld_x.uid)


class TestOrderEdges:
    def test_saxpy_no_spurious_recurrence(self):
        """In-place update y[i] = f(y[i]) has no loop-carried memory edge."""
        loop = make_saxpy()
        edges = order_edges(loop, analyze(loop))
        assert all(e.distance == 0 for e in edges)

    def test_real_recurrence_distance_one(self):
        loop = make_dpcm()  # store y[i+1], load y[i]
        edges = order_edges(loop, analyze(loop))
        carried = [e for e in edges if e.distance >= 1]
        assert len(carried) == 1
        edge = carried[0]
        assert edge.src.is_store and edge.dst.is_load
        assert edge.distance == 1
        assert edge.latency == 1  # RAW

    def test_war_edge_latency_zero(self):
        loop = make_saxpy()
        edges = order_edges(loop, analyze(loop))
        war = [e for e in edges if e.src.is_load and e.dst.is_store]
        assert war and all(e.latency == 0 for e in war)

    def test_load_load_pairs_skipped(self):
        b = LoopBuilder("ll", trip_count=4)
        a = b.array("a", 64, 4)
        b.load(a, stride=1)
        b.load(a, stride=1)
        loop = b.build()
        assert order_edges(loop, analyze(loop)) == []

    def test_disjoint_unrolled_copies_no_edges(self):
        b = LoopBuilder("disjoint", trip_count=4)
        a = b.array("a", 64, 4)
        v = b.live_in("v")
        b.store(a, v, stride=4, offset=0)
        b.store(a, v, stride=4, offset=1)
        loop = b.build()
        assert order_edges(loop, analyze(loop)) == []
