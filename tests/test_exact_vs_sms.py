"""Differential scheduler-oracle suite: exact vs SMS on the kernel zoo.

For every kernel builder in ``repro.workloads.kernels`` crossed with a
small machine-config matrix, the exact scheduler must act as an oracle
for the SMS heuristic:

* ``MII <= II(exact) <= II(SMS)`` (the deepening loop's contract);
* both schedules pass ``ModuloSchedule.validate(ddg)``;
* simulating both yields consistent statistics (the exact compute-cycle
  identity ``(n - 1) * II + span`` and deterministic stall counts).

The fast subset runs in the default ``-m "not slow"`` lane; the full
kernels x Figure-5-sizes cross product carries the ``slow`` marker and
runs in CI's scheduled lane, where ``REPRO_COMPILE_CACHE_DIR`` persists
the compile artifacts between runs.
"""

import os

import pytest

from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.pipeline import CompileOptions, compile_cached, get_compile_cache
from repro.sim import LoopExecutor, make_memory
from repro.workloads import kernels

#: Shared across the module so SMS/exact pairs reuse one frontend entry;
#: CI's slow lane points this at a persisted directory.
CACHE = get_compile_cache(os.environ.get("REPRO_COMPILE_CACHE_DIR"))

#: Trials the exact search may spend per compile in these tests.  Small
#: enough that a budget-bound kernel (e.g. the unrolled bignum carry
#: chain on the L0 machine) falls back quickly, large enough that the
#: improvable kernels are actually improved.
TEST_BUDGET = 20_000


def _kernel_suite() -> dict[str, object]:
    """One small instance of every kernel shape in ``workloads.kernels``."""
    return {
        "saxpy": kernels.make_saxpy(trip=32),
        "dpcm": kernels.make_dpcm(trip=32),
        "column": kernels.make_column(trip=32),
        "stream_map": kernels.stream_map("k_stream", trip=32, n=256),
        "multi_stream": kernels.multi_stream("k_multi", trip=32, n=256),
        "feedback": kernels.feedback("k_fb", trip=32, n=256),
        "reduction": kernels.reduction("k_red", trip=32, n=256),
        "column_walk": kernels.column_walk("k_cw", trip=32, n=256),
        "table_mix": kernels.table_mix("k_tm", trip=32, n_stream=256, n_table=64),
        "bignum": kernels.bignum("k_bn", trip=32, n=256),
        "fp_filter": kernels.fp_filter("k_fpf", trip=32, n=256),
        "fp_feedback": kernels.fp_feedback("k_fpfb", trip=32, n=256),
    }


KERNELS = _kernel_suite()

FAST_CONFIGS = {
    "unified": unified_config(),
    "l0-4": l0_config(4),
    "l0-unbounded": l0_config(None),
}

SLOW_CONFIGS = {
    "l0-8": l0_config(8),
    "l0-16": l0_config(16),
    "l0-4-2cl": l0_config(4, n_clusters=2),
    "unified-2cl": unified_config(n_clusters=2),
}


def _compile(loop, config, scheduler: str):
    options = CompileOptions(scheduler=scheduler, exact_node_budget=TEST_BUDGET)
    return compile_cached(loop, config, options, cache=CACHE)


def _simulate(compiled, config):
    memory = make_memory(config)
    layout = MemoryLayout(align=config.l1_block)
    executor = LoopExecutor(compiled, memory, layout)
    return executor.run(compiled.loop.trip_count)


def _check_oracle(loop, config):
    sms = _compile(loop, config, "sms")
    exact = _compile(loop, config, "exact")
    meta = exact.schedule.meta

    assert sms.schedule.meta.get("scheduler") == "sms"
    assert meta["scheduler"] == "exact"
    # The exact backend's internal SMS baseline must agree with the SMS
    # backend proper — both run the same engine over the same artifacts.
    assert meta["ii_sms"] == sms.ii
    # The oracle inequality chain.
    assert meta["mii"] <= exact.ii <= sms.ii
    # One of the three outcomes must hold, and be internally consistent.
    if exact.ii < sms.ii:
        assert meta["improved"] and not meta["fallback"]
    elif meta["fallback"]:
        assert not meta["proved_optimal"]
    elif meta["search_exact"] or sms.ii <= meta["mii"]:
        # Complete refutation (stateless policy) or the airtight MII bound.
        assert meta["proved_optimal"]
    else:
        # The stateful L0 protocol cannot certify refutations.
        assert not meta["proved_optimal"]

    # Both schedules satisfy every dependence/resource constraint.
    assert sms.schedule.validate(sms.ddg) == []
    assert exact.schedule.validate(exact.ddg) == []

    # Both schedules drive the simulator to consistent statistics.
    for compiled in (sms, exact):
        result = _simulate(compiled, config)
        trip = compiled.loop.trip_count
        assert result.iterations == trip
        assert result.compute_cycles == (trip - 1) * compiled.ii + compiled.schedule.span
        assert result.stall_cycles >= 0
        again = _simulate(compiled, config)
        assert (again.compute_cycles, again.stall_cycles, again.late_loads) == (
            result.compute_cycles,
            result.stall_cycles,
            result.late_loads,
        )
    return sms, exact


@pytest.mark.parametrize("config_name", sorted(FAST_CONFIGS))
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_oracle_fast_matrix(kernel_name, config_name):
    _check_oracle(KERNELS[kernel_name], FAST_CONFIGS[config_name])


@pytest.mark.slow
@pytest.mark.parametrize("config_name", sorted(SLOW_CONFIGS))
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_oracle_full_matrix(kernel_name, config_name):
    _check_oracle(KERNELS[kernel_name], SLOW_CONFIGS[config_name])


def test_exact_improves_at_least_one_kernel():
    """The acceptance demonstration: somewhere in the fast matrix the
    exact scheduler must either beat SMS's II outright or prove SMS
    optimal on every single kernel/config pair."""
    improved = []
    proved = []
    for kernel_name, loop in KERNELS.items():
        for config_name, config in FAST_CONFIGS.items():
            exact = _compile(loop, config, "exact")
            meta = exact.schedule.meta
            if meta["improved"]:
                improved.append((kernel_name, config_name))
            elif meta["proved_optimal"]:
                proved.append((kernel_name, config_name))
    assert improved or len(proved) == len(KERNELS) * len(FAST_CONFIGS)
    # With the current engine the reduction/feedback kernels have a
    # known II gap, so the strong arm should hold; keep the assertion
    # message informative if the heuristic ever catches up.
    assert improved, f"SMS proved optimal everywhere: {len(proved)} pairs"


def test_scheduler_spellings_share_result_cache_key():
    """SimOptions(scheduler=...) and compile_kwargs={"scheduler": ...}
    describe the same computation and must hash identically."""
    from repro.pipeline import cache_key
    from repro.sim.runner import SimOptions

    field_spelling = SimOptions(scheduler="exact")
    kwargs_spelling = SimOptions(compile_kwargs={"scheduler": "exact"})
    assert kwargs_spelling.scheduler == "exact"
    assert "scheduler" not in kwargs_spelling.compile_kwargs
    config = l0_config(8)
    assert cache_key("g721dec", config, field_spelling) == cache_key(
        "g721dec", config, kwargs_spelling
    )
    assert cache_key("g721dec", config, SimOptions()) != cache_key(
        "g721dec", config, field_spelling
    )


def test_schedcompare_experiment_reports_oracle():
    """The eval comparison mode surfaces the same oracle per loop."""
    from repro.eval import ExperimentContext, render_sched_compare, scheduler_comparison

    ctx = ExperimentContext(benchmarks=("gsmenc",))
    rows = scheduler_comparison(ctx, sizes=(4, None), exact_node_budget=TEST_BUDGET)
    assert rows
    for row in rows:
        assert row["mii"] <= row["ii_exact"] <= row["ii_sms"]
    text = render_sched_compare(rows)
    assert "II(SMS) vs II(exact) vs MII" in text
    assert "exact beat SMS" in text
