"""The differential fuzzing subsystem (``repro.fuzz``).

Covers the parametric genotype generator (round-trip, determinism,
profiles), the committed edge corpus and kernel-id scheme, the
content-addressed fuzz store (dedup, key sensitivity), the fault-
injection drills (a corrupted fast-path trace *is* caught), the
deterministic shrinker (convergence, 1-minimality, purity), and both
CLIs (``repro.fuzz`` end to end, ``repro.cache`` over the fuzz store).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cache import main as cache_main
from repro.fuzz.checks import FuzzOptions, run_check
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.corpus import (
    EDGE_CORPUS,
    edge_kernel_ids,
    resolve_kernel,
    seed_kernel_ids,
)
from repro.fuzz.engine import FUZZ_CONFIGS, FuzzJob, make_jobs, run_jobs
from repro.fuzz.regressions import load_repros
from repro.fuzz.shrink import shrink
from repro.fuzz.store import FuzzStore, job_store_key
from repro.workloads.generator import (
    PROFILES,
    KernelGenotype,
    random_genotype,
)

#: A (kernel, config, fault) triple known to diverge under injection —
#: the same drill the committed ``fast_vs_ref-unified-*`` repro records.
DRILL_KERNEL = "seed:default:2"
DRILL_CONFIG = "unified"
DRILL_FAULT = "drop-check-deps"


# ----------------------------------------------------------------------
# Generator and corpus
# ----------------------------------------------------------------------


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_random_genotype_roundtrip_and_determinism(profile):
    first = random_genotype(3, profile)
    again = random_genotype(3, profile)
    assert first.to_json() == again.to_json()
    rebuilt = KernelGenotype.from_json(json.loads(json.dumps(first.to_json())))
    assert rebuilt.to_json() == first.to_json()
    assert rebuilt.fingerprint() == first.fingerprint()
    loop = first.build()
    assert loop.trip_count == first.trip and loop.body


def test_profiles_are_seed_disjoint_streams():
    # The RNG is seeded with "profile:seed", so the same seed under two
    # profiles yields different kernels (no accidental stream sharing).
    fingerprints = {
        random_genotype(0, profile).fingerprint() for profile in PROFILES
    }
    assert len(fingerprints) == len(PROFILES)


def test_edge_corpus_is_stable_and_buildable():
    assert sorted(EDGE_CORPUS) == [
        "alias_storm",
        "bus_storm",
        "carry_chain",
        "fp_feedback",
        "random_table",
        "recurrence_ladder",
        "regpressure_cliff",
        "stride_zero_walk",
        "tiny",
        "wide_fp",
    ]
    for name, genotype in EDGE_CORPUS.items():
        assert genotype.name == f"edge_{name}"
        assert genotype.build().body


def test_kernel_id_scheme():
    assert resolve_kernel("edge:tiny") is EDGE_CORPUS["tiny"]
    assert (
        resolve_kernel("seed:5").fingerprint()
        == resolve_kernel("seed:default:5").fingerprint()
    )
    assert edge_kernel_ids() == [f"edge:{n}" for n in sorted(EDGE_CORPUS)]
    ids = seed_kernel_ids(0, 4, ["default", "bus"])
    assert ids == ["seed:default:0", "seed:bus:1", "seed:default:2", "seed:bus:3"]
    for bad in ("edge:nope", "seed:nope:1", "seed:x", "saxpy"):
        with pytest.raises(ValueError):
            resolve_kernel(bad)


def test_make_jobs_spread_vs_cross_product():
    kernels = ["seed:0", "seed:1", "seed:2"]
    configs = ["unified", "l0_8"]
    spread = make_jobs(kernels, configs, ("certify",), spread=True)
    assert [j.config_name for j in spread] == ["unified", "l0_8", "unified"]
    crossed = make_jobs(kernels, configs, ("certify",), spread=False)
    assert len(crossed) == len(kernels) * len(configs)


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------


def test_job_store_key_sensitivity():
    job = FuzzJob("edge:tiny", "unified", ("certify", "fast_vs_ref"))
    base = job.key(FuzzOptions())
    assert base == job.key(FuzzOptions())  # stable
    assert base != job.key(FuzzOptions(exact_node_budget=99))
    assert base != job.key(FuzzOptions(fault=DRILL_FAULT))
    assert base != FuzzJob("edge:tiny", "l0_8", job.checks).key(FuzzOptions())
    assert base != FuzzJob("edge:tiny", "unified", ("certify",)).key(FuzzOptions())
    # Check order is canonicalised away.
    fingerprint = resolve_kernel("edge:tiny").fingerprint()
    assert job_store_key(
        fingerprint, FUZZ_CONFIGS["unified"], ("fast_vs_ref", "certify"), FuzzOptions()
    ) == base


def test_run_jobs_dedups_through_the_store(tmp_path):
    jobs = make_jobs(
        ["edge:tiny", "edge:carry_chain"], ["unified"], ("fast_vs_ref",), spread=False
    )
    store = FuzzStore(tmp_path / "store")
    cold = run_jobs(jobs, store=store)
    assert (cold.executed, cold.store_hits) == (2, 0)
    assert cold.clean
    warm = run_jobs(jobs, store=FuzzStore(tmp_path / "store"))
    assert (warm.executed, warm.store_hits) == (0, 2)
    assert warm.clean
    # A duplicate job (same content key) is collapsed before execution.
    doubled = run_jobs(jobs + jobs, store=FuzzStore(tmp_path / "store"))
    assert (doubled.total, doubled.executed, doubled.store_hits) == (4, 0, 2)


def test_store_records_mismatches_for_replay(tmp_path):
    jobs = make_jobs([DRILL_KERNEL], [DRILL_CONFIG], ("fast_vs_ref",), spread=False)
    options = FuzzOptions(fault=DRILL_FAULT)
    store = FuzzStore(tmp_path / "store")
    report = run_jobs(jobs, options=options, store=store)
    assert not report.clean and len(report.mismatched) == 1
    # The verdict (not just cleanliness) is cached: a second run serves
    # the same mismatch from the store without re-simulating.
    again = run_jobs(jobs, options=options, store=FuzzStore(tmp_path / "store"))
    assert again.executed == 0 and len(again.mismatched) == 1
    entry = again.mismatched[0]
    assert entry["job"] == report.mismatched[0]["job"]
    assert entry["mismatches"] == report.mismatched[0]["mismatches"]
    assert entry["job"]["kernel_id"] == DRILL_KERNEL
    assert entry["schema"] == 1


# ----------------------------------------------------------------------
# Fault injection and shrinking
# ----------------------------------------------------------------------


def test_fault_injection_is_caught_and_clean_without_it():
    genotype = resolve_kernel(DRILL_KERNEL)
    config = FUZZ_CONFIGS[DRILL_CONFIG]
    clean = run_check("fast_vs_ref", genotype.build(), config, FuzzOptions())
    assert clean == []
    hurt = run_check(
        "fast_vs_ref", genotype.build(), config, FuzzOptions(fault=DRILL_FAULT)
    )
    assert hurt, "injected trace corruption must be observable"


def test_shrinker_converges_deterministically_to_a_minimal_kernel():
    genotype = resolve_kernel(DRILL_KERNEL)
    config = FUZZ_CONFIGS[DRILL_CONFIG]
    options = FuzzOptions(fault=DRILL_FAULT)

    first = shrink(genotype, config, "fast_vs_ref", options)
    assert first.reproduced
    assert len(first.genotype.ops) <= len(genotype.ops)
    assert first.genotype.trip <= genotype.trip
    assert first.genotype.name == f"{genotype.name}_min"

    # Deterministic: a second run retraces the identical path.
    second = shrink(genotype, config, "fast_vs_ref", options)
    assert second.genotype.to_json() == first.genotype.to_json()
    assert (second.rounds, second.attempts) == (first.rounds, first.attempts)

    # 1-minimal: the shrunk kernel still reproduces, and no single op
    # can be removed without losing the divergence.
    shrunk = first.genotype
    assert run_check("fast_vs_ref", shrunk.build(), config, options)
    for index in range(len(shrunk.ops)):
        data = shrunk.to_json()
        data["ops"] = data["ops"][:index] + data["ops"][index + 1 :]
        if not data["ops"]:
            continue
        smaller = KernelGenotype.from_json(data)
        try:
            still = run_check("fast_vs_ref", smaller.build(), config, options)
        except Exception:
            still = []
        assert not still, f"dropping op {index} still reproduces: not 1-minimal"


def test_shrinker_reports_non_reproducing_input():
    result = shrink(
        resolve_kernel("edge:tiny"), FUZZ_CONFIGS["unified"], "fast_vs_ref"
    )
    assert not result.reproduced
    assert result.genotype is not None


# ----------------------------------------------------------------------
# CLIs
# ----------------------------------------------------------------------


def test_fuzz_cli_run_replay_stats_roundtrip(tmp_path, capsys):
    store = tmp_path / "store"
    summary = tmp_path / "summary.json"
    rc = fuzz_main(
        [
            "run",
            "--seeds",
            "0:2",
            "--no-edge",
            "--configs",
            "unified",
            "--checks",
            "fast_vs_ref",
            "--store",
            str(store),
            "--regressions-dir",
            str(tmp_path / "repros"),
            "--json",
            str(summary),
        ]
    )
    assert rc == 0
    report = json.loads(summary.read_text())
    assert report["clean"] and report["total"] == 2 and report["repros"] == []

    assert fuzz_main(["stats", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "2 clean" in out and "unified: 2" in out

    # The committed regression corpus replays clean through the CLI too.
    corpus = Path(__file__).parent / "corpus" / "regressions"
    assert fuzz_main(["replay", "--dir", str(corpus), "--min", "2"]) == 0


def test_fuzz_cli_fault_drill_writes_a_shrunk_repro(tmp_path):
    repros = tmp_path / "repros"
    rc = fuzz_main(
        [
            "run",
            "--seeds",
            "2:3",
            "--profiles",
            "default",
            "--no-edge",
            "--configs",
            DRILL_CONFIG,
            "--checks",
            "fast_vs_ref",
            "--inject-fault",
            DRILL_FAULT,
            "--no-store",
            "--regressions-dir",
            str(repros),
            "--json",
            str(tmp_path / "summary.json"),
        ]
    )
    assert rc == 1, "a mismatching sweep must gate CI"
    cases = load_repros(repros)
    assert len(cases) == 1
    case = cases[0]
    assert case.check == "fast_vs_ref" and case.config_name == DRILL_CONFIG
    assert "injected fault" in (case.note or "")
    assert case.shrink["reproduced"]
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["repros"] == [str(case.path)] and not summary["clean"]
    # The drill repro replays clean without the fault (the real tree is
    # sound) and red with it (the kernel kept its divergence).
    assert fuzz_main(["replay", "--dir", str(repros)]) == 0
    assert (
        fuzz_main(["replay", "--dir", str(repros), "--inject-fault", DRILL_FAULT]) == 1
    )


def test_cache_cli_covers_the_fuzz_store(tmp_path, capsys):
    store = tmp_path / "store"
    jobs = make_jobs(["edge:tiny"], ["unified"], ("certify",), spread=False)
    assert run_jobs(jobs, store=FuzzStore(store)).clean
    argv = [
        "--cache-dir",
        str(tmp_path / "absent-results"),
        "--compile-cache-dir",
        str(tmp_path / "absent-compile"),
        "--fuzz-cache-dir",
        str(store),
    ]
    assert cache_main(argv + ["stats"]) == 0
    out = capsys.readouterr().out
    assert "fuzz:" in out and "entries: 1" in out
    assert cache_main(argv + ["verify"]) == 0
    out = capsys.readouterr().out
    assert "1 entries ok, 0 corrupt" in out
    # Corrupt the entry on disk: verify must drop it and exit non-zero.
    [entry_file] = [p for p in store.glob("*.json") if p.name != "manifest.json"]
    entry_file.write_text("{not json")
    assert cache_main(argv + ["verify"]) == 1
    assert not entry_file.exists()
