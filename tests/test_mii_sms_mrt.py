"""Tests for MII computation, SMS ordering and the reservation table."""

import pytest

from repro.ir import LoopBuilder, build_ddg, unroll
from repro.isa import FUClass
from repro.machine import ResourceModel, unified_config
from repro.scheduler import (
    Direction,
    ModuloReservationTable,
    compute_mii,
    rec_mii,
    res_mii,
    sms_order,
)

from repro.workloads.kernels import make_dpcm, make_saxpy

CFG = unified_config()
L1 = lambda uid: 6  # noqa: E731
L0 = lambda uid: 1  # noqa: E731


class TestResMII:
    def test_saxpy(self, saxpy):
        # 3 memory ops over 4 slots -> 1; 2 FP ops over 4 slots -> 1.
        assert res_mii(saxpy, CFG) == 1

    def test_unrolled_saxpy(self, saxpy):
        wide = unroll(saxpy, 4)
        # 12 memory ops over 4 slots -> 3.
        assert res_mii(wide, CFG) == 3

    def test_memory_bound(self):
        b = LoopBuilder("memheavy", trip_count=4)
        a = b.array("a", 256, 4)
        for k in range(9):
            b.load(a, stride=1, offset=k)
        assert res_mii(b.build(), CFG) == 3  # ceil(9/4)


class TestRecMII:
    def test_no_recurrence(self, saxpy):
        ddg = build_ddg(saxpy, CFG)
        assert rec_mii(ddg, L1) == 1

    def test_dpcm_l1_vs_l0(self, dpcm):
        ddg = build_ddg(dpcm, CFG)
        # ld(6/1) + imul(2) + iadd(1) + store RAW edge(1), distance 1.
        assert rec_mii(ddg, L1) == 10
        assert rec_mii(ddg, L0) == 5

    def test_compute_mii_takes_max(self, dpcm):
        ddg = build_ddg(dpcm, CFG)
        assert compute_mii(dpcm, ddg, CFG, L1) == 10

    def test_upper_hint_never_clamps(self, dpcm):
        """A too-small ``upper`` is a probe hint, not a ceiling.

        The exact scheduler's deepening loop seeds from MII; if a caller
        passing ResMII (here 1) as the hint could clamp a recurrence
        whose RecMII (10) exceeds it, the deepening loop would start
        below the true lower bound and "prove" optimality of an
        infeasible II.
        """
        ddg = build_ddg(dpcm, CFG)
        assert res_mii(dpcm, CFG) == 1
        for upper in (1, 2, 5, 9, 10, 11, 1000):
            assert rec_mii(ddg, L1, upper=upper) == 10

    def test_default_upper_is_a_true_bound(self, dpcm):
        """The default probe bound must dominate the real RecMII.

        The recurrence's latency lives almost entirely on distance-0
        edges (load + imul + iadd) with only a cheap distance-1 back
        edge; a bound summing distance-carrying edges alone (the old
        default: 2) undercuts the true RecMII of 10 and survives only
        via the doubling rescue.  The fixed default sums every edge.
        """
        ddg = build_ddg(dpcm, CFG)
        distance_only = 1 + sum(
            e.latency(L1) for e in ddg.edges if e.distance
        )
        all_edges = 1 + sum(e.latency(L1) for e in ddg.edges)
        true_rec = rec_mii(ddg, L1)
        assert distance_only < true_rec  # the old "bound" really was wrong
        assert all_edges >= true_rec

    def test_recurrence_dominates_resources_end_to_end(self, dpcm):
        """RecMII > ResMII must surface unclamped through compute_mii and
        the compiled II (the exact backend's deepening seed)."""
        from repro.scheduler import compile_loop

        ddg = build_ddg(dpcm, CFG)
        mii = compute_mii(dpcm, ddg, CFG, L1)
        assert mii == rec_mii(ddg, L1) > res_mii(dpcm, CFG)
        compiled = compile_loop(dpcm, CFG, unroll_factor=1, scheduler="exact")
        assert compiled.schedule.meta["mii"] == 10
        assert compiled.ii >= 10


class TestSMSOrder:
    def test_all_nodes_ordered_once(self, saxpy):
        ddg = build_ddg(saxpy, CFG)
        order = sms_order(ddg, 2, L1)
        assert sorted(uid for uid, _ in order) == sorted(ddg.nodes)

    def test_neighbour_property(self, dpcm):
        """Every node except component seeds touches an earlier node."""
        ddg = build_ddg(dpcm, CFG)
        order = sms_order(ddg, 10, L1)
        seen: set[int] = set()
        seeds = 0
        for uid, _ in order:
            neighbours = {e.dst for e in ddg.succs[uid]}
            neighbours |= {e.src for e in ddg.preds[uid]}
            if not neighbours & seen:
                seeds += 1
            seen.add(uid)
        assert seeds <= 2  # dpcm has at most 2 weakly-connected components

    def test_most_critical_node_first(self, dpcm):
        ddg = build_ddg(dpcm, CFG)
        order = sms_order(ddg, 10, L1)
        slack = ddg.slack(10, L1)
        first_uid = order[0][0]
        assert slack[first_uid] == min(slack.values())

    def test_directions_assigned(self, saxpy):
        ddg = build_ddg(saxpy, CFG)
        directions = {d for _, d in sms_order(ddg, 2, L1)}
        assert directions <= {Direction.TOP_DOWN, Direction.BOTTOM_UP}

    def test_infeasible_ii_still_produces_order(self, dpcm):
        ddg = build_ddg(dpcm, CFG)
        order = sms_order(ddg, 1, L1)  # below RecMII
        assert len(order) == len(ddg.nodes)


class TestMRT:
    def test_capacity_enforced(self):
        mrt = ModuloReservationTable(2, ResourceModel(CFG))
        mrt.fu_place(0, FUClass.MEM, 0)
        assert not mrt.fu_can_place(0, FUClass.MEM, 0)
        assert mrt.fu_can_place(1, FUClass.MEM, 0)
        assert mrt.fu_can_place(0, FUClass.MEM, 1)
        with pytest.raises(ValueError):
            mrt.fu_place(0, FUClass.MEM, 0)

    def test_modulo_wrapping(self):
        mrt = ModuloReservationTable(3, ResourceModel(CFG))
        mrt.fu_place(7, FUClass.INT, 2)  # row 1
        assert not mrt.fu_can_place(1, FUClass.INT, 2)
        assert not mrt.fu_can_place(4, FUClass.INT, 2)
        assert mrt.fu_can_place(2, FUClass.INT, 2)

    def test_negative_cycles_wrap(self):
        mrt = ModuloReservationTable(4, ResourceModel(CFG))
        mrt.fu_place(-1, FUClass.INT, 0)  # row 3
        assert not mrt.fu_can_place(3, FUClass.INT, 0)

    def test_bus_pool(self):
        mrt = ModuloReservationTable(1, ResourceModel(CFG))
        for _ in range(4):
            mrt.bus_place(0)
        assert not mrt.bus_can_place(0)
        mrt.bus_remove(0)
        assert mrt.bus_can_place(0)

    def test_remove_unplaced_raises(self):
        mrt = ModuloReservationTable(2, ResourceModel(CFG))
        with pytest.raises(ValueError):
            mrt.fu_remove(0, FUClass.INT, 0)

    def test_bad_ii_rejected(self):
        with pytest.raises(ValueError):
            ModuloReservationTable(0, ResourceModel(CFG))
