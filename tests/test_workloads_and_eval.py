"""Tests for the synthetic Mediabench suite and the experiment harness."""

import pytest

from repro.eval import (
    ExperimentContext,
    fig5,
    fig6,
    fig7,
    render_fig5,
    render_table1,
    render_table2,
    table1,
    table2,
)
from repro.ir import build_ddg
from repro.machine import l0_config, unified_config
from repro.scheduler import compile_loop
from repro.sim import SimOptions
from repro.workloads import (
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    build,
    random_loop,
    suite,
)


class TestSuiteDefinitions:
    def test_all_thirteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 13
        assert set(BENCHMARK_NAMES) == set(PAPER_TABLE1)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build("quake3")

    def test_benchmarks_are_rebuildable(self):
        a, b = build("gsmdec"), build("gsmdec")
        assert [s.loop.name for s in a.loops] == [s.loop.name for s in b.loops]

    def test_loop_fraction_sane(self):
        for bench in suite():
            assert 0.5 <= bench.loop_fraction < 1.0

    def test_every_loop_compiles_on_every_arch(self):
        """Broad sweep: all suite loops schedule validly for key configs."""
        for bench in suite(("g721dec", "jpegdec", "rasta")):
            for spec in bench.loops:
                for config in (unified_config(), l0_config(8)):
                    compiled = compile_loop(spec.loop, config)
                    assert compiled.schedule.validate(compiled.ddg) == []


class TestRandomLoops:
    def test_reproducible(self):
        a = random_loop(7)
        b = random_loop(7)
        assert [i.opcode for i in a.body] == [i.opcode for i in b.body]

    def test_always_has_memory_op(self):
        for seed in range(30):
            assert any(i.is_memory for i in random_loop(seed).body)

    def test_builds_valid_ddg(self):
        for seed in range(20):
            build_ddg(random_loop(seed), unified_config())


class TestTable1:
    def test_measured_close_to_paper(self):
        rows = table1()
        for row in rows:
            assert abs(row["S"] - row["paper_S"]) <= 12, row["benchmark"]
            assert abs(row["SG"] - row["paper_SG"]) <= 12, row["benchmark"]
            assert abs(row["SO"] - row["paper_SO"]) <= 12, row["benchmark"]

    def test_percentages_consistent(self):
        for row in table1():
            assert row["S"] == pytest.approx(row["SG"] + row["SO"], abs=0.1)
            assert 0 <= row["S"] <= 100

    def test_render(self):
        text = render_table1(table1())
        assert "g721dec" in text and "paper S" in text


class TestTable2:
    def test_paper_parameters_present(self):
        rows = dict(table2())
        assert "4 clusters" in rows["Number of clusters"]
        assert "8-byte subblocks" in rows["L0 buffers"]
        assert "6 cycles latency" in rows["L1 cache"]
        assert "always hits" in rows["L2 cache"]
        assert render_table2(table2())


@pytest.fixture(scope="module")
def quick_ctx():
    return ExperimentContext(
        options=SimOptions(sim_cap=250),
        benchmarks=("g721dec", "jpegdec"),
    )


class TestFigures:
    def test_fig5_structure_and_normalization(self, quick_ctx):
        series = fig5(quick_ctx, sizes=(8,))
        rows = series["8 entries"]
        names = [r.benchmark for r in rows]
        assert names == ["g721dec", "jpegdec", "AMEAN"]
        for row in rows:
            assert 0.3 < row.total < 3.0
            assert 0 <= row.stall <= row.total
        render_fig5(series)

    def test_fig5_recurrence_benchmark_wins(self, quick_ctx):
        series = fig5(quick_ctx, sizes=(8,))
        g721 = next(r for r in series["8 entries"] if r.benchmark == "g721dec")
        assert g721.total < 0.9

    def test_fig6_rates(self, quick_ctx):
        rows = fig6(quick_ctx)
        for row in rows:
            assert row["linear_ratio"] + row["interleaved_ratio"] == pytest.approx(1.0)
            assert 0.8 <= row["l0_hit_rate"] <= 1.0
            assert 1.0 <= row["avg_unroll"] <= 4.0

    def test_context_caches_runs(self, quick_ctx):
        fig5(quick_ctx, sizes=(8,))
        before = quick_ctx.session.simulations
        fig5(quick_ctx, sizes=(8,))  # re-run: pure cache hits
        assert quick_ctx.session.simulations == before
