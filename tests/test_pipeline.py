"""Tests for the pipeline subsystem: passes, cache, executors, session."""

import json

import pytest

from repro.eval import ExperimentContext, fig5, fig6
from repro.machine import l0_config, unified_config
from repro.pipeline import (
    CompileOptions,
    ParallelExecutor,
    Pass,
    PassManager,
    PassOrderError,
    PipelineError,
    ResultCache,
    RunRequest,
    SerialExecutor,
    Session,
    cache_key,
    decode_result,
    encode_result,
    result_fingerprint,
)
from repro.pipeline.passes import DEFAULT_PIPELINE
from repro.scheduler import compile_loop
from repro.sim import SimOptions
from repro.workloads.kernels import make_dpcm, make_saxpy

FAST = SimOptions(sim_cap=80)
TWO_BENCHMARKS = ("g721dec", "gsmdec")


class TestPassManager:
    def test_default_pipeline_matches_legacy_driver(self):
        loop = make_saxpy()
        config = l0_config(8)
        artifact = PassManager().run(loop, config)
        legacy = compile_loop(loop, config)
        assert artifact.trace == list(DEFAULT_PIPELINE)
        assert artifact.schedule.ii == legacy.schedule.ii
        assert artifact.unroll_factor == legacy.unroll_factor
        assert artifact.policy_name == legacy.policy_name

    def test_forced_unroll_flows_through_options(self):
        artifact = PassManager().run(
            make_saxpy(), l0_config(8), CompileOptions(unroll_factor=1)
        )
        assert artifact.unroll_factor == 1
        assert artifact.body.unroll_factor == 1

    def test_misordered_pipeline_rejected_before_running(self):
        passes = list(DEFAULT_PIPELINE)
        passes.remove("mem-disambiguation")
        with pytest.raises(PassOrderError, match="dep_info"):
            PassManager(passes)

    def test_schedule_before_ddg_rejected(self):
        with pytest.raises(PassOrderError):
            PassManager(["select-unroll", "apply-unroll", "modulo-schedule"])

    def test_unknown_pass_rejected(self):
        with pytest.raises(PipelineError, match="unknown pass"):
            PassManager(["select-unroll", "no-such-pass"])

    def test_custom_pass_slots_in(self):
        seen = []
        probe = Pass(
            name="probe",
            run=lambda artifact: seen.append(artifact.unroll_factor),
            requires=("unroll_factor",),
        )
        passes = list(DEFAULT_PIPELINE)
        passes.insert(2, probe)
        artifact = PassManager(passes).run(make_dpcm(), unified_config())
        assert seen == [artifact.unroll_factor]
        assert "probe" in artifact.trace

    def test_compiled_requires_schedule(self):
        manager = PassManager(DEFAULT_PIPELINE[:2])
        artifact = manager.run(make_saxpy(), unified_config())
        with pytest.raises(PassOrderError):
            artifact.compiled()


class TestCacheKey:
    def test_stable_across_equal_values(self):
        assert cache_key("g721dec", l0_config(8), SimOptions()) == cache_key(
            "g721dec", l0_config(8), SimOptions()
        )

    def test_sensitive_to_benchmark_config_and_options(self):
        base = cache_key("g721dec", l0_config(8), SimOptions())
        assert cache_key("gsmdec", l0_config(8), SimOptions()) != base
        assert cache_key("g721dec", l0_config(4), SimOptions()) != base
        assert cache_key("g721dec", unified_config(), SimOptions()) != base
        assert (
            cache_key(
                "g721dec", l0_config(8), SimOptions(compile_kwargs={"allow_psr": True})
            )
            != base
        )

    def test_unbounded_l0_distinct_from_bounded(self):
        assert cache_key("rasta", l0_config(None), SimOptions()) != cache_key(
            "rasta", l0_config(16), SimOptions()
        )

    def test_execution_tuning_knobs_share_entries(self):
        """loop_workers / compile_cache_dir change how a run executes,
        never what it computes — they must not split cache keys."""
        base = cache_key("g721dec", l0_config(8), SimOptions())
        assert cache_key("g721dec", l0_config(8), SimOptions(loop_workers=4)) == base
        assert (
            cache_key(
                "g721dec", l0_config(8), SimOptions(compile_cache_dir="/tmp/x")
            )
            == base
        )


class TestResultCacheRoundTrip:
    def test_encode_decode_preserves_everything(self):
        request = RunRequest("g721dec", l0_config(8), FAST)
        result = SerialExecutor().map([request])[0]
        clone = decode_result(json.loads(json.dumps(encode_result(result))))
        assert result_fingerprint(clone) == result_fingerprint(result)
        assert clone.total_cycles == result.total_cycles
        assert clone.memory_stats.l0.hit_rate == result.memory_stats.l0.hit_rate
        assert clone.average_unroll_factor == result.average_unroll_factor

    def test_disk_store_survives_new_cache(self, tmp_path):
        request = RunRequest("gsmdec", unified_config(), FAST)
        session = Session(options=FAST, cache=ResultCache(tmp_path))
        first = session.run(request)
        assert session.simulations == 1

        reopened = Session(options=FAST, cache=ResultCache(tmp_path))
        second = reopened.run(request)
        assert reopened.simulations == 0
        assert reopened.cache_hits == 1
        assert result_fingerprint(second) == result_fingerprint(first)

    def test_clear_touches_only_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        session = Session(options=FAST, cache=cache)
        request = session.request("g721dec", l0_config(8))
        session.run(request)
        user_file = tmp_path / "user-data.json"
        user_file.write_text("{}")
        orphan_tmp = tmp_path / f".{'ab' * 32}.999.tmp"
        orphan_tmp.write_text("half-written")

        cache.clear()
        assert user_file.exists()  # unrelated files are never touched
        assert not orphan_tmp.exists()
        assert not (tmp_path / f"{request.key}.json").exists()
        assert ResultCache(tmp_path).get(request.key) is None

    def test_clear_tolerates_concurrently_removed_entries(self, tmp_path, monkeypatch):
        """Two processes clearing one directory race glob vs unlink."""
        from pathlib import Path

        cache = ResultCache(tmp_path)
        ghost = tmp_path / f"{'0' * 64}.json"  # matched but never created
        real_glob = Path.glob

        def racing_glob(self, pattern):
            results = list(real_glob(self, pattern))
            if pattern == "*.json":
                results.append(ghost)
            return results

        monkeypatch.setattr(Path, "glob", racing_glob)
        cache.clear()  # must not raise on the vanished entry

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        request = RunRequest("gsmdec", unified_config(), FAST)
        (tmp_path / f"{request.key}.json").write_text("{torn write")
        session = Session(options=FAST, cache=ResultCache(tmp_path))
        result = session.run(request)
        assert session.simulations == 1  # re-simulated, no crash
        assert result.total_cycles > 0
        # ... and the fresh result replaced the corrupt file on disk
        reopened = Session(options=FAST, cache=ResultCache(tmp_path))
        assert reopened.run(request).total_cycles == result.total_cycles
        assert reopened.simulations == 0


class TestSessionCaching:
    def test_hit_and_miss_semantics(self):
        session = Session(options=FAST)
        request = session.request("g721dec", l0_config(8))
        first = session.run(request)
        second = session.run(session.request("g721dec", l0_config(8)))
        assert session.simulations == 1
        assert second is first
        # re-reading the session's own product is not a "hit": cache_hits
        # counts only work a pre-existing cache entry avoided
        assert session.cache_hits == 0

    def test_run_many_dedupes_and_preserves_order(self):
        session = Session(options=FAST)
        a = session.request("g721dec", l0_config(8))
        b = session.request("gsmdec", l0_config(8))
        results = session.run_many([a, b, a])
        assert session.simulations == 2
        assert [r.benchmark for r in results] == ["g721dec", "gsmdec", "g721dec"]
        assert results[0] is results[2]

    def test_negative_workers_means_all_cores(self):
        from repro.pipeline import make_executor

        assert isinstance(make_executor(-1), ParallelExecutor)
        assert isinstance(make_executor(-2), ParallelExecutor)
        assert make_executor(-2).workers >= 1
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)


def _sweep_requests(options):
    return [
        RunRequest(name, config, options)
        for name in TWO_BENCHMARKS
        for config in (unified_config(), l0_config(8))
    ]


class TestExecutorParity:
    def test_serial_and_parallel_rows_byte_identical(self):
        requests = _sweep_requests(FAST)
        serial = SerialExecutor().map(requests)
        parallel = ParallelExecutor(2).map(requests)
        assert [result_fingerprint(r) for r in parallel] == [
            result_fingerprint(r) for r in serial
        ]

    def test_parallel_session_experiment_matches_serial(self):
        def rows(workers):
            ctx = ExperimentContext(
                options=FAST, benchmarks=TWO_BENCHMARKS, workers=workers
            )
            return fig5(ctx, sizes=(8,))

        serial, parallel = rows(None), rows(2)
        assert serial == parallel


class TestOptionsWith:
    def test_merges_compile_kwargs_and_keeps_other_knobs(self):
        ctx = ExperimentContext(
            options=SimOptions(
                sim_cap=99,
                selective_flush=True,
                compile_kwargs={"allow_psr": True},
            ),
            benchmarks=TWO_BENCHMARKS,
        )
        merged = ctx.options_with(prefetch_distance=2)
        assert merged.compile_kwargs == {"allow_psr": True, "prefetch_distance": 2}
        assert merged.sim_cap == 99
        assert merged.selective_flush is True
        # the context's own options are untouched
        assert ctx.options.compile_kwargs == {"allow_psr": True}


class TestExperimentContextIntegration:
    def test_repeated_experiments_resimulate_nothing(self):
        ctx = ExperimentContext(options=FAST, benchmarks=TWO_BENCHMARKS)
        fig5(ctx, sizes=(4, 8))
        first = ctx.session.simulations
        assert first > 0
        fig5(ctx, sizes=(4, 8))
        fig6(ctx)  # shares the l0-8 runs with fig5
        assert ctx.session.simulations == first

    def test_experiments_share_content_addressed_entries(self):
        ctx = ExperimentContext(options=FAST, benchmarks=("g721dec",))
        ctx.run("g721dec", "some-label", l0_config(8))
        before = ctx.session.simulations
        ctx.run("g721dec", "another-label", l0_config(8))
        assert ctx.session.simulations == before


class TestConfigFieldDeclarations:
    """Guard: every frontend pass declares its MachineConfig reads, and
    the declarations cover everything the pass actually touches (run
    against a read-tracing config)."""

    def test_every_frontend_pass_declares_config_fields(self):
        from repro.pipeline import FRONTEND_PIPELINE, get_pass

        for name in FRONTEND_PIPELINE:
            assert get_pass(name).config_fields is not None, (
                f"frontend pass {name!r} must declare config_fields"
            )

    def test_frontend_union_covers_core_not_backend_fields(self):
        from repro.pipeline import frontend_config_fields

        union = frontend_config_fields()
        assert "n_clusters" in union and "l1_latency" in union
        # Backend-only parameters must stay out, or Figure-5 sweeps stop
        # sharing their frontend artifacts across L0 sizes.
        assert "l0_entries" not in union and "n_buses" not in union

    @pytest.mark.parametrize("make_loop", [make_saxpy, make_dpcm])
    @pytest.mark.parametrize(
        "config", [l0_config(8), l0_config(4, n_clusters=2), unified_config()]
    )
    def test_frontend_reads_covered_by_declarations(self, make_loop, config):
        from repro.pipeline import FRONTEND_PIPELINE, get_pass, traced_config
        from repro.pipeline.artifact import CompilationArtifact

        traced, accessed = traced_config(config)
        artifact = CompilationArtifact(
            loop=make_loop(), config=traced, options=CompileOptions()
        )
        for name in FRONTEND_PIPELINE:
            p = get_pass(name)
            before = set(accessed)
            p(artifact)
            undeclared = (accessed - before) - set(p.config_fields)
            assert not undeclared, (
                f"pass {name!r} read undeclared config fields "
                f"{sorted(undeclared)}; add them to its config_fields "
                "declaration (they become part of the frontend cache key)"
            )

    def test_tracer_catches_an_undeclared_read(self):
        """The guard has teeth: a pass reading an undeclared field is
        visible in the trace."""
        from repro.pipeline import Pass, traced_config
        from repro.pipeline.artifact import CompilationArtifact

        rogue = Pass(
            name="rogue",
            run=lambda artifact: artifact.config.l0_entries,
            config_fields=(),
        )
        traced, accessed = traced_config(l0_config(8))
        artifact = CompilationArtifact(
            loop=make_saxpy(), config=traced, options=CompileOptions()
        )
        rogue(artifact)
        assert set(accessed) - set(rogue.config_fields) == {"l0_entries"}

    def test_register_pass_rejects_unknown_config_fields(self):
        from repro.pipeline import register_pass

        with pytest.raises(PipelineError, match="unknown config fields"):
            register_pass("bogus-fields", config_fields=("not_a_field",))(
                lambda artifact: None
            )

    def test_traced_config_is_functionally_identical(self):
        from repro.pipeline import traced_config

        config = l0_config(8)
        traced, accessed = traced_config(config)
        compiled_plain = compile_loop(make_saxpy(), config)
        artifact = PassManager().run(make_saxpy(), traced)
        assert artifact.schedule.ii == compiled_plain.schedule.ii
        assert accessed  # the compile really went through the tracer
