"""Unit tests for the ISA layer: hints, opcodes, registers, instructions."""

import pytest

from repro.isa import (
    AccessHint,
    AccessPattern,
    ArrayRef,
    BYPASS_HINTS,
    FUClass,
    HintBundle,
    Instruction,
    MapHint,
    Opcode,
    PatternKind,
    PrefetchHint,
    RegisterFactory,
    VReg,
)


class TestHintBundle:
    def test_default_bundle_bypasses_l0(self):
        assert not HintBundle().uses_l0
        assert BYPASS_HINTS.access is AccessHint.NO_ACCESS

    def test_seq_and_par_use_l0(self):
        assert HintBundle(access=AccessHint.SEQ_ACCESS).uses_l0
        assert HintBundle(access=AccessHint.PAR_ACCESS).uses_l0

    def test_replace_returns_modified_copy(self):
        original = HintBundle(access=AccessHint.PAR_ACCESS)
        changed = original.replace(prefetch=PrefetchHint.POSITIVE)
        assert changed.prefetch is PrefetchHint.POSITIVE
        assert changed.access is AccessHint.PAR_ACCESS
        assert original.prefetch is PrefetchHint.NONE

    def test_equality_and_hash(self):
        a = HintBundle(access=AccessHint.SEQ_ACCESS, mapping=MapHint.INTERLEAVED)
        b = HintBundle(access=AccessHint.SEQ_ACCESS, mapping=MapHint.INTERLEAVED)
        assert a == b
        assert hash(a) == hash(b)
        assert a != HintBundle()

    def test_prefetch_distance_participates_in_equality(self):
        a = HintBundle(prefetch_distance=1)
        b = HintBundle(prefetch_distance=2)
        assert a != b


class TestOpcodes:
    def test_memory_classification(self):
        assert Opcode.LOAD.is_memory and Opcode.LOAD.is_load
        assert Opcode.STORE.is_memory and Opcode.STORE.is_store
        assert Opcode.PREFETCH.is_memory
        assert Opcode.INVAL_L0.is_memory
        assert not Opcode.IADD.is_memory

    def test_fu_classes(self):
        assert Opcode.IADD.fu_class is FUClass.INT
        assert Opcode.FMUL.fu_class is FUClass.FP
        assert Opcode.LOAD.fu_class is FUClass.MEM
        assert Opcode.COMM.fu_class is FUClass.BUS
        assert Opcode.NOP.fu_class is FUClass.NONE

    def test_latencies_are_positive_for_alu_ops(self):
        for op in (Opcode.IADD, Opcode.IMUL, Opcode.FADD, Opcode.FDIV):
            assert op.default_latency >= 1

    def test_imul_slower_than_iadd(self):
        assert Opcode.IMUL.default_latency > Opcode.IADD.default_latency


class TestRegisters:
    def test_factory_ids_are_unique(self):
        factory = RegisterFactory()
        regs = factory.batch(10)
        assert len({r.rid for r in regs}) == 10

    def test_name_does_not_affect_equality(self):
        assert VReg(3, "a") == VReg(3, "b")
        assert VReg(3) != VReg(4)

    def test_repr_uses_name(self):
        assert repr(VReg(1, "acc")) == "%acc"
        assert repr(VReg(7)) == "%7"


class TestInstruction:
    def _pattern(self):
        return AccessPattern(ArrayRef("a", 64, 4))

    def test_load_requires_pattern(self):
        with pytest.raises(ValueError):
            Instruction(uid=0, opcode=Opcode.LOAD, dest=VReg(0))

    def test_store_cannot_produce_value(self):
        with pytest.raises(ValueError):
            Instruction(
                uid=0, opcode=Opcode.STORE, dest=VReg(0), pattern=self._pattern()
            )

    def test_origin_defaults_to_uid(self):
        instr = Instruction(uid=5, opcode=Opcode.IADD, dest=VReg(0))
        assert instr.origin == 5
        assert instr.copy_index == 0

    def test_access_width_comes_from_pattern(self):
        instr = Instruction(
            uid=0, opcode=Opcode.LOAD, dest=VReg(0), pattern=self._pattern()
        )
        assert instr.access_width == 4

    def test_identity_equality(self):
        a = Instruction(uid=0, opcode=Opcode.IADD, dest=VReg(0))
        b = Instruction(uid=0, opcode=Opcode.IADD, dest=VReg(0))
        assert a != b  # distinct schedulable units
        assert a == a


class TestAccessPattern:
    def test_strided_addresses(self):
        arr = ArrayRef("a", 100, 4)
        p = AccessPattern(arr, stride=2, offset=1)
        assert p.element_index(0) == 1
        assert p.element_index(3) == 7

    def test_wraparound(self):
        arr = ArrayRef("a", 8, 2)
        p = AccessPattern(arr, stride=1, offset=6)
        assert p.element_index(3) == 1  # (6 + 3) mod 8

    def test_negative_stride_wraps_positive(self):
        arr = ArrayRef("a", 8, 2)
        p = AccessPattern(arr, stride=-1, offset=0)
        assert p.element_index(1) == 7

    def test_random_is_deterministic_and_in_range(self):
        arr = ArrayRef("t", 977, 1)
        p = AccessPattern(arr, kind=PatternKind.RANDOM, seed=3)
        seq1 = [p.element_index(i) for i in range(50)]
        seq2 = [p.element_index(i) for i in range(50)]
        assert seq1 == seq2
        assert all(0 <= e < 977 for e in seq1)
        assert len(set(seq1)) > 10  # actually spreads out

    def test_unrolled_copy_strided(self):
        arr = ArrayRef("a", 1024, 2)
        p = AccessPattern(arr, stride=1, offset=0)
        copy2 = p.unrolled_copy(2, 4)
        assert copy2.offset == 2
        assert copy2.stride == 4
        # Copy k at iteration i touches what the original touched at 4i+k.
        assert copy2.element_index(5) == p.element_index(4 * 5 + 2)

    def test_unrolled_copy_random_gets_distinct_seed(self):
        arr = ArrayRef("t", 512, 1)
        p = AccessPattern(arr, kind=PatternKind.RANDOM, seed=1)
        c0, c1 = p.unrolled_copy(0, 4), p.unrolled_copy(1, 4)
        assert c0.seed != c1.seed

    def test_invalid_elem_size_rejected(self):
        with pytest.raises(ValueError):
            ArrayRef("a", 16, 3)

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            ArrayRef("a", 0, 4)
