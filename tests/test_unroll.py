"""Tests for loop unrolling."""

import pytest

from repro.ir import LoopBuilder, build_ddg, unroll
from repro.ir.unroll import stride_group
from repro.isa import MemoryLayout, Opcode
from repro.machine import unified_config

from repro.workloads.kernels import make_dpcm, make_saxpy


class TestUnrollStructure:
    def test_factor_one_is_identity(self, saxpy):
        assert unroll(saxpy, 1) is saxpy

    def test_body_size_and_trip(self, saxpy):
        wide = unroll(saxpy, 4)
        assert len(wide.body) == 4 * len(saxpy.body)
        assert wide.trip_count == saxpy.trip_count // 4
        assert wide.unroll_factor == 4

    def test_double_unroll_rejected(self, saxpy):
        with pytest.raises(ValueError):
            unroll(unroll(saxpy, 2), 2)

    def test_origins_and_copy_indices(self, saxpy):
        wide = unroll(saxpy, 4)
        for instr in wide.body:
            assert 0 <= instr.copy_index < 4
            assert instr.origin in {i.uid for i in saxpy.body}

    def test_defs_renamed_per_copy(self, saxpy):
        wide = unroll(saxpy, 4)
        defs = [i.dest for i in wide.body if i.dest is not None]
        assert len(defs) == len(set(defs))

    def test_unrolled_loop_validates(self, saxpy):
        wide = unroll(saxpy, 4)
        build_ddg(wide, unified_config())  # raises on inconsistency


class TestUnrollSemantics:
    def test_access_streams_partition_original(self, saxpy):
        """The union of unrolled copies' addresses equals the original's."""
        layout = MemoryLayout()
        for arr in saxpy.arrays:
            layout.add(arr)
        wide = unroll(saxpy, 4)
        orig = saxpy.loads[0]
        copies = [i for i in wide.body if i.origin == orig.uid]
        assert len(copies) == 4
        original_addrs = {orig.pattern.address(i, layout) for i in range(16)}
        unrolled_addrs = {
            c.pattern.address(i, layout) for c in copies for i in range(4)
        }
        assert unrolled_addrs == original_addrs

    def test_loop_carried_use_reads_previous_copy(self):
        from repro.isa import Opcode

        b = LoopBuilder("acc", trip_count=8)
        arr = b.array("x", 64, 4)
        v = b.load(arr, stride=1)
        acc = b.accumulate(Opcode.IADD, v)
        loop = b.build()
        wide = unroll(loop, 4)
        accs = [i for i in wide.body if i.opcode is Opcode.IADD and i.copy_index > 0]
        # Copy k's accumulator reads copy k-1's accumulator def.
        defs = wide.defs
        for instr in accs:
            producers = [defs[s] for s in instr.srcs if s in defs]
            acc_producers = [p for p in producers if p.opcode is Opcode.IADD]
            assert len(acc_producers) == 1
            assert acc_producers[0].copy_index == instr.copy_index - 1

    def test_copy_zero_reads_last_copy_across_iterations(self):
        from repro.isa import Opcode

        b = LoopBuilder("acc", trip_count=8)
        arr = b.array("x", 64, 4)
        v = b.load(arr, stride=1)
        b.accumulate(Opcode.IADD, v)
        wide = unroll(b.build(), 4)
        ddg = build_ddg(wide, unified_config())
        carried = [
            e
            for e in ddg.reg_edges()
            if e.distance == 1 and ddg.instruction(e.src).opcode is Opcode.IADD
        ]
        assert carried
        for edge in carried:
            assert ddg.instruction(edge.src).copy_index == 3
            assert ddg.instruction(edge.dst).copy_index == 0

    def test_recurrence_distance_preserved_per_original_iteration(self, dpcm):
        """Unrolling a distance-1 recurrence gives a chain through copies."""
        wide = unroll(dpcm, 4)
        ddg = build_ddg(wide, unified_config())
        # Feasibility: recurrence cycle latency scales with the factor,
        # so RecMII(unrolled) == 4 * RecMII(original) and per-original-
        # iteration cost is unchanged.
        narrow = build_ddg(dpcm, unified_config())
        lat = lambda uid: 6  # noqa: E731
        from repro.scheduler import rec_mii

        assert rec_mii(ddg, lat) == 4 * rec_mii(narrow, lat)


class TestStrideGroups:
    def test_group_members_sorted_by_copy(self, saxpy):
        wide = unroll(saxpy, 4)
        first = next(i for i in wide.body if i.is_load)
        group = stride_group(wide, first)
        assert len(group) == 4
        assert [g.copy_index for g in group] == [0, 1, 2, 3]
        assert len({g.origin for g in group}) == 1
