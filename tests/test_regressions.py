"""Regression tests for specific bugs found while building the system.

Each test pins the *mechanism* of a bug that once produced wrong
schedules, crashes or non-terminating searches.
"""

import pytest

from repro.ir import LoopBuilder, build_ddg, unroll
from repro.machine import l0_config, unified_config
from repro.scheduler import compile_loop
from repro.workloads import random_loop


def test_unroll_factor_one_on_already_unrolled_loop():
    """unroll(loop, 1) must be the identity even for unrolled loops."""
    b = LoopBuilder("l", trip_count=8)
    arr = b.array("a", 64, 4)
    b.load(arr, stride=1)
    wide = unroll(b.build(), 4)
    assert unroll(wide, 1) is wide


def test_diamond_with_long_latencies_schedules():
    """ASAP clamping: a short path must not pin the long path's window.

    A -> X -> S (loads, latency 6) in parallel with A -> Y -> S
    (1-cycle ALU): placing S right after Y used to wedge X forever.
    """
    b = LoopBuilder("diamond", trip_count=16)
    arr = b.array("a", 512, 4)
    out = b.array("o", 512, 4)
    k = b.live_in("k")
    a = b.load(arr, stride=1, offset=0, tag="A")
    x = b.load(arr, stride=2, offset=1, tag="X", addr_src=a)
    y = b.iadd(a, k, tag="Y")
    s = b.iadd(x, y, tag="S")
    b.store(out, s, stride=1)
    compiled = compile_loop(b.build(), unified_config(), unroll_factor=1)
    assert compiled.schedule.validate(compiled.ddg) == []


def test_multiple_edges_between_same_pair_dedup_in_ejection():
    """REG+MEM edges between one pair used to double-eject and crash."""
    b = LoopBuilder("dual", trip_count=16)
    arr = b.array("a", 512, 4)
    v = b.load(arr, stride=1, offset=0, tag="ld")
    # Store consumes the load's value AND aliases it: two edges.
    b.store(arr, v, stride=1, offset=0, tag="st")
    for _ in range(3):
        v = b.iadd(v, b.live_in("k"))
    compiled = compile_loop(b.build(), l0_config(8))
    assert compiled.schedule.validate(compiled.ddg) == []


@pytest.mark.parametrize("seed", [0, 6, 10, 14, 15, 16, 21, 28, 46, 50])
def test_historically_unschedulable_seeds(seed):
    """Dense random loops that once exhausted the II search."""
    loop = random_loop(seed)
    for config in (unified_config(), l0_config(8)):
        compiled = compile_loop(loop, config)
        assert compiled.schedule.validate(compiled.ddg) == []


def test_inplace_stream_has_no_spurious_recurrence():
    """y[i] = f(y[i]) used to get a conservative distance-1 RAW edge
    limiting the II to the full load-use cycle."""
    from repro.scheduler import rec_mii

    b = LoopBuilder("inplace", trip_count=16)
    y = b.array("y", 512, 4)
    v = b.load(y, stride=1, offset=0)
    w = b.iadd(v, b.live_in("k"))
    b.store(y, w, stride=1, offset=0)
    ddg = build_ddg(b.build(), unified_config())
    assert rec_mii(ddg, lambda uid: 6) == 1


def test_prefetch_not_queued_on_busy_bus():
    """Hint prefetches on a saturated bus are dropped, not queued —
    queued prefetches once grew the bus backlog without bound."""
    from repro.isa import AccessHint, HintBundle, PrefetchHint
    from repro.memory import UnifiedMemory

    mem = UnifiedMemory(l0_config(8))
    hints = HintBundle(access=AccessHint.PAR_ACCESS, prefetch=PrefetchHint.POSITIVE)
    mem.load(0, 0x100, 4, hints, cycle=0)
    for cycle in range(25, 40):
        mem.buses[0].grant(cycle)
    mem.load(0, 0x104, 4, hints, cycle=30)  # trigger on a busy bus
    assert mem.stats.dropped_prefetches >= 1


def test_seq_access_miss_request_uses_next_cycle():
    """SEQ misses must issue at t+1 (the compiler-guaranteed free slot),
    not at t (which would race the issuing memory op's own bus slot)."""
    from repro.isa import AccessHint, HintBundle
    from repro.memory import UnifiedMemory

    mem = UnifiedMemory(l0_config(8))
    mem.l1.load(0x200)  # warm L1
    ready = mem.load(0, 0x200, 4, HintBundle(access=AccessHint.SEQ_ACCESS), cycle=10)
    assert ready == 11 + 6


def test_negative_offset_modulo_rows():
    """Bottom-up placements may land at negative cycles before
    normalisation; reservation rows must wrap correctly."""
    from repro.machine import ResourceModel
    from repro.scheduler import ModuloReservationTable
    from repro.isa import FUClass

    mrt = ModuloReservationTable(3, ResourceModel(unified_config()))
    mrt.fu_place(-2, FUClass.INT, 0)  # row 1
    assert not mrt.fu_can_place(1, FUClass.INT, 0)
    assert not mrt.fu_can_place(4, FUClass.INT, 0)


def test_schedule_start_times_normalized():
    """Whatever the internal placement order, published schedules start
    at cycle zero."""
    for seed in (1, 5, 9):
        compiled = compile_loop(random_loop(seed), l0_config(8))
        times = [op.start for op in compiled.schedule.all_placed_ops()]
        times += [c.start for c in compiled.schedule.comms]
        assert min(times) == 0
