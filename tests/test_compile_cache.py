"""Tests for the compile-artifact cache (pipeline/compilecache.py)."""

import pickle

import pytest

from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.pipeline import (
    CompileOptions,
    CompiledLoopCache,
    PassManager,
    compile_cached,
    compile_key,
    frontend_key,
)
from repro.scheduler import compile_loop
from repro.sim import LoopExecutor, make_memory
from repro.workloads.kernels import make_dpcm, make_saxpy

FIG5_SIZES = (4, 8, 16, None)


def _simulate(compiled, config, iterations=64):
    memory = make_memory(config)
    layout = MemoryLayout(align=config.l1_block)
    executor = LoopExecutor(compiled, memory, layout)
    return executor.run(iterations)


class TestKeys:
    def test_full_key_stable_across_equal_inputs(self):
        assert compile_key(
            make_saxpy(), l0_config(8), CompileOptions()
        ) == compile_key(make_saxpy(), l0_config(8), CompileOptions())

    def test_full_key_sensitive_to_loop_config_and_options(self):
        base = compile_key(make_saxpy(), l0_config(8), CompileOptions())
        assert compile_key(make_dpcm(), l0_config(8), CompileOptions()) != base
        assert compile_key(make_saxpy(), l0_config(4), CompileOptions()) != base
        assert (
            compile_key(make_saxpy(), l0_config(8), CompileOptions(allow_psr=True))
            != base
        )

    def test_frontend_key_shared_across_backend_parameters(self):
        """The unroll/memdep/DDG prefix does not read the memory system:
        every Figure-5 L0 size — and the unified baseline — share it."""
        base = frontend_key(make_saxpy(), l0_config(8), CompileOptions())
        for entries in (4, 16, None):
            key = frontend_key(make_saxpy(), l0_config(entries), CompileOptions())
            assert key == base
        assert frontend_key(make_saxpy(), unified_config(), CompileOptions()) == base

    def test_scheduler_participates_in_full_key(self):
        """SMS and exact artifacts must never collide in the cache."""
        base = compile_key(make_saxpy(), l0_config(8), CompileOptions())
        assert base == compile_key(
            make_saxpy(), l0_config(8), CompileOptions(scheduler="sms")
        )
        assert (
            compile_key(make_saxpy(), l0_config(8), CompileOptions(scheduler="exact"))
            != base
        )
        # The exact backend's budget knobs are options like any other.
        assert compile_key(
            make_saxpy(),
            l0_config(8),
            CompileOptions(scheduler="exact", exact_node_budget=7),
        ) != compile_key(
            make_saxpy(), l0_config(8), CompileOptions(scheduler="exact")
        )

    def test_scheduler_does_not_split_the_frontend(self):
        """Both schedulers resume over one shared frontend artifact."""
        base = frontend_key(make_saxpy(), l0_config(8), CompileOptions())
        assert (
            frontend_key(make_saxpy(), l0_config(8), CompileOptions(scheduler="exact"))
            == base
        )

    def test_frontend_key_sensitive_to_core_parameters(self):
        base = frontend_key(make_saxpy(), l0_config(8), CompileOptions())
        assert (
            frontend_key(make_saxpy(), l0_config(8, n_clusters=2), CompileOptions())
            != base
        )
        assert (
            frontend_key(make_saxpy(), l0_config(8, l1_latency=9), CompileOptions())
            != base
        )
        assert (
            frontend_key(
                make_saxpy(), l0_config(8), CompileOptions(unroll_factor=1)
            )
            != base
        )


class TestCacheSemantics:
    def test_fig5_sweep_compiles_frontend_once(self):
        cache = CompiledLoopCache()
        for entries in FIG5_SIZES:
            compile_cached(make_saxpy(), l0_config(entries), cache=cache)
        assert cache.stats.frontend_misses == 1
        assert cache.stats.frontend_hits == len(FIG5_SIZES) - 1
        assert cache.stats.full_misses == len(FIG5_SIZES)

    def test_repeated_sweep_recompiles_nothing(self):
        cache = CompiledLoopCache()
        for entries in FIG5_SIZES:
            compile_cached(make_saxpy(), l0_config(entries), cache=cache)
        compilations = cache.stats.compilations
        frontend_misses = cache.stats.frontend_misses
        for entries in FIG5_SIZES:
            compile_cached(make_saxpy(), l0_config(entries), cache=cache)
        assert cache.stats.compilations == compilations
        assert cache.stats.frontend_misses == frontend_misses
        assert cache.stats.full_hits == len(FIG5_SIZES)

    def test_sms_and_exact_share_one_frontend_entry(self):
        """A scheduler sweep behaves like a Figure-5 sweep: one frontend
        compilation, one backend compilation per scheduler, and a repeat
        of either scheduler recompiles nothing."""
        cache = CompiledLoopCache()
        loop = make_dpcm()
        config = l0_config(8)
        sms = compile_cached(loop, config, CompileOptions(scheduler="sms"), cache=cache)
        assert (cache.stats.frontend_misses, cache.stats.full_misses) == (1, 1)
        exact = compile_cached(
            loop, config, CompileOptions(scheduler="exact"), cache=cache
        )
        assert cache.stats.frontend_misses == 1  # shared frontend entry
        assert cache.stats.frontend_hits == 1
        assert cache.stats.full_misses == 2  # distinct backend artifacts
        assert cache.stats.full_hits == 0
        # Artifacts really are the two different backends' outputs.
        assert sms.schedule.meta["scheduler"] == "sms"
        assert exact.schedule.meta["scheduler"] == "exact"
        assert exact.ii <= sms.ii
        # Repeats of both are pure full-layer hits.
        compile_cached(loop, config, CompileOptions(scheduler="sms"), cache=cache)
        compile_cached(loop, config, CompileOptions(scheduler="exact"), cache=cache)
        assert cache.stats.full_hits == 2
        assert cache.stats.full_misses == 2
        assert cache.stats.frontend_misses == 1

    def test_time_budgeted_compiles_bypass_the_full_layer(self):
        """A wall-clock budget makes the exact backend's output depend on
        machine load; such artifacts must never be cached (frontend
        products are deterministic and stay shared)."""
        cache = CompiledLoopCache()
        options = CompileOptions(scheduler="exact", exact_time_budget_s=1e6)
        first = compile_cached(make_saxpy(), l0_config(8), options, cache=cache)
        again = compile_cached(make_saxpy(), l0_config(8), options, cache=cache)
        assert cache.stats.full_hits == 0
        assert cache.stats.compilations == 2  # recompiled both times
        assert cache.stats.frontend_misses == 1  # frontend still shared
        assert first.ii == again.ii
        assert again.schedule.validate(again.ddg) == []

    def test_time_budget_under_sms_stays_cacheable(self):
        """The SMS backend never reads the wall-clock knob, so it keeps
        full caching even when the knob is set (e.g. a sweep flipping
        only the scheduler field)."""
        cache = CompiledLoopCache()
        options = CompileOptions(scheduler="sms", exact_time_budget_s=5.0)
        compile_cached(make_saxpy(), l0_config(8), options, cache=cache)
        compile_cached(make_saxpy(), l0_config(8), options, cache=cache)
        assert cache.stats.compilations == 1
        assert cache.stats.full_hits == 1

    def test_unknown_scheduler_fails_fast(self):
        from repro.pipeline import PipelineError

        with pytest.raises(PipelineError, match="unknown scheduler"):
            compile_cached(
                make_saxpy(),
                l0_config(8),
                CompileOptions(scheduler="smt"),
                cache=CompiledLoopCache(),
            )

    def test_default_pipeline_rejects_foreign_scheduler_request(self):
        """PassManager(DEFAULT_PIPELINE) runs the SMS pass; options
        requesting the exact backend must error, not silently get SMS."""
        from repro.pipeline import PipelineError

        with pytest.raises(PipelineError, match="backend_pipeline"):
            PassManager().run(
                make_saxpy(), l0_config(8), CompileOptions(scheduler="exact")
            )

    def test_hit_matches_fresh_compilation(self):
        cache = CompiledLoopCache()
        first = compile_cached(make_dpcm(), l0_config(8), cache=cache)
        hit = compile_cached(make_dpcm(), l0_config(8), cache=cache)
        assert hit.ii == first.ii
        assert hit.unroll_factor == first.unroll_factor
        assert hit.policy_name == first.policy_name
        assert hit.schedule.validate(hit.ddg) == []

    def test_hits_hand_out_private_objects(self):
        """Mutating a served artifact must not poison the cache (the
        schedule-validation tests corrupt schedules on purpose)."""
        cache = CompiledLoopCache()
        first = compile_cached(make_saxpy(), unified_config(), cache=cache)
        uid = next(iter(first.schedule.placed))
        del first.schedule.placed[uid]  # corrupt the caller's copy
        again = compile_cached(make_saxpy(), unified_config(), cache=cache)
        assert again.schedule.validate(again.ddg) == []

    def test_compile_loop_wrapper_equivalent_to_pass_manager(self):
        loop = make_saxpy()
        config = l0_config(8)
        artifact = PassManager().run(loop, config)
        compiled = compile_loop(loop, config)
        assert compiled.schedule.ii == artifact.schedule.ii
        assert compiled.unroll_factor == artifact.unroll_factor
        assert compiled.policy_name == artifact.policy_name


class TestSerialisationRoundTrip:
    def test_pickle_round_trip_simulates_identically(self):
        config = l0_config(8)
        compiled = compile_cached(make_dpcm(), config, cache=CompiledLoopCache())
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.ii == compiled.ii
        assert clone.unroll_factor == compiled.unroll_factor
        assert clone.schedule.validate(clone.ddg) == []
        a = _simulate(compiled, config)
        b = _simulate(clone, config)
        assert (a.compute_cycles, a.stall_cycles, a.late_loads) == (
            b.compute_cycles,
            b.stall_cycles,
            b.late_loads,
        )

    def test_disk_store_survives_new_cache(self, tmp_path):
        config = l0_config(8)
        warm = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), config, cache=warm)
        assert warm.stats.compilations == 1

        reopened = CompiledLoopCache(tmp_path)
        compiled = compile_cached(make_saxpy(), config, cache=reopened)
        assert reopened.stats.compilations == 0
        assert reopened.stats.full_hits == 1
        assert compiled.schedule.validate(compiled.ddg) == []

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        config = l0_config(8)
        key = compile_key(make_saxpy(), config, CompileOptions())
        (tmp_path / f"{key}.pkl").write_bytes(b"torn write")
        cache = CompiledLoopCache(tmp_path)
        compiled = compile_cached(make_saxpy(), config, cache=cache)
        assert cache.stats.compilations == 1  # recompiled, no crash
        assert compiled.schedule.validate(compiled.ddg) == []
        # ... and the fresh artifact replaced the corrupt file
        reopened = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), config, cache=reopened)
        assert reopened.stats.compilations == 0

    def test_clear_touches_only_cache_entries(self, tmp_path):
        cache = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), l0_config(8), cache=cache)
        user_file = tmp_path / "notes.pkl"
        user_file.write_bytes(b"mine")
        cache.clear()
        assert user_file.exists()
        assert not list(tmp_path.glob("[0-9a-f]" * 8 + "*.pkl"))
        reopened = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), l0_config(8), cache=reopened)
        assert reopened.stats.compilations == 1
