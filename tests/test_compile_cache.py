"""Tests for the compile-artifact cache (pipeline/compilecache.py)."""

import pickle

import pytest

from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.pipeline import (
    CompileOptions,
    CompiledLoopCache,
    PassManager,
    compile_cached,
    compile_key,
    frontend_key,
)
from repro.scheduler import compile_loop
from repro.sim import LoopExecutor, make_memory
from repro.workloads.kernels import make_dpcm, make_saxpy

FIG5_SIZES = (4, 8, 16, None)


def _simulate(compiled, config, iterations=64):
    memory = make_memory(config)
    layout = MemoryLayout(align=config.l1_block)
    executor = LoopExecutor(compiled, memory, layout)
    return executor.run(iterations)


class TestKeys:
    def test_full_key_stable_across_equal_inputs(self):
        assert compile_key(
            make_saxpy(), l0_config(8), CompileOptions()
        ) == compile_key(make_saxpy(), l0_config(8), CompileOptions())

    def test_full_key_sensitive_to_loop_config_and_options(self):
        base = compile_key(make_saxpy(), l0_config(8), CompileOptions())
        assert compile_key(make_dpcm(), l0_config(8), CompileOptions()) != base
        assert compile_key(make_saxpy(), l0_config(4), CompileOptions()) != base
        assert (
            compile_key(make_saxpy(), l0_config(8), CompileOptions(allow_psr=True))
            != base
        )

    def test_frontend_key_shared_across_backend_parameters(self):
        """The unroll/memdep/DDG prefix does not read the memory system:
        every Figure-5 L0 size — and the unified baseline — share it."""
        base = frontend_key(make_saxpy(), l0_config(8), CompileOptions())
        for entries in (4, 16, None):
            assert frontend_key(make_saxpy(), l0_config(entries), CompileOptions()) == base
        assert frontend_key(make_saxpy(), unified_config(), CompileOptions()) == base

    def test_frontend_key_sensitive_to_core_parameters(self):
        base = frontend_key(make_saxpy(), l0_config(8), CompileOptions())
        assert (
            frontend_key(make_saxpy(), l0_config(8, n_clusters=2), CompileOptions())
            != base
        )
        assert (
            frontend_key(make_saxpy(), l0_config(8, l1_latency=9), CompileOptions())
            != base
        )
        assert (
            frontend_key(
                make_saxpy(), l0_config(8), CompileOptions(unroll_factor=1)
            )
            != base
        )


class TestCacheSemantics:
    def test_fig5_sweep_compiles_frontend_once(self):
        cache = CompiledLoopCache()
        for entries in FIG5_SIZES:
            compile_cached(make_saxpy(), l0_config(entries), cache=cache)
        assert cache.stats.frontend_misses == 1
        assert cache.stats.frontend_hits == len(FIG5_SIZES) - 1
        assert cache.stats.full_misses == len(FIG5_SIZES)

    def test_repeated_sweep_recompiles_nothing(self):
        cache = CompiledLoopCache()
        for entries in FIG5_SIZES:
            compile_cached(make_saxpy(), l0_config(entries), cache=cache)
        compilations = cache.stats.compilations
        frontend_misses = cache.stats.frontend_misses
        for entries in FIG5_SIZES:
            compile_cached(make_saxpy(), l0_config(entries), cache=cache)
        assert cache.stats.compilations == compilations
        assert cache.stats.frontend_misses == frontend_misses
        assert cache.stats.full_hits == len(FIG5_SIZES)

    def test_hit_matches_fresh_compilation(self):
        cache = CompiledLoopCache()
        first = compile_cached(make_dpcm(), l0_config(8), cache=cache)
        hit = compile_cached(make_dpcm(), l0_config(8), cache=cache)
        assert hit.ii == first.ii
        assert hit.unroll_factor == first.unroll_factor
        assert hit.policy_name == first.policy_name
        assert hit.schedule.validate(hit.ddg) == []

    def test_hits_hand_out_private_objects(self):
        """Mutating a served artifact must not poison the cache (the
        schedule-validation tests corrupt schedules on purpose)."""
        cache = CompiledLoopCache()
        first = compile_cached(make_saxpy(), unified_config(), cache=cache)
        uid = next(iter(first.schedule.placed))
        del first.schedule.placed[uid]  # corrupt the caller's copy
        again = compile_cached(make_saxpy(), unified_config(), cache=cache)
        assert again.schedule.validate(again.ddg) == []

    def test_compile_loop_wrapper_equivalent_to_pass_manager(self):
        loop = make_saxpy()
        config = l0_config(8)
        artifact = PassManager().run(loop, config)
        compiled = compile_loop(loop, config)
        assert compiled.schedule.ii == artifact.schedule.ii
        assert compiled.unroll_factor == artifact.unroll_factor
        assert compiled.policy_name == artifact.policy_name


class TestSerialisationRoundTrip:
    def test_pickle_round_trip_simulates_identically(self):
        config = l0_config(8)
        compiled = compile_cached(make_dpcm(), config, cache=CompiledLoopCache())
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.ii == compiled.ii
        assert clone.unroll_factor == compiled.unroll_factor
        assert clone.schedule.validate(clone.ddg) == []
        a = _simulate(compiled, config)
        b = _simulate(clone, config)
        assert (a.compute_cycles, a.stall_cycles, a.late_loads) == (
            b.compute_cycles,
            b.stall_cycles,
            b.late_loads,
        )

    def test_disk_store_survives_new_cache(self, tmp_path):
        config = l0_config(8)
        warm = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), config, cache=warm)
        assert warm.stats.compilations == 1

        reopened = CompiledLoopCache(tmp_path)
        compiled = compile_cached(make_saxpy(), config, cache=reopened)
        assert reopened.stats.compilations == 0
        assert reopened.stats.full_hits == 1
        assert compiled.schedule.validate(compiled.ddg) == []

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        config = l0_config(8)
        key = compile_key(make_saxpy(), config, CompileOptions())
        (tmp_path / f"{key}.pkl").write_bytes(b"torn write")
        cache = CompiledLoopCache(tmp_path)
        compiled = compile_cached(make_saxpy(), config, cache=cache)
        assert cache.stats.compilations == 1  # recompiled, no crash
        assert compiled.schedule.validate(compiled.ddg) == []
        # ... and the fresh artifact replaced the corrupt file
        reopened = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), config, cache=reopened)
        assert reopened.stats.compilations == 0

    def test_clear_touches_only_cache_entries(self, tmp_path):
        cache = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), l0_config(8), cache=cache)
        user_file = tmp_path / "notes.pkl"
        user_file.write_bytes(b"mine")
        cache.clear()
        assert user_file.exists()
        assert not list(tmp_path.glob("[0-9a-f]" * 8 + "*.pkl"))
        reopened = CompiledLoopCache(tmp_path)
        compile_cached(make_saxpy(), l0_config(8), cache=reopened)
        assert reopened.stats.compilations == 1
