"""Tests for MemoryLayout and the machine configuration layer."""

import pytest

from repro.isa import AccessPattern, ArrayRef, FUClass, MemoryLayout, Opcode
from repro.machine import (
    ArchKind,
    BUS,
    ClusterResource,
    MachineConfig,
    ResourceModel,
    interleaved_config,
    l0_config,
    multivliw_config,
    unified_config,
)


class TestMemoryLayout:
    def test_bases_are_block_aligned(self):
        layout = MemoryLayout(align=32)
        for idx, n in enumerate([7, 100, 33]):
            base = layout.add(ArrayRef(f"a{idx}", n, 2))
            assert base % 32 == 0

    def test_arrays_do_not_overlap(self):
        layout = MemoryLayout(align=32)
        a = ArrayRef("a", 100, 4)
        b = ArrayRef("b", 50, 2)
        base_a = layout.add(a)
        base_b = layout.add(b)
        assert base_b >= base_a + a.size_bytes

    def test_add_is_idempotent(self):
        layout = MemoryLayout()
        a = ArrayRef("a", 10, 4)
        assert layout.add(a) == layout.add(a)

    def test_conflicting_redefinition_rejected(self):
        layout = MemoryLayout()
        layout.add(ArrayRef("a", 10, 4))
        with pytest.raises(ValueError):
            layout.add(ArrayRef("a", 20, 4))

    def test_missing_array_raises(self):
        layout = MemoryLayout()
        with pytest.raises(KeyError):
            layout.base_of(ArrayRef("ghost", 4, 4))

    def test_pattern_address_uses_layout(self):
        layout = MemoryLayout(align=32, start=0x2000)
        arr = ArrayRef("a", 64, 4)
        layout.add(arr)
        p = AccessPattern(arr, stride=1, offset=3)
        assert p.address(0, layout) == 0x2000 + 12

    def test_non_power_of_two_alignment_rejected(self):
        with pytest.raises(ValueError):
            MemoryLayout(align=24)


class TestMachineConfig:
    def test_table2_defaults(self):
        cfg = l0_config(8)
        assert cfg.n_clusters == 4
        assert cfg.l0_latency == 1
        assert cfg.l1_latency == 6
        assert cfg.l1_size == 8 * 1024
        assert cfg.l1_assoc == 2
        assert cfg.l1_block == 32
        assert cfg.l2_latency == 10
        assert cfg.n_buses == 4
        assert cfg.bus_latency == 2
        assert cfg.subblock_bytes == 8  # 32-byte block / 4 clusters

    def test_arch_factories(self):
        assert unified_config().arch is ArchKind.UNIFIED
        assert l0_config().arch is ArchKind.L0
        assert multivliw_config().arch is ArchKind.MULTIVLIW
        assert interleaved_config().arch is ArchKind.INTERLEAVED

    def test_unbounded_l0(self):
        assert l0_config(None).l0_entries is None

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            l0_config(0)

    def test_block_must_divide_into_subblocks(self):
        with pytest.raises(ValueError):
            MachineConfig(n_clusters=3, l1_block=32)

    def test_with_l0_entries(self):
        cfg = l0_config(8).with_l0_entries(4)
        assert cfg.l0_entries == 4
        assert cfg.arch is ArchKind.L0

    def test_latency_lookup(self):
        cfg = unified_config()
        assert cfg.latency_of(Opcode.IADD) == 1
        assert cfg.latency_of(Opcode.FDIV) == 8


class TestResourceModel:
    def test_capacities(self):
        model = ResourceModel(l0_config())
        assert model.capacity(BUS) == 4
        assert model.capacity(ClusterResource(FUClass.INT, 0)) == 1
        assert model.capacity(ClusterResource(FUClass.MEM, 3)) == 1

    def test_total_fu_slots(self):
        model = ResourceModel(l0_config())
        assert model.total_fu_slots(FUClass.MEM) == 4

    def test_fu_resource_validation(self):
        model = ResourceModel(l0_config())
        with pytest.raises(ValueError):
            model.fu_resource(FUClass.BUS, 0)
        with pytest.raises(ValueError):
            model.fu_resource(FUClass.INT, 9)

    def test_unknown_resource_has_zero_capacity(self):
        model = ResourceModel(l0_config())
        assert model.capacity("nonsense") == 0
