"""Tests for the three-phase program runner and the selective-flush fixes."""

from repro.ir import LoopBuilder
from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.pipeline import result_fingerprint
from repro.scheduler import compile_loop
from repro.sim import (
    INVALIDATE_OVERHEAD,
    SimOptions,
    invocation_flush_needed,
    make_memory,
    plan_program,
    run_loop,
    run_program,
)
from repro.workloads import Benchmark, LoopSpec, build, kernels


def _loop(name, *, loads=(), stores=(), trip=64, n=256):
    """A loop loading from ``loads`` arrays and storing to ``stores``."""
    b = LoopBuilder(name, trip_count=trip)
    k = b.live_in("k")
    acc = k
    for array_name in loads:
        arr = b.array(array_name, n, 4)
        acc = b.iadd(acc, b.load(arr, stride=1))
    for array_name in stores:
        arr = b.array(array_name, n, 4)
        b.store(arr, acc, stride=1)
    return b.build()


class TestInvocationFlushPredicate:
    def test_streaming_loop_keeps_buffers_warm(self):
        """Loads and stores over disjoint arrays: nothing the loop reads
        can go stale between its own invocations (the old code compared
        the loop against itself and flushed every storing loop)."""
        assert not invocation_flush_needed(_loop("s", loads=("a",), stores=("o",)))

    def test_read_only_loop_keeps_buffers_warm(self):
        assert not invocation_flush_needed(_loop("r", loads=("t",), stores=()))

    def test_in_place_loop_flushes(self):
        assert invocation_flush_needed(_loop("w", loads=("x",), stores=("x",)))

    def test_aliased_arrays_flush(self):
        b = LoopBuilder("alias", trip_count=32)
        src = b.array("src", 256, 4)
        dst = b.array("dst", 256, 4)
        b.store(dst, b.iadd(b.load(src, stride=1), b.live_in("k")), stride=1)
        b.alias(src, dst)
        assert invocation_flush_needed(b.build())


class TestPlanProgram:
    def _bench(self, loops, invocations=None):
        invocations = invocations or [1] * len(loops)
        return Benchmark(
            name="plantest",
            loops=tuple(LoopSpec(l, i) for l, i in zip(loops, invocations)),
        )

    def test_conservative_policy_always_flushes(self):
        bench = self._bench([_loop("a", loads=("x",), stores=("y",))])
        (plan,) = plan_program(bench, l0_config(8), SimOptions())
        assert plan.flush_between and plan.flush_after

    def test_selective_flush_uses_reuse_pattern_not_self_comparison(self):
        bench = self._bench(
            [_loop("stream", loads=("a",), stores=("o",))], invocations=[4]
        )
        (plan,) = plan_program(
            bench, l0_config(8), SimOptions(selective_flush=True)
        )
        assert not plan.flush_between  # the old self-comparison forced True
        assert plan.flush_after  # program exit always flushes

    def test_unflushed_bookkeeping_tracks_older_resident_loops(self):
        """A single-invocation loop with a between-flush policy performs
        no flush: older loops stay resident and must still be checked.

        A stores X; B is in-place on Y (between-flush policy, but only
        one invocation, so nothing is flushed); C reads Z only.  D then
        loads X, so the flush decision at C must still see A resident —
        the old bookkeeping reset ``unflushed`` to [B] and let D read
        A's stale entries.
        """
        a = _loop("a", loads=("w",), stores=("x",))
        bloop = _loop("b", loads=("y",), stores=("y",))
        c = _loop("c", loads=("z",), stores=("c_out",))
        d = _loop("d", loads=("x",), stores=("d_out",))
        bench = self._bench([a, bloop, c, d])
        plans = plan_program(bench, l0_config(8), SimOptions(selective_flush=True))
        assert not plans[0].flush_after  # A vs B: disjoint
        assert not plans[1].flush_after  # {A,B} vs C: disjoint
        assert plans[2].flush_after  # {A,B,C} vs D: A stored X, D loads X

    def test_layout_is_shared_across_plans(self):
        bench = self._bench(
            [_loop("a", loads=("x",)), _loop("b", loads=("x", "y"))]
        )
        plans = plan_program(bench, l0_config(8), SimOptions())
        assert plans[0].layout is plans[1].layout
        assert plans[0].layout.base_of(plans[1].loop.arrays[0]) is not None


class TestFlushOverheadAccounting:
    def _single(self, compiled):
        return (compiled.loop.trip_count - 1) * compiled.ii + compiled.schedule.span

    def _run(self, invocations, flush_between, flush_after):
        config = l0_config(8)
        compiled = compile_loop(kernels.make_saxpy(trip=64, n=256), config)
        memory = make_memory(config)
        layout = MemoryLayout(align=config.l1_block)
        result, _ = run_loop(
            compiled,
            memory,
            layout,
            invocations=invocations,
            flush_between=flush_between,
            flush_after=flush_after,
        )
        return result, self._single(compiled)

    def test_n_invocations_pay_n_flushes_under_default_policy(self):
        result, single = self._run(3, True, True)
        assert result.compute_cycles == 3 * single + 3 * INVALIDATE_OVERHEAD

    def test_skipped_after_flush_drops_one_overhead(self):
        result, single = self._run(3, True, False)
        assert result.compute_cycles == 3 * single + 2 * INVALIDATE_OVERHEAD

    def test_between_flush_skipped_still_pays_final_flush(self):
        result, single = self._run(2, False, True)
        assert result.compute_cycles == 2 * single + 1 * INVALIDATE_OVERHEAD

    def test_no_flushes_no_overhead(self):
        result, single = self._run(1, True, False)
        assert result.compute_cycles == single

    def test_non_l0_architecture_never_pays(self):
        config = unified_config()
        compiled = compile_loop(kernels.make_saxpy(trip=64, n=256), config)
        memory = make_memory(config)
        layout = MemoryLayout(align=config.l1_block)
        result, _ = run_loop(compiled, memory, layout, invocations=2)
        single = self._single(compiled)
        assert result.compute_cycles == 2 * single


class TestLoopLevelParallelism:
    def test_parallel_rows_byte_identical_to_serial(self):
        bench = build("gsmdec")
        serial = run_program(bench, l0_config(8), options=SimOptions(sim_cap=120))
        parallel = run_program(
            bench,
            l0_config(8),
            options=SimOptions(sim_cap=120, loop_workers=2),
        )
        assert result_fingerprint(parallel) == result_fingerprint(serial)

    def test_parallel_parity_holds_under_selective_flush(self):
        bench = Benchmark(
            name="sf-parity",
            loops=(
                LoopSpec(kernels.stream_map("sp_a", trip=150, n=256, elem=4,
                                            taps=1, alu_depth=3), 3),
                LoopSpec(kernels.stream_map("sp_b", trip=150, n=256, elem=4,
                                            taps=1, alu_depth=3,
                                            in_place=True), 2),
            ),
        )
        options = SimOptions(sim_cap=100, selective_flush=True)
        serial = run_program(bench, l0_config(8), options=options)
        parallel = run_program(
            bench,
            l0_config(8),
            options=SimOptions(sim_cap=100, selective_flush=True, loop_workers=2),
        )
        assert result_fingerprint(parallel) == result_fingerprint(serial)
        assert serial.memory_stats.coherence_violations == 0

    def test_nested_fanout_degrades_to_serial_loops(self):
        """Program-level workers + loop-level workers must not nest
        process pools (fork-based nesting can deadlock): inside a
        worker the loop phase runs serial, and rows stay identical."""
        from repro.pipeline import ParallelExecutor, RunRequest

        options = SimOptions(sim_cap=100, loop_workers=2)
        requests = [
            RunRequest("gsmdec", l0_config(8), options),
            RunRequest("g721dec", l0_config(8), options),
        ]
        nested = ParallelExecutor(2).map(requests)
        serial = [
            run_program(build(r.benchmark), r.config, options=SimOptions(sim_cap=100))
            for r in requests
        ]
        assert [result_fingerprint(r) for r in nested] == [
            result_fingerprint(r) for r in serial
        ]

    def test_program_stats_are_merged_across_loops(self):
        bench = build("gsmdec")
        whole = run_program(bench, l0_config(8), options=SimOptions(sim_cap=120))
        assert whole.memory_stats.l0.accesses > 0
        total_loops = sum(
            run_program(
                Benchmark(name="one", loops=(spec,)),
                l0_config(8),
                options=SimOptions(sim_cap=120),
            ).memory_stats.l0.accesses
            for spec in bench.loops
        )
        assert whole.memory_stats.l0.accesses == total_loops

    def test_selective_flush_warm_invocations_beat_conservative(self):
        """With the fixed predicate, a streaming loop whose working set
        fits the L0 keeps its buffers warm across invocations and must
        run strictly faster than under the always-flush policy (which
        re-faults the whole set every invocation)."""
        loops = (
            LoopSpec(kernels.stream_map("warm_a", trip=200, n=256, elem=4,
                                        taps=1, alu_depth=3), 4),
        )
        config = l0_config(None)  # unbounded: flushing is the only loss
        always = run_program(
            Benchmark(name="warmcmp", loops=loops),
            config,
            options=SimOptions(sim_cap=250),
        )
        selective = run_program(
            Benchmark(name="warmcmp", loops=loops),
            config,
            options=SimOptions(sim_cap=250, selective_flush=True),
        )
        assert selective.stall_cycles < always.stall_cycles
        assert selective.total_cycles < always.total_cycles
        assert (
            selective.memory_stats.l0.invalidate_alls
            < always.memory_stats.l0.invalidate_alls
        )
