"""Tests for the flexible L0 buffer model."""

import pytest

from repro.memory import L0Buffer, MapKind


def make_buffer(entries=4):
    return L0Buffer(entries=entries, block_bytes=32, n_clusters=4)


class TestLinearMapping:
    def test_fill_covers_subblock_only(self):
        buf = make_buffer()
        buf.fill_linear(0x100 + 8, ready=0)  # subblock 1 of block 0x100
        assert buf.find(0x108, 4) is not None
        assert buf.find(0x10C, 4) is not None
        assert buf.find(0x100, 4) is None  # subblock 0 not present
        assert buf.find(0x110, 4) is None  # subblock 2 not present

    def test_access_crossing_subblock_misses(self):
        buf = make_buffer()
        buf.fill_linear(0x100, ready=0)
        assert buf.find(0x10C, 8) is None  # spills into subblock 1

    def test_fill_idempotent(self):
        buf = make_buffer()
        a = buf.fill_linear(0x100, ready=5)
        b = buf.fill_linear(0x102, ready=9)  # same subblock
        assert a is b
        assert len(buf) == 1
        assert a.ready == 5  # earliest arrival kept

    def test_hit_miss_statistics(self):
        buf = make_buffer()
        assert buf.access(0x100, 4, cycle=0) is None
        buf.fill_linear(0x100, ready=1)
        assert buf.access(0x100, 4, cycle=2) is not None
        assert buf.stats.hits == 1
        assert buf.stats.misses == 1

    def test_late_hit_counted(self):
        buf = make_buffer()
        buf.fill_linear(0x100, ready=50)
        buf.access(0x100, 4, cycle=10)
        assert buf.stats.late_hits == 1


class TestInterleavedMapping:
    def test_residue_coverage(self):
        buf = make_buffer()
        # Block at 0x200, 2-byte elements, residue 1: elements 1, 5, 9, 13.
        buf.fill_interleaved(0x200, residue=1, granularity=2, ready=0)
        for element in (1, 5, 9, 13):
            assert buf.find(0x200 + 2 * element, 2) is not None
        for element in (0, 2, 4, 6):
            assert buf.find(0x200 + 2 * element, 2) is None

    def test_wider_access_than_granularity_misses(self):
        """Paper section 3.3: data partly mapped elsewhere => miss."""
        buf = make_buffer()
        buf.fill_interleaved(0x200, residue=0, granularity=1, ready=0)
        assert buf.find(0x200, 1) is not None
        assert buf.find(0x200, 4) is None

    def test_misaligned_access_misses(self):
        buf = make_buffer()
        buf.fill_interleaved(0x200, residue=0, granularity=4, ready=0)
        assert buf.find(0x201, 4) is None

    def test_same_data_two_mappings_coexist(self):
        """Intra-cluster replication (paper section 4.1)."""
        buf = make_buffer()
        buf.fill_linear(0x200, ready=0)
        buf.fill_interleaved(0x200, residue=0, granularity=2, ready=0)
        assert len(buf) == 2
        assert buf.find(0x200, 2) is not None


class TestReplacement:
    def test_lru_eviction(self):
        buf = make_buffer(entries=2)
        buf.fill_linear(0x100, ready=0)
        buf.fill_linear(0x200, ready=0)
        buf.access(0x100, 4, cycle=1)  # make 0x100 most recent
        buf.fill_linear(0x300, ready=2)  # evicts 0x200
        assert buf.find(0x100, 4) is not None
        assert buf.find(0x200, 4) is None
        assert buf.stats.evictions == 1

    def test_unbounded_never_evicts(self):
        buf = L0Buffer(entries=None, block_bytes=32, n_clusters=4)
        for i in range(100):
            buf.fill_linear(0x1000 + 32 * i, ready=0)
        assert len(buf) == 100
        assert buf.stats.evictions == 0

    def test_untouched_prefetch_eviction_tracked(self):
        buf = make_buffer(entries=1)
        buf.fill_linear(0x100, ready=0, from_prefetch=True)
        buf.fill_linear(0x200, ready=0)
        assert buf.stats.evicted_untouched_prefetches == 1


class TestStoresAndInvalidation:
    def test_store_updates_one_copy_invalidates_rest(self):
        buf = make_buffer()
        buf.fill_linear(0x200, ready=0)
        buf.fill_interleaved(0x200, residue=0, granularity=2, ready=0)
        buf.store_update(0x200, 2, cycle=7)
        assert len(buf) == 1  # one copy invalidated
        assert buf.stats.store_updates == 1
        assert buf.stats.store_invalidations == 1
        remaining = buf.entries()[0]
        assert remaining.update_time == 7

    def test_store_miss_is_noop(self):
        buf = make_buffer()
        buf.store_update(0x400, 4, cycle=0)
        assert buf.stats.store_updates == 0

    def test_invalidate_matching(self):
        buf = make_buffer()
        buf.fill_linear(0x100, ready=0)
        buf.fill_linear(0x200, ready=0)
        assert buf.invalidate_matching(0x100, 4) == 1
        assert buf.find(0x100, 4) is None
        assert buf.find(0x200, 4) is not None

    def test_invalidate_all(self):
        buf = make_buffer()
        buf.fill_linear(0x100, ready=0)
        buf.fill_linear(0x200, ready=0)
        buf.invalidate_all()
        assert len(buf) == 0
        assert buf.stats.invalidate_alls == 1


class TestEdgeElements:
    def test_linear_edges(self):
        buf = make_buffer()
        entry = buf.fill_linear(0x100, ready=0)
        assert buf.is_edge_element(entry, 0x104, 4, last=True)
        assert not buf.is_edge_element(entry, 0x100, 4, last=True)
        assert buf.is_edge_element(entry, 0x100, 4, last=False)

    def test_interleaved_edges(self):
        buf = make_buffer()
        # residue 2, granularity 2: elements 2, 6, 10, 14 of the block.
        entry = buf.fill_interleaved(0x200, residue=2, granularity=2, ready=0)
        assert buf.is_edge_element(entry, 0x200 + 2 * 14, 2, last=True)
        assert buf.is_edge_element(entry, 0x200 + 2 * 2, 2, last=False)
        assert not buf.is_edge_element(entry, 0x200 + 2 * 6, 2, last=True)
