"""Tests for the evaluation CLI, report rendering, and normalization."""

import pytest

from repro.eval import (
    ExperimentContext,
    NormalizedTime,
    render_ablation,
    render_fig5,
    render_fig6,
    render_fig7,
    render_table1,
    render_table2,
    table1,
    table2,
)
from repro.eval.__main__ import main
from repro.sim import SimOptions


class TestCLI:
    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "lock-step" in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "g721dec" in out

    def test_fig5_with_benchmark_subset(self, capsys):
        assert main(["fig5", "--benchmarks", "g721dec", "--sim-cap", "150"]) == 0
        out = capsys.readouterr().out
        assert "AMEAN" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_gc_max_bytes_bounds_both_stores(self, tmp_path, capsys):
        rc = main(
            [
                "fig5",
                "--benchmarks",
                "g721dec",
                "--sim-cap",
                "100",
                "--cache-dir",
                str(tmp_path / "results"),
                "--compile-cache-dir",
                str(tmp_path / "compile"),
                "--gc-max-bytes",
                "1G",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert err.count("[gc ") == 2  # result store + compile store


class TestRenderers:
    def _rows(self, labels, benchmarks=("x", "AMEAN")):
        return {
            label: [
                NormalizedTime(benchmark=b, label=label, total=0.9, stall=0.1)
                for b in benchmarks
            ]
            for label in labels
        }

    def test_fig5_renderer_includes_all_columns(self):
        text = render_fig5(self._rows(["4 entries", "8 entries"]))
        assert "4 entries" in text and "8 entries" in text
        assert "0.900 (0.100)" in text

    def test_fig7_renderer(self):
        text = render_fig7(self._rows(["8-entry L0 buffers", "MultiVLIW"]))
        assert "MultiVLIW" in text

    def test_fig6_renderer(self):
        text = render_fig6(
            [
                {
                    "benchmark": "x",
                    "linear_ratio": 0.25,
                    "interleaved_ratio": 0.75,
                    "l0_hit_rate": 0.99,
                    "avg_unroll": 2.5,
                }
            ]
        )
        assert "0.25" in text and "0.75" in text

    def test_ablation_renderer(self):
        text = render_ablation(
            [{"benchmark": "x", "a": 100.0, "b": 110.0, "ratio": 1.1}],
            "title",
            "a",
            "b",
        )
        assert "1.100" in text

    def test_table_renderers(self):
        assert "benchmark" in render_table1(table1())
        assert "L0 buffers" in render_table2(table2())


class TestNormalization:
    def test_scalar_residue_damps_ratio(self):
        """With loop_fraction = 0.8, a loop-level 2x win becomes < 2x at
        program level (the 20% scalar residue is unchanged)."""
        ctx = ExperimentContext(
            options=SimOptions(sim_cap=150), benchmarks=("g721dec",)
        )
        from repro.machine import l0_config

        result = ctx.run("g721dec", "l0-8", l0_config(8))
        base = ctx.baseline("g721dec")
        loop_ratio = result.total_cycles / base.total_cycles
        normalized = ctx.normalized("g721dec", "l0", result)
        assert loop_ratio < normalized.total < 1.0

    def test_normalized_compute_plus_stall(self):
        row = NormalizedTime(benchmark="x", label="l", total=0.8, stall=0.3)
        assert row.compute == pytest.approx(0.5)
