"""Retry policy unit tests: pure functions, no clocks, no sleeps.

The retry layer is deliberately clock-free — ``backoff_delay`` returns
seconds, ``JobAttempts.decide`` returns a decision — so every property
here is asserted deterministically: exponential growth, the cap, jitter
bounds and reproducibility, max-attempts exhaustion, and the
timeout-vs-error classification split.
"""

import pytest

from repro.service import (
    FAILURE_KINDS,
    Dead,
    JobAttempts,
    JobFailure,
    JobFailureError,
    Retry,
    RetryPolicy,
    backoff_delay,
    jitter_fraction,
)


def test_backoff_is_exponential_then_capped():
    policy = RetryPolicy(
        base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0, jitter=0.0
    )
    delays = [backoff_delay(policy, "k", attempt) for attempt in (1, 2, 3, 4, 5, 6)]
    assert delays[:4] == pytest.approx([0.1, 0.2, 0.4, 0.8])
    # The exponential would give 1.6 and 3.2; the cap holds at 1.0.
    assert delays[4:] == pytest.approx([1.0, 1.0])


def test_backoff_requires_a_failed_attempt():
    with pytest.raises(ValueError):
        backoff_delay(RetryPolicy(), "k", 0)


def test_jitter_is_deterministic_and_bounded():
    fractions = [
        jitter_fraction(f"key-{i}", attempt)
        for i in range(20)
        for attempt in (1, 2)
    ]
    assert all(0.0 <= f < 1.0 for f in fractions)
    assert len(set(fractions)) > 1  # distinct jobs de-synchronise
    # Same (key, attempt) -> same jitter, run after run.
    assert jitter_fraction("key-3", 2) == jitter_fraction("key-3", 2)


def test_jittered_delay_stays_within_the_advertised_band():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0, jitter=0.5)
    for attempt in range(1, 8):
        raw = min(0.1 * 2.0 ** (attempt - 1), 1.0)
        delay = backoff_delay(policy, "some-key", attempt)
        assert raw <= delay < raw * 1.5
        assert delay == backoff_delay(policy, "some-key", attempt)  # stable


def test_retryable_classification():
    policy = RetryPolicy()
    assert not policy.retryable("error")  # deterministic failure: terminal
    assert policy.retryable("timeout")
    assert policy.retryable("hung")
    assert policy.retryable("crash")
    assert RetryPolicy(retry_errors=True).retryable("error")
    with pytest.raises(ValueError):
        policy.retryable("melted")


def test_ledger_retries_then_exhausts_into_a_dead_letter():
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0)
    ledger = JobAttempts(key="job-1", description={"benchmark": "toy"})
    first = ledger.decide(policy, "crash", "worker died")
    assert isinstance(first, Retry)
    assert first.attempt == 1
    assert first.delay_s == pytest.approx(0.1)
    second = ledger.decide(policy, "timeout", "deadline")
    assert isinstance(second, Retry)
    assert second.delay_s == pytest.approx(0.2)  # exponential, no jitter
    last = ledger.decide(policy, "hung", "no heartbeat")
    assert isinstance(last, Dead)
    failure = last.failure
    assert failure.key == "job-1"
    assert failure.kind == "hung"  # classified by the *last* failure
    assert failure.attempts == 3
    assert failure.description == {"benchmark": "toy"}
    assert ledger.failures == [
        ("crash", "worker died"),
        ("timeout", "deadline"),
        ("hung", "no heartbeat"),
    ]


def test_error_kind_is_terminal_on_the_first_attempt():
    ledger = JobAttempts(key="job-2")
    decision = ledger.decide(RetryPolicy(max_attempts=5), "error", "ValueError: x")
    assert isinstance(decision, Dead)
    assert decision.failure.kind == "error"
    assert decision.failure.attempts == 1
    # ... unless the policy opts in to retrying errors.
    retrying = JobAttempts(key="job-3")
    assert isinstance(
        retrying.decide(RetryPolicy(retry_errors=True), "error", "x"), Retry
    )


def test_job_failure_round_trips_through_json():
    failure = JobFailure(
        key="a" * 64,
        kind="timeout",
        attempts=4,
        detail="exceeded 60s",
        description={"benchmark": "gsmdec", "scheduler": "sms"},
    )
    assert JobFailure.from_json(failure.to_json()) == failure
    error = JobFailureError(failure)
    assert error.failure is failure
    assert "timeout" in str(error) and "gsmdec" in str(error)


def test_failure_kinds_cover_the_taxonomy():
    assert FAILURE_KINDS == ("error", "timeout", "hung", "crash")
