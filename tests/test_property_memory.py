"""Property-based tests for the memory substrate models."""

from hypothesis import given, settings, strategies as st

from repro.isa import AccessPattern, ArrayRef, PatternKind
from repro.ir.memdep import patterns_may_alias
from repro.memory import L0Buffer, SetAssocCache

QUICK = settings(max_examples=60, deadline=None)

addrs = st.integers(min_value=0, max_value=1 << 16)
widths = st.sampled_from([1, 2, 4, 8])


@QUICK
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["linear", "inter", "access"]), addrs, widths),
        max_size=60,
    ),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_l0_capacity_never_exceeded(ops, capacity):
    buf = L0Buffer(entries=capacity, block_bytes=32, n_clusters=4)
    for kind, addr, width in ops:
        if kind == "linear":
            buf.fill_linear(addr, ready=0)
        elif kind == "inter":
            block = addr - addr % 32
            buf.fill_interleaved(block, addr % 4, width, ready=0)
        else:
            buf.access(addr, width, cycle=0)
        assert len(buf) <= capacity


@QUICK
@given(addr=addrs, width=widths)
def test_l0_linear_fill_then_find(addr, width):
    """Any address within the filled subblock (and width-aligned inside
    it) is findable; anything outside is not."""
    buf = L0Buffer(entries=None, block_bytes=32, n_clusters=4)
    entry = buf.fill_linear(addr, ready=0)
    sub_base = entry.block_addr + entry.position * 8
    assert sub_base <= addr < sub_base + 8
    for offset in range(0, 8 - width + 1):
        assert buf.find(sub_base + offset, width) is not None
    assert buf.find(sub_base - 1, 1) is None
    assert buf.find(sub_base + 8, 1) is None


@QUICK
@given(
    block=st.integers(min_value=0, max_value=64).map(lambda b: b * 32),
    residue=st.integers(min_value=0, max_value=3),
    granularity=st.sampled_from([1, 2, 4, 8]),
)
def test_l0_interleaved_covers_exactly_residue_elements(block, residue, granularity):
    buf = L0Buffer(entries=None, block_bytes=32, n_clusters=4)
    buf.fill_interleaved(block, residue, granularity, ready=0)
    elements = 32 // granularity
    for element in range(elements):
        addr = block + element * granularity
        found = buf.find(addr, granularity) is not None
        assert found == (element % 4 == residue)


@QUICK
@given(
    sequence=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200)
)
def test_cache_hit_iff_recently_used(sequence):
    """A fully-warm direct replay must hit 100%."""
    cache = SetAssocCache(size=2048, assoc=2, block=32)
    blocks = set()
    for block_idx in sequence:
        cache.load(block_idx * 32)
        blocks.add(block_idx)
    if len(blocks) <= 32:  # fits: 2048/32 = 64 blocks, 2-way
        hits_before = cache.stats.load_hits
        for block_idx in sorted(blocks):
            cache.load(block_idx * 32)
        # Not all guaranteed (set conflicts), but at least half must hit.
        assert cache.stats.load_hits - hits_before >= len(blocks) // 2


@QUICK
@given(
    stride=st.integers(min_value=-8, max_value=8),
    offset=st.integers(min_value=0, max_value=32),
    n=st.sampled_from([64, 256, 1024]),
    iterations=st.integers(min_value=0, max_value=100),
)
def test_pattern_indices_always_in_bounds(stride, offset, n, iterations):
    pattern = AccessPattern(ArrayRef("a", n, 4), stride=stride, offset=offset)
    idx = pattern.element_index(iterations)
    assert 0 <= idx < n


@QUICK
@given(
    s1=st.integers(min_value=-4, max_value=4),
    o1=st.integers(min_value=0, max_value=8),
    s2=st.integers(min_value=-4, max_value=4),
    o2=st.integers(min_value=0, max_value=8),
)
def test_alias_soundness_on_small_window(s1, o1, s2, o2):
    """If two strided patterns collide within a few iterations, the alias
    analysis must say they may alias (no false negatives)."""
    arr = ArrayRef("a", 4096, 4)
    p1 = AccessPattern(arr, stride=s1, offset=o1)
    p2 = AccessPattern(arr, stride=s2, offset=o2)
    collide = any(
        o1 + i * s1 == o2 + j * s2
        for i in range(12)
        for j in range(12)
    )
    if collide:
        assert patterns_may_alias(p1, p2, same_array=True)


@QUICK
@given(
    copies=st.integers(min_value=2, max_value=4),
    stride=st.sampled_from([1, -1, 2, 8]),
    offset=st.integers(min_value=0, max_value=7),
)
def test_unrolled_copies_partition_stream(copies, stride, offset):
    """Unrolled copies' index streams partition the original stream."""
    arr = ArrayRef("a", 1 << 14, 4)
    original = AccessPattern(arr, stride=stride, offset=offset)
    window = copies * 6
    original_stream = [original.element_index(i) for i in range(window)]
    merged = []
    for i in range(6):
        for k in range(copies):
            merged.append(original.unrolled_copy(k, copies).element_index(i))
    assert merged == original_stream
