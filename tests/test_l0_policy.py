"""Tests for the L0-aware scheduling policy (the paper's Figure-4 algorithm)."""

import pytest

from repro.ir import LoopBuilder
from repro.isa import AccessHint, MapHint, Opcode, PrefetchHint
from repro.machine import l0_config
from repro.scheduler import CoherenceScheme, compile_loop

from repro.workloads.kernels import make_column, make_dpcm, make_saxpy


def loads_of(compiled):
    return [op for op in compiled.schedule.placed.values() if op.instr.is_load]


def stores_of(compiled):
    return [op for op in compiled.schedule.placed.values() if op.instr.is_store]


class TestLatencyAssignment:
    def test_all_loads_l0_with_room(self, saxpy):
        compiled = compile_loop(saxpy, l0_config(8))
        assert all(op.latency == 1 for op in loads_of(compiled))

    def test_random_loads_never_use_l0(self):
        b = LoopBuilder("rnd", trip_count=16)
        t = b.array("t", 512, 4)
        v = b.load(t, random=True, tag="rnd")
        k = b.live_in("k")
        w = b.iadd(v, k)
        out = b.array("o", 512, 4)
        b.store(out, w, stride=1)
        compiled = compile_loop(b.build(), l0_config(8))
        rnd_ops = [op for op in loads_of(compiled) if op.instr.tag.startswith("rnd")]
        assert rnd_ops
        for op in rnd_ops:
            assert op.latency == 6
            assert op.hints.access is AccessHint.NO_ACCESS

    def test_tiny_buffers_demote_least_critical(self):
        """With a 2-entry buffer only N*NE/2 = 4 streams fit the budget."""
        b = LoopBuilder("many", trip_count=64)
        arrays = [b.array(f"a{i}", 512, 4) for i in range(6)]
        k = b.live_in("k")
        acc = None
        for idx, arr in enumerate(arrays):
            v = b.load(arr, stride=1, tag=f"ld{idx}")
            acc = v if acc is None else b.iadd(acc, v)
        out = b.array("out", 512, 4)
        b.store(out, acc, stride=1)
        compiled = compile_loop(b.build(), l0_config(2), unroll_factor=1)
        lats = sorted(op.latency for op in loads_of(compiled))
        assert 6 in lats  # someone was demoted
        assert 1 in lats  # someone kept L0

    def test_unbounded_marks_everything(self, saxpy):
        compiled = compile_loop(saxpy, l0_config(None))
        assert all(op.latency == 1 for op in loads_of(compiled))

    def test_schedule_validates(self, saxpy, dpcm, column):
        for loop in (saxpy, dpcm, column):
            compiled = compile_loop(loop, l0_config(8))
            assert compiled.schedule.validate(compiled.ddg) == []


class TestCoherence:
    def test_one_cluster_for_load_store_set(self, dpcm):
        compiled = compile_loop(dpcm, l0_config(8), unroll_factor=1)
        ld_prev = next(
            op for op in loads_of(compiled) if op.instr.tag == "ld_prev"
        )
        st = stores_of(compiled)[0]
        if ld_prev.latency == 1:  # scheduled with L0
            assert ld_prev.cluster == st.cluster
            assert st.hints.access is AccessHint.PAR_ACCESS

    def test_independent_store_bypasses_l0(self, column):
        compiled = compile_loop(column, l0_config(8))
        for op in stores_of(compiled):
            assert op.hints.access is AccessHint.NO_ACCESS

    def test_nl0_when_no_entries(self):
        """With all=NO buffers effectively (1-entry), dependent sets drop to NL0."""
        b = LoopBuilder("dep", trip_count=32)
        y = b.array("y", 512, 2)
        prev = b.load(y, stride=1, offset=0, tag="ldp")
        k = b.live_in("k")
        w = b.iadd(prev, k)
        b.store(y, w, stride=1, offset=1)
        compiled = compile_loop(b.build(), l0_config(1), unroll_factor=1)
        ldp = next(op for op in loads_of(compiled) if op.instr.tag == "ldp")
        # 1-entry buffer: budget floor keeps at least one candidate, but
        # either way the schedule must be coherent and valid.
        assert compiled.schedule.validate(compiled.ddg) == []
        if ldp.latency == 1:
            st = stores_of(compiled)[0]
            assert st.cluster == ldp.cluster


class TestHints:
    def test_interleaved_mapping_for_unrolled_streams(self, saxpy):
        compiled = compile_loop(saxpy, l0_config(8))
        assert compiled.unroll_factor == 4
        l0_loads = [op for op in loads_of(compiled) if op.latency == 1]
        mappings = {op.hints.mapping for op in l0_loads}
        assert MapHint.INTERLEAVED in mappings

    def test_interleaved_group_clusters_form_ring(self, saxpy):
        compiled = compile_loop(saxpy, l0_config(8))
        groups: dict[int, list] = {}
        for op in loads_of(compiled):
            if op.hints.mapping is MapHint.INTERLEAVED:
                groups.setdefault(op.instr.origin, []).append(op)
        assert groups
        for members in groups.values():
            members.sort(key=lambda o: o.instr.copy_index)
            base = members[0]
            for m in members[1:]:
                delta = m.instr.pattern.offset - base.instr.pattern.offset
                assert m.cluster == (base.cluster + delta) % 4

    def test_one_prefetch_hint_per_interleaved_group(self, saxpy):
        compiled = compile_loop(saxpy, l0_config(8))
        groups: dict[int, list] = {}
        for op in loads_of(compiled):
            if op.hints.mapping is MapHint.INTERLEAVED:
                groups.setdefault(op.instr.origin, []).append(op)
        for members in groups.values():
            hinted = [
                op for op in members if op.hints.prefetch is not PrefetchHint.NONE
            ]
            assert len(hinted) == 1
            assert hinted[0].start == min(op.start for op in members)

    def test_negative_stride_gets_negative_prefetch(self):
        from repro.workloads import kernels

        loop = kernels.stream_map(
            "rev", trip=64, n=512, elem=2, taps=1, alu_depth=5, negative=True
        )
        compiled = compile_loop(loop, l0_config(8))
        hints = {
            op.hints.prefetch
            for op in loads_of(compiled)
            if op.latency == 1 and op.hints.prefetch is not PrefetchHint.NONE
        }
        assert hints <= {PrefetchHint.NEGATIVE}
        assert hints

    def test_seq_access_requires_free_next_cycle(self):
        for loop_maker, cfg in ((make_saxpy, l0_config(8)),):
            compiled = compile_loop(loop_maker(), cfg)
            sched = compiled.schedule
            for op in loads_of(compiled):
                if op.hints.access is AccessHint.SEQ_ACCESS:
                    next_row = (op.start + 1) % sched.ii
                    assert sched.mem_busy(op.cluster, next_row) == 0

    def test_stride_zero_loads_have_no_prefetch(self):
        b = LoopBuilder("s0", trip_count=32)
        a = b.array("a", 64, 4)
        v = b.load(a, stride=0, tag="scalar")
        k = b.live_in("k")
        for _ in range(5):
            v = b.iadd(v, k)
        out = b.array("o", 512, 4)
        b.store(out, v, stride=1)
        compiled = compile_loop(b.build(), l0_config(8), unroll_factor=1)
        scalar_ops = [
            op for op in loads_of(compiled) if op.instr.tag.startswith("scalar")
        ]
        for op in scalar_ops:
            assert op.hints.prefetch is PrefetchHint.NONE


class TestExplicitPrefetch:
    def test_column_loads_get_explicit_prefetch(self, column):
        compiled = compile_loop(column, l0_config(8))
        l0_col_loads = [op for op in loads_of(compiled) if op.latency == 1]
        if l0_col_loads:
            assert compiled.schedule.prefetches
            covered = {pf.covers_uid for pf in compiled.schedule.prefetches}
            assert covered <= {op.instr.uid for op in l0_col_loads}

    def test_prefetch_in_same_cluster_as_load(self, column):
        compiled = compile_loop(column, l0_config(8))
        placed = compiled.schedule.placed
        for pf in compiled.schedule.prefetches:
            assert pf.cluster == placed[pf.covers_uid].cluster

    def test_prefetch_lookahead_covers_l1_latency(self, column):
        compiled = compile_loop(column, l0_config(8))
        ii = compiled.ii
        for pf in compiled.schedule.prefetches:
            load = compiled.schedule.placed[pf.covers_uid]
            gap = load.start - pf.start
            assert pf.distance * ii + gap >= l0_config().l1_latency + 1

    def test_no_prefetch_without_free_slots(self):
        from repro.workloads import kernels

        # All memory slots busy (the paper's pathological jpeg loop).
        loop = kernels.column_walk(
            "idct", trip=8, n=64, elem=2, stride=8, taps=3, alu_depth=1
        )
        compiled = compile_loop(loop, l0_config(8))
        rows = compiled.ii
        busy = sum(
            compiled.schedule.mem_busy(c, r) for c in range(4) for r in range(rows)
        )
        if busy >= 4 * rows:  # genuinely saturated
            assert not compiled.schedule.prefetches


class TestAblationFlags:
    def test_all_candidates_marks_more_or_equal(self):
        from repro.workloads import kernels

        loop = kernels.multi_stream(
            "wide", trip=128, n=1024, elem=2, inputs=4, alu_depth=2
        )
        selective = compile_loop(loop, l0_config(2))
        greedy = compile_loop(loop, l0_config(2), all_candidates=True)
        n_sel = sum(1 for op in loads_of(selective) if op.latency == 1)
        n_all = sum(1 for op in loads_of(greedy) if op.latency == 1)
        assert n_all >= n_sel

    def test_prefetch_distance_knob(self, column):
        compiled = compile_loop(column, l0_config(8), prefetch_distance=2)
        for op in loads_of(compiled):
            if op.latency == 1:
                assert op.hints.prefetch_distance == 2
        for pf in compiled.schedule.prefetches:
            assert pf.distance >= 2
