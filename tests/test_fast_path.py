"""Differential oracle: the trace fast path vs the reference interpreter.

Every test here asserts *byte-identity*: same ``LoopRunResult`` cycle
counts, same per-iteration stall history, same memory-statistics record
(nested dataclass equality covers every counter) — over the kernel zoo,
the four memory models, both scheduler backends, and with the
convergence early-exit both off and firing.  The fast lane runs a
representative subset; the ``slow``-marked matrix is exhaustive.
"""

from __future__ import annotations

import copy
import math
import pickle

import pytest

from repro.isa import MemoryLayout
from repro.isa.memory_access import AccessPattern, ArrayRef, PatternKind
from repro.machine import (
    interleaved_config,
    l0_config,
    multivliw_config,
    unified_config,
)
from repro.pipeline.artifact import CompileOptions
from repro.pipeline.compilecache import CompiledLoopCache, compile_cached
from repro.scheduler import compile_loop
from repro.sim import (
    LoopExecutor,
    SimOptions,
    TraceExecutor,
    make_executor,
    make_memory,
    run_loop,
    run_program,
    static_trace,
)
from repro.workloads import build, kernels

# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def _run_pair(loop, config, iterations=None, convergence=True, **compile_kwargs):
    """Compile once, execute on both paths against private memories."""
    compiled = compile_loop(copy.deepcopy(loop), config, **compile_kwargs)
    n = iterations or compiled.loop.trip_count
    ref_mem, fast_mem = make_memory(config), make_memory(config)
    ref = LoopExecutor(compiled, ref_mem, MemoryLayout(align=config.l1_block))
    fast = TraceExecutor(
        compiled,
        fast_mem,
        MemoryLayout(align=config.l1_block),
        convergence=convergence,
    )
    ref_result = ref.run(n)
    fast_result = fast.run(n)
    return ref, ref_mem, ref_result, fast, fast_mem, fast_result


def assert_identical(loop, config, iterations=None, convergence=True, **kw):
    ref, ref_mem, r, fast, fast_mem, f = _run_pair(
        loop, config, iterations, convergence, **kw
    )
    label = (loop.name, config.arch.value)
    assert (r.iterations, r.compute_cycles, r.stall_cycles, r.late_loads) == (
        f.iterations,
        f.compute_cycles,
        f.stall_cycles,
        f.late_loads,
    ), label
    assert ref.last_stall_by_iteration == fast.last_stall_by_iteration, label
    assert ref_mem.stats == fast_mem.stats, label
    return fast, f


ZOO = {
    "saxpy": lambda: kernels.make_saxpy(trip=300, n=256),
    "dpcm": lambda: kernels.make_dpcm(trip=256, n=512),
    "column": lambda: kernels.make_column(trip=64, n=512),
    "table_mix": lambda: kernels.table_mix(
        "tmix", trip=128, n_stream=512, n_table=128
    ),
    "bignum": lambda: kernels.bignum("bg", trip=100, n=256),
    "fp_filter": lambda: kernels.fp_filter("fpf", trip=120, n=256, taps=2, fp_depth=3),
    "reduction": lambda: kernels.reduction("red", trip=200, n=512, elem=2, taps=2),
    "multi_stream": lambda: kernels.multi_stream(
        "ms", trip=150, n=512, elem=2, inputs=3, alu_depth=4
    ),
}

CONFIGS = {
    "unified": unified_config,
    "l0_4": lambda: l0_config(4),
    "l0_unbounded": lambda: l0_config(None),
    "multivliw": multivliw_config,
    "interleaved": interleaved_config,
}


# ----------------------------------------------------------------------
# Fast lane: representative subset
# ----------------------------------------------------------------------


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("kernel", ["saxpy", "dpcm", "table_mix"])
def test_fast_path_identical(kernel, config_name):
    assert_identical(ZOO[kernel](), CONFIGS[config_name]())


@pytest.mark.parametrize("kernel", ["column", "bignum", "fp_filter"])
def test_fast_path_identical_l0(kernel):
    assert_identical(ZOO[kernel](), l0_config(8))


def test_fast_path_identical_exact_scheduler():
    assert_identical(
        kernels.make_dpcm(trip=128, n=256), l0_config(8), scheduler="exact"
    )


def test_fast_path_short_runs_cover_prologue_epilogue():
    """iterations < stage count exercises the partial-window paths."""
    for n in (1, 2, 3, 7):
        assert_identical(kernels.make_saxpy(trip=64, n=256), l0_config(8), iterations=n)


# ----------------------------------------------------------------------
# Convergence early-exit: exactness when it fires
# ----------------------------------------------------------------------


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_convergence_exit_is_exact(config_name):
    """Small working sets + long trips: the early-exit must fire and the
    results must still match a full reference interpretation."""
    config = CONFIGS[config_name]()
    fast, result = assert_identical(
        kernels.make_saxpy(trip=3000, n=64), config, iterations=3000
    )
    assert fast.last_converged
    assert result.simulated_iterations < 3000
    assert result.iterations == 3000


def test_convergence_exit_recurrence_kernel():
    fast, result = assert_identical(
        kernels.make_dpcm(trip=2500, n=128), l0_config(8), iterations=2500
    )
    assert fast.last_converged
    assert result.simulated_iterations < result.iterations


def test_convergence_disabled_never_skips():
    fast, result = assert_identical(
        kernels.make_saxpy(trip=2000, n=64),
        unified_config(),
        iterations=2000,
        convergence=False,
    )
    assert not fast.last_converged
    assert result.simulated_iterations == 2000


def test_random_streams_disable_convergence():
    """RANDOM patterns have no input period: the trace must record that
    and the executor must never arm the early-exit."""
    loop = kernels.table_mix("tm", trip=64, n_stream=256, n_table=64)
    compiled = compile_loop(loop, unified_config())
    assert static_trace(compiled).input_period is None
    fast, result = assert_identical(
        kernels.table_mix("tm", trip=2000, n_stream=64, n_table=32),
        unified_config(),
        iterations=2000,
    )
    assert not fast.last_converged


def test_convergence_multi_invocation_state_carryover():
    """After a fast-forward the memory state (shifted timestamps) must
    behave exactly like the reference's across invocation boundaries."""
    for config in (unified_config(), l0_config(8)):
        loop = kernels.make_saxpy(trip=3000, n=64)
        results = {}
        for fast_sim in (False, True):
            compiled = compile_loop(copy.deepcopy(loop), config)
            memory = make_memory(config)
            options = SimOptions(fast_sim=fast_sim, sim_cap=5000)
            result, clock = run_loop(
                compiled,
                memory,
                MemoryLayout(align=config.l1_block),
                invocations=3,
                options=options,
            )
            results[fast_sim] = (result, clock, memory.stats)
        (r0, c0, s0), (r1, c1, s1) = results[False], results[True]
        assert (r0.compute_cycles, r0.stall_cycles, c0) == (
            r1.compute_cycles,
            r1.stall_cycles,
            c1,
        )
        assert s0 == s1
        # Early-exit fired (exact) AND one unsimulated invocation was
        # replicated from the warm run (statistical).
        assert r1.extrapolated == "exact+statistical"
        assert r1.measured_fraction < 1.0


# ----------------------------------------------------------------------
# Program-level parity and honest reporting
# ----------------------------------------------------------------------


def test_run_program_fast_matches_reference():
    bench = build("g721dec")
    slow = run_program(
        bench, l0_config(8), options=SimOptions(sim_cap=120, fast_sim=False)
    )
    fast = run_program(bench, l0_config(8), options=SimOptions(sim_cap=120))
    assert slow.total_cycles == fast.total_cycles
    assert slow.stall_cycles == fast.stall_cycles
    assert slow.memory_stats == fast.memory_stats
    for a, b in zip(slow.loops, fast.loops):
        assert (a.compute_cycles, a.stall_cycles) == (b.compute_cycles, b.stall_cycles)


def test_loop_result_reports_extrapolation_kind():
    config = unified_config()
    # trip > cap: statistical extrapolation, honest simulated count.
    compiled = compile_loop(kernels.make_saxpy(trip=4096, n=1024), config)
    result, _ = run_loop(
        compiled,
        make_memory(config),
        MemoryLayout(align=config.l1_block),
        options=SimOptions(sim_cap=200),
    )
    assert result.extrapolated == "statistical"
    assert result.simulated_iterations == 200
    assert 0.0 < result.measured_fraction < 1.0
    # trip <= cap, no convergence fire: everything interpreted.  (Trip
    # counts are in *kernel* iterations — the unrolled body's.)
    compiled = compile_loop(kernels.make_saxpy(trip=128, n=1024), config)
    result, _ = run_loop(
        compiled,
        make_memory(config),
        MemoryLayout(align=config.l1_block),
        options=SimOptions(sim_cap=500),
    )
    assert result.extrapolated == "none"
    assert result.simulated_iterations == compiled.loop.trip_count
    assert result.measured_fraction == 1.0


def test_make_executor_honors_env_opt_out(monkeypatch):
    compiled = compile_loop(kernels.make_saxpy(trip=32, n=64), unified_config())
    options = SimOptions()
    monkeypatch.setenv("REPRO_FAST_SIM", "0")
    ex = make_executor(
        compiled, make_memory(unified_config()), MemoryLayout(), options
    )
    assert isinstance(ex, LoopExecutor)
    monkeypatch.setenv("REPRO_FAST_SIM", "interp")
    ex = make_executor(
        compiled, make_memory(unified_config()), MemoryLayout(), options
    )
    assert isinstance(ex, TraceExecutor) and not ex._convergence
    monkeypatch.delenv("REPRO_FAST_SIM")
    ex = make_executor(
        compiled, make_memory(unified_config()), MemoryLayout(), options
    )
    assert isinstance(ex, TraceExecutor)


# ----------------------------------------------------------------------
# Ring buffer: O(window) memory for arbitrarily long runs
# ----------------------------------------------------------------------


def test_readiness_ring_is_bounded():
    """Long runs must not grow readiness state with the trip count: the
    ring is sized by the history window alone (the satellite regression
    test for the old rebuild-the-dict pruning)."""
    config = l0_config(8)
    loop = kernels.make_dpcm(trip=6000, n=128)
    compiled = compile_loop(loop, config)
    fast = TraceExecutor(
        compiled, make_memory(config), MemoryLayout(align=config.l1_block),
        convergence=False,
    )
    window = fast.static.history_window
    fast.run(6000)
    # Rebind-time structures only: slots x window ints, however long the run.
    assert window < 64
    assert fast._n_slots <= len(compiled.schedule.placed)
    result = fast.run(6000)
    assert result.iterations == 6000


# ----------------------------------------------------------------------
# Layout contract (idempotent-by-contract registration)
# ----------------------------------------------------------------------


def test_layout_ensure_is_idempotent():
    layout = MemoryLayout(align=32)
    a = ArrayRef("x", 128, 4)
    base = layout.ensure(a)
    assert layout.ensure(ArrayRef("x", 128, 4)) == base
    with pytest.raises(ValueError, match="stale memory layout"):
        layout.ensure(ArrayRef("x", 256, 4))


def test_executor_rejects_stale_layout():
    config = unified_config()
    compiled = compile_loop(kernels.make_saxpy(trip=32, n=64), config)
    layout = MemoryLayout(align=config.l1_block)
    layout.add(ArrayRef("x", 999, 4))  # conflicting pre-registration
    with pytest.raises(ValueError, match="stale memory layout"):
        TraceExecutor(compiled, make_memory(config), layout)
    with pytest.raises(ValueError, match="stale memory layout"):
        LoopExecutor(compiled, make_memory(config), layout)


def test_executor_reuses_planned_layout_addresses():
    """Binding to a pre-populated program layout must not shift bases."""
    config = unified_config()
    compiled = compile_loop(kernels.make_saxpy(trip=32, n=64), config)
    layout = MemoryLayout(align=config.l1_block)
    bases = {a.name: layout.add(a) for a in compiled.loop.arrays}
    TraceExecutor(compiled, make_memory(config), layout)
    for array in compiled.loop.arrays:
        assert layout.base_of(array) == bases[array.name]


# ----------------------------------------------------------------------
# Affine export + input-period math
# ----------------------------------------------------------------------


@pytest.mark.parametrize("stride,n", [(1, 64), (3, 64), (8, 96), (-1, 64), (-6, 40)])
def test_input_period_matches_brute_force(stride, n):
    pattern = AccessPattern(ArrayRef("a", n, 4), stride=stride, offset=5)
    period = pattern.input_period
    sequence = [pattern.element_index(i) for i in range(3 * period + 4)]
    assert sequence[:period] == sequence[period : 2 * period]
    # Minimality: no smaller divisor period reproduces the stream.
    for cand in range(1, period):
        if period % cand == 0 and sequence[:cand] == sequence[cand : 2 * cand]:
            pytest.fail(f"period {period} not minimal (candidate {cand})")


def test_affine_matches_address():
    layout = MemoryLayout(align=32)
    ref = ArrayRef("a", 100, 2)
    layout.add(ref)
    pattern = AccessPattern(ref, stride=7, offset=3)
    base, off0, stride, n, esize = pattern.affine(layout)
    for i in (0, 1, 13, 99, 100, 257):
        assert base + ((off0 + i * stride) % n) * esize == pattern.address(i, layout)
    random = AccessPattern(ref, kind=PatternKind.RANDOM, seed=9)
    assert random.affine(layout) is None
    assert random.input_period is None


# ----------------------------------------------------------------------
# Batch entry points + trace caching
# ----------------------------------------------------------------------


def test_load_store_run_match_scalar_paths():
    configs = (
        unified_config(),
        l0_config(8),
        multivliw_config(),
        interleaved_config(),
    )
    for config in configs:
        compiled = compile_loop(kernels.make_saxpy(trip=16, n=64), config)
        hints = next(
            op.hints for op in compiled.schedule.placed.values() if op.instr.is_load
        )
        scalar_mem, batch_mem = make_memory(config), make_memory(config)
        addrs = [0x1000 + 4 * k for k in range(6)]
        cycles = [10 + 2 * k for k in range(6)]
        scalar = [
            scalar_mem.load(0, addrs[k], 4, hints, cycles[k]) for k in range(6)
        ]
        batched = batch_mem.load_run([0] * 6, addrs, [4] * 6, [hints] * 6, cycles)
        assert scalar == batched
        for k in range(6):
            scalar_mem.store(1, addrs[k], 4, hints, cycles[k] + 50, is_primary=True)
        batch_mem.store_run(
            [1] * 6, addrs, [4] * 6, [hints] * 6, [c + 50 for c in cycles], [True] * 6
        )
        assert scalar_mem.stats == batch_mem.stats


def test_static_trace_rides_compile_cache(tmp_path):
    cache = CompiledLoopCache(path=tmp_path)
    loop = kernels.make_saxpy(trip=32, n=64)
    compiled = compile_cached(loop, unified_config(), CompileOptions(), cache=cache)
    assert compiled.static_trace is not None
    # The persisted pickle carries the trace: a fresh cache instance
    # over the same directory serves it without rebuilding.
    reloaded = CompiledLoopCache(path=tmp_path)
    warm = compile_cached(loop, unified_config(), CompileOptions(), cache=reloaded)
    assert warm.static_trace is not None
    assert warm.static_trace.ii == compiled.static_trace.ii
    assert pickle.loads(pickle.dumps(compiled)).static_trace.ii == compiled.ii


def test_input_period_is_lcm_of_streams():
    loop = kernels.make_saxpy(trip=64, n=96)
    trace = static_trace(compile_loop(loop, unified_config()))
    patterns = [e.pattern for e in trace.events if e.pattern is not None]
    assert patterns
    expected = 1
    for p in patterns:
        expected = expected * p.input_period // math.gcd(expected, p.input_period)
    # Periods are in *kernel* iterations (unrolling scales the strides):
    # n=96 stride-1 unrolled x4 -> stride 4, period 96/gcd(4,96) = 24.
    assert trace.input_period == expected == 24
    for p in patterns:
        assert trace.input_period % p.input_period == 0


# ----------------------------------------------------------------------
# cibench throughput lane
# ----------------------------------------------------------------------


def test_sim_bench_record_and_regression_gate(tmp_path):
    import json

    from repro.eval.cibench import SIM_BENCH_SCHEMA_VERSION, run_sim_bench

    record = run_sim_bench(("g721dec",), 40, baseline_path=None)
    assert record["schema"] == SIM_BENCH_SCHEMA_VERSION
    assert record["fast_iters_per_s"] > 0
    assert record["reference_iters_per_s"] > 0
    assert record["speedup"] > 0
    assert record["failures"] == []
    assert record["baseline"] is None

    # A baseline claiming an absurdly higher speedup must trip the
    # >30% machine-normalized regression gate; a matching one must not.
    baseline = tmp_path / "BENCH_sim.json"
    baseline.write_text(json.dumps({**record, "speedup": record["speedup"] * 10}))
    tripped = run_sim_bench(("g721dec",), 40, baseline_path=baseline)
    assert tripped["failures"]
    assert "regressed" in tripped["failures"][0]
    baseline.write_text(json.dumps(record))
    clean = run_sim_bench(("g721dec",), 40, baseline_path=baseline)
    assert clean["failures"] == []
    assert clean["baseline"]["speedup"] == record["speedup"]


# ----------------------------------------------------------------------
# Slow lane: the exhaustive matrix
# ----------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("kernel", sorted(ZOO))
def test_full_matrix_sms(kernel, config_name):
    assert_identical(ZOO[kernel](), CONFIGS[config_name]())


@pytest.mark.slow
@pytest.mark.parametrize("config_name", ["unified", "l0_4", "multivliw"])
@pytest.mark.parametrize("kernel", ["saxpy", "dpcm", "reduction", "multi_stream"])
def test_full_matrix_exact_scheduler(kernel, config_name):
    assert_identical(ZOO[kernel](), CONFIGS[config_name](), scheduler="exact")


@pytest.mark.slow
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_full_matrix_convergence_long_runs(config_name):
    config = CONFIGS[config_name]()
    for make in (
        lambda: kernels.make_saxpy(trip=4000, n=64),
        lambda: kernels.make_dpcm(trip=3500, n=128),
        lambda: kernels.stream_map("sm", trip=3000, n=128, elem=2, taps=2, alu_depth=4),
        lambda: kernels.make_column(trip=3000, n=96, stride=8),
    ):
        loop = make()
        assert_identical(loop, config, iterations=loop.trip_count)


@pytest.mark.slow
def test_full_program_parity_across_benchmarks():
    for name in ("g721dec", "gsmdec"):
        for config in (unified_config(), l0_config(8)):
            bench = build(name)
            slow = run_program(
                bench, config, options=SimOptions(sim_cap=200, fast_sim=False)
            )
            fast = run_program(bench, config, options=SimOptions(sim_cap=200))
            assert slow.total_cycles == fast.total_cycles
            assert slow.memory_stats == fast.memory_stats
