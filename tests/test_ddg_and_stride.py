"""Tests for DDG construction, longest paths, and stride classification."""

import pytest

from repro.ir import (
    DepKind,
    LoopBuilder,
    StrideClass,
    build_ddg,
    classify,
    dynamic_stride_stats,
    is_candidate,
    loop_candidates,
    unroll,
)
from repro.machine import unified_config

from repro.workloads.kernels import make_dpcm, make_saxpy


L1 = 6


def lat(uid):
    return L1


class TestDDGEdges:
    def test_register_flow_edges(self, saxpy):
        ddg = build_ddg(saxpy, unified_config())
        reg = ddg.reg_edges()
        # ld_x -> fmul, fmul -> fadd, ld_y -> fadd, fadd -> st_y.
        assert len(reg) == 4
        assert all(e.distance == 0 for e in reg)

    def test_load_edges_have_symbolic_latency(self, saxpy):
        ddg = build_ddg(saxpy, unified_config())
        load_uids = {i.uid for i in saxpy.loads}
        for edge in ddg.reg_edges():
            if edge.src in load_uids:
                assert edge.fixed_latency is None
                assert edge.latency({edge.src: 1}) == 1
                assert edge.latency(lat) == 6
            else:
                assert edge.fixed_latency is not None

    def test_accumulator_self_edge(self):
        from repro.isa import Opcode

        b = LoopBuilder("acc", trip_count=4)
        arr = b.array("x", 64, 4)
        v = b.load(arr, stride=1)
        b.accumulate(Opcode.IADD, v)
        ddg = build_ddg(b.build(), unified_config())
        self_edges = [e for e in ddg.edges if e.src == e.dst]
        assert len(self_edges) == 1
        assert self_edges[0].distance == 1


class TestLongestPaths:
    def test_earliest_times_respect_latency(self, saxpy):
        ddg = build_ddg(saxpy, unified_config())
        est = ddg.earliest_times(4, lat)
        assert est is not None
        by_tag = {ddg.instruction(uid).tag or uid: t for uid, t in est.items()}
        assert by_tag["st_y"] >= by_tag["ld_x"] + 6 + 2 + 2  # ld + fmul + fadd

    def test_infeasible_ii_returns_none(self, dpcm):
        ddg = build_ddg(dpcm, unified_config())
        # Recurrence: ld(6) + imul(2) + iadd(1) + store RAW(1) = 10 over d=1.
        assert ddg.earliest_times(9, lat) is None
        assert ddg.earliest_times(10, lat) is not None

    def test_slack_nonnegative_and_critical_cycle_zero(self, dpcm):
        ddg = build_ddg(dpcm, unified_config())
        slack = ddg.slack(10, lat)
        assert slack is not None
        assert all(s >= 0 for s in slack.values())
        ld_prev = next(i.uid for i in dpcm.body if i.tag == "ld_prev")
        assert slack[ld_prev] == 0  # on the binding recurrence

    def test_l0_latency_lowers_recurrence_bound(self, dpcm):
        ddg = build_ddg(dpcm, unified_config())
        assert ddg.earliest_times(5, lambda u: 1) is not None
        assert ddg.earliest_times(4, lambda u: 1) is None


class TestStrideAnalysis:
    def test_classification(self):
        b = LoopBuilder("mix", trip_count=4)
        a = b.array("a", 256, 4)
        t = b.array("t", 256, 4)
        unit = b.load(a, stride=1, tag="unit")
        rev = b.load(a, stride=-1, tag="rev")
        fixed = b.load(a, stride=0, tag="fixed")
        col = b.load(a, stride=8, tag="col")
        rnd = b.load(t, random=True, tag="rnd")
        loop = b.build()
        by_tag = {i.tag: i for i in loop.body}
        assert classify(by_tag["unit"]) is StrideClass.GOOD
        assert classify(by_tag["rev"]) is StrideClass.GOOD
        assert classify(by_tag["fixed"]) is StrideClass.GOOD
        assert classify(by_tag["col"]) is StrideClass.OTHER
        assert classify(by_tag["rnd"]) is StrideClass.NONSTRIDED
        assert is_candidate(by_tag["unit"])
        assert is_candidate(by_tag["col"])
        assert not is_candidate(by_tag["rnd"])
        assert len(loop_candidates(loop)) == 4

    def test_unrolled_stride_n_is_good(self, saxpy):
        wide = unroll(saxpy, 4)
        first_load = wide.loads[0]
        assert abs(first_load.pattern.stride) == 4
        assert classify(first_load, wide.unroll_factor) is StrideClass.GOOD

    def test_dynamic_stats(self):
        b = LoopBuilder("stats", trip_count=10)
        a = b.array("a", 256, 4)
        t = b.array("t", 256, 4)
        v = b.load(a, stride=1)
        w = b.load(t, random=True)
        x = b.load(a, stride=8)
        b.store(a, v, stride=1)
        loop = b.build()
        strided, good, other = dynamic_stride_stats(loop)
        assert (strided, good, other) == (3, 2, 1)

    def test_classify_rejects_non_memory(self, saxpy):
        alu = next(i for i in saxpy.body if not i.is_memory)
        with pytest.raises(ValueError):
            classify(alu)
