"""Replay of the committed regression corpus (tier-1).

Every repro file under ``tests/corpus/regressions/`` is a shrunk kernel
that once exposed a mismatch.  This suite rebuilds each one and
re-asserts *all* registered checks — a finding fixed once can never
silently return — and, for fault-injection drills, re-applies the
recorded fault to prove the kernel still reproduces its original
divergence.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.fuzz.checks import FAULTS, FuzzOptions
from repro.fuzz.regressions import (
    REPRO_SCHEMA_VERSION,
    load_repros,
    replay_case,
    repro_id,
)
from repro.workloads.generator import GENOTYPE_SCHEMA

CORPUS_DIR = Path(__file__).parent / "corpus" / "regressions"

CASES = load_repros(CORPUS_DIR)


def _case_fault(case) -> str | None:
    """The injected fault a drill repro was found under, if any."""
    match = re.search(r"injected fault '([^']+)'", case.note or "")
    return match.group(1) if match else None


def test_corpus_is_nonempty():
    # The fault-injection drills commit at least two repro kernels; an
    # empty corpus would make this whole suite vacuously green.
    assert len(CASES) >= 2


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.repro_id)
def test_repro_file_is_well_formed(case):
    assert case.path is not None and case.path.name == f"{case.repro_id}.json"
    # The id embeds the (check, config, genotype-fingerprint) triple, so
    # a hand-edited genotype that no longer matches its file name fails
    # here rather than silently testing something else.
    assert case.repro_id == repro_id(case.check, case.config_name, case.genotype)
    assert case.genotype.to_json()["schema"] == GENOTYPE_SCHEMA
    assert REPRO_SCHEMA_VERSION == 1
    fault = _case_fault(case)
    if fault is not None:
        assert fault in FAULTS


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.repro_id)
def test_repro_replays_clean_on_current_tree(case):
    mismatches = replay_case(case)
    assert mismatches == [], (
        f"{case.repro_id} mismatches on the current tree: {mismatches}"
    )


@pytest.mark.parametrize(
    "case",
    [c for c in CASES if _case_fault(c)],
    ids=lambda c: c.repro_id,
)
def test_drill_repro_still_reproduces_under_its_fault(case):
    # A drill kernel that stopped diverging under its recorded fault has
    # lost its reason to exist — the shrinker kept only what the
    # divergence needed, so this doubles as a minimality canary.
    fault = _case_fault(case)
    mismatches = replay_case(
        case, checks=(case.check,), options=FuzzOptions(fault=fault)
    )
    assert mismatches, (
        f"{case.repro_id} no longer reproduces under injected fault {fault!r}"
    )
