"""Tests for the BASE scheduling engine and the compile driver."""

import pytest

from repro.ir import LoopBuilder, build_ddg, unroll
from repro.machine import (
    interleaved_config,
    l0_config,
    multivliw_config,
    unified_config,
)
from repro.scheduler import (
    SchedulingError,
    choose_unroll_factor,
    compile_loop,
)

from repro.workloads.kernels import make_column, make_dpcm, make_saxpy


class TestBaseScheduling:
    def test_saxpy_schedule_validates(self, saxpy):
        compiled = compile_loop(saxpy, unified_config())
        assert compiled.schedule.validate(compiled.ddg) == []

    def test_unrolled_saxpy_hits_res_mii(self, saxpy):
        compiled = compile_loop(saxpy, unified_config())
        assert compiled.unroll_factor == 4
        assert compiled.ii == 3  # 12 memory ops / 4 slots

    def test_dpcm_hits_rec_mii(self, dpcm):
        compiled = compile_loop(dpcm, unified_config(), unroll_factor=1)
        assert compiled.ii == 10

    def test_cross_cluster_values_get_comms(self):
        # A single producer feeding many consumers forces cluster spread.
        b = LoopBuilder("fanout", trip_count=8)
        arr = b.array("a", 256, 4)
        v = b.load(arr, stride=1)
        k = b.live_in("k")
        for _ in range(7):
            v2 = b.iadd(v, k)
        loop = unroll(b.build(), 2)
        compiled = compile_loop(loop, unified_config(), unroll_factor=1)
        clusters = {op.cluster for op in compiled.schedule.placed.values()}
        if len(clusters) > 1:
            assert compiled.schedule.comms
        assert compiled.schedule.validate(compiled.ddg) == []

    def test_all_loads_scheduled_with_l1_latency(self, saxpy):
        compiled = compile_loop(saxpy, unified_config())
        for op in compiled.schedule.placed.values():
            if op.instr.is_load:
                assert op.latency == 6
                assert not op.hints.uses_l0

    def test_starts_normalized_to_zero(self, saxpy):
        compiled = compile_loop(saxpy, unified_config())
        assert min(op.start for op in compiled.schedule.placed.values()) == 0

    def test_impossible_loop_raises(self):
        """A recurrence that can never fit within MAX_II_SLACK still ends."""
        b = LoopBuilder("tight", trip_count=4)
        arr = b.array("a", 64, 4)
        v = b.load(arr, stride=1)
        k = b.live_in("k")
        w = b.iadd(v, k)
        b.store(arr, w, stride=1, offset=1)
        # This is schedulable; just assert it doesn't raise.
        compile_loop(b.build(), unified_config(), unroll_factor=1)


class TestUnrollChoice:
    def test_stream_loop_unrolls(self, saxpy):
        assert choose_unroll_factor(saxpy, unified_config()) == 4

    def test_recurrence_loop_stays_rolled(self, dpcm):
        assert choose_unroll_factor(dpcm, unified_config()) == 1

    def test_same_choice_across_architectures(self, saxpy, dpcm):
        for loop in (saxpy, dpcm):
            choices = {
                choose_unroll_factor(loop, cfg)
                for cfg in (
                    unified_config(),
                    l0_config(8),
                    multivliw_config(),
                    interleaved_config(),
                )
            }
            assert len(choices) == 1


class TestOtherPolicies:
    def test_multivliw_local_latency(self, saxpy):
        compiled = compile_loop(saxpy, multivliw_config())
        for op in compiled.schedule.placed.values():
            if op.instr.is_load:
                assert op.latency == multivliw_config().distributed_local_latency
        assert compiled.schedule.validate(compiled.ddg) == []

    def test_interleaved_heuristic_2_remote_latency_for_unstable(self):
        cfg = interleaved_config()
        # elem 2 stride 1: home cluster changes -> unstable under H2.
        b = LoopBuilder("unstable", trip_count=16)
        arr = b.array("a", 512, 2)
        v = b.load(arr, stride=1)
        k = b.live_in("k")
        w = b.iadd(v, k)
        b.store(arr, w, stride=1)
        compiled = compile_loop(
            b.build(), cfg, unroll_factor=1, interleaved_heuristic=2
        )
        load_op = next(
            op for op in compiled.schedule.placed.values() if op.instr.is_load
        )
        assert load_op.latency == cfg.distributed_remote_latency

    def test_interleaved_heuristic_1_always_local(self, saxpy):
        cfg = interleaved_config()
        compiled = compile_loop(saxpy, cfg, interleaved_heuristic=1)
        for op in compiled.schedule.placed.values():
            if op.instr.is_load:
                assert op.latency == cfg.distributed_local_latency

    def test_policy_names(self, saxpy):
        assert compile_loop(saxpy, unified_config()).policy_name == "unified"
        assert compile_loop(saxpy, l0_config()).policy_name == "l0"
        assert compile_loop(saxpy, multivliw_config()).policy_name == "multivliw"
        assert (
            compile_loop(saxpy, interleaved_config(), interleaved_heuristic=2)
            .policy_name
            == "interleaved2"
        )
