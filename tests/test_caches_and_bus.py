"""Tests for the set-associative cache model and the cluster buses."""

import pytest

from repro.memory import ClusterBus, SetAssocCache


class TestSetAssocCache:
    def make(self, size=256, assoc=2, block=32):
        return SetAssocCache(size=size, assoc=assoc, block=block)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssocCache(size=100, assoc=2, block=32)

    def test_load_allocates(self):
        cache = self.make()
        assert not cache.load(0x100)
        assert cache.load(0x100)
        assert cache.load(0x11F)  # same 32-byte block

    def test_lru_within_set(self):
        cache = self.make(size=128, assoc=2, block=32)  # 2 sets
        # Set 0 holds block addrs with (addr//32) % 2 == 0.
        cache.load(0x000)
        cache.load(0x080)  # same set (block 4)
        cache.load(0x000)  # touch
        cache.load(0x100)  # evicts 0x080
        assert cache.probe(0x000)
        assert not cache.probe(0x080)

    def test_store_write_through_no_allocate(self):
        cache = self.make()
        assert not cache.store(0x100)
        assert not cache.probe(0x100)  # no allocation on store miss
        cache.load(0x100)
        assert cache.store(0x100)

    def test_invalidate(self):
        cache = self.make()
        cache.load(0x100)
        assert cache.invalidate(0x100)
        assert not cache.probe(0x100)
        assert not cache.invalidate(0x100)

    def test_stats(self):
        cache = self.make()
        cache.load(0x0)
        cache.load(0x0)
        cache.store(0x0)
        cache.store(0x40)
        stats = cache.stats
        assert (stats.load_hits, stats.load_misses) == (1, 1)
        assert (stats.store_hits, stats.store_misses) == (1, 1)
        assert stats.load_hit_rate == 0.5

    def test_resident_blocks(self):
        cache = self.make()
        for i in range(3):
            cache.load(i * 32)
        assert cache.resident_blocks() == 3

    def test_invalidate_all(self):
        cache = self.make()
        cache.load(0x0)
        cache.invalidate_all()
        assert cache.resident_blocks() == 0


class TestClusterBus:
    def test_grant_free_cycle(self):
        bus = ClusterBus()
        assert bus.grant(10) == 10
        assert not bus.is_free(10)

    def test_conflict_delays(self):
        bus = ClusterBus()
        bus.grant(5)
        assert bus.grant(5) == 6
        assert bus.grant(5) == 7
        assert bus.stats.delayed_grants == 2
        assert bus.stats.total_delay == 3

    def test_pruning_preserves_recent_state(self):
        bus = ClusterBus()
        bus.grant(0)
        for cycle in range(1000, 1010):
            bus.grant(cycle)
        # Old entries pruned; recent occupancy still visible.
        assert not bus.is_free(1005)

    def test_reset(self):
        bus = ClusterBus()
        bus.grant(1)
        bus.reset()
        assert bus.is_free(1)
