"""Integration tests for the independent static certifier.

The certifier (``repro.analysis``) re-derives schedule legality from
scratch; these tests prove (a) the whole kernel zoo certifies cleanly
under both scheduler backends, (b) the pipeline/CLI wiring works, and
(c) the optimality review downgrades exactly the claims it cannot
re-establish.
"""

from __future__ import annotations

import copy
import dataclasses

import pytest

from repro.analysis import Diagnostic, Severity, blocking
from repro.analysis.certify import _optimality_review, certify_compiled, certify_schedule
from repro.analysis.l0check import audit_flush_plan
from repro.machine import interleaved_config, l0_config, multivliw_config, unified_config
from repro.pipeline.artifact import CompileOptions
from repro.pipeline.compilecache import CompiledLoopCache, compile_cached
from repro.pipeline.passes import PassManager, DEFAULT_PIPELINE
from repro.sim.runner import LoopPlan
from repro.workloads import kernels

CONFIGS = (unified_config(), l0_config(), multivliw_config(), interleaved_config())


def _zoo():
    return [
        kernels.make_saxpy(),
        kernels.make_dpcm(),
        kernels.make_column(),
        kernels.multi_stream("an_mix", trip=64, n=512, inputs=6, alu_depth=8),
        kernels.feedback("an_fb", trip=64, n=256),
    ]


@pytest.fixture(scope="module")
def cache():
    return CompiledLoopCache()


# ----------------------------------------------------------------------
# The zoo certifies cleanly
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", ["sms", "exact"])
def test_zoo_certifies_clean_under_both_backends(cache, scheduler):
    for loop in _zoo():
        for config in CONFIGS:
            compiled = compile_cached(
                loop, config, CompileOptions(scheduler=scheduler), cache=cache
            )
            diags = certify_compiled(compiled)
            assert diags == [], (
                loop.name,
                config.arch,
                [d.render() for d in diags],
            )
            verdict = compiled.schedule.meta["analysis"]
            assert verdict["verdict"] == "certified"
            assert verdict["codes"] == []


def test_certify_stamps_provenance(cache):
    compiled = compile_cached(
        kernels.make_saxpy(), unified_config(), CompileOptions(), cache=cache
    )
    compiled = copy.deepcopy(compiled)
    uid = next(iter(compiled.schedule.placed))
    del compiled.schedule.placed[uid]
    diags = certify_compiled(compiled, artifact_key="deadbeef")
    assert diags
    assert all(d.loop == compiled.schedule.loop_name for d in diags)
    assert all(d.origin == "deadbeef" for d in diags)
    assert compiled.schedule.meta["analysis"]["verdict"] == "flagged"


# ----------------------------------------------------------------------
# Pipeline / compile-path wiring
# ----------------------------------------------------------------------


def test_analyze_pass_in_pipeline():
    manager = PassManager(DEFAULT_PIPELINE + ("analyze",))
    artifact = manager.run(kernels.make_saxpy(), unified_config())
    assert artifact.analysis == []
    assert artifact.schedule.meta["analysis"]["verdict"] == "certified"
    assert "analyze" in artifact.trace


def test_compile_cached_analyze_option(cache):
    compiled = compile_cached(
        kernels.make_dpcm(),
        l0_config(),
        CompileOptions(analyze=True),
        cache=cache,
    )
    assert compiled.schedule.meta["analysis"]["verdict"] == "certified"


def test_cli_audit_over_disk_store(tmp_path):
    from repro.analysis.__main__ import audit_compile_store

    store = tmp_path / "compile-cache"
    disk = CompiledLoopCache(store)
    compile_cached(kernels.make_saxpy(), l0_config(), CompileOptions(), cache=disk)
    compile_cached(
        kernels.make_saxpy(), l0_config(), CompileOptions(scheduler="exact"), cache=disk
    )
    disk.flush()
    lines: list[str] = []
    assert audit_compile_store(store, echo=lambda m, file=None: lines.append(m)) == 0
    assert any("2 artifacts audited" in line for line in lines)
    # The --min floor guards CI against auditing an empty cache.
    assert audit_compile_store(store, min_artifacts=3) == 1
    assert audit_compile_store(tmp_path / "missing", min_artifacts=1) == 1


# ----------------------------------------------------------------------
# Optimality review (A014)
# ----------------------------------------------------------------------


def _exact_compiled(cache):
    loop = kernels.multi_stream("an_mix", trip=64, n=512, inputs=6, alu_depth=8)
    return compile_cached(
        loop, l0_config(), CompileOptions(scheduler="exact"), cache=cache
    )


def test_lower_bound_proof_survives_bus_saturation(cache):
    compiled = copy.deepcopy(_exact_compiled(cache))
    sched = compiled.schedule
    assert sched.meta["proved_optimal"] is True
    assert sched.ii <= sched.meta["mii"]  # lower-bound proof
    assert _optimality_review(sched) == []
    assert sched.meta["proved_optimal"] is True


def test_search_proof_downgraded_on_bus_binding_rows(cache):
    compiled = copy.deepcopy(_exact_compiled(cache))
    sched = compiled.schedule
    assert sched.comms, "fixture must exercise the bus"
    # Forge a search-refutation proof (II > MII) and saturate one row's
    # buses with *legal* duplicate transfers: binding, not oversubscribed.
    sched.meta["mii"] = sched.ii - 1
    template = sched.comms[0]
    row = template.start % sched.ii
    in_row = sum(1 for c in sched.comms if c.start % sched.ii == row)
    for _ in range(sched.config.n_buses - in_row):
        sched.comms.append(copy.copy(template))
    diags = certify_schedule(sched, compiled.ddg)
    assert [d.code for d in diags] == ["A014"]
    assert diags[0].severity is Severity.NOTE
    assert not blocking(diags)  # advisory: the schedule itself is legal
    assert sched.meta["proved_optimal"] == "unverified"
    assert sched.meta["analysis"]["verdict"] == "certified"
    assert row in sched.meta["analysis"]["bus_binding_rows"]
    # Re-certifying an already-downgraded artifact keeps the note.
    assert any(d.code == "A014" for d in certify_schedule(sched, compiled.ddg))


def test_sms_schedules_never_reviewed(cache):
    compiled = compile_cached(
        kernels.make_saxpy(), multivliw_config(), CompileOptions(), cache=cache
    )
    sched = copy.deepcopy(compiled.schedule)
    assert "mii" not in sched.meta
    assert _optimality_review(sched) == []


# ----------------------------------------------------------------------
# Flush-plan audit (A011)
# ----------------------------------------------------------------------


def _plan(loop, *, invocations=1, flush_between=False, flush_after=True):
    return LoopPlan(
        loop=loop,
        invocations=invocations,
        config=l0_config(),
        options=None,
        layout=None,
        flush_between=flush_between,
        flush_after=flush_after,
    )


def test_flush_audit_clean_when_flushes_cover():
    fb = kernels.feedback("an_fb2", trip=64, n=256)
    # Same state array back-to-back, but the first loop flushes after.
    plans = [_plan(fb, flush_after=True), _plan(fb, flush_after=True)]
    assert audit_flush_plan(plans) == []
    # Multi-invocation self-conflict covered by a between flush.
    plans = [_plan(fb, invocations=3, flush_between=True, flush_after=True)]
    assert audit_flush_plan(plans) == []


def test_flush_audit_flags_missing_flushes():
    fb = kernels.feedback("an_fb3", trip=64, n=256)
    # Cross-loop: first loop leaves its entries resident.
    plans = [_plan(fb, flush_after=False), _plan(fb, flush_after=True)]
    diags = audit_flush_plan(plans)
    assert [d.code for d in diags] == ["A011"]
    # Self-conflict: re-reads stored data but skips the between flush.
    plans = [_plan(fb, invocations=3, flush_between=False, flush_after=True)]
    assert [d.code for d in audit_flush_plan(plans)] == ["A011"]


def test_flush_audit_ignores_disjoint_streams():
    mix = kernels.multi_stream("an_mix2", trip=64, n=512)
    other = kernels.multi_stream("an_mix3", trip=64, n=512)
    plans = [_plan(mix, flush_after=False), _plan(other, flush_after=False)]
    assert audit_flush_plan(plans) == []


# ----------------------------------------------------------------------
# Diagnostic type basics
# ----------------------------------------------------------------------


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic.new("A999", "no such code")


def test_render_and_str_shim():
    d = Diagnostic.new("A002", "value late", loop="saxpy", origin="abc123")
    assert str(d) == "value late"
    assert d.render() == "A002 [error] (loop=saxpy, abc123): value late"
