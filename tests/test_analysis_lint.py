"""The custom AST lint (A101-A104): fixtures + repo self-lint.

Each fixture is a minimal source string exercising one rule — the
violation, the clean counterpart, and the waiver syntax.  The final
test lints the real source tree: the repository must stay clean under
its own lint (waivers included), which is what the CI analysis lane
asserts.
"""

from __future__ import annotations

from pathlib import Path

import textwrap

from repro.analysis.lint import lint_paths, lint_source


def _codes(source, path="sim/x.py", **kwargs):
    return [d.code for d in lint_source(textwrap.dedent(source), path, **kwargs)]


# ----------------------------------------------------------------------
# A101: unseeded randomness
# ----------------------------------------------------------------------


def test_a101_unseeded_random_flagged():
    src = """
    import random

    def jitter():
        return random.random() + random.randint(0, 3)
    """
    assert _codes(src) == ["A101", "A101"]


def test_a101_seeded_random_allowed():
    src = """
    import random

    def rng(seed):
        random.seed(seed)
        return random.Random(1234)
    """
    assert _codes(src) == []


def test_a101_only_in_timing_sensitive_dirs():
    src = "import random\nx = random.random()\n"
    assert _codes(src, path="workloads/gen.py") == []
    assert _codes(src, path="scheduler/sub/deep.py") == ["A101"]


# ----------------------------------------------------------------------
# A102: wall-clock reads
# ----------------------------------------------------------------------


def test_a102_clock_reads_flagged():
    src = """
    import time
    import datetime

    def stamp():
        return time.monotonic(), time.perf_counter_ns(), datetime.now()
    """
    assert _codes(src) == ["A102", "A102", "A102"]


def test_a102_waiver_suppresses():
    src = """
    import time

    def deadline(budget):
        return time.monotonic() + budget  # analysis: allow(A102)
    """
    assert _codes(src) == []


def test_waiver_lists_multiple_codes():
    src = """
    import time
    import random

    def f():
        return time.time() + random.random()  # analysis: allow(A101, A102)
    """
    assert _codes(src) == []


# ----------------------------------------------------------------------
# A103: unordered-set iteration
# ----------------------------------------------------------------------


def test_a103_set_literal_and_annotation():
    src = """
    ready = {1, 2, 3}

    def order(pending: set[int]):
        out = []
        for uid in ready:
            out.append(uid)
        return out + [u for u in pending]
    """
    assert _codes(src) == ["A103", "A103"]


def test_a103_sorted_iteration_clean():
    src = """
    ready = {1, 2, 3}

    def order(pending: set[int]):
        return [u for u in sorted(ready)] + list(sorted(pending))
    """
    assert _codes(src) == []


def test_a103_self_attribute_binding():
    src = """
    class Policy:
        def __init__(self):
            self.planned: set[int] = set()

        def walk(self):
            return [u for u in self.planned]
    """
    assert _codes(src) == ["A103"]


def test_a103_scoped_to_order_sensitive_dirs():
    src = "s = {1, 2}\nout = [x for x in s]\n"
    assert _codes(src, path="pipeline/keys.py") == ["A103"]
    assert _codes(src, path="workloads/gen.py") == []


# ----------------------------------------------------------------------
# A104: undeclared config reads in declared passes
# ----------------------------------------------------------------------


def test_a104_undeclared_config_read():
    src = """
    @register_pass("p", provides=("ddg",), config_fields=("l0_entries",))
    def run(artifact):
        cfg = artifact.config
        return cfg.l0_entries + cfg.n_buses + artifact.config.bus_latency
    """
    assert _codes(src, path="pipeline/p.py") == ["A104", "A104"]


def test_a104_undeclared_pass_exempt():
    src = """
    @register_pass("p", provides=("ddg",))
    def run(artifact):
        return artifact.config.n_buses
    """
    assert _codes(src, path="pipeline/p.py") == []


def test_a104_non_config_attribute_ignored():
    src = """
    @register_pass("p", provides=("ddg",), config_fields=())
    def run(artifact):
        return artifact.options.n_buses  # an options read, not config
    """
    assert _codes(src, path="pipeline/p.py") == []


# ----------------------------------------------------------------------
# Self-lint: the repository stays clean under its own rules
# ----------------------------------------------------------------------


def test_repository_self_lint_clean():
    package = Path(__file__).resolve().parents[1] / "src" / "repro"
    findings = lint_paths([package])
    assert findings == [], [d.render() for d in findings]


def test_lint_findings_carry_location():
    src = "import time\nx = time.time()\n"
    (d,) = lint_source(src, "sim/clock.py")
    assert d.origin == "sim/clock.py:2"
    assert d.code == "A102"
